// Active measurement demo: the Section VII-C PlanetLab experiment. Uploads
// a fresh test video and probes it from nodes around the world every 30
// minutes, printing where each download was served from and the Fig. 17/18
// signals (first access remote, later accesses local).

#include <iostream>

#include "analysis/table.hpp"
#include "geo/city.hpp"
#include "study/planetlab_experiment.hpp"

int main() {
    using namespace ytcdn;

    study::StudyConfig config;
    config.scale = 0.01;
    study::StudyDeployment deployment(config);
    const auto landmarks =
        geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(), sim::Rng(3));

    study::PlanetLabConfig pl;
    pl.nodes = 12;   // keep the demo readable
    pl.rounds = 6;
    std::cout << "Uploading a fresh test video and probing it from " << pl.nodes
              << " PlanetLab nodes, " << pl.rounds << " rounds, 30 min apart...\n\n";
    const auto result = study::run_planetlab_experiment(deployment, landmarks, pl);

    analysis::AsciiTable t({"node", "preferred DC", "round 1 (cold)", "round 2+",
                            "RTT1/RTT2"});
    for (std::size_t i = 0; i < result.nodes.size(); ++i) {
        const auto& n = result.nodes[i];
        t.add_row({n.node, n.preferred_city,
                   n.served_from[0] + " @ " + analysis::fmt(n.rtt_ms[0], 1) + "ms",
                   n.served_from[1] + " @ " + analysis::fmt(n.rtt_ms[1], 1) + "ms",
                   analysis::fmt(result.rtt_ratio[i], 1)});
    }
    std::cout << t << '\n';
    std::cout << "A ratio >1 is the paper's smoking gun for sparse content: the\n"
                 "first access missed at the preferred data center, was served from\n"
                 "an origin copy elsewhere, and the miss pulled the video local.\n";
    return 0;
}
