// Quickstart: build the study world, capture a (scaled-down) week of
// YouTube traffic at all five vantage points, and answer the paper's
// headline questions — who serves the bytes, from where, and how often the
// preferred data center is bypassed.
//
// Usage: quickstart [scale]   (default scale 0.05)

#include <cstdlib>
#include <iostream>

#include "analysis/loadbalance_analysis.hpp"
#include "analysis/preferred_dc.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "study/report.hpp"
#include "study/study_run.hpp"

int main(int argc, char** argv) {
    using namespace ytcdn;

    study::StudyConfig config;
    config.scale = argc > 1 ? std::atof(argv[1]) : 0.05;
    if (config.scale <= 0.0) {
        std::cerr << "scale must be > 0\n";
        return 1;
    }

    std::cout << "Simulating one week at scale " << config.scale
              << " (paper magnitudes = 1.0)...\n\n";
    const study::StudyRun run = study::run_study(config);

    std::cout << "== Table I: traffic summary ==\n"
              << study::make_table1(run) << '\n';

    std::cout << "== Table II: AS breakdown ==\n" << study::make_table2(run) << '\n';

    std::cout << "== Server selection ==\n";
    analysis::AsciiTable sel({"Dataset", "Preferred DC", "RTT[ms]", "pref byte%",
                              "non-pref flow%", "1-flow sess%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        const auto& map = run.maps[i];
        const int pref = run.preferred[i];
        const auto share = analysis::non_preferred_share(ds, map, pref);
        const auto sessions = analysis::build_sessions(ds, 1.0);
        const auto patterns = analysis::session_patterns(sessions, map, pref);
        sel.add_row({ds.name, map.info(pref).name,
                     analysis::fmt(map.info(pref).rtt_ms, 1),
                     analysis::fmt_pct(1.0 - share.byte_fraction, 1),
                     analysis::fmt_pct(share.flow_fraction, 1),
                     analysis::fmt_pct(patterns.single_flow, 1)});
    }
    std::cout << sel << '\n';

    std::cout << "== Why non-preferred accesses happen (Section VII) ==\n";
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const double corr = analysis::load_vs_nonpreferred_correlation(
            run.traces.datasets[i], run.maps[i], run.preferred[i]);
        std::cout << run.traces.datasets[i].name
                  << ": corr(hourly load, non-preferred fraction) = "
                  << analysis::fmt(corr, 2)
                  << (corr > 0.7 ? "  <- adaptive DNS load balancing\n" : "\n");
    }

    std::cout << "\nPaper expectations: preferred DC carries >85% of bytes except EU2;\n"
                 "5-15% of flows are non-preferred (EU2: >40%); 72-81% of sessions\n"
                 "have a single flow; only EU2's non-preferred fraction tracks load.\n";
    return 0;
}
