// Server geolocation: the Section V pipeline in isolation. Calibrates CBG
// over the 215 PlanetLab landmarks, geolocates every data center of the
// deployed CDN, clusters servers into city-level data centers, and reports
// the accuracy against ground truth — including why the IP-to-location
// database approach fails.

#include <iostream>

#include "analysis/table.hpp"
#include "geo/city.hpp"
#include "geoloc/cbg.hpp"
#include "geoloc/dc_clustering.hpp"
#include "geoloc/ip2location_db.hpp"
#include "study/deployment.hpp"

int main() {
    using namespace ytcdn;

    study::StudyConfig config;
    config.scale = 0.01;  // only the topology matters here
    study::StudyDeployment deployment(config);

    std::cout << "Calibrating CBG over 215 PlanetLab landmarks...\n";
    auto landmarks = geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(),
                                                      sim::Rng(7));
    geoloc::CbgLocator locator(deployment.rtt(), std::move(landmarks), {}, 42);
    locator.calibrate();

    const auto maxmind = geoloc::IpLocationDatabase::maxmind_like();

    analysis::AsciiTable t({"data center (truth)", "CBG city", "err[km]",
                            "radius[km]", "database says"});
    int correct = 0, total = 0;
    double err_sum = 0.0;
    for (const auto& dc : deployment.cdn().data_centers()) {
        if (!cdn::in_analysis_scope(dc.infra) || dc.servers.empty()) continue;
        const auto result = locator.locate(dc.site);
        const geo::City* snapped =
            geoloc::snap_to_city(result, geo::CityDatabase::builtin());
        const double err =
            result.valid ? geo::distance_km(result.estimate, dc.location) : -1.0;
        const auto ip = deployment.cdn().server(dc.servers[0]).ip();
        const geo::City* db_city = maxmind.lookup(ip);
        t.add_row({dc.city, snapped != nullptr ? snapped->name : "(unlocated)",
                   analysis::fmt(err, 0), analysis::fmt(result.confidence_radius_km, 0),
                   db_city->name});
        ++total;
        err_sum += err;
        if (snapped != nullptr && snapped->name == dc.city) ++correct;
    }
    std::cout << t << '\n';
    std::cout << "CBG snapped " << correct << "/" << total
              << " data centers to the correct city (mean error "
              << analysis::fmt(err_sum / total, 0) << " km).\n";
    std::cout << "The IP-to-location database puts every single server in Mountain "
                 "View —\nthe paper's Section V negative result.\n";
    return 0;
}
