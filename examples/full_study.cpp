// Full-study driver: regenerates the paper's whole evaluation in one run
// and writes every artifact — the three tables as text and each figure's
// series as a gnuplot-ready .dat file — into an output directory.
//
// Usage: full_study [output_dir] [scale]   (default: ./paper_artifacts 0.1)
//
// Exit codes follow the ytcdn::ErrorCategory taxonomy: 0 success,
// 1 internal error, 2 usage, 3 I/O, 4 corrupt input, 5 parse failure.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/series.hpp"
#include "analysis/stats.hpp"
#include "geo/city.hpp"
#include "geoloc/landmark.hpp"
#include "study/planetlab_experiment.hpp"
#include "study/report.hpp"
#include "study/study_run.hpp"
#include "util/error.hpp"

namespace {

using namespace ytcdn;

void write_file(const std::filesystem::path& path, const std::string& content) {
    std::ofstream os(path);
    os << content;
    if (!os) throw Error(ErrorCode::Io, "write failed for " + path.string());
    std::cout << "  wrote " << path << '\n';
}

void write_dat(const std::filesystem::path& path,
               const std::vector<analysis::Series>& series) {
    std::ofstream os(path);
    analysis::write_series(os, series);
    if (!os) throw Error(ErrorCode::Io, "write failed for " + path.string());
    std::cout << "  wrote " << path << '\n';
}

int run_full_study(int argc, char** argv) {
    const std::filesystem::path out_dir =
        argc > 1 ? argv[1] : std::filesystem::path("paper_artifacts");
    study::StudyConfig config;
    config.scale = argc > 2 ? std::atof(argv[2]) : 0.1;
    if (config.scale <= 0.0) {
        throw Error(ErrorCode::InvalidArgument, "scale must be > 0");
    }
    std::filesystem::create_directories(out_dir);

    util::ThreadPool pool(config.effective_threads());
    std::cout << "Running the full study at scale " << config.scale << " on "
              << pool.size() << " thread(s)...\n";
    const study::StudyRun run = study::run_study(config, pool);

    // Tables and per-figure series: every artifact is an independent closure
    // over the run, rendered on the pool (Table III's CBG geolocation of all
    // five datasets rides along).
    std::cout << "Rendering tables and figure data (CBG: 215 landmarks)...\n";
    const study::FullReport report = study::make_full_report(run, pool);
    for (const auto& artifact : report.artifacts) {
        write_file(out_dir / artifact.name, artifact.content);
    }

    // Figs 17-18: PlanetLab active experiment (fresh deployment, cold cache).
    std::cout << "Running the PlanetLab active experiment...\n";
    study::StudyConfig pl_cfg = config;
    pl_cfg.scale = 0.01;
    study::StudyDeployment pl_dep(pl_cfg);
    const auto pl = study::run_planetlab_experiment(
        pl_dep, geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(),
                                                 sim::Rng(config.seed ^ 0x9B)));
    std::vector<analysis::Series> fig17;
    std::size_t best = 0;
    for (std::size_t i = 1; i < pl.rtt_ratio.size(); ++i) {
        if (pl.rtt_ratio[i] > pl.rtt_ratio[best]) best = i;
    }
    analysis::Series timeline{pl.nodes[best].node, {}};
    for (std::size_t r = 0; r < pl.nodes[best].rtt_ms.size(); ++r) {
        timeline.points.emplace_back(static_cast<double>(r + 1),
                                     pl.nodes[best].rtt_ms[r]);
    }
    write_dat(out_dir / "fig17_planetlab_timeline.dat", {timeline});
    analysis::EmpiricalCdf ratio_cdf(
        std::vector<double>(pl.rtt_ratio.begin(), pl.rtt_ratio.end()));
    write_dat(out_dir / "fig18_rtt_ratio_cdf.dat",
              {{"RTT1/RTT2", ratio_cdf.curve(60)}});

    std::cout << "\nAll artifacts in " << out_dir << ". Compare with the paper per "
                 "EXPERIMENTS.md.\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run_full_study(argc, argv);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << '\n';
        return exit_code_for(e.code());
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
