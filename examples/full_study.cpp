// Full-study driver: regenerates the paper's whole evaluation in one run
// and writes every artifact — the three tables as text and each figure's
// series as a gnuplot-ready .dat file — into an output directory.
//
// Usage: full_study [output_dir] [scale]   (default: ./paper_artifacts 0.1)

#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/geo_analysis.hpp"
#include "analysis/loadbalance_analysis.hpp"
#include "analysis/redirect_analysis.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "geo/city.hpp"
#include "geoloc/cbg.hpp"
#include "study/dc_map_builder.hpp"
#include "study/planetlab_experiment.hpp"
#include "study/report.hpp"
#include "study/study_run.hpp"

namespace {

using namespace ytcdn;

void write_file(const std::filesystem::path& path, const std::string& content) {
    std::ofstream os(path);
    os << content;
    std::cout << "  wrote " << path << '\n';
}

void write_dat(const std::filesystem::path& path,
               const std::vector<analysis::Series>& series) {
    std::ofstream os(path);
    analysis::write_series(os, series);
    std::cout << "  wrote " << path << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    const std::filesystem::path out_dir =
        argc > 1 ? argv[1] : std::filesystem::path("paper_artifacts");
    study::StudyConfig config;
    config.scale = argc > 2 ? std::atof(argv[2]) : 0.1;
    std::filesystem::create_directories(out_dir);

    std::cout << "Running the full study at scale " << config.scale << "...\n";
    const study::StudyRun run = study::run_study(config);

    // Tables.
    write_file(out_dir / "table1.txt", study::make_table1(run).render());
    write_file(out_dir / "table2.txt", study::make_table2(run).render());

    // Table III needs CBG over all datasets.
    std::cout << "Geolocating servers with CBG (215 landmarks)...\n";
    geoloc::CbgLocator locator(
        run.deployment->rtt(),
        geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(),
                                         sim::Rng(config.seed ^ 0x9B)),
        {}, config.seed ^ 0xCB6);
    locator.calibrate();
    std::vector<analysis::ContinentCounts> continent_counts;
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto mapping =
            study::cbg_dc_map(*run.deployment, run.traces.datasets[i], locator,
                              run.deployment->vantage(i), run.deployment->local_as(i));
        continent_counts.push_back(analysis::servers_per_continent(mapping.located));
    }
    write_file(out_dir / "table3.txt",
               study::make_table3(run, continent_counts).render());

    // Figures (one .dat per figure; multi-curve figures hold several blocks).
    std::cout << "Writing figure data...\n";
    std::vector<analysis::Series> fig7, fig8, fig9, fig13;
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        fig7.push_back(analysis::bytes_vs_rtt(ds, run.maps[i]));
        fig8.push_back(analysis::bytes_vs_distance(ds, run.maps[i]));
        fig9.push_back({ds.name,
                        analysis::hourly_non_preferred_fraction(ds, run.maps[i],
                                                                run.preferred[i])
                            .curve(60)});
        const auto redirects =
            analysis::video_non_preferred_counts(ds, run.maps[i], run.preferred[i]);
        if (!redirects.empty()) fig13.push_back({ds.name, redirects.curve(60)});
    }
    write_dat(out_dir / "fig07_bytes_vs_rtt.dat", fig7);
    write_dat(out_dir / "fig08_bytes_vs_distance.dat", fig8);
    write_dat(out_dir / "fig09_hourly_nonpreferred_cdf.dat", fig9);
    write_dat(out_dir / "fig13_video_redirect_counts_cdf.dat", fig13);

    // Figs 5/6: flows per session.
    std::vector<analysis::Series> fig5, fig6;
    for (const double t : {1.0, 5.0, 10.0, 60.0, 300.0}) {
        const auto cdf = analysis::flows_per_session_cdf(
            analysis::build_sessions(run.dataset("US-Campus"), t));
        analysis::Series s{"T=" + std::to_string(static_cast<int>(t)) + "s", {}};
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            s.points.emplace_back(static_cast<double>(i + 1), cdf[i]);
        }
        fig5.push_back(std::move(s));
    }
    for (const auto& ds : run.traces.datasets) {
        const auto cdf =
            analysis::flows_per_session_cdf(analysis::build_sessions(ds, 1.0));
        analysis::Series s{ds.name, {}};
        for (std::size_t i = 0; i < cdf.size(); ++i) {
            s.points.emplace_back(static_cast<double>(i + 1), cdf[i]);
        }
        fig6.push_back(std::move(s));
    }
    write_dat(out_dir / "fig05_gap_sensitivity.dat", fig5);
    write_dat(out_dir / "fig06_flows_per_session.dat", fig6);

    // Fig 11: EU2 over time.
    const auto eu2 = run.vp_index("EU2");
    const auto hourly = analysis::hourly_preferred_series(
        run.traces.datasets[eu2], run.maps[eu2], run.preferred[eu2]);
    write_dat(out_dir / "fig11_eu2_load_balancing.dat",
              {hourly.fraction_preferred, hourly.flows_per_hour});

    // Figs 14-16: hot-spot machinery at EU1-ADSL.
    const auto adsl = run.vp_index("EU1-ADSL");
    const auto top = analysis::top_redirected_videos(
        run.traces.datasets[adsl], run.maps[adsl], run.preferred[adsl], 4);
    std::vector<analysis::Series> fig14;
    for (std::size_t v = 0; v < top.size(); ++v) {
        auto load = analysis::video_hourly_load(run.traces.datasets[adsl],
                                                run.maps[adsl], run.preferred[adsl],
                                                top[v]);
        load.all.name = "video" + std::to_string(v + 1) + " all";
        load.non_preferred.name = "video" + std::to_string(v + 1) + " non-preferred";
        fig14.push_back(std::move(load.all));
        fig14.push_back(std::move(load.non_preferred));
    }
    write_dat(out_dir / "fig14_hotspot_videos.dat", fig14);
    const auto load = analysis::preferred_dc_server_load(
        run.traces.datasets[adsl], run.maps[adsl], run.preferred[adsl]);
    write_dat(out_dir / "fig15_server_load.dat", {load.avg, load.max});
    if (!top.empty()) {
        const auto sessions = analysis::build_sessions(run.traces.datasets[adsl], 1.0);
        const auto hot = analysis::hot_server_sessions(
            run.traces.datasets[adsl], sessions, run.maps[adsl], run.preferred[adsl],
            top.front());
        write_dat(out_dir / "fig16_hot_server_sessions.dat",
                  {hot.all_preferred, hot.first_preferred_then_other, hot.others});
    }

    // Figs 17-18: PlanetLab active experiment (fresh deployment, cold cache).
    std::cout << "Running the PlanetLab active experiment...\n";
    study::StudyConfig pl_cfg = config;
    pl_cfg.scale = 0.01;
    study::StudyDeployment pl_dep(pl_cfg);
    const auto pl = study::run_planetlab_experiment(
        pl_dep, geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(),
                                                 sim::Rng(config.seed ^ 0x9B)));
    std::vector<analysis::Series> fig17;
    std::size_t best = 0;
    for (std::size_t i = 1; i < pl.rtt_ratio.size(); ++i) {
        if (pl.rtt_ratio[i] > pl.rtt_ratio[best]) best = i;
    }
    analysis::Series timeline{pl.nodes[best].node, {}};
    for (std::size_t r = 0; r < pl.nodes[best].rtt_ms.size(); ++r) {
        timeline.points.emplace_back(static_cast<double>(r + 1),
                                     pl.nodes[best].rtt_ms[r]);
    }
    write_dat(out_dir / "fig17_planetlab_timeline.dat", {timeline});
    analysis::EmpiricalCdf ratio_cdf(
        std::vector<double>(pl.rtt_ratio.begin(), pl.rtt_ratio.end()));
    write_dat(out_dir / "fig18_rtt_ratio_cdf.dat",
              {{"RTT1/RTT2", ratio_cdf.curve(60)}});

    std::cout << "\nAll artifacts in " << out_dir << ". Compare with the paper per "
                 "EXPERIMENTS.md.\n";
    return 0;
}
