// Trace analysis: the paper's offline workflow on persisted flow logs.
// Simulates a day of traffic at one vantage point, writes the Tstat-style
// log to disk, reads it back, and runs the session/selection analyses on
// the re-loaded dataset — demonstrating that the analysis layer only needs
// the flow logs, exactly as the paper's toolchain did.
//
// Usage: trace_analysis [log_path]   (default: ./eu1_adsl_flows.tsv)

#include <filesystem>
#include <iostream>

#include "analysis/preferred_dc.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "analysis/table.hpp"
#include "capture/flow_log.hpp"
#include "study/dc_map_builder.hpp"
#include "study/study_run.hpp"

int main(int argc, char** argv) {
    using namespace ytcdn;

    const std::filesystem::path path =
        argc > 1 ? argv[1] : std::filesystem::path("eu1_adsl_flows.tsv");

    study::StudyConfig config;
    config.scale = 0.03;
    std::cout << "Capturing a scaled week at EU1-ADSL...\n";
    const study::StudyRun run = study::run_study(config);
    const auto idx = run.vp_index("EU1-ADSL");

    std::cout << "Writing " << run.traces.datasets[idx].records.size()
              << " flow records to " << path << "\n";
    capture::write_flow_log(path, run.traces.datasets[idx].records);

    // --- The offline part: everything below only touches the log file. ---
    capture::Dataset dataset;
    dataset.name = "EU1-ADSL (from log)";
    dataset.records = capture::read_flow_log(path);
    dataset.sort_by_time();
    std::cout << "Re-loaded " << dataset.records.size() << " records\n\n";

    const auto summary = dataset.summary();
    std::cout << "flows=" << summary.flows << " volume="
              << analysis::fmt(summary.volume_gb, 2) << " GB servers="
              << summary.distinct_servers << " clients=" << summary.distinct_clients
              << "\n\n";

    const auto& map = run.maps[idx];
    const int preferred = analysis::preferred_dc(dataset, map);
    std::cout << "Preferred data center: " << map.info(preferred).name << " ("
              << analysis::fmt(map.info(preferred).rtt_ms, 1) << " ms)\n";

    const auto sessions = analysis::build_sessions(dataset, 1.0);
    const auto patterns = analysis::session_patterns(sessions, map, preferred);
    analysis::AsciiTable t({"metric", "value"});
    t.add_row({"sessions", std::to_string(patterns.total_sessions)});
    t.add_row({"single-flow %", analysis::fmt_pct(patterns.single_flow, 1)});
    t.add_row({"  ... to non-preferred %",
               analysis::fmt_pct(patterns.single_non_preferred, 1)});
    t.add_row({"two-flow (pref,nonpref) %",
               analysis::fmt_pct(patterns.two_pref_nonpref, 1)});
    const auto share = analysis::non_preferred_share(dataset, map, preferred);
    t.add_row({"non-preferred byte %", analysis::fmt_pct(share.byte_fraction, 1)});
    std::cout << t;

    std::filesystem::remove(path);
    return 0;
}
