// What-if analysis for ISP capacity planning (the use case the paper's
// introduction motivates): how would EU2's traffic split between the in-ISP
// cache and external Google data centers change if (a) the cache's
// sustainable rate changed, or (b) demand grew?
//
// Usage: what_if_capacity [scale]   (default 0.02)

#include <cstdlib>
#include <iostream>

#include "analysis/loadbalance_analysis.hpp"
#include "analysis/preferred_dc.hpp"
#include "analysis/table.hpp"
#include "study/study_run.hpp"

namespace {

struct Outcome {
    double local_bytes = 0.0;
    double peak_hour_local = 1.0;
    double external_gb = 0.0;  // transit the ISP pays for
};

Outcome evaluate(double scale, double rate_factor, double demand_multiplier) {
    using namespace ytcdn;
    study::StudyConfig cfg;
    cfg.scale = scale * demand_multiplier;
    cfg.eu2_local_rate_factor = rate_factor / demand_multiplier;
    const auto run = study::run_study(cfg);
    const auto idx = run.vp_index("EU2");
    const auto& ds = run.traces.datasets[idx];
    const auto share = analysis::non_preferred_share(ds, run.maps[idx],
                                                     run.preferred[idx]);
    const auto series = analysis::hourly_preferred_series(ds, run.maps[idx],
                                                          run.preferred[idx]);
    Outcome out;
    out.local_bytes = 1.0 - share.byte_fraction;
    double peak = 0.0;
    for (std::size_t h = 0; h < series.fraction_preferred.points.size(); ++h) {
        if (series.flows_per_hour.points[h].second > peak) {
            peak = series.flows_per_hour.points[h].second;
            out.peak_hour_local = series.fraction_preferred.points[h].second;
        }
    }
    out.external_gb = ds.summary().volume_gb * share.byte_fraction;
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace ytcdn;
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.02;

    std::cout << "EU2 what-if: in-ISP cache rate factor sweep (current ~0.62)\n\n";
    analysis::AsciiTable t({"cache rate factor", "demand", "local byte %",
                            "peak-hour local %", "external transit [GB]"});
    for (const double f : {0.4, 0.62, 1.0, 1.6}) {
        const auto o = evaluate(scale, f, 1.0);
        t.add_row({analysis::fmt(f, 2), "1.0x", analysis::fmt_pct(o.local_bytes, 1),
                   analysis::fmt_pct(o.peak_hour_local, 1),
                   analysis::fmt(o.external_gb, 1)});
    }
    // Demand growth with today's cache: what the ISP should expect.
    for (const double g : {1.5, 2.0}) {
        const auto o = evaluate(scale, 0.62, g);
        t.add_row({"0.62", analysis::fmt(g, 1) + "x",
                   analysis::fmt_pct(o.local_bytes, 1),
                   analysis::fmt_pct(o.peak_hour_local, 1),
                   analysis::fmt(o.external_gb, 1)});
    }
    std::cout << t << '\n';
    std::cout << "Reading: the in-ISP cache absorbs all off-peak demand at any\n"
                 "capacity; what the ISP buys with more capacity is the busy-hour\n"
                 "local share — and demand growth erodes it proportionally.\n";
    return 0;
}
