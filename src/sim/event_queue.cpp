#include "sim/event_queue.hpp"

#include <stdexcept>

namespace ytcdn::sim {

SimTime EventQueue::next_time() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.front().time;
}

EventQueue::Task EventQueue::pop(SimTime& time_out) {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry entry = heap_.back();
    heap_.pop_back();
    time_out = entry.time;
    return Task(this, entry.task);
}

void EventQueue::clear() {
    for (const Entry& entry : heap_) dispose(entry.task);
    heap_.clear();
    next_seq_ = 0;
}

std::size_t EventQueue::tasks_peak() const noexcept {
    return small_pool_.blocks_peak() + large_pool_.blocks_peak();
}

}  // namespace ytcdn::sim
