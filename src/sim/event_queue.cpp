#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::sim {

void EventQueue::push(SimTime time, Callback callback) {
    heap_.push(Entry{time, next_seq_++, std::move(callback)});
}

SimTime EventQueue::next_time() const {
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.top().time;
}

EventQueue::Callback EventQueue::pop(SimTime& time_out) {
    if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
    // priority_queue::top() is const; the move is safe because we pop
    // immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    time_out = entry.time;
    return std::move(entry.callback);
}

void EventQueue::clear() {
    heap_ = {};
    next_seq_ = 0;
}

}  // namespace ytcdn::sim
