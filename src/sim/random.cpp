#include "sim/random.hpp"

#include <algorithm>

namespace ytcdn::sim {

std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t hash_string(std::string_view s) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

Rng Rng::fork(std::string_view tag) const {
    return Rng{mix64(seed_ ^ hash_string(tag))};
}

Rng Rng::fork(std::uint64_t index) const {
    return Rng{mix64(seed_ ^ mix64(index ^ 0xA5A5A5A5A5A5A5A5ull))};
}

double Rng::uniform01() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
}

double Rng::uniform(double lo, double hi) {
    if (hi < lo) throw std::invalid_argument("uniform: hi < lo");
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
    return std::uniform_int_distribution<std::uint64_t>{0, n - 1}(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi < lo) throw std::invalid_argument("uniform_int: hi < lo");
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
}

double Rng::exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential: mean must be > 0");
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
}

double Rng::lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
}

double Rng::normal(double mean, double stddev) {
    return std::normal_distribution<double>{mean, stddev}(engine_);
}

bool Rng::bernoulli(double p) {
    return std::bernoulli_distribution{std::clamp(p, 0.0, 1.0)}(engine_);
}

}  // namespace ytcdn::sim
