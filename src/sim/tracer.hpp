#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace ytcdn::sim {

/// One structured event kind the simulation can emit. The enum values are
/// the on-disk type bytes of the YTR1 format — append only, never
/// renumber (DESIGN.md §11 documents the schema).
enum class TraceEventType : std::uint8_t {
    SessionStart = 0,  // a=video id, b=ldns id, code=itag
    SessionEnd,        // code=SessionOutcome (0 = served)
    DnsQuery,          // cache miss: the stub asked the local resolver; a=ldns
    DnsCacheHit,       // stub cache answered; a=dc
    DnsAnswer,         // a=dc, code=1 when the answer was a stale replay
    DnsServFail,       // a=DNS retries left
    DcSelected,        // a=dc, code=rank among RTT-ordered candidates, b=#candidates
    Redirect,          // code=1 miss / 2 overload, a=from dc, b=to dc, x=delay s
    ConnectFail,       // code=1 timeout / 2 reset, a=server
    Retry,             // code=retry count, a=failover server, x=backoff delay s
    Failover,          // resume-path failover: a=server, x=delay s
    Pause,             // a=server, x=viewer gap s
    Resume,            // a=server, x=remaining watch fraction
    Fault,             // code=FaultAction, a=schedule index, b=interned target
    Guard,             // resource-guard report from the study supervisor:
                       // code=1 RSS ceiling / 2 stage deadline, a=observed
                       // (KiB or ms), b=interned stage name, x=budget
};

inline constexpr std::size_t kNumTraceEventTypes = 15;

/// Kebab-case name ("session-start", "fault") used by JSONL output and the
/// --trace-filter flag; "?" for out-of-range values.
[[nodiscard]] std::string_view to_string(TraceEventType t) noexcept;
/// Inverse of to_string; unknown names yield ErrorCode::InvalidArgument
/// (the flag's usage error, exit 2).
[[nodiscard]] util::Result<TraceEventType> trace_event_type_from(
    std::string_view name);

/// One emitted event. 56 bytes on disk, fixed layout (see write_trace_bytes).
struct TraceEvent {
    double time = 0.0;         // simulator time, seconds
    std::uint64_t seq = 0;     // global emission index (pre-filter)
    std::uint64_t session = 0; // per-player session id; 0 = not session-bound
    std::int64_t a = 0;        // type-specific (see TraceEventType)
    std::int64_t b = 0;
    double x = 0.0;
    TraceEventType type = TraceEventType::SessionStart;
    std::uint8_t vp = 0xFF;    // vantage-point index; 0xFF = global (faults)
    std::uint16_t code = 0;

    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Which event types a Tracer records. Filtering happens at emit time, so
/// a narrow filter keeps memory proportional to what was asked for; `seq`
/// still counts every emission, filtered or not, so two runs differing
/// only in filter agree on the seq of every surviving event.
struct TraceFilter {
    std::array<bool, kNumTraceEventTypes> enabled{};

    [[nodiscard]] static TraceFilter all() noexcept;
    /// Parses a comma-separated type-name list ("session-start,redirect").
    [[nodiscard]] static util::Result<TraceFilter> parse(std::string_view csv);
    [[nodiscard]] bool accepts(TraceEventType t) const noexcept {
        const auto i = static_cast<std::size_t>(t);
        return i < enabled.size() && enabled[i];
    }
};

/// In-memory container matching the on-disk format: an interned string
/// table (fault targets) plus the event list in emission order.
struct TraceLog {
    std::vector<std::string> strings;
    std::vector<TraceEvent> events;

    friend bool operator==(const TraceLog&, const TraceLog&) = default;
};

/// Buffers structured events during a run and writes them at the end.
/// Emission appends to a vector — no I/O, no clock reads and no RNG draws
/// on the hot path, which is what keeps a traced run byte-identical to an
/// untraced one (Determinism.MetricsAndTrace pins this).
///
/// All emission happens on the single simulator thread (the parallel
/// derivation stages never trace), so the Tracer is deliberately
/// unsynchronized; events arrive in deterministic sim order.
class Tracer {
public:
    explicit Tracer(TraceFilter filter = TraceFilter::all()) : filter_(filter) {}

    void emit(double time, TraceEventType type, std::uint8_t vp,
              std::uint64_t session, std::uint16_t code = 0, std::int64_t a = 0,
              std::int64_t b = 0, double x = 0.0);

    /// Interns a string (e.g. a fault target) and returns its table index.
    [[nodiscard]] std::uint32_t intern(std::string_view s);

    [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
        return events_;
    }
    /// Total emissions including filtered-out ones.
    [[nodiscard]] std::uint64_t emitted() const noexcept { return next_seq_; }
    [[nodiscard]] TraceLog log() const { return TraceLog{strings_, events_}; }
    /// Events sorted by (time, seq) — a stable no-op for a well-formed
    /// trace, pinned by the golden tests that byte-compare sorted output.
    [[nodiscard]] TraceLog sorted_log() const;

    void clear();

private:
    TraceFilter filter_;
    std::vector<TraceEvent> events_;
    std::vector<std::string> strings_;
    std::uint64_t next_seq_ = 0;
};

/// Null-safe handle the instrumented layers hold: a Tracer pointer plus
/// this component's vantage-point index. A default-constructed stream is
/// disabled and every call is a no-op branch — the untraced hot path costs
/// one pointer test.
class TraceStream {
public:
    TraceStream() = default;
    TraceStream(Tracer* tracer, std::uint8_t vp) : tracer_(tracer), vp_(vp) {}

    [[nodiscard]] bool enabled() const noexcept { return tracer_ != nullptr; }

    void emit(double time, TraceEventType type, std::uint64_t session,
              std::uint16_t code = 0, std::int64_t a = 0, std::int64_t b = 0,
              double x = 0.0) const {
        if (tracer_ != nullptr) {
            tracer_->emit(time, type, vp_, session, code, a, b, x);
        }
    }

    /// Interns via the tracer; 0 when disabled.
    [[nodiscard]] std::uint32_t intern(std::string_view s) const {
        return tracer_ != nullptr ? tracer_->intern(s) : 0;
    }

private:
    Tracer* tracer_ = nullptr;
    std::uint8_t vp_ = 0xFF;
};

// --- YTR1 on-disk format ---------------------------------------------------
//
// Little-endian, CRC-framed like the YFL2 flow log (DESIGN.md §11):
//
//   header   "YTR1" | u32 version=1 | u64 event count | u32 crc(prev 16 B)
//   strings  u32 count | u32 payload bytes | u32 crc(payload) | payload
//            where payload = count x (u32 length | bytes)
//   blocks   ceil(count / 1024) x (u32 n | u32 crc(payload) | n x 56 B)
//   trailer  "YTRE" | u64 event count | u32 crc(prev 12 B)
//
// Event record (56 B): f64 time | u64 seq | u64 session | i64 a | i64 b |
// f64 x | u8 type | u8 vp | u16 code | u32 zero-pad.

/// Serializes to YTR1 bytes (pure; the golden tests pin the output).
[[nodiscard]] std::string write_trace_bytes(const TraceLog& log);
/// Atomic tmp+fsync+rename write of write_trace_bytes.
[[nodiscard]] util::Result<void> write_trace_file(
    const std::filesystem::path& path, const TraceLog& log);

/// Parses YTR1 bytes; corruption yields typed errors (BadMagic,
/// UnsupportedVersion, Truncated, ChecksumMismatch, CountMismatch,
/// BadField) with byte provenance — exit code 4 at the CLI boundary.
[[nodiscard]] util::Result<TraceLog> read_trace_bytes(std::string_view data);
[[nodiscard]] util::Result<TraceLog> read_trace_file(
    const std::filesystem::path& path);

/// Partial recovery of a torn YTR1 stream — a writer killed mid-append
/// leaves a valid prefix that a strict read rejects as Truncated. Salvage
/// keeps the header and string table strict (damage there is corruption,
/// not tearing) and parses event blocks until the tail runs out: a torn
/// final block or missing trailer ends the salvage with every fully
/// CRC-verified block kept. A CRC mismatch on a complete block is still a
/// hard error — bit rot must never be dressed up as a tear.
struct TraceSalvage {
    TraceLog log;
    std::uint64_t declared_events = 0;  // the header's promise
    bool complete = false;  // trailer validated: nothing was actually lost
    std::string note;       // one line locating the tear, when !complete
};

[[nodiscard]] util::Result<TraceSalvage> salvage_trace_bytes(
    std::string_view data);
[[nodiscard]] util::Result<TraceSalvage> salvage_trace_file(
    const std::filesystem::path& path);

/// One JSON object per event, in order; Fault events carry their resolved
/// "target" string. Deterministic formatting (%.17g doubles).
[[nodiscard]] std::string render_trace_jsonl(const TraceLog& log);
[[nodiscard]] util::Result<void> write_trace_jsonl(
    const std::filesystem::path& path, const TraceLog& log);

// --- timelines & invariants (trace_dump, tests) ----------------------------

/// All events of one session, in emission order.
struct SessionTimeline {
    std::uint8_t vp = 0;
    std::uint64_t session = 0;
    std::vector<TraceEvent> events;
};

/// Per-session timelines grouped from a log, ordered by (vp, session id).
/// Events with session == 0 (faults) are left out.
[[nodiscard]] std::vector<SessionTimeline> session_timelines(const TraceLog& log);

/// Trace invariant check:
///   - sim time is non-decreasing in seq order;
///   - every session has exactly one session-start and exactly one
///     session-end, with the start first;
///   - no session carries more than `max_retries` retry events, and retry
///     counters stay within the bound.
struct TraceValidation {
    std::uint64_t sessions = 0;
    std::uint64_t events = 0;
    std::uint64_t max_retries_seen = 0;
    std::vector<std::string> problems;  // empty = all invariants hold

    [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
};
[[nodiscard]] TraceValidation validate_trace(const TraceLog& log,
                                             int max_retries);

}  // namespace ytcdn::sim
