#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string_view>

namespace ytcdn::sim {

/// The project-wide random number generator.
///
/// A thin wrapper over std::mt19937_64 adding the distributions the
/// reproduction needs and deterministic substream forking: every subsystem
/// derives its own independent stream from one master seed, so a run is
/// reproducible bit-for-bit regardless of subsystem evaluation order.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9Bull) : engine_(seed), seed_(seed) {}

    /// Derives an independent generator for a named subsystem. The same
    /// (seed, tag) pair always yields the same stream.
    [[nodiscard]] Rng fork(std::string_view tag) const;

    /// Derives an independent generator for an indexed entity (client id,
    /// video rank, ...).
    [[nodiscard]] Rng fork(std::uint64_t index) const;

    [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Uniform in [0, 1).
    [[nodiscard]] double uniform01();
    /// Uniform in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);
    /// Uniform integer in [0, n). n must be > 0.
    [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);
    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Exponential with the given mean (> 0).
    [[nodiscard]] double exponential(double mean);
    /// Lognormal given the mean and sigma of the underlying normal.
    [[nodiscard]] double lognormal(double mu, double sigma);
    /// Normal with mean/stddev.
    [[nodiscard]] double normal(double mean, double stddev);
    /// True with probability p (clamped to [0, 1]).
    [[nodiscard]] bool bernoulli(double p);

    /// Uniformly picks an element of a non-empty span.
    template <typename T>
    [[nodiscard]] const T& pick(std::span<const T> items) {
        if (items.empty()) throw std::invalid_argument("pick from empty span");
        return items[uniform_index(items.size())];
    }

private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

/// SplitMix64 finalizer, exposed for deterministic hash-derived values
/// (per-path inflation, server assignment, ...).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a hash of a string, for stable tag-based seeding.
[[nodiscard]] std::uint64_t hash_string(std::string_view s) noexcept;

}  // namespace ytcdn::sim
