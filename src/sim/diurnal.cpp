#include "sim/diurnal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::sim {

namespace {

constexpr int kWeekendDayA = 1;  // trace day indices treated as the weekend
constexpr int kWeekendDayB = 2;

}  // namespace

DiurnalProfile::DiurnalProfile(const std::array<double, 24>& hourly,
                               double weekend_factor)
    : hourly_(hourly), weekend_factor_(weekend_factor) {
    double sum = 0.0;
    for (const double v : hourly_) {
        if (v < 0.0 || !std::isfinite(v)) {
            throw std::invalid_argument("DiurnalProfile: multipliers must be >= 0");
        }
        sum += v;
    }
    if (sum <= 0.0) throw std::invalid_argument("DiurnalProfile: all-zero profile");
    if (weekend_factor_ < 0.0) {
        throw std::invalid_argument("DiurnalProfile: negative weekend factor");
    }
    // Normalize so that the mean weekday multiplier is 1.
    const double mean = sum / 24.0;
    for (double& v : hourly_) v /= mean;
}

DiurnalProfile DiurnalProfile::residential() {
    // Trough ~04:00-06:00, ramp through the day, peak 20:00-23:00.
    return DiurnalProfile{{0.35, 0.22, 0.15, 0.10, 0.08, 0.09, 0.14, 0.25,
                           0.45, 0.62, 0.75, 0.85, 0.95, 1.00, 1.05, 1.10,
                           1.20, 1.35, 1.55, 1.80, 2.05, 2.15, 1.80, 1.05},
                          1.15};
}

DiurnalProfile DiurnalProfile::campus() {
    // Classes/labs drive a broad daytime plateau; campus empties at night
    // and on weekends.
    return DiurnalProfile{{0.30, 0.18, 0.12, 0.08, 0.06, 0.07, 0.10, 0.25,
                           0.70, 1.10, 1.40, 1.55, 1.60, 1.65, 1.70, 1.70,
                           1.60, 1.45, 1.30, 1.20, 1.15, 1.05, 0.80, 0.50},
                          0.45};
}

double DiurnalProfile::multiplier_at(SimTime t) const noexcept {
    if (t < 0.0) t = 0.0;
    const auto day = day_index(t);
    const double hod = hour_of_day(t);
    const int h0 = static_cast<int>(hod) % 24;
    const int h1 = (h0 + 1) % 24;
    const double frac = hod - std::floor(hod);
    // Linear interpolation between hourly knots avoids stair-step artifacts
    // in per-minute arrival rates.
    double m = hourly_[static_cast<std::size_t>(h0)] * (1.0 - frac) +
               hourly_[static_cast<std::size_t>(h1)] * frac;
    const int dow = static_cast<int>(day % 7);
    if (dow == kWeekendDayA || dow == kWeekendDayB) m *= weekend_factor_;
    return m;
}

double DiurnalProfile::peak_to_mean() const noexcept {
    return *std::max_element(hourly_.begin(), hourly_.end());
}

double DiurnalProfile::weekly_mean() const noexcept {
    return (5.0 + 2.0 * weekend_factor_) / 7.0;
}

}  // namespace ytcdn::sim
