#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace ytcdn::sim {

namespace {

constexpr struct {
    FaultAction action;
    std::string_view name;
} kActionNames[] = {
    {FaultAction::DcDown, "dc-down"},
    {FaultAction::DcDrain, "dc-drain"},
    {FaultAction::DcUp, "dc-up"},
    {FaultAction::ServerDown, "server-down"},
    {FaultAction::ServerDrain, "server-drain"},
    {FaultAction::ServerUp, "server-up"},
    {FaultAction::ResolverDown, "resolver-down"},
    {FaultAction::ResolverUp, "resolver-up"},
    {FaultAction::ResolverStale, "resolver-stale"},
    {FaultAction::ResolverFresh, "resolver-fresh"},
};

constexpr std::size_t kNumActions = std::size(kActionNames);

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

}  // namespace

std::string_view to_string(FaultAction a) noexcept {
    for (const auto& [action, name] : kActionNames) {
        if (action == a) return name;
    }
    return "?";
}

util::Result<FaultAction> fault_action_from_result(std::string_view name) {
    for (const auto& [action, action_name] : kActionNames) {
        if (action_name == name) return action;
    }
    return Error(ErrorCode::Parse,
                 "unknown fault action '" + std::string(name) + "'");
}

FaultAction fault_action_from(std::string_view name) {
    return fault_action_from_result(name).value_or_throw();
}

util::Result<SimTime> parse_duration_result(std::string_view text) {
    text = trim(text);
    if (text.empty()) return Error(ErrorCode::Parse, "empty duration");
    SimTime total = 0.0;
    std::size_t i = 0;
    while (i < text.size()) {
        std::size_t j = i;
        while (j < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[j])) || text[j] == '.')) {
            ++j;
        }
        if (j == i) {
            return Error(ErrorCode::Parse,
                         "malformed duration '" + std::string(text) + "'");
        }
        // from_chars instead of stod: no locale, no exceptions, and a huge
        // digit string reports out_of_range instead of throwing. The full
        // token must be consumed, so "1.2.3" is rejected rather than
        // silently read as 1.2.
        double value = 0.0;
        const char* const first = text.data() + i;
        const char* const last = text.data() + j;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc::result_out_of_range) {
            return Error(ErrorCode::Parse,
                         "duration out of range '" + std::string(text) + "'");
        }
        if (ec != std::errc() || ptr != last) {
            return Error(ErrorCode::Parse,
                         "malformed duration '" + std::string(text) + "'");
        }
        double unit = 1.0;
        if (j < text.size()) {
            switch (text[j]) {
                case 's': unit = kSecond; break;
                case 'm': unit = kMinute; break;
                case 'h': unit = kHour; break;
                case 'd': unit = kDay; break;
                default:
                    return Error(ErrorCode::Parse, "unknown duration unit in '" +
                                                       std::string(text) + "'");
            }
            ++j;
        }
        total += value * unit;
        i = j;
    }
    return total;
}

SimTime parse_duration(std::string_view text) {
    return parse_duration_result(text).value_or_throw();
}

FaultSchedule& FaultSchedule::add(SimTime at, FaultAction action, std::string target) {
    events.push_back(FaultEvent{at, action, std::move(target)});
    return *this;
}

std::vector<FaultEvent> FaultSchedule::sorted() const {
    std::vector<FaultEvent> out = events;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return out;
}

namespace {

/// Parses one non-empty schedule line; errors name the offending token but
/// leave line-number provenance to the caller, which knows the line.
util::Result<FaultEvent> parse_schedule_line(std::string_view line) {
    if (line.front() != '@') {
        const std::size_t sp = std::min(line.find_first_of(" \t"), line.size());
        return Error(ErrorCode::Parse, "expected '@<time>', got '" +
                                           std::string(line.substr(0, sp)) + "'");
    }
    line.remove_prefix(1);
    const std::size_t sp1 = line.find_first_of(" \t");
    if (sp1 == std::string_view::npos) {
        return Error(ErrorCode::Parse,
                     "missing action after '@" + std::string(line) + "'");
    }
    auto at = parse_duration_result(line.substr(0, sp1));
    if (!at) return at.error();
    std::string_view rest = trim(line.substr(sp1));
    const std::size_t sp2 = rest.find_first_of(" \t");
    if (sp2 == std::string_view::npos) {
        return Error(ErrorCode::Parse,
                     "missing target after action '" + std::string(rest) + "'");
    }
    auto action = fault_action_from_result(rest.substr(0, sp2));
    if (!action) return action.error();
    const std::string_view target = trim(rest.substr(sp2));
    return FaultEvent{at.value(), action.value(), std::string(target)};
}

}  // namespace

util::Result<FaultSchedule> FaultSchedule::parse_result(std::string_view text) {
    FaultSchedule schedule;
    std::uint64_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = std::min(text.find('\n', pos), text.size());
        std::string_view line = trim(text.substr(pos, eol - pos));
        pos = eol + 1;
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string_view::npos) {
            line = trim(line.substr(0, hash));
        }
        if (line.empty()) {
            if (pos > text.size()) break;
            continue;
        }
        auto event = parse_schedule_line(line);
        if (!event) {
            return error_at_line(
                event.error().code(),
                "fault schedule: " + std::string(event.error().what()), line_no);
        }
        schedule.events.push_back(std::move(event).value());
        if (pos > text.size()) break;
    }
    return schedule;
}

FaultSchedule FaultSchedule::parse(std::string_view text) {
    return parse_result(text).value_or_throw();
}

std::string FaultSchedule::to_text() const {
    std::ostringstream os;
    // Fixed notation: parse_duration reads digits and '.', never 1e+06.
    os << std::fixed << std::setprecision(6);
    for (const auto& e : events) {
        std::ostringstream at;
        at << std::fixed << std::setprecision(6) << e.at;
        std::string t = at.str();
        t.erase(t.find_last_not_of('0') + 1);
        if (!t.empty() && t.back() == '.') t.pop_back();
        os << '@' << t << ' ' << to_string(e.action) << ' ' << e.target << '\n';
    }
    return os.str();
}

FaultSchedule FaultSchedule::dc_outage(std::string city, SimTime start,
                                       SimTime duration) {
    FaultSchedule schedule;
    schedule.add(start, FaultAction::DcDown, city);
    schedule.add(start + duration, FaultAction::DcUp, std::move(city));
    return schedule;
}

FaultInjector::FaultInjector(Simulator& simulator, FaultSchedule schedule)
    : simulator_(&simulator),
      schedule_(std::move(schedule)),
      handlers_(kNumActions) {}

void FaultInjector::on(FaultAction action, Handler handler) {
    handlers_[static_cast<std::size_t>(action)] = std::move(handler);
}

void FaultInjector::arm() {
    if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
    armed_ = true;
    std::int64_t index = 0;
    for (const FaultEvent& event : schedule_.sorted()) {
        const auto& handler = handlers_[static_cast<std::size_t>(event.action)];
        if (!handler) {
            throw std::logic_error("FaultInjector::arm: no handler for action '" +
                                   std::string(to_string(event.action)) + "'");
        }
        // Target names are interned at arm time so firing order (already
        // deterministic) never affects string-table layout.
        const std::int64_t target = trace_.enabled()
                                        ? static_cast<std::int64_t>(trace_.intern(event.target))
                                        : 0;
        simulator_->schedule_at(event.at, [this, event, index, target] {
            ++injected_;
            trace_.emit(simulator_->now(), TraceEventType::Fault, 0,
                        static_cast<std::uint16_t>(event.action), index, target);
            handlers_[static_cast<std::size_t>(event.action)](event);
        });
        ++index;
    }
}

}  // namespace ytcdn::sim
