#include "sim/fault_injector.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ytcdn::sim {

namespace {

constexpr struct {
    FaultAction action;
    std::string_view name;
} kActionNames[] = {
    {FaultAction::DcDown, "dc-down"},
    {FaultAction::DcDrain, "dc-drain"},
    {FaultAction::DcUp, "dc-up"},
    {FaultAction::ServerDown, "server-down"},
    {FaultAction::ServerDrain, "server-drain"},
    {FaultAction::ServerUp, "server-up"},
    {FaultAction::ResolverDown, "resolver-down"},
    {FaultAction::ResolverUp, "resolver-up"},
    {FaultAction::ResolverStale, "resolver-stale"},
    {FaultAction::ResolverFresh, "resolver-fresh"},
};

constexpr std::size_t kNumActions = std::size(kActionNames);

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
        s.remove_prefix(1);
    }
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
        s.remove_suffix(1);
    }
    return s;
}

}  // namespace

std::string_view to_string(FaultAction a) noexcept {
    for (const auto& [action, name] : kActionNames) {
        if (action == a) return name;
    }
    return "?";
}

FaultAction fault_action_from(std::string_view name) {
    for (const auto& [action, action_name] : kActionNames) {
        if (action_name == name) return action;
    }
    throw std::invalid_argument("unknown fault action '" + std::string(name) + "'");
}

SimTime parse_duration(std::string_view text) {
    text = trim(text);
    if (text.empty()) throw std::invalid_argument("empty duration");
    SimTime total = 0.0;
    std::size_t i = 0;
    while (i < text.size()) {
        std::size_t j = i;
        while (j < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[j])) || text[j] == '.')) {
            ++j;
        }
        if (j == i) {
            throw std::invalid_argument("malformed duration '" + std::string(text) + "'");
        }
        const double value = std::stod(std::string(text.substr(i, j - i)));
        double unit = 1.0;
        if (j < text.size()) {
            switch (text[j]) {
                case 's': unit = kSecond; break;
                case 'm': unit = kMinute; break;
                case 'h': unit = kHour; break;
                case 'd': unit = kDay; break;
                default:
                    throw std::invalid_argument("unknown duration unit in '" +
                                                std::string(text) + "'");
            }
            ++j;
        }
        total += value * unit;
        i = j;
    }
    return total;
}

FaultSchedule& FaultSchedule::add(SimTime at, FaultAction action, std::string target) {
    events.push_back(FaultEvent{at, action, std::move(target)});
    return *this;
}

std::vector<FaultEvent> FaultSchedule::sorted() const {
    std::vector<FaultEvent> out = events;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return out;
}

FaultSchedule FaultSchedule::parse(std::string_view text) {
    FaultSchedule schedule;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = std::min(text.find('\n', pos), text.size());
        std::string_view line = trim(text.substr(pos, eol - pos));
        pos = eol + 1;
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string_view::npos) {
            line = trim(line.substr(0, hash));
        }
        if (line.empty()) {
            if (pos > text.size()) break;
            continue;
        }
        try {
            if (line.front() != '@') throw std::invalid_argument("expected '@<time>'");
            line.remove_prefix(1);
            const std::size_t sp1 = line.find_first_of(" \t");
            if (sp1 == std::string_view::npos) throw std::invalid_argument("missing action");
            const SimTime at = parse_duration(line.substr(0, sp1));
            std::string_view rest = trim(line.substr(sp1));
            const std::size_t sp2 = rest.find_first_of(" \t");
            if (sp2 == std::string_view::npos) throw std::invalid_argument("missing target");
            const FaultAction action = fault_action_from(rest.substr(0, sp2));
            const std::string_view target = trim(rest.substr(sp2));
            schedule.add(at, action, std::string(target));
        } catch (const std::exception& e) {
            throw std::invalid_argument("fault schedule line " + std::to_string(line_no) +
                                        ": " + e.what());
        }
        if (pos > text.size()) break;
    }
    return schedule;
}

std::string FaultSchedule::to_text() const {
    std::ostringstream os;
    // Fixed notation: parse_duration reads digits and '.', never 1e+06.
    os << std::fixed << std::setprecision(6);
    for (const auto& e : events) {
        std::ostringstream at;
        at << std::fixed << std::setprecision(6) << e.at;
        std::string t = at.str();
        t.erase(t.find_last_not_of('0') + 1);
        if (!t.empty() && t.back() == '.') t.pop_back();
        os << '@' << t << ' ' << to_string(e.action) << ' ' << e.target << '\n';
    }
    return os.str();
}

FaultSchedule FaultSchedule::dc_outage(std::string city, SimTime start,
                                       SimTime duration) {
    FaultSchedule schedule;
    schedule.add(start, FaultAction::DcDown, city);
    schedule.add(start + duration, FaultAction::DcUp, std::move(city));
    return schedule;
}

FaultInjector::FaultInjector(Simulator& simulator, FaultSchedule schedule)
    : simulator_(&simulator),
      schedule_(std::move(schedule)),
      handlers_(kNumActions) {}

void FaultInjector::on(FaultAction action, Handler handler) {
    handlers_[static_cast<std::size_t>(action)] = std::move(handler);
}

void FaultInjector::arm() {
    if (armed_) throw std::logic_error("FaultInjector::arm: already armed");
    armed_ = true;
    for (const FaultEvent& event : schedule_.sorted()) {
        const auto& handler = handlers_[static_cast<std::size_t>(event.action)];
        if (!handler) {
            throw std::logic_error("FaultInjector::arm: no handler for action '" +
                                   std::string(to_string(event.action)) + "'");
        }
        simulator_->schedule_at(event.at, [this, event] {
            ++injected_;
            handlers_[static_cast<std::size_t>(event.action)](event);
        });
    }
}

}  // namespace ytcdn::sim
