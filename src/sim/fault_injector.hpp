#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/tracer.hpp"
#include "util/error.hpp"

namespace ytcdn::sim {

/// What a scheduled fault does to its target. Targets are named entities
/// owned by higher layers (a data-center city, a content-server hostname, a
/// DNS resolver name); the injector itself knows nothing about them — the
/// study layer binds each action to a handler that mutates the CDN or DNS
/// health machines.
enum class FaultAction {
    DcDown,         // data center goes dark: new connections time out
    DcDrain,        // finishes active flows, refuses new ones
    DcUp,           // back to healthy
    ServerDown,     // one content server goes dark
    ServerDrain,    // one content server drains
    ServerUp,       // one content server recovers
    ResolverDown,   // local resolver answers SERVFAIL
    ResolverUp,     // resolver recovers
    ResolverStale,  // resolver keeps serving its last answer past TTL
    ResolverFresh,  // resolver resumes consulting the authoritative side
};

[[nodiscard]] std::string_view to_string(FaultAction a) noexcept;
/// Inverse of to_string; unknown names yield ErrorCode::Parse naming the
/// offending token. fault_action_from throws that same ytcdn::Error.
[[nodiscard]] util::Result<FaultAction> fault_action_from_result(
    std::string_view name);
[[nodiscard]] FaultAction fault_action_from(std::string_view name);

/// One scheduled state change.
struct FaultEvent {
    SimTime at = 0.0;
    FaultAction action = FaultAction::DcDown;
    std::string target;

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A deterministic fault schedule: the complete script of component
/// failures and recoveries for one run. An empty schedule is the
/// healthy-CDN baseline — every seed-reproduction experiment runs with one,
/// and the chaos benches opt in explicitly.
struct FaultSchedule {
    std::vector<FaultEvent> events;

    [[nodiscard]] bool empty() const noexcept { return events.empty(); }

    /// Appends an event (fluent, for programmatic construction).
    FaultSchedule& add(SimTime at, FaultAction action, std::string target);

    /// Events sorted by time (stable among equal timestamps).
    [[nodiscard]] std::vector<FaultEvent> sorted() const;

    /// Parses the text format, one event per line:
    ///   @<time> <action> <target>
    /// where <time> is seconds or a compound duration ("2d12h", "90m",
    /// "3600"), <action> is a to_string(FaultAction) name and <target> the
    /// rest of the line. '#' starts a comment. Malformed input yields an
    /// ErrorCode::Parse whose message names the offending token and whose
    /// provenance carries the 1-based line number; parse() throws that same
    /// ytcdn::Error.
    [[nodiscard]] static util::Result<FaultSchedule> parse_result(
        std::string_view text);
    [[nodiscard]] static FaultSchedule parse(std::string_view text);

    /// Serializes in the format parse() accepts (times in seconds).
    [[nodiscard]] std::string to_text() const;

    /// Convenience: a single outage window [start, start + duration) for a
    /// data center.
    [[nodiscard]] static FaultSchedule dc_outage(std::string city, SimTime start,
                                                 SimTime duration);
};

/// Parses "2d12h30m5s" / "90m" / "3600" into seconds. Strict: every numeric
/// token must parse in full (no "1.2.3" prefix-parsing) and stay finite.
/// Malformed input yields ErrorCode::Parse naming the offending text;
/// parse_duration throws that same ytcdn::Error.
[[nodiscard]] util::Result<SimTime> parse_duration_result(std::string_view text);
[[nodiscard]] SimTime parse_duration(std::string_view text);

/// Plays a FaultSchedule onto a Simulator. The study layer registers one
/// handler per action (resolving the target name to the entity it owns);
/// arm() then schedules every event at its timestamp. Injection is pure
/// function of (schedule, handlers): no randomness, so two runs with the
/// same seed and the same schedule are bit-identical.
class FaultInjector {
public:
    using Handler = std::function<void(const FaultEvent&)>;

    FaultInjector(Simulator& simulator, FaultSchedule schedule);

    /// Registers the handler for one action; replaces any previous one.
    void on(FaultAction action, Handler handler);

    /// Routes a Fault trace event (code = action, b = interned target name)
    /// to `trace` each time a scheduled fault fires. Call before arm().
    void set_trace(TraceStream trace) noexcept { trace_ = trace; }

    /// Schedules every event of the schedule. Call once, before running the
    /// simulator; throws std::logic_error if an event's action has no
    /// handler (a mis-wired experiment must fail loudly, not silently skip
    /// faults).
    void arm();

    [[nodiscard]] const FaultSchedule& schedule() const noexcept { return schedule_; }
    /// Events whose handler has run so far.
    [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

private:
    Simulator* simulator_;
    FaultSchedule schedule_;
    std::vector<Handler> handlers_;  // indexed by FaultAction
    TraceStream trace_;
    std::uint64_t injected_ = 0;
    bool armed_ = false;
};

}  // namespace ytcdn::sim
