#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace ytcdn::sim {

/// Simulation time, in seconds since trace start (local midnight at each
/// vantage point per the paper's collection setup). Double precision gives
/// sub-microsecond resolution over the one-week horizon.
using SimTime = double;

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 24.0 * kHour;
inline constexpr SimTime kWeek = 7.0 * kDay;

/// Index of the one-hour slot containing `t` (the paper's time-series and
/// Fig. 9 bucketing granularity).
[[nodiscard]] constexpr std::int64_t hour_index(SimTime t) noexcept {
    return static_cast<std::int64_t>(t / kHour);
}

/// Hour-of-day in [0, 24), given an offset of the local clock vs trace time.
[[nodiscard]] inline double hour_of_day(SimTime t) noexcept {
    const double h = std::fmod(t, kDay) / kHour;
    return h < 0.0 ? h + 24.0 : h;
}

/// Day index since trace start (day 0 = first day).
[[nodiscard]] constexpr std::int64_t day_index(SimTime t) noexcept {
    return static_cast<std::int64_t>(t / kDay);
}

/// Formats as "DdHH:MM:SS", e.g. 93784.0 -> "1d02:03:04".
[[nodiscard]] std::string format_time(SimTime t);

}  // namespace ytcdn::sim
