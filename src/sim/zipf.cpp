#include "sim/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::sim {

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : s_(s) {
    if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
    if (s < 0.0) throw std::invalid_argument("ZipfDistribution: s must be >= 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto& v : cdf_) v /= acc;
    cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t rank) const {
    if (rank >= cdf_.size()) throw std::out_of_range("ZipfDistribution::pmf rank");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ytcdn::sim
