#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ytcdn::sim {

/// A minimal discrete-event simulator: a clock plus an event queue.
///
/// Callbacks scheduled with `schedule_at`/`schedule_in` run in timestamp
/// order; each may schedule further events. `run_until` advances the clock
/// to the given horizon even if the queue drains earlier, so back-to-back
/// phases see a consistent notion of "now".
///
/// Scheduling is a template so callables land directly in the event queue's
/// slab blocks — no `std::function` wrapper, no per-event heap allocation.
class Simulator {
public:
    Simulator() = default;

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
    [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.size(); }

    /// Schedules a callback at an absolute time, which must be >= now().
    template <typename F>
    void schedule_at(SimTime time, F&& callback) {
        if (!(time >= now_)) {
            throw std::invalid_argument("Simulator::schedule_at: time is in the past");
        }
        queue_.push(time, std::forward<F>(callback));
    }

    /// Schedules a callback `delay` seconds from now (delay >= 0).
    template <typename F>
    void schedule_in(SimTime delay, F&& callback) {
        if (!(delay >= 0.0)) {
            throw std::invalid_argument("Simulator::schedule_in: negative delay");
        }
        queue_.push(now_ + delay, std::forward<F>(callback));
    }

    /// Runs events with timestamp <= horizon; leaves now() == horizon.
    void run_until(SimTime horizon);

    /// Runs until the queue is empty.
    void run() { run_until(std::numeric_limits<SimTime>::infinity()); }

    /// Timestamp of the earliest pending event, or +infinity when the queue
    /// is empty. This is what an external scheduler (sim::EventEngine)
    /// compares across shards to pick the globally next event.
    [[nodiscard]] SimTime next_event_time() const {
        return queue_.empty() ? std::numeric_limits<SimTime>::infinity()
                              : queue_.next_time();
    }

    /// Pops and runs exactly the earliest event, advancing now() to its
    /// timestamp. Returns false (and does nothing) on an empty queue.
    /// run_until(h) is equivalent to run_one() while next_event_time() <= h
    /// followed by advance_to(h) — the engine's merge loop relies on that.
    bool run_one();

    /// Advances the clock to `t` without running anything (never moves it
    /// backwards; non-finite `t` is ignored). Mirrors run_until's
    /// leaves-now()==horizon contract for externally driven simulators.
    void advance_to(SimTime t) noexcept;

private:
    EventQueue queue_;
    SimTime now_ = 0.0;
    std::uint64_t processed_ = 0;
};

}  // namespace ytcdn::sim
