#pragma once

#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace ytcdn::sim {

/// A minimal discrete-event simulator: a clock plus an event queue.
///
/// Callbacks scheduled with `schedule_at`/`schedule_in` run in timestamp
/// order; each may schedule further events. `run_until` advances the clock
/// to the given horizon even if the queue drains earlier, so back-to-back
/// phases see a consistent notion of "now".
class Simulator {
public:
    Simulator() = default;

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
    [[nodiscard]] std::size_t events_pending() const noexcept { return queue_.size(); }

    /// Schedules a callback at an absolute time, which must be >= now().
    void schedule_at(SimTime time, EventQueue::Callback callback);

    /// Schedules a callback `delay` seconds from now (delay >= 0).
    void schedule_in(SimTime delay, EventQueue::Callback callback);

    /// Runs events with timestamp <= horizon; leaves now() == horizon.
    void run_until(SimTime horizon);

    /// Runs until the queue is empty.
    void run() { run_until(std::numeric_limits<SimTime>::infinity()); }

private:
    EventQueue queue_;
    SimTime now_ = 0.0;
    std::uint64_t processed_ = 0;
};

}  // namespace ytcdn::sim
