#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace ytcdn::sim {

/// Zipf(-like) popularity over ranks 0..n-1: P(rank k) proportional to
/// 1/(k+1)^s. Video popularity in YouTube-scale catalogs is well modelled by
/// Zipf with exponent near 1 (Cha et al., IMC'07, the paper's ref [5]).
///
/// Sampling is O(log n) via binary search over the precomputed CDF; memory is
/// one double per rank.
class ZipfDistribution {
public:
    /// `n` ranks, exponent `s` >= 0 (s = 0 degenerates to uniform).
    ZipfDistribution(std::size_t n, double s);

    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
    [[nodiscard]] double exponent() const noexcept { return s_; }

    /// Samples a rank in [0, n).
    [[nodiscard]] std::size_t sample(Rng& rng) const;

    /// Probability mass of a rank.
    [[nodiscard]] double pmf(std::size_t rank) const;

private:
    double s_;
    std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1.
};

}  // namespace ytcdn::sim
