#include "sim/time.hpp"

#include <cstdio>

namespace ytcdn::sim {

std::string format_time(SimTime t) {
    const bool negative = t < 0.0;
    double s = negative ? -t : t;
    const auto days = static_cast<long>(s / kDay);
    s -= static_cast<double>(days) * kDay;
    const auto hours = static_cast<int>(s / kHour);
    s -= hours * kHour;
    const auto minutes = static_cast<int>(s / kMinute);
    s -= minutes * kMinute;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%ldd%02d:%02d:%02d", negative ? "-" : "", days,
                  hours, minutes, static_cast<int>(s));
    return buf;
}

}  // namespace ytcdn::sim
