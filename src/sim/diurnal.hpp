#pragma once

#include <array>

#include "sim/time.hpp"

namespace ytcdn::sim {

/// A weekly activity profile: 24 hourly multipliers plus a weekend scale.
///
/// All datasets in the paper "exhibit a clear day/night pattern in the number
/// of requests" (Section VII-A); the EU2 load-balancing result (Fig. 11)
/// depends on the peak-to-trough ratio, so the profile is a first-class
/// modelling input.
class DiurnalProfile {
public:
    /// `hourly` are relative multipliers per local hour-of-day (any positive
    /// scale; they are normalized so the weekly mean multiplier is 1).
    /// `weekend_factor` scales Saturday/Sunday.
    DiurnalProfile(const std::array<double, 24>& hourly, double weekend_factor);

    /// Residential profile: evening peak (20:00-23:00), deep night trough,
    /// slightly higher weekend activity.
    [[nodiscard]] static DiurnalProfile residential();

    /// Campus profile: afternoon peak, near-empty campus on weekends.
    [[nodiscard]] static DiurnalProfile campus();

    /// Multiplier at local time `t` (t = 0 is local midnight on day 0;
    /// days 1 and 2 of the trace are the weekend — the paper's collection
    /// started Saturday Sept 4, 2010, so day 0 is also weekend-like; we
    /// follow the paper's Fig. 11 reading that time 0 is a Friday midnight,
    /// making days 1-2 the weekend).
    [[nodiscard]] double multiplier_at(SimTime t) const noexcept;

    /// Peak-to-mean ratio of the (weekday) profile.
    [[nodiscard]] double peak_to_mean() const noexcept;

    /// Mean multiplier across a full week (5 weekdays + 2 weekend days);
    /// divides out of arrival-rate targets so weekly totals match.
    [[nodiscard]] double weekly_mean() const noexcept;

private:
    std::array<double, 24> hourly_{};
    double weekend_factor_ = 1.0;
};

}  // namespace ytcdn::sim
