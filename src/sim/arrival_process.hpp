#pragma once

#include <functional>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ytcdn::sim {

/// A non-homogeneous Poisson arrival process sampled by thinning
/// (Lewis & Shedler). `rate_fn(t)` gives the instantaneous rate in events
/// per second; `max_rate` must upper-bound it over the horizon of use.
///
/// Video request arrivals at each vantage point are modelled as an NHPP
/// whose rate is base_rate x diurnal multiplier (x flash-crowd boosts).
class ArrivalProcess {
public:
    using RateFn = std::function<double(SimTime)>;

    ArrivalProcess(RateFn rate_fn, double max_rate, Rng rng);

    /// The first arrival strictly after `after`. Never returns infinity; if
    /// the rate function is zero forever this loops — callers bound usage
    /// with a horizon check.
    [[nodiscard]] SimTime next_after(SimTime after);

    [[nodiscard]] double max_rate() const noexcept { return max_rate_; }

private:
    RateFn rate_fn_;
    double max_rate_;
    Rng rng_;
};

}  // namespace ytcdn::sim
