#include "sim/arrival_process.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::sim {

ArrivalProcess::ArrivalProcess(RateFn rate_fn, double max_rate, Rng rng)
    : rate_fn_(std::move(rate_fn)), max_rate_(max_rate), rng_(rng) {
    if (!rate_fn_) throw std::invalid_argument("ArrivalProcess: null rate function");
    if (max_rate_ <= 0.0) throw std::invalid_argument("ArrivalProcess: max_rate <= 0");
}

SimTime ArrivalProcess::next_after(SimTime after) {
    SimTime t = after;
    // Thinning: propose homogeneous arrivals at max_rate, accept each with
    // probability rate(t)/max_rate.
    for (;;) {
        t += rng_.exponential(1.0 / max_rate_);
        const double rate = rate_fn_(t);
        if (rate > max_rate_ * (1.0 + 1e-9)) {
            throw std::logic_error("ArrivalProcess: rate function exceeds max_rate");
        }
        if (rate > 0.0 && rng_.uniform01() < rate / max_rate_) return t;
    }
}

}  // namespace ytcdn::sim
