#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ytcdn::sim {

/// A time-ordered queue of callbacks.
///
/// Ties are broken by insertion order (FIFO among equal timestamps), which
/// keeps runs deterministic — a requirement for reproducible traces.
class EventQueue {
public:
    using Callback = std::function<void()>;

    void push(SimTime time, Callback callback);

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

    /// Timestamp of the earliest event; queue must be non-empty.
    [[nodiscard]] SimTime next_time() const;

    /// Removes and returns the earliest event's callback, setting `time_out`.
    [[nodiscard]] Callback pop(SimTime& time_out);

    void clear();

private:
    struct Entry {
        SimTime time;
        std::uint64_t seq;
        Callback callback;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace ytcdn::sim
