#pragma once

#include <algorithm>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/arena.hpp"

namespace ytcdn::sim {

/// A time-ordered queue of callbacks.
///
/// Ties are broken by insertion order (FIFO among equal timestamps), which
/// keeps runs deterministic — a requirement for reproducible traces.
///
/// Callbacks are stored as type-erased tasks in fixed-size slab blocks
/// (`util::SlabPool`), not `std::function`: a simulated day churns through
/// millions of events, and per-event heap allocation dominated the simulate
/// profile. The heap itself holds 24-byte {time, seq, task*} entries; task
/// payloads cycle through a small resident set of recycled blocks.
class EventQueue {
    struct TaskBase;

public:
    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;
    ~EventQueue() { clear(); }

    /// Schedules any `void()` callable. The callable is moved into a slab
    /// block; captures up to ~2 KiB are supported (the common case fits the
    /// small-block class).
    template <typename F>
    void push(SimTime time, F&& fn) {
        heap_.push_back(Entry{time, next_seq_++, make_task(std::forward<F>(fn))});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

    /// Timestamp of the earliest event; queue must be non-empty.
    [[nodiscard]] SimTime next_time() const;

    /// Move-only handle to a popped task. Invoking it runs the callback and
    /// recycles its slab block; destroying it un-invoked also recycles.
    class Task {
    public:
        Task(Task&& other) noexcept : queue_(other.queue_), task_(other.task_) {
            other.task_ = nullptr;
        }
        Task(const Task&) = delete;
        Task& operator=(const Task&) = delete;
        Task& operator=(Task&&) = delete;
        ~Task() {
            if (task_ != nullptr) queue_->dispose(task_);
        }

        void operator()() {
            TaskBase* t = task_;
            task_ = nullptr;
            t->invoke(t);  // may push new events; safe, t is off the heap
            queue_->recycle(t);
        }

    private:
        friend class EventQueue;
        Task(EventQueue* queue, void* task) noexcept
            : queue_(queue), task_(static_cast<TaskBase*>(task)) {}

        EventQueue* queue_;
        TaskBase* task_;
    };

    /// Removes and returns the earliest event's task, setting `time_out`.
    [[nodiscard]] Task pop(SimTime& time_out);

    void clear();

    /// High-water mark of simultaneously pending tasks (slab blocks).
    [[nodiscard]] std::size_t tasks_peak() const noexcept;

private:
    struct TaskBase {
        void (*invoke)(TaskBase*);
        void (*destroy)(TaskBase*);
        bool large;
    };
    template <typename Fn>
    struct TaskImpl {
        TaskBase base;
        Fn fn;
    };

    struct Entry {
        SimTime time;
        std::uint64_t seq;
        TaskBase* task;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    static constexpr std::size_t kSmallBlock = 256;
    static constexpr std::size_t kLargeBlock = 2048;

    template <typename F>
    TaskBase* make_task(F&& fn) {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(TaskImpl<Fn>) <= kLargeBlock,
                      "event callback captures too much state for a slab block");
        static_assert(alignof(TaskImpl<Fn>) <= alignof(std::max_align_t));
        constexpr bool small = sizeof(TaskImpl<Fn>) <= kSmallBlock;
        void* block = small ? small_pool_.allocate() : large_pool_.allocate();
        auto* task = ::new (block) TaskImpl<Fn>{
            TaskBase{
                [](TaskBase* t) { reinterpret_cast<TaskImpl<Fn>*>(t)->fn(); },
                [](TaskBase* t) { reinterpret_cast<TaskImpl<Fn>*>(t)->fn.~Fn(); },
                !small,
            },
            std::forward<F>(fn),
        };
        return &task->base;
    }

    /// Returns a block to its pool after the callable has been destroyed.
    void recycle(TaskBase* task) noexcept {
        (task->large ? large_pool_ : small_pool_).deallocate(task);
    }
    /// Destroys the callable and returns the block (un-invoked path).
    void dispose(TaskBase* task) noexcept {
        task->destroy(task);
        recycle(task);
    }

    std::vector<Entry> heap_;
    std::uint64_t next_seq_ = 0;
    util::SlabPool small_pool_{kSmallBlock};
    util::SlabPool large_pool_{kLargeBlock};
};

}  // namespace ytcdn::sim
