#include "sim/simulator.hpp"

#include <cmath>

namespace ytcdn::sim {

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.next_time() <= horizon) {
        SimTime t = 0.0;
        auto task = queue_.pop(t);
        now_ = t;
        ++processed_;
        task();
    }
    if (std::isfinite(horizon) && horizon > now_) now_ = horizon;
}

}  // namespace ytcdn::sim
