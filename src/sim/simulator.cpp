#include "sim/simulator.hpp"

#include <cmath>

namespace ytcdn::sim {

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.next_time() <= horizon) {
        SimTime t = 0.0;
        auto task = queue_.pop(t);
        now_ = t;
        ++processed_;
        task();
    }
    advance_to(horizon);
}

bool Simulator::run_one() {
    if (queue_.empty()) return false;
    SimTime t = 0.0;
    auto task = queue_.pop(t);
    now_ = t;
    ++processed_;
    task();
    return true;
}

void Simulator::advance_to(SimTime t) noexcept {
    if (std::isfinite(t) && t > now_) now_ = t;
}

}  // namespace ytcdn::sim
