#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace ytcdn::sim {

void Simulator::schedule_at(SimTime time, EventQueue::Callback callback) {
    if (!(time >= now_)) {
        throw std::invalid_argument("Simulator::schedule_at: time is in the past");
    }
    queue_.push(time, std::move(callback));
}

void Simulator::schedule_in(SimTime delay, EventQueue::Callback callback) {
    if (!(delay >= 0.0)) {
        throw std::invalid_argument("Simulator::schedule_in: negative delay");
    }
    queue_.push(now_ + delay, std::move(callback));
}

void Simulator::run_until(SimTime horizon) {
    while (!queue_.empty() && queue_.next_time() <= horizon) {
        SimTime t = 0.0;
        auto callback = queue_.pop(t);
        now_ = t;
        ++processed_;
        callback();
    }
    if (std::isfinite(horizon) && horizon > now_) now_ = horizon;
}

}  // namespace ytcdn::sim
