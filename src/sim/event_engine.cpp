#include "sim/event_engine.hpp"

#include <limits>

namespace ytcdn::sim {

EventEngine::EventEngine(std::size_t num_shards) {
    shards_.reserve(num_shards == 0 ? 1 : num_shards);
    for (std::size_t i = 0; i < (num_shards == 0 ? 1 : num_shards); ++i) {
        shards_.push_back(std::make_unique<Simulator>());
    }
}

void EventEngine::run_until(SimTime horizon) {
    for (;;) {
        // The merge point: earliest (time, shard) across all queues. A
        // strict `<` keeps the lowest shard index on ties, so the order is
        // a pure function of queue contents.
        std::size_t best = shards_.size();
        SimTime best_time = std::numeric_limits<SimTime>::infinity();
        for (std::size_t i = 0; i < shards_.size(); ++i) {
            const SimTime t = shards_[i]->next_event_time();
            if (t < best_time) {
                best_time = t;
                best = i;
            }
        }
        if (best == shards_.size() || best_time > horizon) break;
        shards_[best]->run_one();
    }
    for (auto& s : shards_) s->advance_to(horizon);
}

std::uint64_t EventEngine::events_processed() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->events_processed();
    return total;
}

SimTime EventEngine::next_event_time() const noexcept {
    SimTime best = std::numeric_limits<SimTime>::infinity();
    for (const auto& s : shards_) {
        const SimTime t = s->next_event_time();
        if (t < best) best = t;
    }
    return best;
}

}  // namespace ytcdn::sim
