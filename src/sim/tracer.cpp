#include "sim/tracer.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace ytcdn::sim {

namespace {

constexpr char kMagic[4] = {'Y', 'T', 'R', '1'};
constexpr char kTrailerMagic[4] = {'Y', 'T', 'R', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4;       // magic|version|count|crc
constexpr std::size_t kStringsHeaderSize = 4 + 4 + 4;    // count|bytes|crc
constexpr std::size_t kBlockHeaderSize = 4 + 4;          // events-in-block|crc
constexpr std::size_t kTrailerSize = 4 + 8 + 4;          // magic|count|crc
constexpr std::size_t kRecordSize = 56;
constexpr std::uint64_t kBlockEvents = 1024;
/// Interned strings are short entity names; a multi-gigabyte declared
/// table length is an attack on the reader, not a trace.
constexpr std::uint64_t kMaxStringBytes = 1u << 28;

static_assert(std::endian::native == std::endian::little,
              "trace log assumes a little-endian host");

constexpr std::string_view kTypeNames[kNumTraceEventTypes] = {
    "session-start", "session-end", "dns-query",    "dns-cache-hit",
    "dns-answer",    "dns-servfail", "dc-selected",  "redirect",
    "connect-fail",  "retry",        "failover",     "pause",
    "resume",        "fault",        "guard",
};

template <typename T>
void put(std::string& buf, T value) {
    const auto old = buf.size();
    buf.resize(old + sizeof(T));
    std::memcpy(buf.data() + old, &value, sizeof(T));
}

template <typename T>
T take(const char*& p) {
    T value;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    return value;
}

void put_event(std::string& buf, const TraceEvent& e) {
    put<double>(buf, e.time);
    put<std::uint64_t>(buf, e.seq);
    put<std::uint64_t>(buf, e.session);
    put<std::int64_t>(buf, e.a);
    put<std::int64_t>(buf, e.b);
    put<double>(buf, e.x);
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(e.type));
    put<std::uint8_t>(buf, e.vp);
    put<std::uint16_t>(buf, e.code);
    put<std::uint32_t>(buf, 0);  // pad to 56 bytes
}

util::Result<TraceEvent> parse_event(const char* p, std::uint64_t index,
                                     std::uint64_t offset) {
    TraceEvent e;
    e.time = take<double>(p);
    e.seq = take<std::uint64_t>(p);
    e.session = take<std::uint64_t>(p);
    e.a = take<std::int64_t>(p);
    e.b = take<std::int64_t>(p);
    e.x = take<double>(p);
    const auto type = take<std::uint8_t>(p);
    e.vp = take<std::uint8_t>(p);
    e.code = take<std::uint16_t>(p);
    if (!std::isfinite(e.time)) {
        return error_at_record(ErrorCode::BadField, "non-finite event time",
                               index, offset);
    }
    if (type >= kNumTraceEventTypes) {
        return error_at_record(ErrorCode::BadField,
                               "unknown event type " + std::to_string(type),
                               index, offset);
    }
    e.type = static_cast<TraceEventType>(type);
    return e;
}

std::uint64_t num_blocks(std::uint64_t n) {
    return (n + kBlockEvents - 1) / kBlockEvents;
}

/// %.17g: shortest formatting that round-trips a double, locale-free.
std::string fmt_double(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
}

}  // namespace

std::string_view to_string(TraceEventType t) noexcept {
    const auto i = static_cast<std::size_t>(t);
    return i < kNumTraceEventTypes ? kTypeNames[i] : "?";
}

util::Result<TraceEventType> trace_event_type_from(std::string_view name) {
    for (std::size_t i = 0; i < kNumTraceEventTypes; ++i) {
        if (kTypeNames[i] == name) return static_cast<TraceEventType>(i);
    }
    return Error(ErrorCode::InvalidArgument,
                 "unknown trace event type '" + std::string(name) + "'");
}

TraceFilter TraceFilter::all() noexcept {
    TraceFilter f;
    f.enabled.fill(true);
    return f;
}

util::Result<TraceFilter> TraceFilter::parse(std::string_view csv) {
    TraceFilter f;  // nothing enabled yet
    std::size_t pos = 0;
    bool any = false;
    while (pos <= csv.size()) {
        const std::size_t comma = std::min(csv.find(',', pos), csv.size());
        const std::string_view name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty()) continue;
        auto type = trace_event_type_from(name);
        if (!type) return std::move(type).error();
        f.enabled[static_cast<std::size_t>(type.value())] = true;
        any = true;
    }
    if (!any) {
        return Error(ErrorCode::InvalidArgument,
                     "empty --trace-filter (expected comma-separated event "
                     "type names)");
    }
    return f;
}

void Tracer::emit(double time, TraceEventType type, std::uint8_t vp,
                  std::uint64_t session, std::uint16_t code, std::int64_t a,
                  std::int64_t b, double x) {
    const std::uint64_t seq = next_seq_++;
    if (!filter_.accepts(type)) return;
    TraceEvent e;
    e.time = time;
    e.seq = seq;
    e.session = session;
    e.a = a;
    e.b = b;
    e.x = x;
    e.type = type;
    e.vp = vp;
    e.code = code;
    events_.push_back(e);
}

std::uint32_t Tracer::intern(std::string_view s) {
    for (std::size_t i = 0; i < strings_.size(); ++i) {
        if (strings_[i] == s) return static_cast<std::uint32_t>(i);
    }
    strings_.emplace_back(s);
    return static_cast<std::uint32_t>(strings_.size() - 1);
}

TraceLog Tracer::sorted_log() const {
    TraceLog log{strings_, events_};
    std::sort(log.events.begin(), log.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.time != b.time ? a.time < b.time : a.seq < b.seq;
              });
    return log;
}

void Tracer::clear() {
    events_.clear();
    strings_.clear();
    next_seq_ = 0;
}

std::string write_trace_bytes(const TraceLog& log) {
    std::string out;
    const auto count = static_cast<std::uint64_t>(log.events.size());
    out.reserve(kHeaderSize + kStringsHeaderSize +
                count * kRecordSize + num_blocks(count) * kBlockHeaderSize +
                kTrailerSize);

    out.append(kMagic, sizeof(kMagic));
    put<std::uint32_t>(out, kVersion);
    put<std::uint64_t>(out, count);
    put<std::uint32_t>(out, util::crc32(out));

    std::string strings;
    for (const std::string& s : log.strings) {
        put<std::uint32_t>(strings, static_cast<std::uint32_t>(s.size()));
        strings += s;
    }
    put<std::uint32_t>(out, static_cast<std::uint32_t>(log.strings.size()));
    put<std::uint32_t>(out, static_cast<std::uint32_t>(strings.size()));
    put<std::uint32_t>(out, util::crc32(strings));
    out += strings;

    for (std::uint64_t start = 0; start < count; start += kBlockEvents) {
        const std::uint64_t n = std::min(kBlockEvents, count - start);
        std::string block;
        block.reserve(n * kRecordSize);
        for (std::uint64_t i = 0; i < n; ++i) {
            put_event(block, log.events[start + i]);
        }
        put<std::uint32_t>(out, static_cast<std::uint32_t>(n));
        put<std::uint32_t>(out, util::crc32(block));
        out += block;
    }

    std::string trailer;
    trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
    put<std::uint64_t>(trailer, count);
    put<std::uint32_t>(trailer, util::crc32(trailer));
    out += trailer;
    return out;
}

util::Result<void> write_trace_file(const std::filesystem::path& path,
                                    const TraceLog& log) {
    return util::atomic_write_file(path, write_trace_bytes(log));
}

util::Result<TraceLog> read_trace_bytes(std::string_view data) {
    if (data.size() < kHeaderSize) {
        return Error(ErrorCode::Truncated, "truncated trace header (" +
                                               std::to_string(data.size()) +
                                               " bytes)");
    }
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
        return Error(ErrorCode::BadMagic, "not a YTR1 trace stream");
    }
    const char* p = data.data() + sizeof(kMagic);
    const auto version = take<std::uint32_t>(p);
    const auto count = take<std::uint64_t>(p);
    const std::uint32_t header_crc =
        util::crc32(data.substr(0, kHeaderSize - 4));
    if (take<std::uint32_t>(p) != header_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "header CRC mismatch",
                             kHeaderSize - 4);
    }
    if (version != kVersion) {
        return Error(ErrorCode::UnsupportedVersion,
                     "trace version " + std::to_string(version) +
                         " (reader supports " + std::to_string(kVersion) + ")");
    }
    // Overflow-safe count sanity before any size arithmetic with it.
    if (count > data.size() / kRecordSize) {
        return Error(ErrorCode::CountMismatch,
                     "declared " + std::to_string(count) +
                         " events, stream holds " + std::to_string(data.size()) +
                         " bytes");
    }

    std::size_t offset = kHeaderSize;
    if (data.size() - offset < kStringsHeaderSize) {
        return error_at_byte(ErrorCode::Truncated, "truncated string table",
                             offset);
    }
    p = data.data() + offset;
    const auto string_count = take<std::uint32_t>(p);
    const auto string_bytes = take<std::uint32_t>(p);
    const auto string_crc = take<std::uint32_t>(p);
    offset += kStringsHeaderSize;
    if (string_bytes > kMaxStringBytes ||
        string_bytes > data.size() - offset ||
        static_cast<std::uint64_t>(string_count) * 4 > string_bytes) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "string table length inconsistent", offset);
    }
    const std::string_view strings_payload = data.substr(offset, string_bytes);
    if (util::crc32(strings_payload) != string_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch,
                             "string table CRC mismatch", offset);
    }
    TraceLog log;
    log.strings.reserve(string_count);
    {
        const char* sp = strings_payload.data();
        const char* const end = sp + strings_payload.size();
        for (std::uint32_t i = 0; i < string_count; ++i) {
            if (end - sp < 4) {
                return error_at_byte(ErrorCode::Truncated,
                                     "truncated string entry",
                                     offset + static_cast<std::uint64_t>(
                                                  sp - strings_payload.data()));
            }
            const auto len = take<std::uint32_t>(sp);
            if (static_cast<std::uint64_t>(end - sp) < len) {
                return error_at_byte(ErrorCode::Truncated,
                                     "string length exceeds table",
                                     offset + static_cast<std::uint64_t>(
                                                  sp - strings_payload.data()));
            }
            log.strings.emplace_back(sp, len);
            sp += len;
        }
        if (sp != end) {
            return error_at_byte(ErrorCode::CountMismatch,
                                 "string table has trailing bytes", offset);
        }
    }
    offset += string_bytes;

    log.events.reserve(count);
    std::uint64_t parsed = 0;
    while (parsed < count) {
        if (data.size() - offset < kBlockHeaderSize) {
            return error_at_byte(ErrorCode::Truncated, "truncated block header",
                                 offset);
        }
        p = data.data() + offset;
        const auto n = take<std::uint32_t>(p);
        const auto block_crc = take<std::uint32_t>(p);
        if (n == 0 || n > kBlockEvents || n > count - parsed) {
            return error_at_byte(ErrorCode::CountMismatch,
                                 "bad block event count " + std::to_string(n),
                                 offset);
        }
        const std::size_t payload_size = n * kRecordSize;
        if (data.size() - offset - kBlockHeaderSize < payload_size) {
            return error_at_byte(ErrorCode::Truncated, "truncated event block",
                                 offset);
        }
        const std::string_view payload =
            data.substr(offset + kBlockHeaderSize, payload_size);
        if (util::crc32(payload) != block_crc) {
            return error_at_byte(ErrorCode::ChecksumMismatch,
                                 "event block CRC mismatch", offset);
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            auto event = parse_event(payload.data() + i * kRecordSize,
                                     parsed + i,
                                     offset + kBlockHeaderSize + i * kRecordSize);
            if (!event) return std::move(event).error();
            // An interned-string reference must resolve: fault and guard
            // events index the table through `b`.
            if ((event.value().type == TraceEventType::Fault ||
                 event.value().type == TraceEventType::Guard) &&
                (event.value().b < 0 ||
                 static_cast<std::uint64_t>(event.value().b) >=
                     log.strings.size())) {
                return error_at_record(ErrorCode::BadField,
                                       "fault target index out of range",
                                       parsed + i, offset);
            }
            log.events.push_back(event.value());
        }
        parsed += n;
        offset += kBlockHeaderSize + payload_size;
    }

    if (data.size() - offset != kTrailerSize) {
        return error_at_byte(
            ErrorCode::Truncated,
            data.size() - offset < kTrailerSize ? "truncated trailer"
                                                : "trailing bytes after trailer",
            offset);
    }
    if (std::memcmp(data.data() + offset, kTrailerMagic, sizeof(kTrailerMagic)) !=
        0) {
        return error_at_byte(ErrorCode::BadMagic, "bad trailer magic", offset);
    }
    p = data.data() + offset + sizeof(kTrailerMagic);
    const auto trailer_count = take<std::uint64_t>(p);
    const std::uint32_t trailer_crc =
        util::crc32(data.substr(offset, kTrailerSize - 4));
    if (take<std::uint32_t>(p) != trailer_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "trailer CRC mismatch",
                             offset + kTrailerSize - 4);
    }
    if (trailer_count != count) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "trailer/header event count mismatch", offset);
    }
    return log;
}

util::Result<TraceLog> read_trace_file(const std::filesystem::path& path) {
    auto data = util::io::read_file(path);
    if (!data) {
        return std::move(data).context("trace " + path.string()).error();
    }
    return read_trace_bytes(std::move(data).value())
        .context("trace " + path.string());
}

util::Result<TraceSalvage> salvage_trace_bytes(std::string_view data) {
    // Header and string table: strict, same checks as read_trace_bytes —
    // except the count-vs-stream-size sanity check, which a torn tail
    // legitimately violates (the header promises events the tail lost).
    if (data.size() < kHeaderSize) {
        return Error(ErrorCode::Truncated, "truncated trace header (" +
                                               std::to_string(data.size()) +
                                               " bytes)");
    }
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
        return Error(ErrorCode::BadMagic, "not a YTR1 trace stream");
    }
    const char* p = data.data() + sizeof(kMagic);
    const auto version = take<std::uint32_t>(p);
    const auto count = take<std::uint64_t>(p);
    if (take<std::uint32_t>(p) != util::crc32(data.substr(0, kHeaderSize - 4))) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "header CRC mismatch",
                             kHeaderSize - 4);
    }
    if (version != kVersion) {
        return Error(ErrorCode::UnsupportedVersion,
                     "trace version " + std::to_string(version) +
                         " (reader supports " + std::to_string(kVersion) + ")");
    }
    // A tear removes tail bytes; it cannot inflate the header's count. An
    // absurd count (the CRC-valid overflow fixture) is corruption.
    if (count > (std::uint64_t{1} << 40)) {
        return Error(ErrorCode::CountMismatch,
                     "declared event count " + std::to_string(count) +
                         " is implausible");
    }

    std::size_t offset = kHeaderSize;
    if (data.size() - offset < kStringsHeaderSize) {
        return error_at_byte(ErrorCode::Truncated, "truncated string table",
                             offset);
    }
    p = data.data() + offset;
    const auto string_count = take<std::uint32_t>(p);
    const auto string_bytes = take<std::uint32_t>(p);
    const auto string_crc = take<std::uint32_t>(p);
    offset += kStringsHeaderSize;
    if (string_bytes > kMaxStringBytes ||
        string_bytes > data.size() - offset ||
        static_cast<std::uint64_t>(string_count) * 4 > string_bytes) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "string table length inconsistent", offset);
    }
    const std::string_view strings_payload = data.substr(offset, string_bytes);
    if (util::crc32(strings_payload) != string_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch,
                             "string table CRC mismatch", offset);
    }
    TraceSalvage out;
    out.declared_events = count;
    out.log.strings.reserve(string_count);
    {
        const char* sp = strings_payload.data();
        const char* const end = sp + strings_payload.size();
        for (std::uint32_t i = 0; i < string_count; ++i) {
            if (end - sp < 4) {
                return error_at_byte(ErrorCode::Truncated,
                                     "truncated string entry", offset);
            }
            const auto len = take<std::uint32_t>(sp);
            if (static_cast<std::uint64_t>(end - sp) < len) {
                return error_at_byte(ErrorCode::Truncated,
                                     "string length exceeds table", offset);
            }
            out.log.strings.emplace_back(sp, len);
            sp += len;
        }
        if (sp != end) {
            return error_at_byte(ErrorCode::CountMismatch,
                                 "string table has trailing bytes", offset);
        }
    }
    offset += string_bytes;

    // Event blocks: keep every block whose CRC verifies; stop at the tear.
    const auto torn = [&](std::string note) {
        out.complete = false;
        out.note = std::move(note);
        return out;
    };
    std::uint64_t parsed = 0;
    while (parsed < count) {
        if (data.size() - offset < kBlockHeaderSize) {
            return torn("tail torn at byte " + std::to_string(offset) +
                        ": partial block header");
        }
        p = data.data() + offset;
        const auto n = take<std::uint32_t>(p);
        const auto block_crc = take<std::uint32_t>(p);
        if (n == 0 || n > kBlockEvents || n > count - parsed) {
            return torn("tail torn at byte " + std::to_string(offset) +
                        ": implausible block count " + std::to_string(n));
        }
        const std::size_t payload_size = n * kRecordSize;
        if (data.size() - offset - kBlockHeaderSize < payload_size) {
            return torn("tail torn at byte " + std::to_string(offset) +
                        ": block holds " + std::to_string(n) +
                        " events but the stream ends first");
        }
        const std::string_view payload =
            data.substr(offset + kBlockHeaderSize, payload_size);
        if (util::crc32(payload) != block_crc) {
            return error_at_byte(ErrorCode::ChecksumMismatch,
                                 "event block CRC mismatch", offset);
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            auto event = parse_event(payload.data() + i * kRecordSize,
                                     parsed + i,
                                     offset + kBlockHeaderSize + i * kRecordSize);
            if (!event) return std::move(event).error();
            if ((event.value().type == TraceEventType::Fault ||
                 event.value().type == TraceEventType::Guard) &&
                (event.value().b < 0 ||
                 static_cast<std::uint64_t>(event.value().b) >=
                     out.log.strings.size())) {
                return error_at_record(ErrorCode::BadField,
                                       "fault target index out of range",
                                       parsed + i, offset);
            }
            out.log.events.push_back(event.value());
        }
        parsed += n;
        offset += kBlockHeaderSize + payload_size;
    }

    if (data.size() - offset < kTrailerSize) {
        return torn("tail torn at byte " + std::to_string(offset) +
                    ": trailer missing");
    }
    // Every event arrived; a full-size but invalid trailer is corruption.
    if (data.size() - offset != kTrailerSize ||
        std::memcmp(data.data() + offset, kTrailerMagic, sizeof(kTrailerMagic)) !=
            0) {
        return error_at_byte(ErrorCode::BadMagic, "bad trailer magic", offset);
    }
    p = data.data() + offset + sizeof(kTrailerMagic);
    const auto trailer_count = take<std::uint64_t>(p);
    if (take<std::uint32_t>(p) !=
        util::crc32(data.substr(offset, kTrailerSize - 4))) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "trailer CRC mismatch",
                             offset + kTrailerSize - 4);
    }
    if (trailer_count != count) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "trailer/header event count mismatch", offset);
    }
    out.complete = true;
    return out;
}

util::Result<TraceSalvage> salvage_trace_file(
    const std::filesystem::path& path) {
    auto data = util::io::read_file(path);
    if (!data) {
        return std::move(data).context("trace " + path.string()).error();
    }
    return salvage_trace_bytes(std::move(data).value())
        .context("trace " + path.string());
}

std::string render_trace_jsonl(const TraceLog& log) {
    std::string out;
    for (const TraceEvent& e : log.events) {
        out += "{\"t\":";
        out += fmt_double(e.time);
        out += ",\"seq\":";
        out += std::to_string(e.seq);
        out += ",\"type\":\"";
        out += to_string(e.type);
        out += "\",\"vp\":";
        out += std::to_string(e.vp);
        out += ",\"session\":";
        out += std::to_string(e.session);
        out += ",\"code\":";
        out += std::to_string(e.code);
        out += ",\"a\":";
        out += std::to_string(e.a);
        out += ",\"b\":";
        out += std::to_string(e.b);
        out += ",\"x\":";
        out += fmt_double(e.x);
        if ((e.type == TraceEventType::Fault ||
             e.type == TraceEventType::Guard) &&
            e.b >= 0 &&
            static_cast<std::uint64_t>(e.b) < log.strings.size()) {
            out += ",\"target\":\"";
            append_json_escaped(out, log.strings[static_cast<std::size_t>(e.b)]);
            out += "\"";
        }
        out += "}\n";
    }
    return out;
}

util::Result<void> write_trace_jsonl(const std::filesystem::path& path,
                                     const TraceLog& log) {
    return util::atomic_write_file(path, render_trace_jsonl(log));
}

std::vector<SessionTimeline> session_timelines(const TraceLog& log) {
    // std::map, not unordered: the returned order is part of trace_dump's
    // byte-stable output.
    std::map<std::pair<std::uint8_t, std::uint64_t>, SessionTimeline> grouped;
    for (const TraceEvent& e : log.events) {
        if (e.session == 0) continue;
        auto& timeline = grouped[{e.vp, e.session}];
        timeline.vp = e.vp;
        timeline.session = e.session;
        timeline.events.push_back(e);
    }
    std::vector<SessionTimeline> out;
    out.reserve(grouped.size());
    for (auto& [key, timeline] : grouped) out.push_back(std::move(timeline));
    return out;
}

TraceValidation validate_trace(const TraceLog& log, int max_retries) {
    TraceValidation v;
    v.events = log.events.size();
    const auto note = [&v](std::string problem) {
        // Cap the report: a hostile trace must not balloon the validator.
        if (v.problems.size() < 50) v.problems.push_back(std::move(problem));
    };

    double last_time = -std::numeric_limits<double>::infinity();
    for (const TraceEvent& e : log.events) {
        if (e.time < last_time) {
            note("time goes backwards at seq " + std::to_string(e.seq));
        }
        last_time = std::max(last_time, e.time);
    }

    for (const SessionTimeline& timeline : session_timelines(log)) {
        ++v.sessions;
        const std::string who = "session vp" + std::to_string(timeline.vp) + "/" +
                                std::to_string(timeline.session);
        std::uint64_t starts = 0;
        std::uint64_t ends = 0;
        std::uint64_t retries = 0;
        bool end_before_start = false;
        for (const TraceEvent& e : timeline.events) {
            if (e.type == TraceEventType::SessionStart) ++starts;
            if (e.type == TraceEventType::SessionEnd) {
                ++ends;
                if (starts == 0) end_before_start = true;
            }
            if (e.type == TraceEventType::Retry) {
                ++retries;
                v.max_retries_seen = std::max(v.max_retries_seen,
                                              static_cast<std::uint64_t>(e.code));
            }
        }
        if (starts != 1) {
            note(who + ": " + std::to_string(starts) + " session-start events");
        }
        if (ends != 1) {
            note(who + ": " + std::to_string(ends) +
                 " session-end events (want exactly 1)");
        }
        if (end_before_start) note(who + ": session-end precedes session-start");
        if (retries > static_cast<std::uint64_t>(std::max(0, max_retries))) {
            note(who + ": " + std::to_string(retries) +
                 " retries exceed the configured bound " +
                 std::to_string(max_retries));
        }
    }
    return v;
}

}  // namespace ytcdn::sim
