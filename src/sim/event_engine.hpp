#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace ytcdn::sim {

/// A sharded discrete-event core: one time-ordered event queue (a whole
/// Simulator, so components keep their existing `Simulator&` interface) per
/// shard, executed as a single deterministic K-way merge (DESIGN.md §16).
///
/// Why a merge and not free-running shards: all vantage points share one
/// CDN world — content pulls, per-server flow counts and DC health couple
/// every shard's future to every other shard's past, so events must run in
/// global (time, shard) order for the run to be reproducible. The merge
/// picks, at every step, the shard whose earliest pending event has the
/// smallest timestamp (lowest shard index wins a tie) and runs exactly that
/// event. With one shard this degenerates to Simulator::run_until — the
/// same pops in the same order — which is what the engine-vs-legacy
/// byte-equality battery pins.
///
/// Shard-count invariance: partitioning the same event population across K
/// queues only changes the tie-break among *equal* timestamps in different
/// shards. Workload timestamps are sums of continuous RNG draws and fault
/// times are schedule constants, so cross-shard collisions do not occur in
/// practice; Determinism.EventEngineShardInvariance byte-compares the
/// report and the YTR1 trace across shard counts to keep it that way.
///
/// Each shard's queue allocates its task payloads from its own
/// util::SlabPool blocks (see sim/event_queue.hpp), so per-shard arenas
/// come for free and a popped task never crosses shards.
class EventEngine {
public:
    explicit EventEngine(std::size_t num_shards);

    [[nodiscard]] std::size_t num_shards() const noexcept {
        return shards_.size();
    }

    /// The shard's Simulator: schedule into it, read its clock. Components
    /// bound to shard i only ever see shard i's queue; the engine owns the
    /// global ordering.
    [[nodiscard]] Simulator& shard(std::size_t i) noexcept {
        return *shards_[i];
    }
    [[nodiscard]] const Simulator& shard(std::size_t i) const noexcept {
        return *shards_[i];
    }

    /// Runs every event with timestamp <= horizon in global merge order,
    /// then advances every shard's clock to the horizon (mirroring
    /// Simulator::run_until so back-to-back phases agree on "now").
    void run_until(SimTime horizon);

    /// Total events executed across all shards.
    [[nodiscard]] std::uint64_t events_processed() const noexcept;

    /// Earliest pending timestamp across shards (+infinity when idle).
    [[nodiscard]] SimTime next_event_time() const noexcept;

private:
    // Simulator is non-movable (its EventQueue pins slab blocks), so the
    // shard table owns them indirectly.
    std::vector<std::unique_ptr<Simulator>> shards_;
};

}  // namespace ytcdn::sim
