#include "geoloc/dc_clustering.hpp"

#include <algorithm>
#include <map>

namespace ytcdn::geoloc {

const geo::City* snap_to_city(const CbgResult& cbg, const geo::CityDatabase& cities,
                              double max_snap_km) {
    if (!cbg.valid) return nullptr;
    return cities.nearest_within(cbg.estimate, max_snap_km);
}

std::vector<DataCenterCluster> cluster_servers(
    const std::vector<LocatedServer>& servers) {
    // 1. Majority city vote per /24.
    std::unordered_map<net::IpAddress, std::map<std::string, int>> votes;
    std::unordered_map<std::string, const geo::City*> city_by_name;
    for (const auto& s : servers) {
        if (s.city == nullptr) continue;
        ++votes[s.ip.slash24()][s.city->name];
        city_by_name.emplace(s.city->name, s.city);
    }

    std::unordered_map<net::IpAddress, const geo::City*> subnet_city;
    for (const auto& [subnet, tally] : votes) {
        const auto winner = std::max_element(
            tally.begin(), tally.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
        subnet_city.emplace(subnet, city_by_name.at(winner->first));
    }

    // 2. Assign every server (located or not) to its /24's city cluster.
    std::map<std::string, DataCenterCluster> clusters;
    for (const auto& s : servers) {
        const auto it = subnet_city.find(s.ip.slash24());
        if (it == subnet_city.end()) continue;
        const geo::City* city = it->second;
        auto& cluster = clusters[city->name];
        if (cluster.servers.empty()) {
            cluster.city_name = city->name;
            cluster.location = city->location;
            cluster.continent = city->continent;
        }
        cluster.servers.push_back(s.ip);
    }

    std::vector<DataCenterCluster> out;
    out.reserve(clusters.size());
    for (auto& [name, cluster] : clusters) out.push_back(std::move(cluster));
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        if (a.servers.size() != b.servers.size()) {
            return a.servers.size() > b.servers.size();
        }
        return a.city_name < b.city_name;
    });
    return out;
}

}  // namespace ytcdn::geoloc
