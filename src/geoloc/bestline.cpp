#include "geoloc/bestline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ytcdn::geoloc {

namespace {

/// Lower convex hull (Andrew's monotone chain), points pre-sorted by x.
std::vector<CalibrationPoint> lower_hull(std::vector<CalibrationPoint> pts) {
    std::vector<CalibrationPoint> hull;
    for (const auto& p : pts) {
        while (hull.size() >= 2) {
            const auto& a = hull[hull.size() - 2];
            const auto& b = hull[hull.size() - 1];
            // Keep turning right (cross product <= 0 removes b).
            const double cross = (b.distance_km - a.distance_km) *
                                     (p.min_rtt_ms - a.min_rtt_ms) -
                                 (b.min_rtt_ms - a.min_rtt_ms) *
                                     (p.distance_km - a.distance_km);
            if (cross <= 0.0) {
                hull.pop_back();
            } else {
                break;
            }
        }
        hull.push_back(p);
    }
    return hull;
}

}  // namespace

Bestline fit_bestline(const std::vector<CalibrationPoint>& points, double min_slope,
                      double default_slope) {
    std::vector<CalibrationPoint> pts;
    pts.reserve(points.size());
    for (const auto& p : points) {
        if (p.distance_km > 1.0 && p.min_rtt_ms > 0.0) pts.push_back(p);
    }

    const auto fallback = [&]() {
        // A line at the default (speed-of-light-in-fiber) slope pushed down
        // until it clears every point.
        double b = 0.0;
        for (const auto& p : pts) {
            b = std::min(b, p.min_rtt_ms - default_slope * p.distance_km);
        }
        return Bestline{default_slope, b};
    };

    if (pts.size() < 2) return fallback();

    std::sort(pts.begin(), pts.end(), [](const auto& a, const auto& b) {
        if (a.distance_km != b.distance_km) return a.distance_km < b.distance_km;
        return a.min_rtt_ms < b.min_rtt_ms;
    });
    // Among equal x keep only the lowest y (others cannot touch the hull and
    // break strict monotonicity).
    std::vector<CalibrationPoint> dedup;
    for (const auto& p : pts) {
        if (!dedup.empty() && dedup.back().distance_km == p.distance_km) continue;
        dedup.push_back(p);
    }
    if (dedup.size() < 2) return fallback();

    const auto hull = lower_hull(dedup);

    Bestline best;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i + 1 < hull.size(); ++i) {
        const auto& a = hull[i];
        const auto& b = hull[i + 1];
        const double m =
            (b.min_rtt_ms - a.min_rtt_ms) / (b.distance_km - a.distance_km);
        if (m < min_slope) continue;
        const double c = a.min_rtt_ms - m * a.distance_km;
        double cost = 0.0;
        for (const auto& p : dedup) cost += p.min_rtt_ms - (m * p.distance_km + c);
        if (cost < best_cost) {
            best_cost = cost;
            best = Bestline{m, c};
        }
    }
    if (!std::isfinite(best_cost)) return fallback();
    return best;
}

}  // namespace ytcdn::geoloc
