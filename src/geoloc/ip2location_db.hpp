#pragma once

#include <optional>
#include <vector>

#include "geo/city.hpp"
#include "net/ip_address.hpp"
#include "net/subnet.hpp"

namespace ytcdn::geoloc {

/// A static IP-to-location database in the style of MaxMind GeoLite.
///
/// This exists to reproduce the paper's *negative* result (Section V):
/// commercial databases geolocate large corporate networks by their
/// registration address, so every Google/YouTube content IP comes back as
/// "Mountain View, California" regardless of where the server actually is —
/// falsified by RTT measurements that are "too small to be compatible with
/// intercontinental propagation time constraints".
class IpLocationDatabase {
public:
    struct Entry {
        net::Subnet prefix;
        geo::City city;
    };

    IpLocationDatabase() = default;

    /// A MaxMind-like database that answers Mountain View for every address
    /// (what the paper observed for all YouTube content servers).
    [[nodiscard]] static IpLocationDatabase maxmind_like();

    void add(net::Subnet prefix, geo::City city);
    void set_default(geo::City city) { default_city_ = std::move(city); }

    /// Longest-prefix lookup; falls back to the default city if set.
    [[nodiscard]] const geo::City* lookup(net::IpAddress ip) const noexcept;

private:
    std::vector<Entry> entries_;
    std::optional<geo::City> default_city_;
};

}  // namespace ytcdn::geoloc
