#include "geoloc/ip2location_db.hpp"

namespace ytcdn::geoloc {

IpLocationDatabase IpLocationDatabase::maxmind_like() {
    IpLocationDatabase db;
    const geo::City* mv = geo::CityDatabase::builtin().find("Mountain View");
    db.set_default(*mv);
    return db;
}

void IpLocationDatabase::add(net::Subnet prefix, geo::City city) {
    entries_.push_back(Entry{prefix, std::move(city)});
}

const geo::City* IpLocationDatabase::lookup(net::IpAddress ip) const noexcept {
    const Entry* best = nullptr;
    for (const auto& e : entries_) {
        if (e.prefix.contains(ip) &&
            (best == nullptr || e.prefix.prefix_len() > best->prefix.prefix_len())) {
            best = &e;
        }
    }
    if (best != nullptr) return &best->city;
    return default_city_ ? &*default_city_ : nullptr;
}

}  // namespace ytcdn::geoloc
