#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "geo/city.hpp"
#include "geoloc/cbg.hpp"
#include "net/ip_address.hpp"

namespace ytcdn::geoloc {

/// A geolocated server IP: the CBG estimate snapped to the nearest
/// gazetteer city.
struct LocatedServer {
    net::IpAddress ip;
    CbgResult cbg;
    const geo::City* city = nullptr;  // nearest city to cbg.estimate, if valid
};

/// A city-level server cluster, the paper's notion of "data center":
/// "servers are grouped into the same data center if they are located in
/// the same city according to CBG ... all servers with IP addresses in the
/// same /24 subnet are always aggregated to the same data center"
/// (Section V).
struct DataCenterCluster {
    std::string city_name;
    geo::GeoPoint location;
    geo::Continent continent = geo::Continent::Europe;
    std::vector<net::IpAddress> servers;
};

/// Snaps a CBG estimate to a city (nullptr when the estimate is invalid or
/// farther than `max_snap_km` from every known city).
[[nodiscard]] const geo::City* snap_to_city(const CbgResult& cbg,
                                            const geo::CityDatabase& cities,
                                            double max_snap_km = 400.0);

/// Clusters located servers into data centers. Each /24 first votes on a
/// city (majority of its members); every member then joins that city's
/// cluster, enforcing the /24 invariant. Servers whose /24 has no located
/// member anywhere are dropped. Clusters come back sorted by size
/// (largest first).
[[nodiscard]] std::vector<DataCenterCluster> cluster_servers(
    const std::vector<LocatedServer>& servers);

}  // namespace ytcdn::geoloc
