#pragma once

#include <cstdint>
#include <vector>

#include "geo/geo_point.hpp"
#include "geoloc/bestline.hpp"
#include "geoloc/landmark.hpp"
#include "net/rtt_model.hpp"
#include "util/parallel.hpp"

namespace ytcdn::geoloc {

/// Outcome of constraint-based geolocation of one target.
struct CbgResult {
    bool valid = false;
    geo::GeoPoint estimate;
    /// Radius of the confidence region: max distance from the estimate to
    /// any point of the feasible intersection area (the quantity Fig. 3
    /// plots a CDF of).
    double confidence_radius_km = 0.0;
    /// Estimated area of the intersection region.
    double region_area_km2 = 0.0;
    /// How many constraint circles participated.
    int circles_used = 0;
    /// True when the raw circles had empty intersection and radii had to be
    /// relaxed (measurement noise made some bound too tight).
    bool relaxed = false;
};

/// Constraint-Based Geolocation (Gueye, Ziviani, Crovella, Fdida — ToN'06),
/// the algorithm the paper uses to localize YouTube servers (Section V).
///
/// Each landmark converts its measured minimum RTT to the target into a
/// distance upper bound via its calibrated bestline; the target must lie in
/// the intersection of the resulting disks. The intersection is evaluated on
/// a geographic grid over the tightest disk; the estimate is the region
/// centroid.
class CbgLocator {
public:
    struct Config {
        int calibration_probes = 5;
        int target_probes = 5;
        /// Grid resolution per axis for region sampling.
        int grid = 72;
        /// Only the tightest `max_circles` constraints are intersected
        /// (looser ones are redundant and cost time).
        std::size_t max_circles = 30;
        /// Radius relaxation when the intersection comes up empty.
        double relax_step = 1.06;
        int max_relax_iters = 60;
    };

    CbgLocator(const net::RttModel& model, std::vector<Landmark> landmarks,
               const Config& config, std::uint64_t seed);

    /// Measures landmark-to-landmark RTTs and fits every bestline. Must be
    /// called once before locate(). Each landmark's measurement campaign
    /// runs as an independent task on the pool with a Pinger forked from
    /// (seed, landmark site id), so results are bit-identical at any thread
    /// count and independent of scheduling.
    void calibrate(util::ThreadPool& pool);
    /// Same, on the process-wide shared pool.
    void calibrate() { calibrate(util::shared_pool()); }

    [[nodiscard]] bool calibrated() const noexcept { return calibrated_; }
    [[nodiscard]] const std::vector<Landmark>& landmarks() const noexcept {
        return landmarks_;
    }
    [[nodiscard]] const Bestline& bestline(std::size_t i) const;

    /// Geolocates one target site. Thread-safe once calibrated: the probe
    /// RNG is forked per target from (seed, target id), never shared, so
    /// concurrent locate() calls over different targets are deterministic.
    [[nodiscard]] CbgResult locate(const net::NetSite& target) const;

private:
    struct Circle {
        geo::GeoPoint center;
        double radius_km = 0.0;
    };

    [[nodiscard]] CbgResult intersect(std::vector<Circle> circles) const;

    const net::RttModel* model_;
    std::vector<Landmark> landmarks_;
    Config config_;
    std::uint64_t seed_;
    std::vector<Bestline> bestlines_;
    bool calibrated_ = false;
};

}  // namespace ytcdn::geoloc
