#include "geoloc/geoping.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::geoloc {

GeoPingLocator::GeoPingLocator(const net::RttModel& model,
                               std::vector<Landmark> landmarks, std::uint64_t seed,
                               int probes)
    : landmarks_(std::move(landmarks)), pinger_(model, seed), probes_(probes) {
    if (landmarks_.empty()) {
        throw std::invalid_argument("GeoPingLocator: need at least one landmark");
    }
    if (probes_ <= 0) throw std::invalid_argument("GeoPingLocator: probes must be > 0");
}

GeoPingLocator::Result GeoPingLocator::locate(const net::NetSite& target) {
    Result best;
    for (std::size_t i = 0; i < landmarks_.size(); ++i) {
        const double rtt = pinger_.min_rtt_ms(landmarks_[i].site, target, probes_);
        if (!best.valid || rtt < best.best_rtt_ms) {
            best.valid = true;
            best.best_rtt_ms = rtt;
            best.estimate = landmarks_[i].site.location;
            best.landmark_index = i;
        }
    }
    return best;
}

}  // namespace ytcdn::geoloc
