#include "geoloc/landmark.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::geoloc {

namespace {

constexpr std::uint64_t kLandmarkSiteBase = 0x2000'0000ull;

void place(std::vector<Landmark>& out, const geo::CityDatabase& cities,
           geo::Continent continent, int count, sim::Rng& rng) {
    const auto pool = cities.on_continent(continent);
    if (pool.empty() && count > 0) {
        throw std::invalid_argument("make_planetlab_landmarks: no cities on continent");
    }
    for (int i = 0; i < count; ++i) {
        const geo::City* city = pool[static_cast<std::size_t>(i) % pool.size()];
        Landmark lm;
        lm.name = "planetlab-" + city->name + "-" + std::to_string(i / pool.size() + 1);
        lm.city = city;
        // Campus-level jitter: nodes sit at universities near the city core.
        const geo::GeoPoint loc = geo::destination_point(
            city->location, rng.uniform(0.0, 360.0), rng.uniform(0.0, 25.0));
        lm.site = net::NetSite{kLandmarkSiteBase + out.size(), loc,
                               rng.uniform(0.4, 1.5)};
        out.push_back(std::move(lm));
    }
}

}  // namespace

std::vector<Landmark> make_planetlab_landmarks(const geo::CityDatabase& cities,
                                               sim::Rng rng,
                                               const LandmarkCounts& counts) {
    std::vector<Landmark> out;
    out.reserve(static_cast<std::size_t>(counts.total()));
    place(out, cities, geo::Continent::NorthAmerica, counts.north_america, rng);
    place(out, cities, geo::Continent::Europe, counts.europe, rng);
    place(out, cities, geo::Continent::Asia, counts.asia, rng);
    place(out, cities, geo::Continent::SouthAmerica, counts.south_america, rng);
    place(out, cities, geo::Continent::Oceania, counts.oceania, rng);
    place(out, cities, geo::Continent::Africa, counts.africa, rng);
    return out;
}

}  // namespace ytcdn::geoloc
