#pragma once

#include <vector>

namespace ytcdn::geoloc {

/// One calibration sample: great-circle distance to a peer landmark and the
/// minimum RTT measured to it.
struct CalibrationPoint {
    double distance_km = 0.0;
    double min_rtt_ms = 0.0;
};

/// The CBG "bestline" for one landmark: rtt = m * distance + b, constrained
/// to lie *below* every calibration point (so converting a measured RTT to
/// a distance with it never under-estimates the distance — circles remain
/// sound upper bounds).
struct Bestline {
    double slope_ms_per_km = 0.01;   // m, must be > 0
    double intercept_ms = 0.0;       // b, >= 0

    /// Upper bound on the distance to a target measured at `rtt_ms`.
    [[nodiscard]] double distance_bound_km(double rtt_ms) const noexcept {
        const double d = (rtt_ms - intercept_ms) / slope_ms_per_km;
        return d < 0.0 ? 0.0 : d;
    }
};

/// Fits the CBG bestline: among lines below all points, the one minimizing
/// the total vertical distance to the point cloud. Implemented via the
/// lower convex hull: the optimum always coincides with a hull edge
/// (Gueye et al., ToN 2006). Falls back to a conservative default when
/// fewer than two usable points exist or no hull edge has positive slope.
///
/// `min_slope` guards against degenerate nearly-flat fits that would turn
/// small RTT noise into thousands of km (the paper's CBG uses the same
/// safeguard via baseline constraints).
[[nodiscard]] Bestline fit_bestline(const std::vector<CalibrationPoint>& points,
                                    double min_slope = 0.002,
                                    double default_slope = 0.01);

}  // namespace ytcdn::geoloc
