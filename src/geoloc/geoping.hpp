#pragma once

#include <cstdint>
#include <vector>

#include "geo/geo_point.hpp"
#include "geoloc/landmark.hpp"
#include "net/pinger.hpp"

namespace ytcdn::geoloc {

/// GeoPing-style nearest-landmark geolocation (Padmanabhan & Subramanian,
/// SIGCOMM'01): the target is placed *at* the landmark with the smallest
/// measured RTT. The classic pre-CBG baseline — cheap, but its error is
/// bounded below by the landmark density, and it produces no confidence
/// region. Implemented as a comparator for the geolocation-methods
/// ablation.
class GeoPingLocator {
public:
    struct Result {
        bool valid = false;
        geo::GeoPoint estimate;
        double best_rtt_ms = 0.0;
        std::size_t landmark_index = 0;
    };

    GeoPingLocator(const net::RttModel& model, std::vector<Landmark> landmarks,
                   std::uint64_t seed, int probes = 5);

    [[nodiscard]] Result locate(const net::NetSite& target);

    [[nodiscard]] const std::vector<Landmark>& landmarks() const noexcept {
        return landmarks_;
    }

private:
    std::vector<Landmark> landmarks_;
    net::Pinger pinger_;
    int probes_;
};

}  // namespace ytcdn::geoloc
