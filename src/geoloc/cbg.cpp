#include "geoloc/cbg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/pinger.hpp"
#include "sim/random.hpp"
#include "util/metrics.hpp"

namespace ytcdn::geoloc {

namespace {

/// locate() runs on pool threads, but each target is located exactly once
/// per study regardless of schedule, so these logical counts stay
/// thread-count-invariant (the metrics determinism contract).
struct CbgMetrics {
    util::metrics::Counter calibrations = util::metrics::counter("geoloc.cbg.calibrations");
    util::metrics::Counter locates = util::metrics::counter("geoloc.cbg.locates");
    util::metrics::Counter relaxed = util::metrics::counter("geoloc.cbg.relaxed");
    util::metrics::Counter invalid = util::metrics::counter("geoloc.cbg.invalid");
    util::metrics::Histogram circles_used = util::metrics::histogram(
        "geoloc.cbg.circles_used", {4.0, 8.0, 16.0, 32.0});
};

CbgMetrics& cbg_metrics() {
    static CbgMetrics metrics;
    return metrics;
}

/// Per-task Pinger seed: a stable function of the locator seed, a stage tag
/// and the task's entity id. Forking here (instead of advancing one shared
/// engine) is what makes calibration and location schedule-independent.
std::uint64_t probe_seed(std::uint64_t seed, std::string_view stage,
                         std::uint64_t entity_id) {
    return sim::mix64(seed ^ sim::hash_string(stage) ^ sim::mix64(entity_id));
}

}  // namespace

CbgLocator::CbgLocator(const net::RttModel& model, std::vector<Landmark> landmarks,
                       const Config& config, std::uint64_t seed)
    : model_(&model), landmarks_(std::move(landmarks)), config_(config), seed_(seed) {
    if (landmarks_.size() < 3) {
        throw std::invalid_argument("CbgLocator: need at least 3 landmarks");
    }
    if (config_.grid < 8) throw std::invalid_argument("CbgLocator: grid too coarse");
}

void CbgLocator::calibrate(util::ThreadPool& pool) {
    // Explicit this-capture: the closure reads members (model_, seed_,
    // landmarks_, config_) and mutates nothing — ytcdn-parallel-shared-mutation
    // verifies that over the AST.
    bestlines_ = util::parallel_map(pool, landmarks_, [this](const Landmark& self) {
        net::Pinger pinger(*model_, probe_seed(seed_, "cbg-calibrate", self.site.id));
        std::vector<CalibrationPoint> points;
        points.reserve(landmarks_.size() - 1);
        for (const auto& peer : landmarks_) {
            if (peer.site.id == self.site.id) continue;
            CalibrationPoint p;
            p.distance_km = geo::distance_km(self.site.location, peer.site.location);
            p.min_rtt_ms =
                pinger.min_rtt_ms(self.site, peer.site, config_.calibration_probes);
            points.push_back(p);
        }
        return fit_bestline(points);
    });
    calibrated_ = true;
    cbg_metrics().calibrations.inc();
}

const Bestline& CbgLocator::bestline(std::size_t i) const {
    if (!calibrated_) throw std::logic_error("CbgLocator: calibrate() first");
    return bestlines_.at(i);
}

CbgResult CbgLocator::locate(const net::NetSite& target) const {
    if (!calibrated_) throw std::logic_error("CbgLocator: calibrate() first");
    cbg_metrics().locates.inc();

    net::Pinger pinger(*model_, probe_seed(seed_, "cbg-locate", target.id));
    std::vector<Circle> circles;
    circles.reserve(landmarks_.size());
    for (std::size_t i = 0; i < landmarks_.size(); ++i) {
        const double rtt =
            pinger.min_rtt_ms(landmarks_[i].site, target, config_.target_probes);
        const double bound = bestlines_[i].distance_bound_km(rtt);
        if (bound <= 0.0) continue;
        circles.push_back(Circle{landmarks_[i].site.location, bound});
    }
    if (circles.empty()) {
        cbg_metrics().invalid.inc();
        return CbgResult{};
    }

    std::sort(circles.begin(), circles.end(),
              [](const Circle& a, const Circle& b) { return a.radius_km < b.radius_km; });
    if (circles.size() > config_.max_circles) circles.resize(config_.max_circles);
    return intersect(std::move(circles));
}

CbgResult CbgLocator::intersect(std::vector<Circle> circles) const {
    CbgResult result;
    result.circles_used = static_cast<int>(circles.size());
    cbg_metrics().circles_used.observe(static_cast<double>(circles.size()));

    for (int iter = 0; iter <= config_.max_relax_iters; ++iter) {
        // Grid over the bounding box of the tightest circle. Latitude rows
        // carry a cos(lat) cell-width correction for area and spacing.
        const Circle& tight = circles.front();
        const double r = tight.radius_km;
        const double dlat = r / 111.0;  // degrees latitude per km is ~1/111

        const int n = config_.grid;
        double sum_lat = 0.0;
        double sum_lon = 0.0;
        double area = 0.0;
        std::vector<geo::GeoPoint> accepted;
        accepted.reserve(64);

        for (int yi = 0; yi < n; ++yi) {
            const double lat =
                tight.center.lat_deg - dlat + 2.0 * dlat * (yi + 0.5) / n;
            if (lat < -90.0 || lat > 90.0) continue;
            const double cos_lat =
                std::max(0.05, std::cos(geo::deg_to_rad(lat)));
            const double dlon = r / (111.0 * cos_lat);
            for (int xi = 0; xi < n; ++xi) {
                double lon =
                    tight.center.lon_deg - dlon + 2.0 * dlon * (xi + 0.5) / n;
                if (lon > 180.0) lon -= 360.0;
                if (lon < -180.0) lon += 360.0;
                const geo::GeoPoint p{lat, lon};
                bool inside = true;
                for (const auto& c : circles) {
                    if (geo::distance_km(p, c.center) > c.radius_km) {
                        inside = false;
                        break;
                    }
                }
                if (!inside) continue;
                accepted.push_back(p);
                sum_lat += lat;
                sum_lon += lon;
                // Cell size in km^2 at this row.
                const double cell_h = 2.0 * r / n;          // km (lat direction)
                const double cell_w = 2.0 * r / n;          // km (lon direction)
                area += cell_h * cell_w;
            }
        }

        if (!accepted.empty()) {
            result.valid = true;
            result.relaxed = iter > 0;
            if (result.relaxed) cbg_metrics().relaxed.inc();
            result.estimate =
                geo::GeoPoint{sum_lat / static_cast<double>(accepted.size()),
                              sum_lon / static_cast<double>(accepted.size())};
            double max_d = 0.0;
            for (const auto& p : accepted) {
                max_d = std::max(max_d, geo::distance_km(result.estimate, p));
            }
            // Half a cell diagonal accounts for grid discretization.
            const double cell_km = 2.0 * circles.front().radius_km / n;
            result.confidence_radius_km = max_d + cell_km * 0.7071;
            result.region_area_km2 = area;
            return result;
        }

        // Empty intersection: measurement noise made some bound too tight;
        // relax all radii and retry, as CBG implementations do.
        for (auto& c : circles) c.radius_km *= config_.relax_step;
    }
    cbg_metrics().invalid.inc();
    return result;  // invalid
}

}  // namespace ytcdn::geoloc
