#pragma once

#include <string>
#include <vector>

#include "geo/city.hpp"
#include "net/rtt_model.hpp"
#include "sim/random.hpp"

namespace ytcdn::geoloc {

/// A measurement landmark: a host with precisely known coordinates that can
/// ping arbitrary targets. The paper uses 215 PlanetLab nodes.
struct Landmark {
    std::string name;
    const geo::City* city = nullptr;
    net::NetSite site;
};

/// Number of landmarks per continent; defaults reproduce the paper's
/// PlanetLab set: "97 in North America, 82 in Europe, 24 in Asia, 8 in
/// South America, 3 in Oceania and 1 in Africa" (Section V).
struct LandmarkCounts {
    int north_america = 97;
    int europe = 82;
    int asia = 24;
    int south_america = 8;
    int oceania = 3;
    int africa = 1;

    [[nodiscard]] int total() const noexcept {
        return north_america + europe + asia + south_america + oceania + africa;
    }
};

/// Builds a synthetic PlanetLab-like landmark set: nodes are placed in the
/// gazetteer's cities (round-robin per continent) with a few tens of km of
/// campus-level jitter, university-grade access latency, and unique network
/// site ids drawn from a reserved range.
[[nodiscard]] std::vector<Landmark> make_planetlab_landmarks(
    const geo::CityDatabase& cities, sim::Rng rng, const LandmarkCounts& counts = {});

}  // namespace ytcdn::geoloc
