#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "cdn/video.hpp"
#include "net/ip_address.hpp"
#include "sim/time.hpp"

namespace ytcdn::capture {

/// One line of a Tstat-style YouTube flow log: the per-flow statistics the
/// paper's datasets consist of ("the source and destination IP addresses,
/// the total number of bytes, the starting and ending time and both the
/// VideoID and the resolution of the video requested", Section III-B).
struct FlowRecord {
    net::IpAddress client_ip;
    net::IpAddress server_ip;
    sim::SimTime start = 0.0;
    sim::SimTime end = 0.0;
    /// Server-to-client payload bytes (what "flow size" means throughout
    /// the paper — the 1000-byte control/video threshold applies to this).
    std::uint64_t bytes = 0;
    cdn::VideoId video;
    cdn::Resolution resolution = cdn::Resolution::R360;

    [[nodiscard]] double duration() const noexcept { return end - start; }

    /// Serializes as one tab-separated log line.
    [[nodiscard]] std::string to_tsv() const;

    /// Parses a line produced by to_tsv(); nullopt on malformed input.
    [[nodiscard]] static std::optional<FlowRecord> from_tsv(std::string_view line);
};

std::ostream& operator<<(std::ostream& os, const FlowRecord& r);

/// What the sniffer sees on the wire for one TCP connection, before
/// classification: endpoints, timing, downstream volume and the first
/// client payload (the HTTP request) available for DPI.
///
/// The payload is a borrowed view: it must stay valid for the duration of
/// `Sniffer::observe`, which classifies synchronously and never retains it.
/// Emitters reuse a per-source buffer (or a string literal), so the
/// simulate→capture hand-off is allocation-free per flow.
struct ObservedFlow {
    net::IpAddress client_ip;
    net::IpAddress server_ip;
    sim::SimTime start = 0.0;
    sim::SimTime end = 0.0;
    std::uint64_t bytes_down = 0;
    std::string_view first_payload;
};

}  // namespace ytcdn::capture
