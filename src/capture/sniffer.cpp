#include "capture/sniffer.hpp"

#include <utility>

namespace ytcdn::capture {

Sniffer::Sniffer(std::string dataset_name) : name_(std::move(dataset_name)) {}

void Sniffer::observe(const ObservedFlow& flow) {
    ++observed_;
    if (auto record = classify_flow(flow)) {
        records_.push_back(*std::move(record));
    }
}

std::vector<FlowRecord> Sniffer::take_records() {
    auto out = std::move(records_);
    records_.clear();
    return out;
}

}  // namespace ytcdn::capture
