#include "capture/sniffer.hpp"

#include <utility>

namespace ytcdn::capture {

Sniffer::Sniffer(std::string dataset_name) : name_(std::move(dataset_name)) {}

void Sniffer::observe(const ObservedFlow& flow) {
    ++observed_;
    std::string_view host;
    if (auto record = classify_flow(flow, &host)) {
        hosts_.intern(host);
        ++classified_;
        if (sink_ != nullptr) {
            sink_->on_flow(*record);
        } else {
            records_.push_back(*std::move(record));
        }
    }
}

std::vector<FlowRecord> Sniffer::take_records() {
    auto out = std::move(records_);
    records_.clear();
    return out;
}

}  // namespace ytcdn::capture
