#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/classifier.hpp"
#include "capture/flow_record.hpp"
#include "capture/flow_sink.hpp"
#include "util/intern.hpp"

namespace ytcdn::capture {

/// A passive edge sniffer, standing in for Tstat on the probe PC.
///
/// It is attached at a vantage point's edge so it observes every TCP flow
/// between local clients and the outside; DPI picks out the YouTube video
/// flows and appends a flow-log record for each. All other traffic is
/// counted but discarded, like Tstat with only the YouTube module enabled.
class Sniffer {
public:
    explicit Sniffer(std::string dataset_name);

    [[nodiscard]] const std::string& dataset_name() const noexcept { return name_; }

    /// Feeds one completed flow through classification.
    void observe(const ObservedFlow& flow);

    /// Streaming capture: when a sink is installed, classified records are
    /// forwarded to it instead of accumulating in `records_` — the sniffer
    /// then holds no per-flow state and records()/take_records() stay
    /// empty. Classification, host interning and the observed/ignored
    /// counters are identical in both modes. Null restores accumulation.
    void set_sink(FlowSink* sink) noexcept { sink_ = sink; }
    [[nodiscard]] bool streaming() const noexcept { return sink_ != nullptr; }

    [[nodiscard]] const std::vector<FlowRecord>& records() const noexcept {
        return records_;
    }
    /// Moves the records out (the sniffer is then empty).
    [[nodiscard]] std::vector<FlowRecord> take_records();

    [[nodiscard]] std::uint64_t flows_observed() const noexcept { return observed_; }
    [[nodiscard]] std::uint64_t flows_classified() const noexcept {
        return classified_;
    }
    [[nodiscard]] std::uint64_t flows_ignored() const noexcept {
        return observed_ - classified_;
    }

    /// Content-server hostnames seen by DPI, interned in first-seen order.
    /// The sniffer is thread-confined (one per vantage point); the study
    /// join merges the per-VP shards in VP order (util::Interner protocol),
    /// so merged ids are deterministic at any worker count.
    [[nodiscard]] const util::Interner& hosts() const noexcept { return hosts_; }

private:
    std::string name_;
    std::vector<FlowRecord> records_;
    util::Interner hosts_;
    FlowSink* sink_ = nullptr;
    std::uint64_t observed_ = 0;
    std::uint64_t classified_ = 0;
};

}  // namespace ytcdn::capture
