#include "capture/classifier.hpp"

#include "cdn/http.hpp"

namespace ytcdn::capture {

std::optional<FlowRecord> classify_flow(const ObservedFlow& flow) {
    return classify_flow(flow, nullptr);
}

std::optional<FlowRecord> classify_flow(const ObservedFlow& flow,
                                        std::string_view* host_out) {
    const auto request = cdn::parse_request_view(flow.first_payload);
    if (!request) return std::nullopt;
    const auto resolution = cdn::resolution_from_itag(request->itag);
    if (!resolution) return std::nullopt;  // unreachable: parse checks itags

    FlowRecord r;
    r.client_ip = flow.client_ip;
    r.server_ip = flow.server_ip;
    r.start = flow.start;
    r.end = flow.end;
    r.bytes = flow.bytes_down;
    r.video = request->video;
    r.resolution = *resolution;
    if (host_out != nullptr) *host_out = request->host;
    return r;
}

std::optional<ClassifyError> classify_error(std::string_view payload) {
    if (!payload.starts_with("GET ") && !payload.starts_with("POST ")) {
        return ClassifyError::NotHttp;
    }
    if (!cdn::parse_request(payload)) return ClassifyError::NotVideoRequest;
    return std::nullopt;
}

}  // namespace ytcdn::capture
