#include "capture/flow_log.hpp"

#include <sstream>
#include <string>

#include "util/io.hpp"

namespace ytcdn::capture {

namespace {
constexpr std::string_view kHeader =
    "#client_ip\tserver_ip\tstart\tend\tbytes\tvideo_id\titag";
}

void write_flow_log(std::ostream& os, const std::vector<FlowRecord>& records) {
    os << kHeader << '\n';
    for (const auto& r : records) os << r.to_tsv() << '\n';
}

void write_flow_log(const std::filesystem::path& path,
                    const std::vector<FlowRecord>& records) {
    // Through the injectable facade: atomic (tmp + fsync + rename), so a
    // crashed or faulted writer never leaves a torn TSV under `path`.
    util::io::write_file_atomic(path,
                                [&](std::ostream& os) {
                                    write_flow_log(os, records);
                                    return static_cast<bool>(os);
                                })
        .context("write_flow_log " + path.string())
        .value_or_throw();
}

util::Result<std::vector<FlowRecord>> read_flow_log_result(std::istream& is) {
    std::vector<FlowRecord> out;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line.front() == '#') continue;
        const auto record = FlowRecord::from_tsv(line);
        if (!record) {
            return error_at_line(ErrorCode::Parse, "read_flow_log: malformed record",
                                 line_no);
        }
        out.push_back(*record);
    }
    return out;
}

util::Result<std::vector<FlowRecord>> read_flow_log_result(
    const std::filesystem::path& path) {
    auto data = util::io::read_file(path);
    if (!data) {
        return std::move(data).context("read_flow_log").error();
    }
    std::istringstream is(std::move(data).value());
    return read_flow_log_result(is);
}

std::vector<FlowRecord> read_flow_log(std::istream& is) {
    return read_flow_log_result(is).value_or_throw();
}

std::vector<FlowRecord> read_flow_log(const std::filesystem::path& path) {
    return read_flow_log_result(path).value_or_throw();
}

}  // namespace ytcdn::capture
