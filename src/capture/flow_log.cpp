#include "capture/flow_log.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace ytcdn::capture {

namespace {
constexpr std::string_view kHeader =
    "#client_ip\tserver_ip\tstart\tend\tbytes\tvideo_id\titag";
}

void write_flow_log(std::ostream& os, const std::vector<FlowRecord>& records) {
    os << kHeader << '\n';
    for (const auto& r : records) os << r.to_tsv() << '\n';
}

void write_flow_log(const std::filesystem::path& path,
                    const std::vector<FlowRecord>& records) {
    std::ofstream os(path);
    if (!os) throw Error(ErrorCode::Io, "write_flow_log: cannot open " + path.string());
    write_flow_log(os, records);
    if (!os) throw Error(ErrorCode::Io, "write_flow_log: write failed for " + path.string());
}

util::Result<std::vector<FlowRecord>> read_flow_log_result(std::istream& is) {
    std::vector<FlowRecord> out;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line.front() == '#') continue;
        const auto record = FlowRecord::from_tsv(line);
        if (!record) {
            return error_at_line(ErrorCode::Parse, "read_flow_log: malformed record",
                                 line_no);
        }
        out.push_back(*record);
    }
    return out;
}

util::Result<std::vector<FlowRecord>> read_flow_log_result(
    const std::filesystem::path& path) {
    std::ifstream is(path);
    if (!is) {
        return Error(ErrorCode::Io, "read_flow_log: cannot open " + path.string());
    }
    return read_flow_log_result(is);
}

std::vector<FlowRecord> read_flow_log(std::istream& is) {
    return read_flow_log_result(is).value_or_throw();
}

std::vector<FlowRecord> read_flow_log(const std::filesystem::path& path) {
    return read_flow_log_result(path).value_or_throw();
}

}  // namespace ytcdn::capture
