#pragma once

#include <filesystem>
#include <vector>

#include "capture/flow_record.hpp"
#include "util/error.hpp"

namespace ytcdn::capture {

/// Extension-dispatched flow-log IO: ".yfl" selects the compact binary
/// format, anything else the Tstat-style TSV. One call site for tools,
/// examples and tests.
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_any_log_result(
    const std::filesystem::path& path);
[[nodiscard]] std::vector<FlowRecord> read_any_log(const std::filesystem::path& path);
void write_any_log(const std::filesystem::path& path,
                   const std::vector<FlowRecord>& records);

/// True when the path will be treated as binary.
[[nodiscard]] bool is_binary_log_path(const std::filesystem::path& path);

}  // namespace ytcdn::capture
