#include "capture/dataset.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_set>

namespace ytcdn::capture {

DatasetSummary Dataset::summary() const {
    DatasetSummary s;
    s.flows = records.size();
    std::uint64_t bytes = 0;
    std::unordered_set<net::IpAddress> servers;
    std::unordered_set<net::IpAddress> clients;
    for (const auto& r : records) {
        bytes += r.bytes;
        servers.insert(r.server_ip);
        clients.insert(r.client_ip);
    }
    s.volume_gb = static_cast<double>(bytes) / 1e9;
    s.distinct_servers = servers.size();
    s.distinct_clients = clients.size();
    return s;
}

void Dataset::sort_by_time() {
    std::sort(records.begin(), records.end(),
              [](const FlowRecord& a, const FlowRecord& b) {
                  return std::tie(a.start, a.end, a.client_ip, a.server_ip) <
                         std::tie(b.start, b.end, b.client_ip, b.server_ip);
              });
}

}  // namespace ytcdn::capture
