#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "capture/flow_record.hpp"
#include "util/error.hpp"

namespace ytcdn::capture {

/// Tstat-style flow-log persistence: one TSV line per YouTube video flow,
/// '#'-prefixed header. Round-trips exactly with read_flow_log().
void write_flow_log(std::ostream& os, const std::vector<FlowRecord>& records);
void write_flow_log(const std::filesystem::path& path,
                    const std::vector<FlowRecord>& records);

/// Result-returning readers: malformed lines yield ErrorCode::Parse with the
/// 1-based line number in the provenance; unopenable paths yield
/// ErrorCode::Io.
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_flow_log_result(
    std::istream& is);
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_flow_log_result(
    const std::filesystem::path& path);

/// Throwing wrappers around the *_result readers; the thrown ytcdn::Error
/// derives std::runtime_error so existing catch sites are unaffected.
[[nodiscard]] std::vector<FlowRecord> read_flow_log(std::istream& is);
[[nodiscard]] std::vector<FlowRecord> read_flow_log(const std::filesystem::path& path);

}  // namespace ytcdn::capture
