#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Tstat-style flow-log persistence: one TSV line per YouTube video flow,
/// '#'-prefixed header. Round-trips exactly with read_flow_log().
void write_flow_log(std::ostream& os, const std::vector<FlowRecord>& records);
void write_flow_log(const std::filesystem::path& path,
                    const std::vector<FlowRecord>& records);

/// Reads a log written by write_flow_log(). Throws std::runtime_error on
/// unreadable files or malformed lines (line number included).
[[nodiscard]] std::vector<FlowRecord> read_flow_log(std::istream& is);
[[nodiscard]] std::vector<FlowRecord> read_flow_log(const std::filesystem::path& path);

}  // namespace ytcdn::capture
