#pragma once

#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Consumer of classified flow records in emission order. Installing one on
/// a Sniffer turns the capture path into a stream: records are forwarded as
/// they are observed instead of accumulating in memory, which is what lets
/// a 10M+-session run fit a bounded footprint (DESIGN.md §16).
///
/// Ordering contract: the player emits every flow at its *start* event (the
/// end is analytically known at that point), so a sniffer's stream arrives
/// sorted by non-decreasing start time — the same order the incremental
/// analysis modules require.
class FlowSink {
public:
    virtual ~FlowSink() = default;
    virtual void on_flow(const FlowRecord& record) = 0;
};

}  // namespace ytcdn::capture
