#include "capture/log_io.hpp"

#include "capture/binary_log.hpp"
#include "capture/flow_log.hpp"

namespace ytcdn::capture {

bool is_binary_log_path(const std::filesystem::path& path) {
    return path.extension() == ".yfl";
}

util::Result<std::vector<FlowRecord>> read_any_log_result(
    const std::filesystem::path& path) {
    return is_binary_log_path(path) ? read_binary_log_result(path)
                                    : read_flow_log_result(path);
}

std::vector<FlowRecord> read_any_log(const std::filesystem::path& path) {
    return read_any_log_result(path).value_or_throw();
}

void write_any_log(const std::filesystem::path& path,
                   const std::vector<FlowRecord>& records) {
    if (is_binary_log_path(path)) {
        write_binary_log(path, records);
    } else {
        write_flow_log(path, records);
    }
}

}  // namespace ytcdn::capture
