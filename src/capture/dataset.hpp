#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Table I-style per-dataset summary.
struct DatasetSummary {
    std::uint64_t flows = 0;
    double volume_gb = 0.0;
    std::size_t distinct_servers = 0;
    std::size_t distinct_clients = 0;
};

/// One vantage point's week of YouTube flow records, plus metadata.
/// This is the unit every analysis in the paper operates on.
struct Dataset {
    std::string name;
    std::vector<FlowRecord> records;

    [[nodiscard]] DatasetSummary summary() const;

    /// Sorts records by (start, end, client, server); the analyses assume
    /// time order within a client.
    void sort_by_time();
};

}  // namespace ytcdn::capture
