#pragma once

#include <optional>
#include <string_view>

#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Why the classifier rejected a flow, for the sniffer's statistics.
enum class ClassifyError {
    NotHttp,         // payload is not an HTTP GET
    NotVideoRequest, // HTTP but not a /videoplayback request to a video host
};

/// DPI classification of one observed flow, mirroring Tstat's YouTube
/// module: the payload must contain a well-formed /videoplayback GET with a
/// video host, a valid 11-character VideoID and a known itag. Returns the
/// flow-log record on success.
[[nodiscard]] std::optional<FlowRecord> classify_flow(const ObservedFlow& flow);

/// As above, but additionally reports the request's Host header as a view
/// into `flow.first_payload` (valid as long as the payload bytes), so the
/// sniffer can intern hostnames without re-parsing. `host_out` may be null.
[[nodiscard]] std::optional<FlowRecord> classify_flow(const ObservedFlow& flow,
                                                      std::string_view* host_out);

/// Inspects only the payload and reports why it is not a YouTube video
/// request, for accounting; nullopt when it *is* one.
[[nodiscard]] std::optional<ClassifyError> classify_error(std::string_view payload);

}  // namespace ytcdn::capture
