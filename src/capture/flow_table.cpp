#include "capture/flow_table.hpp"

#include <utility>

namespace ytcdn::capture {

FlowRecord FlowTable::row(std::size_t i) const {
    FlowRecord r;
    r.client_ip = client_ip[i];
    r.server_ip = server_ip[i];
    r.start = start[i];
    r.end = end[i];
    r.bytes = bytes[i];
    r.video = video[i];
    r.resolution = resolution[i];
    return r;
}

FlowTable FlowTable::from_records(std::string name,
                                  std::span<const FlowRecord> records) {
    FlowTable t;
    t.name = std::move(name);
    const std::size_t n = records.size();
    t.client_ip.reserve(n);
    t.server_ip.reserve(n);
    t.start.reserve(n);
    t.end.reserve(n);
    t.bytes.reserve(n);
    t.video.reserve(n);
    t.resolution.reserve(n);
    for (const auto& r : records) {
        t.client_ip.push_back(r.client_ip);
        t.server_ip.push_back(r.server_ip);
        t.start.push_back(r.start);
        t.end.push_back(r.end);
        t.bytes.push_back(r.bytes);
        t.video.push_back(r.video);
        t.resolution.push_back(r.resolution);
    }
    return t;
}

FlowTable FlowTable::from_dataset(const Dataset& dataset) {
    return from_records(dataset.name, dataset.records);
}

}  // namespace ytcdn::capture
