#include "capture/flow_record.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

namespace ytcdn::capture {

namespace {

std::vector<std::string_view> split_tabs(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t pos = 0;
    while (pos <= line.size()) {
        const std::size_t tab = line.find('\t', pos);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(pos));
            break;
        }
        fields.push_back(line.substr(pos, tab - pos));
        pos = tab + 1;
    }
    return fields;
}

std::optional<double> parse_double(std::string_view s) {
    double v = 0.0;
    const auto [next, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || next != s.data() + s.size()) return std::nullopt;
    // from_chars happily parses "nan"/"inf"; timestamps must be finite.
    if (!std::isfinite(v)) return std::nullopt;
    return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
    std::uint64_t v = 0;
    const auto [next, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || next != s.data() + s.size()) return std::nullopt;
    return v;
}

}  // namespace

std::string FlowRecord::to_tsv() const {
    char times[64];
    std::snprintf(times, sizeof(times), "%.6f\t%.6f", start, end);
    std::string out;
    out.reserve(128);
    out += client_ip.to_string();
    out += '\t';
    out += server_ip.to_string();
    out += '\t';
    out += times;
    out += '\t';
    out += std::to_string(bytes);
    out += '\t';
    out += video.to_string();
    out += '\t';
    out += std::to_string(itag_of(resolution));
    return out;
}

std::optional<FlowRecord> FlowRecord::from_tsv(std::string_view line) {
    const auto fields = split_tabs(line);
    if (fields.size() != 7) return std::nullopt;

    const auto client = net::IpAddress::parse(fields[0]);
    const auto server = net::IpAddress::parse(fields[1]);
    const auto start = parse_double(fields[2]);
    const auto end = parse_double(fields[3]);
    const auto bytes = parse_u64(fields[4]);
    const auto video = cdn::VideoId::parse(fields[5]);
    const auto itag = parse_u64(fields[6]);
    if (!client || !server || !start || !end || !bytes || !video || !itag) {
        return std::nullopt;
    }
    const auto resolution = cdn::resolution_from_itag(static_cast<int>(*itag));
    if (!resolution) return std::nullopt;

    FlowRecord r;
    r.client_ip = *client;
    r.server_ip = *server;
    r.start = *start;
    r.end = *end;
    r.bytes = *bytes;
    r.video = *video;
    r.resolution = *resolution;
    return r;
}

std::ostream& operator<<(std::ostream& os, const FlowRecord& r) {
    return os << r.to_tsv();
}

}  // namespace ytcdn::capture
