#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "capture/dataset.hpp"
#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Structure-of-arrays mirror of a Dataset's flow records.
///
/// The §VII analyses are column scans: each pass touches two or three
/// fields of every record (bytes + server_ip + start is the common shape)
/// while the AoS FlowRecord drags all seven through the cache per row.
/// Building the table once per dataset and handing the analyses contiguous
/// columns keeps those passes bandwidth-bound on exactly the bytes they
/// read.
///
/// Row order is the dataset's record order (the analyses rely on
/// sort_by_time having run), so row i of every column describes
/// dataset.records[i] and results are bit-identical to the AoS scans.
/// The table is an immutable snapshot: it borrows nothing from the dataset
/// and datasets are not mutated after assembly.
struct FlowTable {
    std::string name;  // dataset name, for labelling series
    std::vector<net::IpAddress> client_ip;
    std::vector<net::IpAddress> server_ip;
    std::vector<sim::SimTime> start;
    std::vector<sim::SimTime> end;
    std::vector<std::uint64_t> bytes;
    std::vector<cdn::VideoId> video;
    std::vector<cdn::Resolution> resolution;

    [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
    [[nodiscard]] bool empty() const noexcept { return bytes.empty(); }

    /// Gathers row i back into the AoS shape (tests, spot checks).
    [[nodiscard]] FlowRecord row(std::size_t i) const;

    [[nodiscard]] static FlowTable from_records(std::string name,
                                                std::span<const FlowRecord> records);
    [[nodiscard]] static FlowTable from_dataset(const Dataset& dataset);
};

}  // namespace ytcdn::capture
