#include "capture/binary_log.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ytcdn::capture {

namespace {

constexpr char kMagic[4] = {'Y', 'F', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kRecordSize = 4 + 4 + 8 + 8 + 8 + 8 + 1;

static_assert(std::endian::native == std::endian::little,
              "binary log assumes a little-endian host");

template <typename T>
void put(std::string& buf, T value) {
    const auto old = buf.size();
    buf.resize(old + sizeof(T));
    std::memcpy(buf.data() + old, &value, sizeof(T));
}

template <typename T>
T take(const char*& p) {
    T value;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    return value;
}

}  // namespace

std::size_t binary_log_size(std::size_t n) noexcept {
    return kHeaderSize + n * kRecordSize;
}

void write_binary_log(std::ostream& os, const std::vector<FlowRecord>& records) {
    std::string buf;
    buf.reserve(binary_log_size(records.size()));
    buf.append(kMagic, sizeof(kMagic));
    put<std::uint32_t>(buf, kVersion);
    put<std::uint64_t>(buf, records.size());
    for (const auto& r : records) {
        put<std::uint32_t>(buf, r.client_ip.value());
        put<std::uint32_t>(buf, r.server_ip.value());
        put<double>(buf, r.start);
        put<double>(buf, r.end);
        put<std::uint64_t>(buf, r.bytes);
        put<std::uint64_t>(buf, r.video.value());
        put<std::uint8_t>(buf, static_cast<std::uint8_t>(cdn::itag_of(r.resolution)));
    }
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os) throw std::runtime_error("write_binary_log: stream write failed");
}

void write_binary_log(const std::filesystem::path& path,
                      const std::vector<FlowRecord>& records) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("write_binary_log: cannot open " + path.string());
    write_binary_log(os, records);
}

std::vector<FlowRecord> read_binary_log(std::istream& is) {
    std::string data{std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>()};
    if (data.size() < kHeaderSize) {
        throw std::runtime_error("read_binary_log: truncated header");
    }
    const char* p = data.data();
    if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
        throw std::runtime_error("read_binary_log: bad magic");
    }
    p += sizeof(kMagic);
    const auto version = take<std::uint32_t>(p);
    if (version != kVersion) {
        throw std::runtime_error("read_binary_log: unsupported version " +
                                 std::to_string(version));
    }
    const auto count = take<std::uint64_t>(p);
    if (data.size() != binary_log_size(count)) {
        throw std::runtime_error("read_binary_log: size mismatch (declared " +
                                 std::to_string(count) + " records)");
    }

    std::vector<FlowRecord> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        FlowRecord r;
        r.client_ip = net::IpAddress{take<std::uint32_t>(p)};
        r.server_ip = net::IpAddress{take<std::uint32_t>(p)};
        r.start = take<double>(p);
        r.end = take<double>(p);
        if (!std::isfinite(r.start) || !std::isfinite(r.end)) {
            throw std::runtime_error("read_binary_log: non-finite timestamp in record " +
                                     std::to_string(i));
        }
        r.bytes = take<std::uint64_t>(p);
        r.video = cdn::VideoId{take<std::uint64_t>(p)};
        const auto itag = take<std::uint8_t>(p);
        const auto resolution = cdn::resolution_from_itag(itag);
        if (!resolution) {
            throw std::runtime_error("read_binary_log: bad itag in record " +
                                     std::to_string(i));
        }
        r.resolution = *resolution;
        out.push_back(r);
    }
    return out;
}

std::vector<FlowRecord> read_binary_log(const std::filesystem::path& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("read_binary_log: cannot open " + path.string());
    return read_binary_log(is);
}

}  // namespace ytcdn::capture
