#include "capture/binary_log.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace ytcdn::capture {

namespace {

constexpr char kMagicV1[4] = {'Y', 'F', 'L', '1'};
constexpr char kMagicV2[4] = {'Y', 'F', 'L', '2'};
constexpr char kTrailerMagic[4] = {'Y', 'F', 'L', 'E'};
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;
constexpr std::size_t kHeaderSizeV1 = 4 + 4 + 8;
constexpr std::size_t kHeaderSizeV2 = 4 + 4 + 8 + 4;  // + header CRC
constexpr std::size_t kRecordSize = 4 + 4 + 8 + 8 + 8 + 8 + 1;
constexpr std::size_t kBlockHeaderSize = 4 + 4;  // records-in-block + CRC
constexpr std::size_t kTrailerSize = 4 + 8 + 4;  // magic + count + CRC
constexpr std::uint64_t kBlockRecords = 4096;

static_assert(std::endian::native == std::endian::little,
              "binary log assumes a little-endian host");

template <typename T>
void put(std::string& buf, T value) {
    const auto old = buf.size();
    buf.resize(old + sizeof(T));
    std::memcpy(buf.data() + old, &value, sizeof(T));
}

template <typename T>
T take(const char*& p) {
    T value;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    return value;
}

std::uint64_t num_blocks(std::uint64_t n) {
    return (n + kBlockRecords - 1) / kBlockRecords;
}

void put_record(std::string& buf, const FlowRecord& r) {
    put<std::uint32_t>(buf, r.client_ip.value());
    put<std::uint32_t>(buf, r.server_ip.value());
    put<double>(buf, r.start);
    put<double>(buf, r.end);
    put<std::uint64_t>(buf, r.bytes);
    put<std::uint64_t>(buf, r.video.value());
    put<std::uint8_t>(buf, static_cast<std::uint8_t>(cdn::itag_of(r.resolution)));
}

/// Parses one 41-byte record, validating field values. `offset` is the
/// record's absolute byte offset in the stream, for provenance.
util::Result<FlowRecord> parse_record(const char* p, std::uint64_t index,
                                      std::uint64_t offset) {
    FlowRecord r;
    r.client_ip = net::IpAddress{take<std::uint32_t>(p)};
    r.server_ip = net::IpAddress{take<std::uint32_t>(p)};
    r.start = take<double>(p);
    r.end = take<double>(p);
    if (!std::isfinite(r.start) || !std::isfinite(r.end)) {
        return error_at_record(ErrorCode::BadField, "non-finite timestamp",
                               index, offset);
    }
    r.bytes = take<std::uint64_t>(p);
    r.video = cdn::VideoId{take<std::uint64_t>(p)};
    const auto itag = take<std::uint8_t>(p);
    const auto resolution = cdn::resolution_from_itag(itag);
    if (!resolution) {
        return error_at_record(ErrorCode::BadField,
                               "bad itag " + std::to_string(itag), index, offset);
    }
    r.resolution = *resolution;
    return r;
}

util::Result<std::vector<FlowRecord>> parse_v1(const std::string& data) {
    const char* p = data.data() + sizeof(kMagicV1) + sizeof(std::uint32_t);
    const auto count = take<std::uint64_t>(p);
    // Reject counts the stream cannot possibly hold before doing size
    // arithmetic with them: a tampered count must not overflow
    // binary_log_size_v1 into a value that happens to match.
    if (count > (data.size() - kHeaderSizeV1) / kRecordSize ||
        data.size() != binary_log_size_v1(count)) {
        return Error(ErrorCode::CountMismatch,
                     "v1 size mismatch: declared " + std::to_string(count) +
                         " records (" + std::to_string(binary_log_size_v1(count)) +
                         " bytes), stream holds " + std::to_string(data.size()));
    }
    std::vector<FlowRecord> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t offset = kHeaderSizeV1 + i * kRecordSize;
        auto record = parse_record(data.data() + offset, i, offset);
        if (!record) return record.error();
        out.push_back(std::move(record).value());
    }
    return out;
}

util::Result<std::vector<FlowRecord>> parse_v2(const std::string& data) {
    if (data.size() < kHeaderSizeV2 + kTrailerSize) {
        return Error(ErrorCode::Truncated, "truncated v2 header/trailer");
    }
    const std::uint32_t header_crc =
        util::crc32(std::string_view(data).substr(0, kHeaderSizeV2 - 4));
    const char* p = data.data() + sizeof(kMagicV2) + sizeof(std::uint32_t);
    const auto count = take<std::uint64_t>(p);
    if (take<std::uint32_t>(p) != header_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "header CRC mismatch",
                             kHeaderSizeV2 - 4);
    }
    // As in parse_v1: bound the count before size arithmetic so a tampered
    // value cannot overflow binary_log_size into a spurious match.
    if (count > (data.size() - kHeaderSizeV2 - kTrailerSize) / kRecordSize ||
        data.size() != binary_log_size(count)) {
        return Error(ErrorCode::CountMismatch,
                     "v2 size mismatch: declared " + std::to_string(count) +
                         " records (" + std::to_string(binary_log_size(count)) +
                         " bytes), stream holds " + std::to_string(data.size()));
    }

    std::vector<FlowRecord> out;
    out.reserve(count);
    std::uint64_t offset = kHeaderSizeV2;
    std::uint64_t record_index = 0;
    for (std::uint64_t block = 0; block < num_blocks(count); ++block) {
        const std::uint64_t expected =
            std::min<std::uint64_t>(kBlockRecords, count - record_index);
        const char* bp = data.data() + offset;
        const auto block_records = take<std::uint32_t>(bp);
        const auto block_crc = take<std::uint32_t>(bp);
        if (block_records != expected) {
            return error_at_record(
                ErrorCode::CountMismatch,
                "block " + std::to_string(block) + " declares " +
                    std::to_string(block_records) + " records, expected " +
                    std::to_string(expected),
                record_index, offset);
        }
        const std::uint64_t payload_offset = offset + kBlockHeaderSize;
        const std::uint64_t payload_size = expected * kRecordSize;
        const std::uint32_t actual_crc = util::crc32(
            std::string_view(data).substr(payload_offset, payload_size));
        if (actual_crc != block_crc) {
            return error_at_record(
                ErrorCode::ChecksumMismatch,
                "block " + std::to_string(block) + " (records " +
                    std::to_string(record_index) + ".." +
                    std::to_string(record_index + expected - 1) + ") CRC mismatch",
                record_index, payload_offset);
        }
        for (std::uint64_t i = 0; i < expected; ++i) {
            const std::uint64_t record_offset = payload_offset + i * kRecordSize;
            auto record =
                parse_record(data.data() + record_offset, record_index, record_offset);
            if (!record) return record.error();
            out.push_back(std::move(record).value());
            ++record_index;
        }
        offset = payload_offset + payload_size;
    }

    const char* tp = data.data() + offset;
    if (std::memcmp(tp, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
        return error_at_byte(ErrorCode::BadMagic, "bad trailer magic", offset);
    }
    tp += sizeof(kTrailerMagic);
    const auto trailer_count = take<std::uint64_t>(tp);
    const std::uint32_t trailer_crc = util::crc32(
        std::string_view(data).substr(offset, kTrailerSize - 4));
    if (take<std::uint32_t>(tp) != trailer_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "trailer CRC mismatch",
                             offset + kTrailerSize - 4);
    }
    if (trailer_count != count) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "trailer count " + std::to_string(trailer_count) +
                                 " != header count " + std::to_string(count),
                             offset + sizeof(kTrailerMagic));
    }
    return out;
}

std::string serialize_v2(const std::vector<FlowRecord>& records) {
    std::string buf;
    buf.reserve(binary_log_size(records.size()));
    buf.append(kMagicV2, sizeof(kMagicV2));
    put<std::uint32_t>(buf, kVersionV2);
    put<std::uint64_t>(buf, records.size());
    put<std::uint32_t>(buf, util::crc32(buf));

    std::size_t i = 0;
    while (i < records.size()) {
        const std::size_t n =
            std::min<std::size_t>(kBlockRecords, records.size() - i);
        std::string payload;
        payload.reserve(n * kRecordSize);
        for (std::size_t k = 0; k < n; ++k) put_record(payload, records[i + k]);
        put<std::uint32_t>(buf, static_cast<std::uint32_t>(n));
        put<std::uint32_t>(buf, util::crc32(payload));
        buf += payload;
        i += n;
    }

    std::string trailer(kTrailerMagic, sizeof(kTrailerMagic));
    put<std::uint64_t>(trailer, records.size());
    put<std::uint32_t>(trailer, util::crc32(trailer));
    buf += trailer;
    return buf;
}

}  // namespace

std::size_t binary_log_size(std::size_t n) noexcept {
    return kHeaderSizeV2 + num_blocks(n) * kBlockHeaderSize + n * kRecordSize +
           kTrailerSize;
}

std::size_t binary_log_size_v1(std::size_t n) noexcept {
    return kHeaderSizeV1 + n * kRecordSize;
}

void write_binary_log(std::ostream& os, const std::vector<FlowRecord>& records) {
    const std::string buf = serialize_v2(records);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os) throw Error(ErrorCode::Io, "write_binary_log: stream write failed");
}

void write_binary_log_v1(std::ostream& os, const std::vector<FlowRecord>& records) {
    std::string buf;
    buf.reserve(binary_log_size_v1(records.size()));
    buf.append(kMagicV1, sizeof(kMagicV1));
    put<std::uint32_t>(buf, kVersionV1);
    put<std::uint64_t>(buf, records.size());
    for (const auto& r : records) put_record(buf, r);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!os) throw Error(ErrorCode::Io, "write_binary_log_v1: stream write failed");
}

util::Result<void> write_binary_log_result(const std::filesystem::path& path,
                                           const std::vector<FlowRecord>& records) {
    return util::atomic_write_file(path, serialize_v2(records))
        .context("write_binary_log " + path.string());
}

void write_binary_log(const std::filesystem::path& path,
                      const std::vector<FlowRecord>& records) {
    write_binary_log_result(path, records).value_or_throw();
}

util::Result<std::vector<FlowRecord>> read_binary_log_result(std::istream& is) {
    std::string data{std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>()};
    if (data.size() < kHeaderSizeV1) {
        return Error(ErrorCode::Truncated,
                     "truncated header: " + std::to_string(data.size()) + " bytes");
    }
    const char* p = data.data() + sizeof(kMagicV1);
    const char* magic = data.data();
    const auto version = take<std::uint32_t>(p);
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
        if (version != kVersionV1) {
            return Error(ErrorCode::UnsupportedVersion,
                         "magic YFL1 with version " + std::to_string(version));
        }
        return parse_v1(data);
    }
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
        if (version != kVersionV2) {
            return Error(ErrorCode::UnsupportedVersion,
                         "magic YFL2 with version " + std::to_string(version));
        }
        return parse_v2(data);
    }
    return error_at_byte(ErrorCode::BadMagic, "bad magic", 0);
}

util::Result<std::vector<FlowRecord>> read_binary_log_result(
    const std::filesystem::path& path) {
    auto data = util::io::read_file(path);
    if (!data) {
        return std::move(data).context("read_binary_log " + path.string()).error();
    }
    std::istringstream is(std::move(data).value());
    return read_binary_log_result(is).context("read_binary_log " + path.string());
}

std::vector<FlowRecord> read_binary_log(std::istream& is) {
    return read_binary_log_result(is).value_or_throw();
}

std::vector<FlowRecord> read_binary_log(const std::filesystem::path& path) {
    return read_binary_log_result(path).value_or_throw();
}

// --- streaming writer --------------------------------------------------------

namespace {

/// The 20-byte v2 header for `count` records (shared by the up-front
/// zero-count write and the finish()-time patch, so both take the exact
/// serialize_v2 layout).
std::string v2_header(std::uint64_t count) {
    std::string header(kMagicV2, sizeof(kMagicV2));
    put<std::uint32_t>(header, kVersionV2);
    put<std::uint64_t>(header, count);
    put<std::uint32_t>(header, util::crc32(header));
    return header;
}

}  // namespace

util::Result<FlowLogWriter> FlowLogWriter::create(
    const std::filesystem::path& path) {
    auto writer = util::io::FileWriter::create(path);
    if (!writer) {
        return std::move(writer).context("FlowLogWriter " + path.string()).error();
    }
    FlowLogWriter out;
    out.writer_ = std::move(writer).value();
    out.block_.reserve(kBlockRecords * kRecordSize);
    if (auto r = out.writer_.append(v2_header(0)); !r) {
        return std::move(r).context("FlowLogWriter " + path.string()).error();
    }
    return out;
}

util::Result<void> FlowLogWriter::flush_block() {
    if (block_records_ == 0) return {};
    std::string frame;
    frame.reserve(kBlockHeaderSize + block_.size());
    put<std::uint32_t>(frame, block_records_);
    put<std::uint32_t>(frame, util::crc32(block_));
    frame += block_;
    block_.clear();
    block_records_ = 0;
    return writer_.append(frame);
}

util::Result<void> FlowLogWriter::add(const FlowRecord& record) {
    if (!writer_.is_open()) {
        return Error(ErrorCode::Io, "FlowLogWriter: not open");
    }
    put_record(block_, record);
    ++block_records_;
    ++count_;
    if (block_records_ == kBlockRecords) return flush_block();
    return {};
}

util::Result<void> FlowLogWriter::finish() {
    if (!writer_.is_open()) {
        return Error(ErrorCode::Io, "FlowLogWriter: not open");
    }
    const std::string where = writer_.path().string();
    const auto fail = [this, &where](Error error) {
        writer_.discard();
        return std::move(error).context("FlowLogWriter " + where);
    };
    if (auto r = flush_block(); !r) return fail(std::move(r).error());
    std::string trailer(kTrailerMagic, sizeof(kTrailerMagic));
    put<std::uint64_t>(trailer, count_);
    put<std::uint32_t>(trailer, util::crc32(trailer));
    if (auto r = writer_.append(trailer); !r) return fail(std::move(r).error());
    if (auto r = writer_.write_at(0, v2_header(count_)); !r) {
        return fail(std::move(r).error());
    }
    return writer_.publish().context("FlowLogWriter " + where);
}

// --- streaming reader --------------------------------------------------------

util::Result<FlowLogReader> FlowLogReader::open(const std::filesystem::path& path,
                                                std::size_t chunk_bytes) {
    auto reader = util::io::FileReader::open(path);
    if (!reader) {
        return std::move(reader).context("FlowLogReader " + path.string()).error();
    }
    // The batch parser sees the whole stream at once and validates the
    // declared count against the total size *before* touching any block;
    // replicating that check here (from the file's stat size) keeps the two
    // readers' error taxonomies identical — a truncated log fails with the
    // same CountMismatch either way, not Truncated from whichever block the
    // incremental reader happened to be in.
    std::error_code size_ec;
    const std::uint64_t file_size = std::filesystem::file_size(path, size_ec);
    if (size_ec) {
        return Error(ErrorCode::Io, "stat failed for " + path.string() + ": " +
                                        size_ec.message());
    }

    FlowLogReader out;
    out.reader_ = std::move(reader).value();
    out.chunk_ = chunk_bytes == 0 ? 1 : chunk_bytes;

    auto have = out.fill(kHeaderSizeV1);
    if (!have) return std::move(have).error();
    if (!have.value()) {
        return Error(ErrorCode::Truncated,
                     "truncated header: " +
                         std::to_string(out.buf_.size() - out.pos_) + " bytes");
    }
    const char* p = out.buf_.data() + out.pos_;
    const bool v1 = std::memcmp(p, kMagicV1, sizeof(kMagicV1)) == 0;
    const bool v2 = std::memcmp(p, kMagicV2, sizeof(kMagicV2)) == 0;
    if (!v1 && !v2) return error_at_byte(ErrorCode::BadMagic, "bad magic", 0);
    p += sizeof(kMagicV1);
    const auto version = take<std::uint32_t>(p);
    if (v1) {
        if (version != kVersionV1) {
            return Error(ErrorCode::UnsupportedVersion,
                         "magic YFL1 with version " + std::to_string(version));
        }
        out.count_ = take<std::uint64_t>(p);
        if (out.count_ > (file_size - kHeaderSizeV1) / kRecordSize ||
            file_size != binary_log_size_v1(out.count_)) {
            return Error(ErrorCode::CountMismatch,
                         "v1 size mismatch: declared " +
                             std::to_string(out.count_) + " records (" +
                             std::to_string(binary_log_size_v1(out.count_)) +
                             " bytes), stream holds " +
                             std::to_string(file_size));
        }
        out.version_ = kVersionV1;
        out.pos_ += kHeaderSizeV1;
        out.abs_ += kHeaderSizeV1;
        return out;
    }
    if (version != kVersionV2) {
        return Error(ErrorCode::UnsupportedVersion,
                     "magic YFL2 with version " + std::to_string(version));
    }
    if (file_size < kHeaderSizeV2 + kTrailerSize) {
        return Error(ErrorCode::Truncated, "truncated v2 header/trailer");
    }
    have = out.fill(kHeaderSizeV2);
    if (!have) return std::move(have).error();
    if (!have.value()) {
        return Error(ErrorCode::Truncated, "truncated v2 header/trailer");
    }
    p = out.buf_.data() + out.pos_;
    const std::uint32_t header_crc = util::crc32(
        std::string_view(p, kHeaderSizeV2 - 4));
    p += sizeof(kMagicV2) + sizeof(std::uint32_t);
    out.count_ = take<std::uint64_t>(p);
    if (take<std::uint32_t>(p) != header_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch, "header CRC mismatch",
                             kHeaderSizeV2 - 4);
    }
    if (out.count_ > (file_size - kHeaderSizeV2 - kTrailerSize) / kRecordSize ||
        file_size != binary_log_size(out.count_)) {
        return Error(ErrorCode::CountMismatch,
                     "v2 size mismatch: declared " + std::to_string(out.count_) +
                         " records (" + std::to_string(binary_log_size(out.count_)) +
                         " bytes), stream holds " + std::to_string(file_size));
    }
    out.version_ = kVersionV2;
    out.pos_ += kHeaderSizeV2;
    out.abs_ += kHeaderSizeV2;
    return out;
}

util::Result<bool> FlowLogReader::fill(std::size_t need) {
    if (pos_ > 0 && buf_.size() - pos_ < need) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    while (buf_.size() - pos_ < need) {
        auto n = reader_.read_chunk(buf_, chunk_);
        if (!n) return std::move(n).error();
        if (n.value() == 0) return false;
    }
    return true;
}

util::Result<std::size_t> FlowLogReader::next(std::vector<FlowRecord>& out) {
    out.clear();
    if (done_) return std::size_t{0};
    return version_ == kVersionV1 ? next_v1(out) : next_v2(out);
}

util::Result<std::size_t> FlowLogReader::next_v1(std::vector<FlowRecord>& out) {
    if (read_ == count_) {
        // parse_v1 validates the exact file size; the incremental
        // equivalent is "no bytes may remain past the declared records".
        auto more = fill(1);
        if (!more) return std::move(more).error();
        if (more.value()) {
            return Error(ErrorCode::CountMismatch,
                         "v1 size mismatch: bytes remain past the declared " +
                             std::to_string(count_) + " records");
        }
        done_ = true;
        return std::size_t{0};
    }
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockRecords, count_ - read_));
    auto have = fill(n * kRecordSize);
    if (!have) return std::move(have).error();
    if (!have.value()) {
        return Error(ErrorCode::CountMismatch,
                     "v1 size mismatch: declared " + std::to_string(count_) +
                         " records, stream ends inside record " +
                         std::to_string(read_ + (buf_.size() - pos_) / kRecordSize));
    }
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto record = parse_record(buf_.data() + pos_, read_, abs_);
        if (!record) return std::move(record).error();
        out.push_back(std::move(record).value());
        pos_ += kRecordSize;
        abs_ += kRecordSize;
        ++read_;
    }
    return n;
}

util::Result<std::size_t> FlowLogReader::next_v2(std::vector<FlowRecord>& out) {
    if (read_ == count_) {
        auto have = fill(kTrailerSize);
        if (!have) return std::move(have).error();
        if (!have.value()) {
            return error_at_byte(ErrorCode::Truncated, "truncated v2 trailer",
                                 abs_);
        }
        const char* tp = buf_.data() + pos_;
        if (std::memcmp(tp, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
            return error_at_byte(ErrorCode::BadMagic, "bad trailer magic", abs_);
        }
        const std::uint32_t trailer_crc =
            util::crc32(std::string_view(tp, kTrailerSize - 4));
        tp += sizeof(kTrailerMagic);
        const auto trailer_count = take<std::uint64_t>(tp);
        if (take<std::uint32_t>(tp) != trailer_crc) {
            return error_at_byte(ErrorCode::ChecksumMismatch,
                                 "trailer CRC mismatch",
                                 abs_ + kTrailerSize - 4);
        }
        if (trailer_count != count_) {
            return error_at_byte(ErrorCode::CountMismatch,
                                 "trailer count " + std::to_string(trailer_count) +
                                     " != header count " + std::to_string(count_),
                                 abs_ + sizeof(kTrailerMagic));
        }
        pos_ += kTrailerSize;
        abs_ += kTrailerSize;
        auto more = fill(1);
        if (!more) return std::move(more).error();
        if (more.value()) {
            return error_at_byte(ErrorCode::CountMismatch,
                                 "bytes remain past the trailer", abs_);
        }
        done_ = true;
        return std::size_t{0};
    }

    const std::uint64_t block = read_ / kBlockRecords;
    const auto expected = static_cast<std::size_t>(
        std::min<std::uint64_t>(kBlockRecords, count_ - read_));
    auto have = fill(kBlockHeaderSize);
    if (!have) return std::move(have).error();
    if (!have.value()) {
        return error_at_byte(ErrorCode::Truncated,
                             "truncated block " + std::to_string(block), abs_);
    }
    const char* bp = buf_.data() + pos_;
    const auto block_records = take<std::uint32_t>(bp);
    const auto block_crc = take<std::uint32_t>(bp);
    if (block_records != expected) {
        return error_at_record(
            ErrorCode::CountMismatch,
            "block " + std::to_string(block) + " declares " +
                std::to_string(block_records) + " records, expected " +
                std::to_string(expected),
            read_, abs_);
    }
    const std::size_t payload_size = expected * kRecordSize;
    have = fill(kBlockHeaderSize + payload_size);
    if (!have) return std::move(have).error();
    if (!have.value()) {
        return error_at_byte(ErrorCode::Truncated,
                             "stream ends inside block " + std::to_string(block),
                             abs_ + kBlockHeaderSize);
    }
    const std::uint64_t payload_abs = abs_ + kBlockHeaderSize;
    const std::uint32_t actual_crc = util::crc32(std::string_view(
        buf_.data() + pos_ + kBlockHeaderSize, payload_size));
    if (actual_crc != block_crc) {
        return error_at_record(
            ErrorCode::ChecksumMismatch,
            "block " + std::to_string(block) + " (records " +
                std::to_string(read_) + ".." +
                std::to_string(read_ + expected - 1) + ") CRC mismatch",
            read_, payload_abs);
    }
    pos_ += kBlockHeaderSize;
    abs_ += kBlockHeaderSize;
    out.reserve(expected);
    for (std::size_t i = 0; i < expected; ++i) {
        auto record = parse_record(buf_.data() + pos_, read_, abs_);
        if (!record) return std::move(record).error();
        out.push_back(std::move(record).value());
        pos_ += kRecordSize;
        abs_ += kRecordSize;
        ++read_;
    }
    return expected;
}

}  // namespace ytcdn::capture
