#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "capture/flow_record.hpp"

namespace ytcdn::capture {

/// Compact binary flow-log format ("YFL1").
///
/// At paper scale a week of flow records runs to hundreds of MB as TSV;
/// the binary form is ~42 bytes per record and loss-free. Layout (all
/// little-endian):
///
///   header:  magic "YFL1" | u32 version (=1) | u64 record count
///   record:  u32 client_ip | u32 server_ip | f64 start | f64 end |
///            u64 bytes | u64 video_id | u8 itag
///
/// Writers/readers validate the magic, version, declared count and itag
/// values; any mismatch throws std::runtime_error with a position hint.
void write_binary_log(std::ostream& os, const std::vector<FlowRecord>& records);
void write_binary_log(const std::filesystem::path& path,
                      const std::vector<FlowRecord>& records);

[[nodiscard]] std::vector<FlowRecord> read_binary_log(std::istream& is);
[[nodiscard]] std::vector<FlowRecord> read_binary_log(const std::filesystem::path& path);

/// On-disk size of a log with `n` records, in bytes.
[[nodiscard]] std::size_t binary_log_size(std::size_t n) noexcept;

}  // namespace ytcdn::capture
