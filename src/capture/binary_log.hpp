#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "capture/flow_record.hpp"
#include "util/error.hpp"

namespace ytcdn::capture {

/// Compact checksummed binary flow-log format ("YFL2"; readers also accept
/// the legacy unchecksummed "YFL1").
///
/// At paper scale a week of flow records runs to hundreds of MB as TSV;
/// the binary form is ~41 bytes per record and loss-free. v2 adds CRC32
/// framing so a flipped bit on disk is detected at load time with the
/// record index and byte offset of the damage. Layout (little-endian):
///
///   header:   magic "YFL2" | u32 version (=2) | u64 record count |
///             u32 crc32 of the preceding 16 header bytes
///   blocks:   records in blocks of up to 4096:
///             u32 records-in-block | u32 crc32 of the block payload |
///             payload (records-in-block * 41 bytes)
///   record:   u32 client_ip | u32 server_ip | f64 start | f64 end |
///             u64 bytes | u64 video_id | u8 itag
///   trailer:  magic "YFLE" | u64 record count | u32 crc32 of the
///             preceding 12 trailer bytes
///
/// v1 ("YFL1", version 1) is header + records with no checksums; readers
/// keep accepting it so logs written by older builds stay loadable.
///
/// The *_result functions return a typed ytcdn::Error (code + byte-offset /
/// record-index provenance) instead of throwing; the legacy-named entry
/// points are thin wrappers that throw that same Error (which derives
/// std::runtime_error, so existing catch sites are unaffected).
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_binary_log_result(
    std::istream& is);
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_binary_log_result(
    const std::filesystem::path& path);

/// Atomic (tmp + rename + fsync) when writing to a path: a crashed writer
/// never leaves a torn log under the final name.
[[nodiscard]] util::Result<void> write_binary_log_result(
    const std::filesystem::path& path, const std::vector<FlowRecord>& records);

void write_binary_log(std::ostream& os, const std::vector<FlowRecord>& records);
void write_binary_log(const std::filesystem::path& path,
                      const std::vector<FlowRecord>& records);

[[nodiscard]] std::vector<FlowRecord> read_binary_log(std::istream& is);
[[nodiscard]] std::vector<FlowRecord> read_binary_log(const std::filesystem::path& path);

/// Writes the legacy v1 format (no checksums). Kept for the version-compat
/// tests and the fuzz harness; new code writes v2 via write_binary_log.
void write_binary_log_v1(std::ostream& os, const std::vector<FlowRecord>& records);

/// On-disk size of a v2 log with `n` records, in bytes.
[[nodiscard]] std::size_t binary_log_size(std::size_t n) noexcept;

/// On-disk size of a legacy v1 log with `n` records, in bytes.
[[nodiscard]] std::size_t binary_log_size_v1(std::size_t n) noexcept;

}  // namespace ytcdn::capture
