#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "capture/flow_record.hpp"
#include "util/error.hpp"
#include "util/io.hpp"

namespace ytcdn::capture {

/// Compact checksummed binary flow-log format ("YFL2"; readers also accept
/// the legacy unchecksummed "YFL1").
///
/// At paper scale a week of flow records runs to hundreds of MB as TSV;
/// the binary form is ~41 bytes per record and loss-free. v2 adds CRC32
/// framing so a flipped bit on disk is detected at load time with the
/// record index and byte offset of the damage. Layout (little-endian):
///
///   header:   magic "YFL2" | u32 version (=2) | u64 record count |
///             u32 crc32 of the preceding 16 header bytes
///   blocks:   records in blocks of up to 4096:
///             u32 records-in-block | u32 crc32 of the block payload |
///             payload (records-in-block * 41 bytes)
///   record:   u32 client_ip | u32 server_ip | f64 start | f64 end |
///             u64 bytes | u64 video_id | u8 itag
///   trailer:  magic "YFLE" | u64 record count | u32 crc32 of the
///             preceding 12 trailer bytes
///
/// v1 ("YFL1", version 1) is header + records with no checksums; readers
/// keep accepting it so logs written by older builds stay loadable.
///
/// The *_result functions return a typed ytcdn::Error (code + byte-offset /
/// record-index provenance) instead of throwing; the legacy-named entry
/// points are thin wrappers that throw that same Error (which derives
/// std::runtime_error, so existing catch sites are unaffected).
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_binary_log_result(
    std::istream& is);
[[nodiscard]] util::Result<std::vector<FlowRecord>> read_binary_log_result(
    const std::filesystem::path& path);

/// Atomic (tmp + rename + fsync) when writing to a path: a crashed writer
/// never leaves a torn log under the final name.
[[nodiscard]] util::Result<void> write_binary_log_result(
    const std::filesystem::path& path, const std::vector<FlowRecord>& records);

void write_binary_log(std::ostream& os, const std::vector<FlowRecord>& records);
void write_binary_log(const std::filesystem::path& path,
                      const std::vector<FlowRecord>& records);

[[nodiscard]] std::vector<FlowRecord> read_binary_log(std::istream& is);
[[nodiscard]] std::vector<FlowRecord> read_binary_log(const std::filesystem::path& path);

/// Writes the legacy v1 format (no checksums). Kept for the version-compat
/// tests and the fuzz harness; new code writes v2 via write_binary_log.
void write_binary_log_v1(std::ostream& os, const std::vector<FlowRecord>& records);

/// On-disk size of a v2 log with `n` records, in bytes.
[[nodiscard]] std::size_t binary_log_size(std::size_t n) noexcept;

/// On-disk size of a legacy v1 log with `n` records, in bytes.
[[nodiscard]] std::size_t binary_log_size_v1(std::size_t n) noexcept;

/// Streaming v2 writer with bounded memory: records append through a
/// one-block (4096-record) buffer, the header is written up front with a
/// zero count and back-filled on finish(), and the file only appears under
/// its final name after a durable publish — so a crashed spill run leaves
/// no torn log behind. The published bytes are identical to
/// write_binary_log of the same record sequence (pinned by the golden
/// tests), which is what lets the out-of-core pipeline (DESIGN.md §16)
/// spill a 10M-session week without ever materializing it.
class FlowLogWriter {
public:
    FlowLogWriter() = default;
    FlowLogWriter(FlowLogWriter&&) noexcept = default;
    FlowLogWriter& operator=(FlowLogWriter&&) noexcept = default;

    [[nodiscard]] static util::Result<FlowLogWriter> create(
        const std::filesystem::path& path);

    [[nodiscard]] util::Result<void> add(const FlowRecord& record);

    [[nodiscard]] std::uint64_t records_written() const noexcept { return count_; }
    [[nodiscard]] bool is_open() const noexcept { return writer_.is_open(); }

    /// Flushes the partial block, appends the trailer, patches the header
    /// with the real record count, and durably publishes the final name.
    [[nodiscard]] util::Result<void> finish();
    /// Abandons the log; the final name is never created.
    void discard() { writer_.discard(); }

private:
    [[nodiscard]] util::Result<void> flush_block();

    util::io::FileWriter writer_;
    std::string block_;
    std::uint32_t block_records_ = 0;
    std::uint64_t count_ = 0;
};

/// Incremental flow-log reader: delivers records one CRC-verified block at
/// a time through util::io::FileReader, holding O(block) memory however
/// large the log is. Accepts both v2 and legacy v1 streams and reports the
/// same typed error taxonomy as read_binary_log (BadMagic /
/// UnsupportedVersion / Truncated / ChecksumMismatch / CountMismatch /
/// BadField) with absolute byte/record provenance — the golden fuzz
/// fixtures pin that the two readers fail identically.
class FlowLogReader {
public:
    FlowLogReader() = default;
    FlowLogReader(FlowLogReader&&) noexcept = default;
    FlowLogReader& operator=(FlowLogReader&&) noexcept = default;

    /// Opens the log and validates the header. `chunk_bytes` is the I/O
    /// granularity (smaller chunks exercise more refill boundaries; the
    /// chunk-boundary property tests sweep it).
    [[nodiscard]] static util::Result<FlowLogReader> open(
        const std::filesystem::path& path, std::size_t chunk_bytes = 1 << 20);

    /// Replaces `out` with the next block of records (≤ 4096). Returns the
    /// count; 0 means the stream ended cleanly (v2: trailer validated).
    [[nodiscard]] util::Result<std::size_t> next(std::vector<FlowRecord>& out);

    [[nodiscard]] std::uint64_t declared_records() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t records_read() const noexcept { return read_; }
    [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

private:
    [[nodiscard]] util::Result<bool> fill(std::size_t need);
    [[nodiscard]] util::Result<std::size_t> next_v1(std::vector<FlowRecord>& out);
    [[nodiscard]] util::Result<std::size_t> next_v2(std::vector<FlowRecord>& out);

    util::io::FileReader reader_;
    std::string buf_;
    std::size_t pos_ = 0;        // unconsumed bytes start here in buf_
    std::uint64_t abs_ = 0;      // absolute stream offset of buf_[pos_]
    std::size_t chunk_ = 1 << 20;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    std::uint32_t version_ = 0;
    bool done_ = false;
};

}  // namespace ytcdn::capture
