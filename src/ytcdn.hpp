#pragma once

// ytcdn — umbrella header for the reproduction of "Dissecting Video Server
// Selection Strategies in the YouTube CDN" (Torres et al., ICDCS 2011).
//
// Typical use:
//
//   #include "ytcdn.hpp"
//
//   ytcdn::study::StudyConfig config;
//   config.scale = 0.1;                       // fraction of Table I volume
//   const auto run = ytcdn::study::run_study(config);
//
//   const auto sessions =
//       ytcdn::analysis::build_sessions(run.dataset("EU1-ADSL"), 1.0);
//   const auto patterns = ytcdn::analysis::session_patterns(
//       sessions, run.maps[2], run.preferred[2]);
//
// Subsystem headers can of course be included individually; this header
// simply pulls in the public API surface.

// Substrates.
#include "geo/city.hpp"
#include "geo/continent.hpp"
#include "geo/geo_point.hpp"
#include "net/as_registry.hpp"
#include "net/ip_address.hpp"
#include "net/pinger.hpp"
#include "net/rtt_model.hpp"
#include "net/subnet.hpp"
#include "sim/arrival_process.hpp"
#include "sim/diurnal.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/zipf.hpp"

// The CDN model.
#include "cdn/cache.hpp"
#include "cdn/catalog.hpp"
#include "cdn/cdn.hpp"
#include "cdn/data_center.hpp"
#include "cdn/dns.hpp"
#include "cdn/http.hpp"
#include "cdn/selection_policy.hpp"
#include "cdn/server.hpp"
#include "cdn/video.hpp"

// Workload and capture.
#include "capture/classifier.hpp"
#include "capture/dataset.hpp"
#include "capture/flow_log.hpp"
#include "capture/flow_record.hpp"
#include "capture/sniffer.hpp"
#include "workload/client.hpp"
#include "workload/noise_source.hpp"
#include "workload/player.hpp"
#include "workload/population.hpp"
#include "workload/request_generator.hpp"
#include "workload/vantage_point.hpp"

// Geolocation.
#include "geoloc/bestline.hpp"
#include "geoloc/cbg.hpp"
#include "geoloc/dc_clustering.hpp"
#include "geoloc/ip2location_db.hpp"
#include "geoloc/landmark.hpp"

// Analyses.
#include "analysis/as_analysis.hpp"
#include "analysis/dc_map.hpp"
#include "analysis/geo_analysis.hpp"
#include "analysis/histogram.hpp"
#include "analysis/loadbalance_analysis.hpp"
#include "analysis/preferred_dc.hpp"
#include "analysis/redirect_analysis.hpp"
#include "analysis/series.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "analysis/stats.hpp"
#include "analysis/subnet_analysis.hpp"
#include "analysis/table.hpp"

// The study itself.
#include "study/config.hpp"
#include "study/dc_map_builder.hpp"
#include "study/deployment.hpp"
#include "study/planetlab_experiment.hpp"
#include "study/report.hpp"
#include "study/study_run.hpp"
#include "study/trace_driver.hpp"
