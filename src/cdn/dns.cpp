#include "cdn/dns.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::cdn {

LdnsId DnsSystem::add_resolver(std::string name,
                               std::unique_ptr<SelectionPolicy> policy) {
    if (!policy) throw std::invalid_argument("DnsSystem::add_resolver: null policy");
    resolvers_.push_back(Resolver{std::move(name), std::move(policy), {}});
    return static_cast<LdnsId>(resolvers_.size() - 1);
}

const std::string& DnsSystem::resolver_name(LdnsId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= resolvers_.size()) {
        throw std::out_of_range("DnsSystem::resolver_name");
    }
    return resolvers_[static_cast<std::size_t>(id)].name;
}

DcId DnsSystem::resolve(LdnsId resolver, sim::SimTime now, sim::Rng& rng) {
    if (resolver < 0 || static_cast<std::size_t>(resolver) >= resolvers_.size()) {
        throw std::out_of_range("DnsSystem::resolve: unknown resolver");
    }
    auto& r = resolvers_[static_cast<std::size_t>(resolver)];
    const ResolutionContext ctx{now, &rng};
    const DcId dc = r.policy->select(ctx);
    ++r.counts[dc];
    ++total_;
    return dc;
}

std::uint64_t DnsSystem::resolution_count(LdnsId resolver, DcId dc) const noexcept {
    if (resolver < 0 || static_cast<std::size_t>(resolver) >= resolvers_.size()) return 0;
    const auto& counts = resolvers_[static_cast<std::size_t>(resolver)].counts;
    const auto it = counts.find(dc);
    return it == counts.end() ? 0 : it->second;
}

}  // namespace ytcdn::cdn
