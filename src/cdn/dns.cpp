#include "cdn/dns.hpp"

#include <stdexcept>
#include <utility>

#include "util/metrics.hpp"

namespace ytcdn::cdn {

namespace {

struct DnsMetrics {
    util::metrics::Counter queries = util::metrics::counter("cdn.dns.queries");
    util::metrics::Counter servfails = util::metrics::counter("cdn.dns.servfails");
    util::metrics::Counter stale = util::metrics::counter("cdn.dns.stale_answers");
};

DnsMetrics& dns_metrics() {
    static DnsMetrics metrics;
    return metrics;
}

}  // namespace

LdnsId DnsSystem::add_resolver(std::string name,
                               std::unique_ptr<SelectionPolicy> policy) {
    if (!policy) throw std::invalid_argument("DnsSystem::add_resolver: null policy");
    resolvers_.push_back(Resolver{std::move(name), std::move(policy), {}});
    return static_cast<LdnsId>(resolvers_.size() - 1);
}

const std::string& DnsSystem::resolver_name(LdnsId id) const {
    return resolver_or_throw(id, "DnsSystem::resolver_name").name;
}

LdnsId DnsSystem::resolver_by_name(std::string_view name) const noexcept {
    for (std::size_t i = 0; i < resolvers_.size(); ++i) {
        if (resolvers_[i].name == name) return static_cast<LdnsId>(i);
    }
    return kInvalidLdns;
}

DnsSystem::Resolver& DnsSystem::resolver_or_throw(LdnsId id, const char* what) {
    if (id < 0 || static_cast<std::size_t>(id) >= resolvers_.size()) {
        throw std::out_of_range(what);
    }
    return resolvers_[static_cast<std::size_t>(id)];
}

const DnsSystem::Resolver& DnsSystem::resolver_or_throw(LdnsId id,
                                                        const char* what) const {
    if (id < 0 || static_cast<std::size_t>(id) >= resolvers_.size()) {
        throw std::out_of_range(what);
    }
    return resolvers_[static_cast<std::size_t>(id)];
}

DnsAnswer DnsSystem::query(LdnsId resolver, sim::SimTime now, sim::Rng& rng) {
    auto& r = resolver_or_throw(resolver, "DnsSystem::query: unknown resolver");
    dns_metrics().queries.inc();
    if (!r.up) {
        ++r.servfails;
        dns_metrics().servfails.inc();
        return DnsAnswer{DnsStatus::ServFail, kInvalidDc, false};
    }
    if (r.stale && r.last_answer != kInvalidDc) {
        // Past-TTL replay: no policy consultation, no randomness consumed.
        ++r.stale_served;
        dns_metrics().stale.inc();
        ++r.counts[r.last_answer];
        ++total_;
        return DnsAnswer{DnsStatus::Ok, r.last_answer, true};
    }
    const ResolutionContext ctx{now, &rng};
    const DcId dc = r.policy->select(ctx);
    r.last_answer = dc;
    ++r.counts[dc];
    ++total_;
    return DnsAnswer{DnsStatus::Ok, dc, false};
}

DcId DnsSystem::resolve(LdnsId resolver, sim::SimTime now, sim::Rng& rng) {
    const DnsAnswer answer = query(resolver, now, rng);
    if (answer.status != DnsStatus::Ok) {
        throw std::runtime_error("DnsSystem::resolve: resolver " +
                                 resolver_name(resolver) + " is down (SERVFAIL)");
    }
    return answer.dc;
}

void DnsSystem::set_resolver_up(LdnsId resolver, bool up) {
    resolver_or_throw(resolver, "DnsSystem::set_resolver_up").up = up;
}

bool DnsSystem::resolver_up(LdnsId resolver) const {
    return resolver_or_throw(resolver, "DnsSystem::resolver_up").up;
}

void DnsSystem::set_resolver_stale(LdnsId resolver, bool stale) {
    resolver_or_throw(resolver, "DnsSystem::set_resolver_stale").stale = stale;
}

bool DnsSystem::resolver_stale(LdnsId resolver) const {
    return resolver_or_throw(resolver, "DnsSystem::resolver_stale").stale;
}

std::uint64_t DnsSystem::servfail_count(LdnsId resolver) const {
    return resolver_or_throw(resolver, "DnsSystem::servfail_count").servfails;
}

std::uint64_t DnsSystem::stale_answer_count(LdnsId resolver) const {
    return resolver_or_throw(resolver, "DnsSystem::stale_answer_count").stale_served;
}

std::uint64_t DnsSystem::resolution_count(LdnsId resolver, DcId dc) const noexcept {
    if (resolver < 0 || static_cast<std::size_t>(resolver) >= resolvers_.size()) return 0;
    const auto& counts = resolvers_[static_cast<std::size_t>(resolver)].counts;
    const auto it = counts.find(dc);
    return it == counts.end() ? 0 : it->second;
}

}  // namespace ytcdn::cdn
