#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/cache.hpp"
#include "cdn/data_center.hpp"
#include "cdn/server.hpp"
#include "cdn/video.hpp"
#include "net/as_registry.hpp"
#include "net/rtt_model.hpp"
#include "sim/random.hpp"
#include "util/intern.hpp"

namespace ytcdn::cdn {

/// Outcome of a content server handling a /videoplayback request.
enum class ServeOutcome {
    Served,            // the server streams the video on this connection
    RedirectOverload,  // server at capacity -> 302 to another data center
    RedirectMiss,      // content not present here -> 302 toward an origin
};

/// Outcome of a TCP connection attempt, before any HTTP happens. Driven by
/// the health state the fault injector sets; a healthy CDN always answers
/// Ok, so the zero-fault path is unchanged.
enum class ConnectOutcome {
    Ok,       // server accepts the connection
    Refused,  // draining server resets new connections immediately
    Timeout,  // dark server: SYNs vanish, the client waits out its timer
};

/// The content distribution network: data centers, servers, caches and the
/// request-handling logic (application-layer redirection) behind them.
///
/// DNS-side selection lives in DnsSystem; the Cdn covers step 4 of the
/// paper's Fig. 1 — what happens once the client reaches a content server.
class Cdn {
public:
    struct ReplicationConfig {
        /// Videos with rank below this are replicated at every data center.
        std::size_t replicate_top_ranks = 5'000;
        /// Number of origin copies for unpopular content, spread by
        /// consistent hashing over analysis-scope data centers.
        int origin_replicas = 2;
        /// Per-data-center bound on pulled (miss-fetched) videos; the
        /// oldest pull is evicted beyond it. 0 = unbounded.
        std::size_t max_pulled_per_dc = 0;
    };

    explicit Cdn(const net::RttModel& rtt) : Cdn(rtt, ReplicationConfig{}) {}
    Cdn(const net::RttModel& rtt, ReplicationConfig replication);

    // --- topology construction -------------------------------------------

    /// Adds a data center; `site_access_rtt_ms` is its LAN/last-mile term.
    /// Returns its id. Prefixes must be added before servers.
    DcId add_data_center(std::string city, geo::Continent continent,
                         geo::GeoPoint location, net::Asn asn, InfraClass infra,
                         double site_access_rtt_ms = 0.5);

    /// Announces an IP prefix for a data center (also visible to whois via
    /// `register_prefixes`).
    void add_prefix(DcId dc, net::Subnet prefix);

    /// Adds `count` servers carved from the DC's prefixes, each sustaining
    /// `capacity` concurrent video flows.
    void add_servers(DcId dc, int count, int capacity);

    /// Dumps every announced prefix into a whois registry with the owning
    /// AS name.
    void register_prefixes(net::AsRegistry& registry,
                           std::string_view google_name = "Google Inc.") const;

    // --- accessors ---------------------------------------------------------

    [[nodiscard]] std::size_t num_data_centers() const noexcept { return dcs_.size(); }
    [[nodiscard]] std::size_t num_servers() const noexcept { return servers_.size(); }
    [[nodiscard]] const DataCenter& dc(DcId id) const;
    [[nodiscard]] const ContentServer& server(ServerId id) const;
    [[nodiscard]] ContentServer& server(ServerId id);
    [[nodiscard]] std::span<const DataCenter> data_centers() const noexcept { return dcs_; }
    [[nodiscard]] const net::RttModel& rtt_model() const noexcept { return *rtt_; }
    [[nodiscard]] const ReplicationConfig& replication() const noexcept {
        return replication_;
    }

    /// The data center owning `ip`, or kInvalidDc.
    [[nodiscard]] DcId dc_of_ip(net::IpAddress ip) const noexcept;

    /// Resolves a content-server hostname ("vN.lscacheM.c.youtube.com") to
    /// its server, or kInvalidServer. This is what the player uses to chase
    /// a 302 Location header.
    [[nodiscard]] ServerId server_by_hostname(std::string_view hostname) const noexcept;

    /// Data centers in analysis scope (Google AS + ISP-internal), ranked by
    /// minimum RTT from `client`. Data centers that are not accepting new
    /// flows (Draining or Down) are skipped — dark capacity is invisible to
    /// server selection.
    [[nodiscard]] std::vector<DcId> rank_by_rtt(const net::NetSite& client) const;

    /// Cached variant for the per-event paths (redirect chasing, traced DC
    /// selection): the ranking for a site is computed once and reused until
    /// a health or topology change invalidates it, so steady-state redirects
    /// cost a hash lookup instead of an allocate-and-sort. The reference is
    /// stable until the next mutation of the Cdn; callers must not hold it
    /// across events that may change health. Thread-safe (mutex-guarded) so
    /// read-only analysis phases may query from pool workers.
    [[nodiscard]] const std::vector<DcId>& rank_by_rtt_cached(
        const net::NetSite& client) const;

    /// Drops every cached ranking. Health and topology mutations call this
    /// internally; call it manually after mutating the external RttModel
    /// (e.g. set_inflation) once rankings have already been queried.
    void invalidate_rank_cache() const noexcept;

    // --- health (fault injection) ------------------------------------------

    /// Sets/reads the health of a whole data center. Going Down or Draining
    /// never interrupts active flows; it only gates new connections.
    void set_dc_health(DcId dc, HealthState health);
    [[nodiscard]] HealthState dc_health(DcId dc) const;

    /// Per-server health (a single machine failing inside a healthy site).
    void set_server_health(ServerId server, HealthState health);

    /// The stricter of the server's own health and its data center's.
    [[nodiscard]] HealthState effective_health(ServerId server) const;

    /// What a TCP connection attempt to this server does right now.
    [[nodiscard]] ConnectOutcome connect_outcome(ServerId server) const;

    // --- content placement -------------------------------------------------

    /// True when `dc` is one of the origin replicas for the video.
    [[nodiscard]] bool is_origin(DcId dc, VideoId id) const noexcept;

    /// True when a request for `v` can be served at `dc` right now
    /// (replicated by popularity, pulled earlier, origin copy, or legacy
    /// infrastructure which is modelled as having everything).
    [[nodiscard]] bool has_content(DcId dc, const Video& v) const noexcept;

    /// Fetches the video into the DC's cache (idempotent).
    void pull_content(DcId dc, VideoId id);

    /// Read access to a data center's cache state.
    [[nodiscard]] const ContentCache& cache(DcId dc) const;

    // --- request handling ---------------------------------------------------

    /// The server inside `dc` that the URL/hostname hashing assigns to this
    /// video. Cache affinity concentrates a hot video on one server, which
    /// is what makes hot-spots server-local in the paper's Fig. 15.
    [[nodiscard]] ServerId pick_server(DcId dc, VideoId id) const;

    /// What the server would do with a request for `v` right now.
    [[nodiscard]] ServeOutcome classify_request(ServerId server, const Video& v) const;

    /// The server a redirect should send the client to: the lowest-RTT
    /// analysis-scope data center (excluding `exclude`) whose affinity
    /// server has capacity and which has the content; falls back to any
    /// origin. Returns kInvalidServer when nothing can serve.
    [[nodiscard]] ServerId redirect_target(const net::NetSite& client, const Video& v,
                                           std::span<const DcId> exclude) const;

    /// Flow accounting, driven by the player/simulator.
    void begin_flow(ServerId server);
    void end_flow(ServerId server);

private:
    const net::RttModel* rtt_;
    ReplicationConfig replication_;
    std::vector<DataCenter> dcs_;
    std::vector<ContentServer> servers_;
    std::vector<ContentCache> caches_;
    /// Hostname → server resolution via interned ids: `server_by_hostname`
    /// takes a string_view and never allocates (the 302-chasing hot path).
    util::Interner hostname_ids_;
    std::vector<ServerId> server_of_hostname_;
    /// Per-site RTT rankings, keyed by NetSite id; see rank_by_rtt_cached.
    mutable std::mutex rank_mutex_;
    mutable std::unordered_map<std::uint64_t, std::vector<DcId>> rank_cache_;
    std::uint64_t next_site_id_ = 0x4000'0000ull;  // disjoint from client site ids
};

}  // namespace ytcdn::cdn
