#include "cdn/data_center.hpp"

#include <ostream>

namespace ytcdn::cdn {

std::string_view to_string(InfraClass c) noexcept {
    switch (c) {
        case InfraClass::GoogleCdn: return "Google";
        case InfraClass::IspInternal: return "ISP-internal";
        case InfraClass::LegacyYouTube: return "YouTube-EU";
        case InfraClass::OtherAs: return "Other-AS";
    }
    return "unknown";
}

std::ostream& operator<<(std::ostream& os, InfraClass c) { return os << to_string(c); }

}  // namespace ytcdn::cdn
