#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

#include "cdn/video.hpp"

namespace ytcdn::cdn {

/// Per-data-center content availability.
///
/// Replication follows the paper's inferred model (Section VII-C):
///   - popular content (rank below `replicate_top_ranks`) is everywhere;
///   - unpopular content initially lives only at its origin data centers
///     (decided by the Cdn via consistent hashing);
///   - a miss at a data center triggers a *pull*: the content is fetched so
///     only the first access is served remotely ("when the videos were
///     accessed more than once, only the first access was redirected").
///
/// Pulled content can optionally be bounded: with `max_pulled > 0` the
/// cache keeps at most that many pulled videos and evicts the oldest pull
/// (FIFO — the sparse tier is dominated by one-shot accesses, so recency
/// tracking buys little). 0 means unbounded, the paper-week default.
class ContentCache {
public:
    explicit ContentCache(std::size_t replicate_top_ranks, std::size_t max_pulled = 0)
        : replicate_top_ranks_(replicate_top_ranks), max_pulled_(max_pulled) {}

    [[nodiscard]] std::size_t replicate_top_ranks() const noexcept {
        return replicate_top_ranks_;
    }
    [[nodiscard]] std::size_t max_pulled() const noexcept { return max_pulled_; }

    /// True when the video is replicated here by popularity or was pulled.
    /// Origin placement is layered on top by the Cdn.
    [[nodiscard]] bool contains(const Video& v) const noexcept {
        return v.rank < replicate_top_ranks_ || pulled_.contains(v.id);
    }

    /// Fetches the video into this cache (idempotent); may evict the oldest
    /// pulled video when bounded.
    void pull(VideoId id) {
        if (!pulled_.insert(id).second) return;
        if (max_pulled_ == 0) return;
        order_.push_back(id);
        while (pulled_.size() > max_pulled_) {
            pulled_.erase(order_.front());
            order_.pop_front();
            ++evictions_;
        }
    }

    [[nodiscard]] bool was_pulled(VideoId id) const noexcept {
        return pulled_.contains(id);
    }

    [[nodiscard]] std::size_t pulled_count() const noexcept { return pulled_.size(); }
    [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }

private:
    std::size_t replicate_top_ranks_;
    std::size_t max_pulled_;
    std::unordered_set<VideoId> pulled_;
    std::deque<VideoId> order_;  // pull order, only maintained when bounded
    std::size_t evictions_ = 0;
};

}  // namespace ytcdn::cdn
