#include "cdn/server.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::cdn {

std::string_view to_string(HealthState h) noexcept {
    switch (h) {
        case HealthState::Up: return "up";
        case HealthState::Draining: return "draining";
        case HealthState::Down: return "down";
    }
    return "?";
}

ContentServer::ContentServer(ServerId id, DcId dc, net::IpAddress ip,
                             std::string hostname, int capacity)
    : id_(id), dc_(dc), ip_(ip), hostname_(std::move(hostname)), capacity_(capacity) {
    if (capacity_ <= 0) throw std::invalid_argument("ContentServer: capacity must be > 0");
}

void ContentServer::begin_flow() {
    ++active_;
    ++served_;
}

void ContentServer::end_flow() {
    if (active_ <= 0) throw std::logic_error("ContentServer::end_flow without begin_flow");
    --active_;
}

}  // namespace ytcdn::cdn
