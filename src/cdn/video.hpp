#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace ytcdn::cdn {

/// The YouTube video identifier: an 11-character URL-safe base64 string
/// (e.g. "dQw4w9WgXcQ"). Internally a 64-bit value; the string form is what
/// appears in URLs and what Tstat records.
class VideoId {
public:
    constexpr VideoId() noexcept = default;
    constexpr explicit VideoId(std::uint64_t value) noexcept : value_(value) {}

    [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }

    /// Characters in the string form.
    static constexpr int kChars = 11;

    /// The 11-character base64url rendering (top 2 bits of the first
    /// character are always zero since we encode 64 bits into 66).
    [[nodiscard]] std::string to_string() const;

    /// Writes the 11-character rendering into `out[0..kChars)` without
    /// allocating; returns `out + kChars`. The hot DPI/format path uses this
    /// so per-flow serialization stays heap-free.
    char* encode(char* out) const noexcept;

    /// Parses an 11-character base64url id; nullopt on bad length/characters.
    [[nodiscard]] static std::optional<VideoId> parse(std::string_view text) noexcept;

    friend constexpr bool operator==(VideoId, VideoId) noexcept = default;
    friend constexpr auto operator<=>(VideoId, VideoId) noexcept = default;

private:
    std::uint64_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, VideoId id);

/// Video resolutions offered by the 2010-era player, with their Flash (flv)
/// and H.264 (mp4) itags. Tstat records the resolution actually streamed.
enum class Resolution : std::uint8_t { R240, R360, R480, R720, R1080 };

inline constexpr Resolution kAllResolutions[] = {Resolution::R240, Resolution::R360,
                                                 Resolution::R480, Resolution::R720,
                                                 Resolution::R1080};

/// The classic itag for the resolution (5/34/35 flv, 22/37 mp4 for HD).
[[nodiscard]] int itag_of(Resolution r) noexcept;

/// Inverse of itag_of, accepting also itag 18 (360p mp4).
[[nodiscard]] std::optional<Resolution> resolution_from_itag(int itag) noexcept;

/// Short label, e.g. "360p".
[[nodiscard]] std::string_view to_string(Resolution r) noexcept;

/// Average total (video+audio) bitrate in bits per second for the resolution,
/// matching 2010-era YouTube encodes.
[[nodiscard]] double bitrate_bps(Resolution r) noexcept;

/// One video in the catalog.
struct Video {
    VideoId id;
    /// Global popularity rank, 0 = most popular. Request generators sample
    /// ranks from a Zipf distribution.
    std::size_t rank = 0;
    double duration_s = 0.0;
    /// When the video entered the system; fresh uploads drive the
    /// unpopular-content experiments (Figs 17-18).
    sim::SimTime upload_time = 0.0;
};

/// File size of the stream at a given resolution, in bytes.
[[nodiscard]] std::uint64_t video_bytes(const Video& v, Resolution r) noexcept;

}  // namespace ytcdn::cdn

template <>
struct std::hash<ytcdn::cdn::VideoId> {
    std::size_t operator()(ytcdn::cdn::VideoId id) const noexcept {
        return std::hash<std::uint64_t>{}(id.value());
    }
};
