#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/selection_policy.hpp"
#include "cdn/server.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ytcdn::cdn {

using LdnsId = std::int32_t;
inline constexpr LdnsId kInvalidLdns = -1;

/// The DNS side of YouTube server selection (step 3 in the paper's Fig. 1).
///
/// Each client uses a *local* DNS server; YouTube's authoritative DNS answers
/// each local resolver according to a policy. The paper shows the policy can
/// differ across resolvers of the same network (Section VII-B: the Net-3
/// subnet of US-Campus is mapped to a different preferred data center), so a
/// policy is attached per local resolver, not per network.
class DnsSystem {
public:
    DnsSystem() = default;

    /// Registers a local resolver with its authoritative-side policy.
    LdnsId add_resolver(std::string name, std::unique_ptr<SelectionPolicy> policy);

    [[nodiscard]] std::size_t num_resolvers() const noexcept { return resolvers_.size(); }
    [[nodiscard]] const std::string& resolver_name(LdnsId id) const;

    /// Resolves the content-server name for a client behind `resolver`:
    /// returns the data center the authoritative DNS maps this request to.
    [[nodiscard]] DcId resolve(LdnsId resolver, sim::SimTime now, sim::Rng& rng);

    /// How many resolutions each (resolver, data center) pair has seen, for
    /// diagnosis and tests.
    [[nodiscard]] std::uint64_t resolution_count(LdnsId resolver, DcId dc) const noexcept;
    [[nodiscard]] std::uint64_t total_resolutions() const noexcept { return total_; }

private:
    struct Resolver {
        std::string name;
        std::unique_ptr<SelectionPolicy> policy;
        std::unordered_map<DcId, std::uint64_t> counts;
    };
    std::vector<Resolver> resolvers_;
    std::uint64_t total_ = 0;
};

}  // namespace ytcdn::cdn
