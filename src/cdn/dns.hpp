#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdn/selection_policy.hpp"
#include "cdn/server.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ytcdn::cdn {

using LdnsId = std::int32_t;
inline constexpr LdnsId kInvalidLdns = -1;

/// Status of one DNS lookup through a local resolver.
enum class DnsStatus {
    Ok,        // an answer was produced
    ServFail,  // the resolver is down; the stub resolver sees SERVFAIL
};

/// What a client's stub resolver gets back from its local resolver.
struct DnsAnswer {
    DnsStatus status = DnsStatus::Ok;
    DcId dc = kInvalidDc;
    /// True when the resolver served its cached last answer instead of
    /// consulting the authoritative side (the past-TTL stale-answer fault).
    bool stale = false;
};

/// The DNS side of YouTube server selection (step 3 in the paper's Fig. 1).
///
/// Each client uses a *local* DNS server; YouTube's authoritative DNS answers
/// each local resolver according to a policy. The paper shows the policy can
/// differ across resolvers of the same network (Section VII-B: the Net-3
/// subnet of US-Campus is mapped to a different preferred data center), so a
/// policy is attached per local resolver, not per network.
class DnsSystem {
public:
    DnsSystem() = default;

    /// Registers a local resolver with its authoritative-side policy.
    LdnsId add_resolver(std::string name, std::unique_ptr<SelectionPolicy> policy);

    [[nodiscard]] std::size_t num_resolvers() const noexcept { return resolvers_.size(); }
    [[nodiscard]] const std::string& resolver_name(LdnsId id) const;
    /// Resolver id by registration name, or kInvalidLdns. The fault
    /// injector addresses resolvers this way.
    [[nodiscard]] LdnsId resolver_by_name(std::string_view name) const noexcept;

    /// Resolves the content-server name for a client behind `resolver`.
    /// A healthy resolver consults its authoritative-side policy; a down
    /// resolver answers SERVFAIL; a stale resolver replays its last answer
    /// past TTL without consulting the policy.
    [[nodiscard]] DnsAnswer query(LdnsId resolver, sim::SimTime now, sim::Rng& rng);

    /// Legacy convenience for fault-free callers: returns the data center
    /// directly, throwing if the resolver is down.
    [[nodiscard]] DcId resolve(LdnsId resolver, sim::SimTime now, sim::Rng& rng);

    // --- health (fault injection) ------------------------------------------

    void set_resolver_up(LdnsId resolver, bool up);
    [[nodiscard]] bool resolver_up(LdnsId resolver) const;
    /// Toggles stale-answer mode: the resolver keeps returning its most
    /// recent answer (if any) instead of asking the authoritative side.
    void set_resolver_stale(LdnsId resolver, bool stale);
    [[nodiscard]] bool resolver_stale(LdnsId resolver) const;

    /// How many resolutions each (resolver, data center) pair has seen, for
    /// diagnosis and tests.
    [[nodiscard]] std::uint64_t resolution_count(LdnsId resolver, DcId dc) const noexcept;
    [[nodiscard]] std::uint64_t total_resolutions() const noexcept { return total_; }
    /// Per-resolver failure counters.
    [[nodiscard]] std::uint64_t servfail_count(LdnsId resolver) const;
    [[nodiscard]] std::uint64_t stale_answer_count(LdnsId resolver) const;

private:
    struct Resolver {
        std::string name;
        std::unique_ptr<SelectionPolicy> policy;
        std::unordered_map<DcId, std::uint64_t> counts;
        bool up = true;
        bool stale = false;
        DcId last_answer = kInvalidDc;
        std::uint64_t servfails = 0;
        std::uint64_t stale_served = 0;
    };
    [[nodiscard]] Resolver& resolver_or_throw(LdnsId id, const char* what);
    [[nodiscard]] const Resolver& resolver_or_throw(LdnsId id, const char* what) const;

    std::vector<Resolver> resolvers_;
    std::uint64_t total_ = 0;
};

}  // namespace ytcdn::cdn
