#pragma once

#include <memory>
#include <vector>

#include "cdn/server.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ytcdn::cdn {

/// Context handed to DNS selection policies on every resolution.
struct ResolutionContext {
    sim::SimTime now = 0.0;
    sim::Rng* rng = nullptr;
};

/// Strategy deciding which data center a DNS resolution maps a client to.
///
/// The paper infers several coexisting behaviours; each is a concrete policy
/// here so experiments can compose and ablate them:
///   - a *preferred* data center per resolver (lowest RTT) — StaticPreference
///   - adaptive DNS-level load balancing at EU2 — TokenBucketLoadBalance
///   - the pre-2010 baseline from Adhikari et al. [7] — ProportionalToSize
///   - a residual mix toward legacy ASes — MixturePolicy
class SelectionPolicy {
public:
    virtual ~SelectionPolicy() = default;
    /// Picks the data center this resolution maps to.
    [[nodiscard]] virtual DcId select(const ResolutionContext& ctx) = 0;
};

/// Always returns the first data center of a ranked preference list
/// (the per-network preferred data center of Section VI-B).
class StaticPreferencePolicy final : public SelectionPolicy {
public:
    explicit StaticPreferencePolicy(std::vector<DcId> ranked);
    [[nodiscard]] DcId select(const ResolutionContext& ctx) override;
    [[nodiscard]] const std::vector<DcId>& ranked() const noexcept { return ranked_; }

private:
    std::vector<DcId> ranked_;
};

/// Adaptive DNS-level load balancing (the EU2 mechanism, Section VII-A).
///
/// The first data center of the ranked list is the local/preferred one; its
/// sustainable request rate is modelled as a token bucket. While tokens are
/// available, resolutions map locally; excess demand overflows to the next
/// data center in the ranking. At night demand < rate so ~100% of requests
/// stay local; at daytime peaks the local share drops toward
/// rate / demand (~30% in the paper's Fig. 11).
class TokenBucketLoadBalancePolicy final : public SelectionPolicy {
public:
    /// `rate_per_s` tokens accrue per second up to `burst`.
    TokenBucketLoadBalancePolicy(std::vector<DcId> ranked, double rate_per_s,
                                 double burst);
    [[nodiscard]] DcId select(const ResolutionContext& ctx) override;

    [[nodiscard]] double rate_per_s() const noexcept { return rate_per_s_; }
    [[nodiscard]] double tokens() const noexcept { return tokens_; }

private:
    std::vector<DcId> ranked_;
    double rate_per_s_;
    double burst_;
    double tokens_;
    sim::SimTime last_refill_ = 0.0;
};

/// The "old YouTube" baseline ([7]): requests are spread across data centers
/// proportionally to data-center size, ignoring client location entirely.
class ProportionalToSizePolicy final : public SelectionPolicy {
public:
    struct WeightedDc {
        DcId dc = kInvalidDc;
        double weight = 1.0;  // e.g. number of servers in the data center
    };
    explicit ProportionalToSizePolicy(std::vector<WeightedDc> weighted);
    [[nodiscard]] DcId select(const ResolutionContext& ctx) override;

private:
    std::vector<WeightedDc> weighted_;
    double total_weight_;
};

/// With probability `p` delegates to `rare`, otherwise to `common`. Models
/// the small residual fraction of resolutions that still lands on legacy
/// YouTube-EU / other-AS infrastructure (Table II).
class MixturePolicy final : public SelectionPolicy {
public:
    MixturePolicy(std::unique_ptr<SelectionPolicy> common,
                  std::unique_ptr<SelectionPolicy> rare, double p_rare);
    [[nodiscard]] DcId select(const ResolutionContext& ctx) override;

private:
    std::unique_ptr<SelectionPolicy> common_;
    std::unique_ptr<SelectionPolicy> rare_;
    double p_rare_;
};

/// Uniformly random choice among a fixed set (used as the `rare` arm of a
/// MixturePolicy for legacy pools).
class UniformChoicePolicy final : public SelectionPolicy {
public:
    explicit UniformChoicePolicy(std::vector<DcId> choices);
    [[nodiscard]] DcId select(const ResolutionContext& ctx) override;

private:
    std::vector<DcId> choices_;
};

}  // namespace ytcdn::cdn
