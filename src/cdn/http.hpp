#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cdn/video.hpp"

namespace ytcdn::cdn {

/// A parsed /videoplayback request, the on-the-wire artifact a DPI engine
/// (Tstat) inspects to classify YouTube video flows and extract the VideoID
/// and resolution.
struct VideoRequest {
    std::string host;  // e.g. "v7.lscache3.c.youtube.com"
    VideoId video;
    int itag = 34;
};

/// Borrowed-host variant for per-event paths: the host points into storage
/// the caller owns (an interned hostname, the payload being parsed). The
/// simulate/capture loops run millions of these per simulated day, so the
/// hot path must not copy a `std::string` per flow.
struct VideoRequestView {
    std::string_view host;
    VideoId video;
    int itag = 34;
};

/// Canonical content-server hostname in the post-Google-migration scheme
/// ("vN.lscacheM.c.youtube.com"). Reverse DNS on these is disabled in the
/// real system — which is why the paper needs CBG instead of name parsing.
[[nodiscard]] std::string server_hostname(int cluster_index, int server_index);

/// True for hostnames the DPI classifier treats as YouTube video servers.
[[nodiscard]] bool is_video_host(std::string_view host) noexcept;

/// Serializes the HTTP GET the Flash plugin sends for a video stream.
[[nodiscard]] std::string format_request(const VideoRequest& request);

/// Allocation-free serialization into a reusable buffer: `out` is cleared
/// and refilled (capacity is retained across calls, so a per-player buffer
/// settles after the first flow).
void format_request_to(std::string& out, const VideoRequestView& request);

/// DPI: parses an HTTP payload; returns the request if and only if it is a
/// well-formed YouTube /videoplayback GET with a video host, a valid 11-char
/// id and a known itag.
[[nodiscard]] std::optional<VideoRequest> parse_request(std::string_view payload);

/// Non-copying parse: the returned host is a view into `payload` and is
/// valid only while the payload bytes live. This is the per-flow DPI entry
/// point; `parse_request` is the copying convenience wrapper.
[[nodiscard]] std::optional<VideoRequestView> parse_request_view(
    std::string_view payload) noexcept;

/// Serializes the 302 the content server answers when it cannot serve and
/// redirects the player elsewhere.
[[nodiscard]] std::string format_redirect(const VideoRequest& original,
                                          std::string_view new_host);

/// Allocation-free variant of format_redirect (same buffer contract as
/// format_request_to).
void format_redirect_to(std::string& out, const VideoRequestView& original,
                        std::string_view new_host);

/// Extracts the Location target host from a 302 payload, if present.
[[nodiscard]] std::optional<std::string> parse_redirect_host(std::string_view payload);

/// Non-copying variant: the host is a view into `payload`.
[[nodiscard]] std::optional<std::string_view> parse_redirect_host_view(
    std::string_view payload) noexcept;

}  // namespace ytcdn::cdn
