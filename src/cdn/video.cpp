#include "cdn/video.hpp"

#include <array>
#include <cmath>
#include <ostream>

namespace ytcdn::cdn {

namespace {

constexpr std::string_view kBase64Url =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

constexpr int kIdChars = 11;

int base64url_index(char c) noexcept {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '-') return 62;
    if (c == '_') return 63;
    return -1;
}

}  // namespace

char* VideoId::encode(char* out) const noexcept {
    // 11 characters x 6 bits = 66 bits for a 64-bit value. Like real YouTube
    // ids, the first 10 characters carry bits 63..4 and the final character
    // carries the low 4 bits shifted into its top — which is why real ids
    // always end in one of {A,E,I,M,Q,U,Y,c,g,k,o,s,w,0,4,8}.
    for (int i = 0; i < kIdChars - 1; ++i) {
        const int shift = 4 + 6 * (kIdChars - 2 - i);
        out[i] = kBase64Url[static_cast<std::size_t>((value_ >> shift) & 0x3F)];
    }
    out[kIdChars - 1] = kBase64Url[static_cast<std::size_t>((value_ & 0xF) << 2)];
    return out + kIdChars;
}

std::string VideoId::to_string() const {
    std::string out(kIdChars, 'A');
    encode(out.data());
    return out;
}

std::optional<VideoId> VideoId::parse(std::string_view text) noexcept {
    if (text.size() != kIdChars) return std::nullopt;
    std::uint64_t value = 0;
    for (int i = 0; i < kIdChars - 1; ++i) {
        const int idx = base64url_index(text[static_cast<std::size_t>(i)]);
        if (idx < 0) return std::nullopt;
        const int shift = 4 + 6 * (kIdChars - 2 - i);
        value |= static_cast<std::uint64_t>(idx) << shift;
    }
    const int last = base64url_index(text[kIdChars - 1]);
    // The last character only encodes 4 bits; its low 2 base64 bits must be
    // zero (as in genuine YouTube ids).
    if (last < 0 || (last & 0x3) != 0) return std::nullopt;
    value |= static_cast<std::uint64_t>(last) >> 2;
    return VideoId{value};
}

std::ostream& operator<<(std::ostream& os, VideoId id) { return os << id.to_string(); }

int itag_of(Resolution r) noexcept {
    switch (r) {
        case Resolution::R240: return 5;
        case Resolution::R360: return 34;
        case Resolution::R480: return 35;
        case Resolution::R720: return 22;
        case Resolution::R1080: return 37;
    }
    return 34;
}

std::optional<Resolution> resolution_from_itag(int itag) noexcept {
    switch (itag) {
        case 5: return Resolution::R240;
        case 34: return Resolution::R360;
        case 18: return Resolution::R360;
        case 35: return Resolution::R480;
        case 22: return Resolution::R720;
        case 37: return Resolution::R1080;
        default: return std::nullopt;
    }
}

std::string_view to_string(Resolution r) noexcept {
    switch (r) {
        case Resolution::R240: return "240p";
        case Resolution::R360: return "360p";
        case Resolution::R480: return "480p";
        case Resolution::R720: return "720p";
        case Resolution::R1080: return "1080p";
    }
    return "360p";
}

double bitrate_bps(Resolution r) noexcept {
    switch (r) {
        case Resolution::R240: return 250e3;
        case Resolution::R360: return 550e3;
        case Resolution::R480: return 1000e3;
        case Resolution::R720: return 2200e3;
        case Resolution::R1080: return 4300e3;
    }
    return 550e3;
}

std::uint64_t video_bytes(const Video& v, Resolution r) noexcept {
    const double bits = bitrate_bps(r) * v.duration_s;
    return static_cast<std::uint64_t>(std::llround(bits / 8.0));
}

}  // namespace ytcdn::cdn
