#include "cdn/cdn.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cdn/http.hpp"

namespace ytcdn::cdn {

Cdn::Cdn(const net::RttModel& rtt, ReplicationConfig replication)
    : rtt_(&rtt), replication_(replication) {
    if (replication_.origin_replicas <= 0) {
        throw std::invalid_argument("Cdn: origin_replicas must be > 0");
    }
}

DcId Cdn::add_data_center(std::string city, geo::Continent continent,
                          geo::GeoPoint location, net::Asn asn, InfraClass infra,
                          double site_access_rtt_ms) {
    DataCenter dc;
    dc.id = static_cast<DcId>(dcs_.size());
    dc.city = std::move(city);
    dc.continent = continent;
    dc.location = location;
    dc.asn = asn;
    dc.infra = infra;
    dc.site = net::NetSite{next_site_id_++, location, site_access_rtt_ms};
    dcs_.push_back(std::move(dc));
    caches_.emplace_back(replication_.replicate_top_ranks,
                         replication_.max_pulled_per_dc);
    invalidate_rank_cache();
    return dcs_.back().id;
}

void Cdn::add_prefix(DcId dc_id, net::Subnet prefix) {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::add_prefix: unknown data center");
    }
    dcs_[static_cast<std::size_t>(dc_id)].prefixes.push_back(prefix);
}

void Cdn::add_servers(DcId dc_id, int count, int capacity) {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::add_servers: unknown data center");
    }
    auto& dc = dcs_[static_cast<std::size_t>(dc_id)];
    if (dc.prefixes.empty()) {
        throw std::logic_error("Cdn::add_servers: add_prefix first");
    }
    // Servers are spread across the DC's prefixes; hosts .1, .2, ... inside
    // each /24 (offset by how many servers that prefix already holds).
    std::vector<std::uint64_t> used(dc.prefixes.size(), 0);
    for (const ServerId sid : dc.servers) {
        const net::IpAddress ip = servers_[static_cast<std::size_t>(sid)].ip();
        for (std::size_t p = 0; p < dc.prefixes.size(); ++p) {
            if (dc.prefixes[p].contains(ip)) {
                ++used[p];
                break;
            }
        }
    }
    for (int i = 0; i < count; ++i) {
        const std::size_t p = static_cast<std::size_t>(dc.servers.size() + i) %
                              dc.prefixes.size();
        const std::uint64_t host_index = 1 + used[p]++;
        if (host_index >= dc.prefixes[p].size() - 1) {
            throw std::logic_error("Cdn::add_servers: prefix exhausted");
        }
        const net::IpAddress ip = dc.prefixes[p].address_at(host_index);
        const auto sid = static_cast<ServerId>(servers_.size());
        servers_.emplace_back(sid, dc_id, ip,
                              server_hostname(static_cast<int>(dc_id),
                                              static_cast<int>(dc.servers.size())),
                              capacity);
        const util::Interner::Id hid = hostname_ids_.intern(servers_.back().hostname());
        if (server_of_hostname_.size() <= hid) server_of_hostname_.resize(hid + 1);
        server_of_hostname_[hid] = sid;
        dc.servers.push_back(sid);
    }
    invalidate_rank_cache();
}

void Cdn::register_prefixes(net::AsRegistry& registry,
                            std::string_view google_name) const {
    for (const auto& dc : dcs_) {
        std::string name;
        switch (dc.infra) {
            case InfraClass::GoogleCdn: name = std::string(google_name); break;
            case InfraClass::IspInternal: name = "ISP-" + dc.city; break;
            case InfraClass::LegacyYouTube: name = "YouTube-EU"; break;
            case InfraClass::OtherAs: name = "Transit-" + dc.city; break;
        }
        for (const auto& prefix : dc.prefixes) {
            registry.add(prefix, dc.asn, name);
        }
    }
}

const DataCenter& Cdn::dc(DcId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::dc");
    }
    return dcs_[static_cast<std::size_t>(id)];
}

const ContentServer& Cdn::server(ServerId id) const {
    if (id < 0 || static_cast<std::size_t>(id) >= servers_.size()) {
        throw std::out_of_range("Cdn::server");
    }
    return servers_[static_cast<std::size_t>(id)];
}

ContentServer& Cdn::server(ServerId id) {
    return const_cast<ContentServer&>(std::as_const(*this).server(id));
}

ServerId Cdn::server_by_hostname(std::string_view hostname) const noexcept {
    const util::Interner::Id hid = hostname_ids_.find(hostname);
    return hid == util::Interner::kInvalidId
               ? kInvalidServer
               : server_of_hostname_[hid];
}

DcId Cdn::dc_of_ip(net::IpAddress ip) const noexcept {
    for (const auto& dc : dcs_) {
        for (const auto& prefix : dc.prefixes) {
            if (prefix.contains(ip)) return dc.id;
        }
    }
    return kInvalidDc;
}

std::vector<DcId> Cdn::rank_by_rtt(const net::NetSite& client) const {
    std::vector<std::pair<double, DcId>> ranked;
    for (const auto& dc : dcs_) {
        if (!in_analysis_scope(dc.infra) || dc.servers.empty()) continue;
        if (dc.health != HealthState::Up) continue;
        ranked.emplace_back(rtt_->base_rtt_ms(client, dc.site), dc.id);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<DcId> out;
    out.reserve(ranked.size());
    for (const auto& [rtt, id] : ranked) out.push_back(id);
    return out;
}

const std::vector<DcId>& Cdn::rank_by_rtt_cached(const net::NetSite& client) const {
    const std::scoped_lock lock(rank_mutex_);
    const auto it = rank_cache_.find(client.id);
    if (it != rank_cache_.end()) return it->second;
    return rank_cache_.emplace(client.id, rank_by_rtt(client)).first->second;
}

void Cdn::invalidate_rank_cache() const noexcept {
    const std::scoped_lock lock(rank_mutex_);
    rank_cache_.clear();
}

void Cdn::set_dc_health(DcId dc_id, HealthState health) {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::set_dc_health");
    }
    dcs_[static_cast<std::size_t>(dc_id)].health = health;
    invalidate_rank_cache();
}

HealthState Cdn::dc_health(DcId dc_id) const { return dc(dc_id).health; }

void Cdn::set_server_health(ServerId server_id, HealthState health) {
    server(server_id).set_health(health);
}

HealthState Cdn::effective_health(ServerId server_id) const {
    const auto& s = server(server_id);
    return worse(s.health(), dcs_[static_cast<std::size_t>(s.dc())].health);
}

ConnectOutcome Cdn::connect_outcome(ServerId server_id) const {
    switch (effective_health(server_id)) {
        case HealthState::Up: return ConnectOutcome::Ok;
        case HealthState::Draining: return ConnectOutcome::Refused;
        case HealthState::Down: return ConnectOutcome::Timeout;
    }
    return ConnectOutcome::Ok;
}

bool Cdn::is_origin(DcId dc_id, VideoId id) const noexcept {
    // Consistent hashing over analysis-scope data centers: the video's k
    // origin copies land on the DCs with the smallest hash(video, dc).
    // Legacy infrastructure never holds origin copies.
    const auto& d = dcs_[static_cast<std::size_t>(dc_id)];
    if (!in_analysis_scope(d.infra)) return false;

    std::uint64_t my_score = sim::mix64(id.value() ^ sim::mix64(
                                            static_cast<std::uint64_t>(dc_id)));
    int better = 0;
    for (const auto& other : dcs_) {
        if (other.id == dc_id || !in_analysis_scope(other.infra) ||
            other.servers.empty()) {
            continue;
        }
        const std::uint64_t score = sim::mix64(
            id.value() ^ sim::mix64(static_cast<std::uint64_t>(other.id)));
        if (score < my_score) ++better;
        if (better >= replication_.origin_replicas) return false;
    }
    return true;
}

bool Cdn::has_content(DcId dc_id, const Video& v) const noexcept {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) return false;
    const auto& d = dcs_[static_cast<std::size_t>(dc_id)];
    // Legacy/other-AS infrastructure serves from its own full store; only
    // analysis-scope DCs participate in the replication model.
    if (!in_analysis_scope(d.infra)) return true;
    return caches_[static_cast<std::size_t>(dc_id)].contains(v) || is_origin(dc_id, v.id);
}

void Cdn::pull_content(DcId dc_id, VideoId id) {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::pull_content");
    }
    caches_[static_cast<std::size_t>(dc_id)].pull(id);
}

const ContentCache& Cdn::cache(DcId dc_id) const {
    if (dc_id < 0 || static_cast<std::size_t>(dc_id) >= dcs_.size()) {
        throw std::out_of_range("Cdn::cache");
    }
    return caches_[static_cast<std::size_t>(dc_id)];
}

ServerId Cdn::pick_server(DcId dc_id, VideoId id) const {
    const auto& d = dc(dc_id);
    if (d.servers.empty()) throw std::logic_error("Cdn::pick_server: empty data center");
    const std::uint64_t h = sim::mix64(id.value() ^ 0xC0FFEEull);
    const std::size_t n = d.servers.size();
    // Walk the hash ring past individually-failed machines, so a single
    // dark server inside a healthy site just shifts its videos to the next
    // one. With every server Up this returns the affinity server directly.
    for (std::size_t k = 0; k < n; ++k) {
        const ServerId sid = d.servers[(h + k) % n];
        if (servers_[static_cast<std::size_t>(sid)].accepting()) return sid;
    }
    // Whole site dark: return the affinity server; the caller's connection
    // attempt observes the failure.
    return d.servers[h % n];
}

ServeOutcome Cdn::classify_request(ServerId server_id, const Video& v) const {
    const auto& s = server(server_id);
    if (!has_content(s.dc(), v)) return ServeOutcome::RedirectMiss;
    if (s.overloaded()) return ServeOutcome::RedirectOverload;
    return ServeOutcome::Served;
}

ServerId Cdn::redirect_target(const net::NetSite& client, const Video& v,
                              std::span<const DcId> exclude) const {
    const auto excluded = [&](DcId id) {
        return std::find(exclude.begin(), exclude.end(), id) != exclude.end();
    };
    // rank_by_rtt already skips Draining/Down data centers; the per-pass
    // accepting() checks additionally skip individually dark servers (a
    // site whose entire pool failed still ranks, but cannot be a target).
    const std::vector<DcId>& ranked = rank_by_rtt_cached(client);
    // First pass: closest DC with the content and spare capacity.
    for (const DcId id : ranked) {
        if (excluded(id)) continue;
        const auto& d = dcs_[static_cast<std::size_t>(id)];
        if (d.servers.empty() || !has_content(id, v)) continue;
        const ServerId sid = pick_server(id, v.id);
        if (!server(sid).accepting()) continue;
        if (!server(sid).overloaded()) return sid;
    }
    // Second pass: accept an overloaded server rather than fail (the real
    // system always eventually serves).
    for (const DcId id : ranked) {
        if (excluded(id)) continue;
        const auto& d = dcs_[static_cast<std::size_t>(id)];
        if (d.servers.empty() || !has_content(id, v)) continue;
        const ServerId sid = pick_server(id, v.id);
        if (server(sid).accepting()) return sid;
    }
    // Last resort: ignore the exclusion list.
    for (const DcId id : ranked) {
        const auto& d = dcs_[static_cast<std::size_t>(id)];
        if (d.servers.empty() || !has_content(id, v)) continue;
        const ServerId sid = pick_server(id, v.id);
        if (server(sid).accepting()) return sid;
    }
    return kInvalidServer;
}

void Cdn::begin_flow(ServerId server_id) { server(server_id).begin_flow(); }

void Cdn::end_flow(ServerId server_id) { server(server_id).end_flow(); }

}  // namespace ytcdn::cdn
