#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cdn/video.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace ytcdn::cdn {

/// The corpus of videos known to the CDN, ordered by global popularity rank.
///
/// The catalog also tracks the "video of the day" schedule: the paper found
/// that the four most-redirected videos in EU1-ADSL "were played by default
/// when accessing the www.youtube.com web page for exactly 24 hours"
/// (Section VII-C) — i.e. front-page promotions create day-long flash
/// crowds. Request generators consult `promoted_video(t)` to inject that
/// extra load.
class VideoCatalog {
public:
    struct Config {
        std::size_t num_videos = 100'000;
        /// Lognormal duration: median ~3.5 min, heavy right tail, matching
        /// the campus-trace characterizations the paper cites ([3], [4]).
        double duration_median_s = 210.0;
        double duration_sigma = 0.80;
        double min_duration_s = 10.0;
        double max_duration_s = 3600.0;
    };

    VideoCatalog(const Config& config, sim::Rng rng);

    [[nodiscard]] std::size_t size() const noexcept { return videos_.size(); }
    [[nodiscard]] const Config& config() const noexcept { return config_; }

    /// Video with popularity rank `rank` (0 = most popular).
    [[nodiscard]] const Video& by_rank(std::size_t rank) const;

    /// Lookup by id; nullptr if unknown.
    [[nodiscard]] const Video* find(VideoId id) const noexcept;

    /// Registers a brand-new upload (used by the PlanetLab active
    /// experiment). It gets the least-popular rank. Returns the video.
    const Video& upload(sim::SimTime now, double duration_s);

    /// Schedules `rank` as the front-page "video of the day" for trace day
    /// `day` (00:00-24:00).
    void promote(int day, std::size_t rank);

    /// The promoted video for the day containing `t`, if any.
    [[nodiscard]] std::optional<std::size_t> promoted_rank(sim::SimTime t) const noexcept;

private:
    Config config_;
    std::vector<Video> videos_;
    std::unordered_map<VideoId, std::size_t> by_id_;
    std::unordered_map<int, std::size_t> promotions_;  // day -> rank
};

}  // namespace ytcdn::cdn
