#include "cdn/selection_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ytcdn::cdn {

StaticPreferencePolicy::StaticPreferencePolicy(std::vector<DcId> ranked)
    : ranked_(std::move(ranked)) {
    if (ranked_.empty()) {
        throw std::invalid_argument("StaticPreferencePolicy: empty ranking");
    }
}

DcId StaticPreferencePolicy::select(const ResolutionContext&) { return ranked_.front(); }

TokenBucketLoadBalancePolicy::TokenBucketLoadBalancePolicy(std::vector<DcId> ranked,
                                                           double rate_per_s,
                                                           double burst)
    : ranked_(std::move(ranked)), rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {
    if (ranked_.size() < 2) {
        throw std::invalid_argument(
            "TokenBucketLoadBalancePolicy: need a local and an overflow data center");
    }
    if (rate_per_s_ <= 0.0 || burst_ <= 0.0) {
        throw std::invalid_argument("TokenBucketLoadBalancePolicy: rate/burst must be > 0");
    }
}

DcId TokenBucketLoadBalancePolicy::select(const ResolutionContext& ctx) {
    if (ctx.now > last_refill_) {
        tokens_ = std::min(burst_, tokens_ + (ctx.now - last_refill_) * rate_per_s_);
        last_refill_ = ctx.now;
    }
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return ranked_.front();
    }
    return ranked_[1];
}

ProportionalToSizePolicy::ProportionalToSizePolicy(std::vector<WeightedDc> weighted)
    : weighted_(std::move(weighted)), total_weight_(0.0) {
    if (weighted_.empty()) {
        throw std::invalid_argument("ProportionalToSizePolicy: empty data-center set");
    }
    for (const auto& w : weighted_) {
        if (w.weight <= 0.0) {
            throw std::invalid_argument("ProportionalToSizePolicy: weights must be > 0");
        }
        total_weight_ += w.weight;
    }
}

DcId ProportionalToSizePolicy::select(const ResolutionContext& ctx) {
    if (ctx.rng == nullptr) {
        throw std::invalid_argument("ProportionalToSizePolicy: context needs an rng");
    }
    double x = ctx.rng->uniform(0.0, total_weight_);
    for (const auto& w : weighted_) {
        x -= w.weight;
        if (x <= 0.0) return w.dc;
    }
    return weighted_.back().dc;
}

MixturePolicy::MixturePolicy(std::unique_ptr<SelectionPolicy> common,
                             std::unique_ptr<SelectionPolicy> rare, double p_rare)
    : common_(std::move(common)), rare_(std::move(rare)), p_rare_(p_rare) {
    if (!common_ || !rare_) throw std::invalid_argument("MixturePolicy: null policy");
    if (p_rare_ < 0.0 || p_rare_ > 1.0) {
        throw std::invalid_argument("MixturePolicy: p_rare must be in [0, 1]");
    }
}

DcId MixturePolicy::select(const ResolutionContext& ctx) {
    if (ctx.rng == nullptr) {
        throw std::invalid_argument("MixturePolicy: context needs an rng");
    }
    return ctx.rng->bernoulli(p_rare_) ? rare_->select(ctx) : common_->select(ctx);
}

UniformChoicePolicy::UniformChoicePolicy(std::vector<DcId> choices)
    : choices_(std::move(choices)) {
    if (choices_.empty()) throw std::invalid_argument("UniformChoicePolicy: empty set");
}

DcId UniformChoicePolicy::select(const ResolutionContext& ctx) {
    if (ctx.rng == nullptr) {
        throw std::invalid_argument("UniformChoicePolicy: context needs an rng");
    }
    return choices_[ctx.rng->uniform_index(choices_.size())];
}

}  // namespace ytcdn::cdn
