#include "cdn/catalog.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::cdn {

namespace {

double sample_duration(const VideoCatalog::Config& cfg, sim::Rng& rng) {
    const double mu = std::log(cfg.duration_median_s);
    const double d = rng.lognormal(mu, cfg.duration_sigma);
    return std::clamp(d, cfg.min_duration_s, cfg.max_duration_s);
}

}  // namespace

VideoCatalog::VideoCatalog(const Config& config, sim::Rng rng) : config_(config) {
    if (config_.num_videos == 0) {
        throw std::invalid_argument("VideoCatalog: num_videos must be > 0");
    }
    videos_.reserve(config_.num_videos);
    by_id_.reserve(config_.num_videos);
    for (std::size_t rank = 0; rank < config_.num_videos; ++rank) {
        Video v;
        // Ids derive from the rank via a strong mix, so they look random but
        // are reproducible. Collisions over 64 bits are not a practical
        // concern at catalog scale, but we still guard.
        v.id = VideoId{sim::mix64(rng.seed() ^ sim::mix64(rank))};
        while (by_id_.contains(v.id)) v.id = VideoId{v.id.value() + 1};
        v.rank = rank;
        v.duration_s = sample_duration(config_, rng);
        v.upload_time = 0.0;  // pre-existing content
        by_id_.emplace(v.id, rank);
        videos_.push_back(v);
    }
}

const Video& VideoCatalog::by_rank(std::size_t rank) const {
    if (rank >= videos_.size()) throw std::out_of_range("VideoCatalog::by_rank");
    return videos_[rank];
}

const Video* VideoCatalog::find(VideoId id) const noexcept {
    const auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : &videos_[it->second];
}

const Video& VideoCatalog::upload(sim::SimTime now, double duration_s) {
    Video v;
    v.id = VideoId{sim::mix64(0x5EEDF00Dull ^ sim::mix64(videos_.size()))};
    while (by_id_.contains(v.id)) v.id = VideoId{v.id.value() + 1};
    v.rank = videos_.size();
    v.duration_s = std::clamp(duration_s, config_.min_duration_s, config_.max_duration_s);
    v.upload_time = now;
    by_id_.emplace(v.id, v.rank);
    videos_.push_back(v);
    return videos_.back();
}

void VideoCatalog::promote(int day, std::size_t rank) {
    if (rank >= videos_.size()) throw std::out_of_range("VideoCatalog::promote rank");
    promotions_[day] = rank;
}

std::optional<std::size_t> VideoCatalog::promoted_rank(sim::SimTime t) const noexcept {
    const auto it = promotions_.find(static_cast<int>(sim::day_index(t)));
    if (it == promotions_.end()) return std::nullopt;
    return it->second;
}

}  // namespace ytcdn::cdn
