#include "cdn/http.hpp"

#include <charconv>

namespace ytcdn::cdn {

namespace {

constexpr std::string_view kVideoHostSuffix = ".c.youtube.com";
constexpr std::string_view kPlaybackPath = "/videoplayback?";

/// Returns the value of `key=` inside a query string, up to '&' or ' '.
std::optional<std::string_view> query_param(std::string_view query, std::string_view key) {
    std::size_t pos = 0;
    while (pos < query.size()) {
        const std::size_t amp = query.find('&', pos);
        const std::string_view pair =
            query.substr(pos, amp == std::string_view::npos ? amp : amp - pos);
        const std::size_t eq = pair.find('=');
        if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
            return pair.substr(eq + 1);
        }
        if (amp == std::string_view::npos) break;
        pos = amp + 1;
    }
    return std::nullopt;
}

std::optional<std::string_view> header_value(std::string_view payload,
                                             std::string_view name) {
    std::size_t pos = payload.find("\r\n");
    while (pos != std::string_view::npos && pos + 2 < payload.size()) {
        const std::size_t start = pos + 2;
        const std::size_t end = payload.find("\r\n", start);
        const std::string_view line =
            payload.substr(start, end == std::string_view::npos ? end : end - start);
        if (line.size() > name.size() + 1 && line.substr(0, name.size()) == name &&
            line[name.size()] == ':') {
            std::string_view v = line.substr(name.size() + 1);
            while (!v.empty() && v.front() == ' ') v.remove_prefix(1);
            return v;
        }
        pos = end;
    }
    return std::nullopt;
}

}  // namespace

std::string server_hostname(int cluster_index, int server_index) {
    return "v" + std::to_string(server_index) + ".lscache" +
           std::to_string(cluster_index) + ".c.youtube.com";
}

bool is_video_host(std::string_view host) noexcept {
    return host.size() > kVideoHostSuffix.size() &&
           host.substr(host.size() - kVideoHostSuffix.size()) == kVideoHostSuffix;
}

namespace {

/// Appends a base-10 int without a std::to_string temporary.
void append_int(std::string& out, int value) {
    char buf[16];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, end);
}

/// Appends the 11-character video id straight into the buffer.
void append_video_id(std::string& out, VideoId id) {
    char buf[VideoId::kChars];
    id.encode(buf);
    out.append(buf, VideoId::kChars);
}

}  // namespace

void format_request_to(std::string& out, const VideoRequestView& request) {
    out.clear();
    out += "GET /videoplayback?id=";
    append_video_id(out, request.video);
    out += "&itag=";
    append_int(out, request.itag);
    out += " HTTP/1.1\r\nHost: ";
    out += request.host;
    out += "\r\nUser-Agent: Shockwave Flash\r\nConnection: keep-alive\r\n\r\n";
}

std::string format_request(const VideoRequest& request) {
    std::string out;
    out.reserve(256);
    format_request_to(out, VideoRequestView{request.host, request.video, request.itag});
    return out;
}

std::optional<VideoRequestView> parse_request_view(std::string_view payload) noexcept {
    if (!payload.starts_with("GET ")) return std::nullopt;
    const std::size_t path_start = 4;
    const std::size_t path_end = payload.find(' ', path_start);
    if (path_end == std::string_view::npos) return std::nullopt;
    const std::string_view path = payload.substr(path_start, path_end - path_start);
    if (!path.starts_with(kPlaybackPath)) return std::nullopt;
    const std::string_view query = path.substr(kPlaybackPath.size());

    const auto id_text = query_param(query, "id");
    const auto itag_text = query_param(query, "itag");
    if (!id_text || !itag_text) return std::nullopt;

    const auto id = VideoId::parse(*id_text);
    if (!id) return std::nullopt;

    int itag = 0;
    const auto [next, ec] =
        std::from_chars(itag_text->data(), itag_text->data() + itag_text->size(), itag);
    if (ec != std::errc{} || next != itag_text->data() + itag_text->size()) {
        return std::nullopt;
    }
    if (!resolution_from_itag(itag)) return std::nullopt;

    const auto host = header_value(payload, "Host");
    if (!host || !is_video_host(*host)) return std::nullopt;

    return VideoRequestView{*host, *id, itag};
}

std::optional<VideoRequest> parse_request(std::string_view payload) {
    const auto view = parse_request_view(payload);
    if (!view) return std::nullopt;
    return VideoRequest{std::string(view->host), view->video, view->itag};
}

void format_redirect_to(std::string& out, const VideoRequestView& original,
                        std::string_view new_host) {
    out.clear();
    out += "HTTP/1.1 302 Found\r\nLocation: http://";
    out += new_host;
    out += "/videoplayback?id=";
    append_video_id(out, original.video);
    out += "&itag=";
    append_int(out, original.itag);
    out += "\r\nContent-Length: 0\r\n\r\n";
}

std::string format_redirect(const VideoRequest& original, std::string_view new_host) {
    std::string out;
    out.reserve(256);
    format_redirect_to(out, VideoRequestView{original.host, original.video, original.itag},
                       new_host);
    return out;
}

std::optional<std::string_view> parse_redirect_host_view(
    std::string_view payload) noexcept {
    if (!payload.starts_with("HTTP/1.1 302")) return std::nullopt;
    const auto location = header_value(payload, "Location");
    if (!location) return std::nullopt;
    std::string_view url = *location;
    constexpr std::string_view kScheme = "http://";
    if (!url.starts_with(kScheme)) return std::nullopt;
    url.remove_prefix(kScheme.size());
    return url.substr(0, url.find('/'));
}

std::optional<std::string> parse_redirect_host(std::string_view payload) {
    const auto host = parse_redirect_host_view(payload);
    if (!host) return std::nullopt;
    return std::string(*host);
}

}  // namespace ytcdn::cdn
