#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/geo_point.hpp"
#include "net/as_registry.hpp"
#include "net/rtt_model.hpp"
#include "net/subnet.hpp"
#include "cdn/server.hpp"

namespace ytcdn::cdn {

/// Which slice of infrastructure a data center belongs to. The paper's
/// Table II splits traffic between the Google AS (15169), the legacy
/// YouTube-EU AS (43515), an in-ISP data center (EU2) and small "other"
/// ASes (CW, GBLX).
enum class InfraClass {
    GoogleCdn,      // AS 15169 — carries virtually all video bytes
    IspInternal,    // Google cache inside an ISP (the EU2 special case)
    LegacyYouTube,  // AS 43515 — legacy configuration leftovers
    OtherAs,        // CW / GBLX — residual traffic
};

[[nodiscard]] std::string_view to_string(InfraClass c) noexcept;
std::ostream& operator<<(std::ostream& os, InfraClass c);

/// True for infrastructure the paper's server-selection analysis keeps:
/// "we only focus on accesses to video servers located in the Google AS.
/// For the EU2 dataset, we include accesses to the data center located
/// inside the corresponding ISP" (Section IV).
[[nodiscard]] constexpr bool in_analysis_scope(InfraClass c) noexcept {
    return c == InfraClass::GoogleCdn || c == InfraClass::IspInternal;
}

/// A data center: a city-level cluster of content servers, the unit at which
/// the paper studies server selection (33 of them across its datasets).
struct DataCenter {
    DcId id = kInvalidDc;
    std::string city;
    geo::Continent continent = geo::Continent::Europe;
    geo::GeoPoint location;
    net::Asn asn;
    InfraClass infra = InfraClass::GoogleCdn;
    /// Health of the whole site (power/uplink failures); combined with each
    /// server's own state via Cdn::effective_health.
    HealthState health = HealthState::Up;
    /// The network site used for all RTT computations to/from this DC.
    net::NetSite site;
    /// IP prefixes announced for this DC (servers are carved out of these;
    /// each /24 belongs to exactly one DC, matching the paper's clustering).
    std::vector<net::Subnet> prefixes;
    /// Servers hosted here, as ids into the CDN's server table.
    std::vector<ServerId> servers;
};

}  // namespace ytcdn::cdn
