#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/ip_address.hpp"

namespace ytcdn::cdn {

/// Index types for the CDN's flat entity tables.
using ServerId = std::int32_t;
using DcId = std::int32_t;
inline constexpr ServerId kInvalidServer = -1;
inline constexpr DcId kInvalidDc = -1;

/// Operational state of a server or a whole data center, driven by the
/// fault injector. Ordered by severity so the effective state of a server
/// is the max of its own and its data center's.
enum class HealthState {
    Up,        // accepts new connections
    Draining,  // finishes active flows, refuses (RST) new connections
    Down,      // dark: new connections time out, nothing is served
};

[[nodiscard]] std::string_view to_string(HealthState h) noexcept;

/// The stricter of two health states.
[[nodiscard]] constexpr HealthState worse(HealthState a, HealthState b) noexcept {
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// One content server: an IP inside a data center with a bounded number of
/// concurrent video flows it can sustain.
///
/// Requests above capacity are not queued — the server answers with an
/// application-layer redirect, which is the hot-spot mechanism the paper
/// observes (Section VII-C, Figs 15-16).
class ContentServer {
public:
    ContentServer(ServerId id, DcId dc, net::IpAddress ip, std::string hostname,
                  int capacity);

    [[nodiscard]] ServerId id() const noexcept { return id_; }
    [[nodiscard]] DcId dc() const noexcept { return dc_; }
    [[nodiscard]] net::IpAddress ip() const noexcept { return ip_; }
    [[nodiscard]] const std::string& hostname() const noexcept { return hostname_; }
    [[nodiscard]] int capacity() const noexcept { return capacity_; }

    [[nodiscard]] int active_flows() const noexcept { return active_; }
    [[nodiscard]] bool overloaded() const noexcept { return active_ >= capacity_; }
    [[nodiscard]] std::uint64_t flows_served() const noexcept { return served_; }
    [[nodiscard]] std::uint64_t redirects_issued() const noexcept { return redirects_; }

    /// This server's own health; the data-center state is applied on top by
    /// Cdn::effective_health. Active flows always drain to completion —
    /// only new connections are refused (Draining) or time out (Down).
    [[nodiscard]] HealthState health() const noexcept { return health_; }
    void set_health(HealthState h) noexcept { health_ = h; }
    [[nodiscard]] bool accepting() const noexcept { return health_ == HealthState::Up; }

    /// Accounting for a video flow the server accepted.
    void begin_flow();
    void end_flow();
    /// Accounting for a redirect the server issued instead of serving.
    void note_redirect() noexcept { ++redirects_; }

private:
    ServerId id_;
    DcId dc_;
    net::IpAddress ip_;
    std::string hostname_;
    int capacity_;
    HealthState health_ = HealthState::Up;
    int active_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t redirects_ = 0;
};

}  // namespace ytcdn::cdn
