#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "capture/flow_record.hpp"
#include "util/error.hpp"

namespace ytcdn::service {

/// The watched spool directory (DESIGN.md §15): producers land flow logs
/// atomically (write elsewhere or to a dot/tmp name, then rename into the
/// spool), the daemon ingests them in lexicographic name order. Names are
/// the replay order, so a producer that wants strict ordering uses sortable
/// names (e.g. zero-padded sequence numbers).

/// One ingestible file found in the spool.
struct SpoolFile {
    std::filesystem::path path;
    std::string name;        // filename, the ledger/manifest key
    std::uint64_t size = 0;  // bytes at scan time
};

/// Flow-log files (*.yfl binary YFL2, *.tsv text), sorted by name.
/// Hidden files, "*.tmp" and quarantined "*.corrupt.*" files are skipped —
/// those are in-flight or damaged, never input.
[[nodiscard]] std::vector<SpoolFile> scan_spool(
    const std::filesystem::path& dir);

/// Server->DC map files (*.dcmap, the `ytcdn analyze` text format), sorted
/// by name. The daemon installs the first one it sees.
[[nodiscard]] std::vector<SpoolFile> scan_dc_maps(
    const std::filesystem::path& dir);

/// Reads and parses one spool file through the injectable io facade:
/// *.yfl via the YFL2 reader, *.tsv line-by-line via FlowRecord::from_tsv
/// (malformed lines are a Parse error with the line number). The records'
/// stream name is the file name up to the first '.'.
[[nodiscard]] util::Result<std::vector<capture::FlowRecord>> read_spool_file(
    const std::filesystem::path& path);

/// "eu1-0003.yfl" -> "eu1-0003" -> stream key "eu1" when the name has a
/// '-<digits>' sequence suffix, else the whole stem: one logical stream
/// can span many spool files.
[[nodiscard]] std::string stream_of(const std::string& name);

}  // namespace ytcdn::service
