#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "analysis/incremental.hpp"
#include "capture/flow_record.hpp"
#include "util/error.hpp"

namespace ytcdn::service {

/// The daemon's live analysis state: per-stream Table I / Section VI
/// incremental aggregates plus the shared Section VII preferred-DC
/// accounting, rendered on demand and encoded into the YCK1 service
/// checkpoint. Streams are keyed in a std::map so render() and encode()
/// are byte-deterministic regardless of arrival interleaving.
class ServiceAggregates {
public:
    explicit ServiceAggregates(double gap_T_s = 1.0) : gap_(gap_T_s) {}

    struct Stream {
        analysis::IncrementalSummary summary;
        analysis::IncrementalSessions sessions;
        explicit Stream(double gap_T_s = 1.0) : sessions(gap_T_s) {}
    };

    void add(const std::string& stream, const capture::FlowRecord& r);

    [[nodiscard]] double gap() const noexcept { return gap_; }
    [[nodiscard]] const std::map<std::string, Stream>& streams()
        const noexcept {
        return streams_;
    }
    [[nodiscard]] analysis::IncrementalPreference& preference() noexcept {
        return preference_;
    }
    [[nodiscard]] const analysis::IncrementalPreference& preference()
        const noexcept {
        return preference_;
    }
    [[nodiscard]] std::uint64_t total_flows() const noexcept;

    /// Deterministic on-demand rendering (the `render` control command and
    /// the shutdown aggregates.txt). Open sessions are closed on a copy, so
    /// rendering is side-effect-free and shows "sessions as if every stream
    /// ended now".
    [[nodiscard]] std::string render() const;

    /// YCK1 service-checkpoint payload section. Doubles are stored as raw
    /// IEEE-754 bits and unordered sets sorted before encoding, so a
    /// resumed daemon is bit-identical to an uninterrupted one.
    [[nodiscard]] std::string encode() const;
    [[nodiscard]] static util::Result<ServiceAggregates> decode(
        std::string_view payload);

private:
    double gap_;
    std::map<std::string, Stream> streams_;
    analysis::IncrementalPreference preference_;
};

}  // namespace ytcdn::service
