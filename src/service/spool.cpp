#include "service/spool.hpp"

#include <algorithm>
#include <sstream>

#include "capture/binary_log.hpp"
#include "util/io.hpp"

namespace ytcdn::service {

namespace {

bool has_suffix(const std::string& name, std::string_view suffix) {
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

bool is_ingestible_name(const std::string& name) {
    if (name.empty() || name.front() == '.') return false;
    if (has_suffix(name, ".tmp")) return false;
    if (name.find(".corrupt.") != std::string::npos) return false;
    return true;
}

std::vector<SpoolFile> scan_with_suffixes(
    const std::filesystem::path& dir,
    const std::vector<std::string_view>& suffixes) {
    std::vector<SpoolFile> out;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        if (!is_ingestible_name(name)) continue;
        bool matches = false;
        for (const auto suffix : suffixes) {
            if (has_suffix(name, suffix)) {
                matches = true;
                break;
            }
        }
        if (!matches) continue;
        SpoolFile file;
        file.path = entry.path();
        file.name = name;
        file.size = entry.file_size(ec);
        out.push_back(std::move(file));
    }
    // Directory iteration order is filesystem-dependent; the sort makes the
    // replay order (and therefore every aggregate) deterministic.
    std::sort(out.begin(), out.end(),
              [](const SpoolFile& a, const SpoolFile& b) {
                  return a.name < b.name;
              });
    return out;
}

}  // namespace

std::vector<SpoolFile> scan_spool(const std::filesystem::path& dir) {
    return scan_with_suffixes(dir, {".yfl", ".tsv"});
}

std::vector<SpoolFile> scan_dc_maps(const std::filesystem::path& dir) {
    return scan_with_suffixes(dir, {".dcmap"});
}

util::Result<std::vector<capture::FlowRecord>> read_spool_file(
    const std::filesystem::path& path) {
    auto bytes = util::io::read_file(path);
    if (!bytes) {
        return std::move(bytes).context("spool " + path.string()).error();
    }
    const std::string name = path.filename().string();
    if (has_suffix(name, ".yfl")) {
        std::istringstream is(std::move(bytes).value());
        return capture::read_binary_log_result(is);
    }
    std::vector<capture::FlowRecord> records;
    std::istringstream is(std::move(bytes).value());
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line.front() == '#') continue;
        auto record = capture::FlowRecord::from_tsv(line);
        if (!record) {
            return error_at_line(ErrorCode::Parse,
                                 "spool " + path.string() +
                                     ": malformed flow line",
                                 line_no);
        }
        records.push_back(*record);
    }
    return records;
}

std::string stream_of(const std::string& name) {
    const std::size_t dot = name.find('.');
    std::string stem = dot == std::string::npos ? name : name.substr(0, dot);
    const std::size_t dash = stem.rfind('-');
    if (dash != std::string::npos && dash + 1 < stem.size()) {
        const std::string_view tail = std::string_view(stem).substr(dash + 1);
        if (tail.find_first_not_of("0123456789") == std::string_view::npos) {
            stem.resize(dash);
        }
    }
    return stem;
}

}  // namespace ytcdn::service
