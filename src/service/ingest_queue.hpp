#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "capture/flow_record.hpp"

namespace ytcdn::service {

/// One admission-controlled unit of ingest: a slice of a spool file.
struct IngestBatch {
    std::string file;          // spool file name (manifest key)
    std::uint32_t index = 0;   // batch index within the file
    std::vector<capture::FlowRecord> records;
};

/// A shed decision — never silent: every drop is recorded here, surfaces in
/// the service manifest, and counts on the service.batches_shed /
/// service.records_shed metrics.
struct ShedRecord {
    std::string file;
    std::uint32_t batch = 0;
    std::uint64_t records = 0;
};

/// Bounded ingest queue with deterministic tail-drop load shedding: a push
/// beyond `capacity` batches sheds the *incoming* batch (the newest data
/// loses, the backlog keeps its admission order), so which batches survive
/// depends only on the input sequence — never on timing. capacity == 0
/// means unbounded (the default: shedding is an explicit overload policy,
/// not a silent default).
class IngestQueue {
public:
    explicit IngestQueue(std::size_t capacity = 0) : capacity_(capacity) {}

    /// True if admitted; false if shed (recorded in shed()).
    bool push(IngestBatch batch);

    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t peak_size() const noexcept { return peak_; }

    /// Precondition: !empty(). FIFO.
    [[nodiscard]] IngestBatch pop();

    /// Every shed decision since construction, in admission order.
    [[nodiscard]] const std::vector<ShedRecord>& shed() const noexcept {
        return shed_;
    }
    [[nodiscard]] std::uint64_t shed_records_total() const noexcept;

private:
    std::size_t capacity_;
    std::size_t peak_ = 0;
    std::deque<IngestBatch> queue_;
    std::vector<ShedRecord> shed_;
};

}  // namespace ytcdn::service
