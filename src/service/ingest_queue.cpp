#include "service/ingest_queue.hpp"

#include <algorithm>
#include <utility>

namespace ytcdn::service {

bool IngestQueue::push(IngestBatch batch) {
    if (capacity_ != 0 && queue_.size() >= capacity_) {
        ShedRecord record;
        record.file = batch.file;
        record.batch = batch.index;
        record.records = batch.records.size();
        shed_.push_back(std::move(record));
        return false;
    }
    queue_.push_back(std::move(batch));
    peak_ = std::max(peak_, queue_.size());
    return true;
}

IngestBatch IngestQueue::pop() {
    IngestBatch out = std::move(queue_.front());
    queue_.pop_front();
    return out;
}

std::uint64_t IngestQueue::shed_records_total() const noexcept {
    std::uint64_t total = 0;
    for (const auto& record : shed_) total += record.records;
    return total;
}

}  // namespace ytcdn::service
