#include "service/aggregates.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "analysis/table.hpp"

namespace ytcdn::service {

namespace {

// Local little-endian codec helpers, mirroring study/checkpoint.cpp's
// conventions (u32-length strings, doubles as raw IEEE-754 bits).

template <typename T>
void put(std::string& buf, T value) {
    char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    buf.append(raw, sizeof(T));
}

void put_str32(std::string& buf, std::string_view s) {
    put(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

void put_f64(std::string& buf, double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    put(buf, bits);
}

class Reader {
public:
    explicit Reader(std::string_view data) : data_(data) {}

    template <typename T>
    bool take(T* out) {
        if (data_.size() - off_ < sizeof(T)) return false;
        std::memcpy(out, data_.data() + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    bool take_f64(double* out) {
        std::uint64_t bits = 0;
        if (!take(&bits)) return false;
        std::memcpy(out, &bits, sizeof(bits));
        return true;
    }

    bool take_str32(std::string* out) {
        std::uint32_t n = 0;
        if (!take(&n)) return false;
        if (data_.size() - off_ < n) return false;
        out->assign(data_.substr(off_, n));
        off_ += n;
        return true;
    }

    [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

    [[nodiscard]] Error truncated() const {
        return Error(ErrorCode::Truncated,
                     "service aggregates payload truncated at byte " +
                         std::to_string(off_));
    }

private:
    std::string_view data_;
    std::size_t off_ = 0;
};

constexpr std::uint32_t kAggregatesVersion = 1;

void put_sorted_set(std::string& buf,
                    const std::unordered_set<std::uint32_t>& set) {
    std::vector<std::uint32_t> sorted(set.begin(), set.end());
    std::sort(sorted.begin(), sorted.end());
    put(buf, static_cast<std::uint32_t>(sorted.size()));
    for (const std::uint32_t v : sorted) put(buf, v);
}

bool take_set(Reader& r, std::unordered_set<std::uint32_t>* set) {
    std::uint32_t n = 0;
    if (!r.take(&n)) return false;
    set->reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::uint32_t v = 0;
        if (!r.take(&v)) return false;
        set->insert(v);
    }
    return true;
}

}  // namespace

void ServiceAggregates::add(const std::string& stream,
                            const capture::FlowRecord& r) {
    auto it = streams_.find(stream);
    if (it == streams_.end()) {
        it = streams_.emplace(stream, Stream(gap_)).first;
    }
    it->second.summary.add(r);
    it->second.sessions.add(r);
    preference_.add(r);
}

std::uint64_t ServiceAggregates::total_flows() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [name, stream] : streams_) total += stream.summary.flows;
    return total;
}

std::string ServiceAggregates::render() const {
    std::ostringstream os;
    os << "# ytcdnd incremental aggregates\n";
    os << "streams " << streams_.size() << "\n";
    os << "flows_total " << total_flows() << "\n\n";

    analysis::AsciiTable table1({"stream", "flows", "video flows",
                                 "volume GB", "servers", "server /24s",
                                 "clients"});
    for (const auto& [name, stream] : streams_) {
        const auto& s = stream.summary;
        table1.add_row({name, std::to_string(s.flows),
                        std::to_string(s.video_flows),
                        analysis::fmt(s.volume_gb(), 3),
                        std::to_string(s.servers.size()),
                        std::to_string(s.server_slash24s.size()),
                        std::to_string(s.clients.size())});
    }
    os << "== Table I (incremental): per-stream traffic summary ==\n"
       << table1.render() << '\n';

    analysis::AsciiTable sessions_table(
        {"stream", "sessions", "multi-flow %", "1", "2", "3", "4", "5", "6",
         "7", "8+"});
    for (const auto& [name, stream] : streams_) {
        // Close on a copy: rendering shows "sessions as if the stream ended
        // now" without mutating the live gap state.
        analysis::IncrementalSessions closed = stream.sessions;
        closed.close_all();
        const std::uint64_t total = closed.sessions_closed();
        std::vector<std::string> row{
            name, std::to_string(total),
            total == 0 ? analysis::fmt_pct(0.0)
                       : analysis::fmt_pct(
                             static_cast<double>(closed.multi_flow_sessions()) /
                             static_cast<double>(total))};
        for (std::size_t k = 1; k <= analysis::IncrementalSessions::kMaxBucket;
             ++k) {
            row.push_back(std::to_string(closed.histogram()[k]));
        }
        sessions_table.add_row(std::move(row));
    }
    os << "== Section VI (incremental): flows per video session (gap T="
       << analysis::fmt(gap_, 2) << "s) ==\n"
       << sessions_table.render() << '\n';

    os << "== Section VII (incremental): preferred data center (policy: "
       << preference_.policy() << ") ==\n";
    if (!preference_.has_map()) {
        os << "no dc map installed\n";
    } else {
        analysis::AsciiTable dc_table({"data center", "rtt ms", "drained",
                                       "scale", "flows", "GB"});
        const auto& map = preference_.map();
        for (std::size_t i = 0; i < preference_.dcs().size(); ++i) {
            const auto& dc = preference_.dcs()[i];
            const auto& info = map.info(static_cast<int>(i));
            dc_table.add_row({info.name, analysis::fmt(info.rtt_ms, 1),
                              dc.drained ? "yes" : "no",
                              analysis::fmt(dc.scale, 2),
                              std::to_string(dc.flows),
                              analysis::fmt(static_cast<double>(dc.bytes) / 1e9,
                                            3)});
        }
        os << dc_table.render();
        const int preferred = preference_.preferred_dc();
        os << "preferred_dc "
           << (preferred < 0 ? std::string("-") : map.info(preferred).name)
           << '\n';
        os << "mapped_flows " << preference_.mapped_flows << '\n';
        os << "unmapped_flows " << preference_.unmapped_flows << '\n';
        os << "non_preferred_flows " << preference_.non_preferred_flows
           << " (" << analysis::fmt_pct(preference_.non_preferred_flow_share())
           << "%)\n";
    }
    return os.str();
}

std::string ServiceAggregates::encode() const {
    std::string buf;
    put(buf, kAggregatesVersion);
    put_f64(buf, gap_);

    put_str32(buf, preference_.policy());
    put(buf, static_cast<std::uint8_t>(preference_.has_map() ? 1 : 0));
    if (preference_.has_map()) {
        std::ostringstream map_text;
        analysis::write_dc_map(map_text, preference_.map());
        put_str32(buf, map_text.str());
        put(buf, static_cast<std::uint32_t>(preference_.dcs().size()));
        for (const auto& dc : preference_.dcs()) {
            put(buf, static_cast<std::uint8_t>(dc.drained ? 1 : 0));
            put_f64(buf, dc.scale);
            put(buf, dc.flows);
            put(buf, dc.bytes);
        }
    }
    put(buf, preference_.mapped_flows);
    put(buf, preference_.unmapped_flows);
    put(buf, preference_.preferred_flows);
    put(buf, preference_.non_preferred_flows);
    put(buf, preference_.preferred_bytes);
    put(buf, preference_.non_preferred_bytes);

    put(buf, static_cast<std::uint32_t>(streams_.size()));
    for (const auto& [name, stream] : streams_) {
        put_str32(buf, name);
        const auto& s = stream.summary;
        put(buf, s.flows);
        put(buf, s.video_flows);
        put(buf, s.bytes);
        put_sorted_set(buf, s.servers);
        put_sorted_set(buf, s.clients);
        put_sorted_set(buf, s.server_slash24s);

        const auto& sessions = stream.sessions;
        put_f64(buf, sessions.watermark());
        for (std::size_t k = 1;
             k <= analysis::IncrementalSessions::kMaxBucket; ++k) {
            put(buf, sessions.histogram()[k]);
        }
        put(buf, static_cast<std::uint32_t>(sessions.open().size()));
        for (const auto& [key, open] : sessions.open()) {
            put(buf, key.first);
            put(buf, key.second);
            put_f64(buf, open.last_end);
            put(buf, open.flows);
        }
    }
    return buf;
}

util::Result<ServiceAggregates> ServiceAggregates::decode(
    std::string_view payload) {
    Reader r(payload);
    std::uint32_t version = 0;
    if (!r.take(&version)) return r.truncated();
    if (version != kAggregatesVersion) {
        return Error(ErrorCode::UnsupportedVersion,
                     "service aggregates payload version " +
                         std::to_string(version));
    }
    double gap = 0.0;
    if (!r.take_f64(&gap)) return r.truncated();
    ServiceAggregates out(gap);

    std::string policy;
    if (!r.take_str32(&policy)) return r.truncated();
    std::uint8_t has_map = 0;
    if (!r.take(&has_map)) return r.truncated();
    if (has_map != 0) {
        std::string map_text;
        if (!r.take_str32(&map_text)) return r.truncated();
        try {
            std::istringstream is(map_text);
            out.preference_.set_map(analysis::read_dc_map(is));
        } catch (const std::exception& e) {
            return Error(ErrorCode::BadField,
                         std::string("service aggregates dc map: ") +
                             e.what());
        }
        std::uint32_t ndc = 0;
        if (!r.take(&ndc)) return r.truncated();
        if (ndc != out.preference_.dcs().size()) {
            return Error(ErrorCode::CountMismatch,
                         "service aggregates: dc state count " +
                             std::to_string(ndc) + " != map's " +
                             std::to_string(out.preference_.dcs().size()));
        }
        for (auto& dc : out.preference_.mutable_dcs()) {
            std::uint8_t drained = 0;
            if (!r.take(&drained) || !r.take_f64(&dc.scale) ||
                !r.take(&dc.flows) || !r.take(&dc.bytes)) {
                return r.truncated();
            }
            dc.drained = drained != 0;
        }
    }
    if (!out.preference_.set_policy(policy)) {
        return Error(ErrorCode::BadField,
                     "service aggregates: unknown policy '" + policy + "'");
    }
    if (!r.take(&out.preference_.mapped_flows) ||
        !r.take(&out.preference_.unmapped_flows) ||
        !r.take(&out.preference_.preferred_flows) ||
        !r.take(&out.preference_.non_preferred_flows) ||
        !r.take(&out.preference_.preferred_bytes) ||
        !r.take(&out.preference_.non_preferred_bytes)) {
        return r.truncated();
    }

    std::uint32_t nstreams = 0;
    if (!r.take(&nstreams)) return r.truncated();
    for (std::uint32_t i = 0; i < nstreams; ++i) {
        std::string name;
        if (!r.take_str32(&name)) return r.truncated();
        auto [it, inserted] = out.streams_.emplace(name, Stream(gap));
        if (!inserted) {
            return Error(ErrorCode::BadField,
                         "service aggregates: duplicate stream '" + name +
                             "'");
        }
        auto& s = it->second.summary;
        if (!r.take(&s.flows) || !r.take(&s.video_flows) || !r.take(&s.bytes) ||
            !take_set(r, &s.servers) || !take_set(r, &s.clients) ||
            !take_set(r, &s.server_slash24s)) {
            return r.truncated();
        }

        auto& sessions = it->second.sessions;
        double watermark = 0.0;
        if (!r.take_f64(&watermark)) return r.truncated();
        sessions.set_watermark(watermark);
        for (std::size_t k = 1;
             k <= analysis::IncrementalSessions::kMaxBucket; ++k) {
            std::uint64_t count = 0;
            if (!r.take(&count)) return r.truncated();
            sessions.restore_closed(k, count);
        }
        std::uint32_t nopen = 0;
        if (!r.take(&nopen)) return r.truncated();
        for (std::uint32_t j = 0; j < nopen; ++j) {
            std::uint32_t client = 0;
            std::uint64_t video = 0;
            analysis::IncrementalSessions::OpenSession open;
            if (!r.take(&client) || !r.take(&video) ||
                !r.take_f64(&open.last_end) || !r.take(&open.flows)) {
                return r.truncated();
            }
            sessions.restore_open({client, video}, open);
        }
    }
    if (!r.done()) {
        return Error(ErrorCode::CountMismatch,
                     "service aggregates: trailing bytes after payload");
    }
    return out;
}

}  // namespace ytcdn::service
