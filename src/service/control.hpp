#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ytcdn::service {

/// ytcdnd's line-protocol control endpoint (DESIGN.md §15). One command per
/// connection: the client sends a single '\n'-terminated line, the daemon
/// answers with "ok[ detail]\n[body]" or "err <reason>\n" and closes. The
/// grammar, one production per verb:
///
///   command     = ping | stats | render | snapshot | shutdown
///               | faults-cmd | policy-cmd | drain-cmd | scale-cmd
///   ping        = "ping"
///   stats       = "stats"                      ; util::metrics snapshot
///   render      = "render"                     ; aggregates, on demand
///   snapshot    = "snapshot"                   ; checkpoint + manifest now
///   shutdown    = "shutdown"                   ; graceful quiesce + exit
///   faults-cmd  = "faults" ("clear" | spec)    ; spec = FaultPlan text,
///                                              ; ';' for newlines
///   policy-cmd  = "dns-policy" ("rtt"|"load")
///   drain-cmd   = ("drain" | "undrain") dc-name
///   scale-cmd   = "scale" dc-name factor       ; factor > 0
enum class ControlVerb {
    Ping,
    Stats,
    Render,
    Snapshot,
    Shutdown,
    Faults,
    FaultsClear,
    DnsPolicy,
    Drain,
    Undrain,
    Scale,
    Unknown,
};

struct ControlCommand {
    ControlVerb verb = ControlVerb::Unknown;
    std::vector<std::string> args;  // verb-specific operands
    std::string error;              // parse failure, when verb == Unknown
};

/// Parses one protocol line. Never fails hard: malformed input yields
/// verb == Unknown with `error` set, which the daemon answers with "err".
[[nodiscard]] ControlCommand parse_control_line(std::string_view line);

/// The help text listing every verb (the `err unknown command` reply).
[[nodiscard]] std::string control_grammar_summary();

}  // namespace ytcdn::service
