#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "service/aggregates.hpp"
#include "service/ingest_queue.hpp"
#include "study/supervisor.hpp"
#include "util/error.hpp"

namespace ytcdn::service {

/// ytcdnd — the crash-safe long-running service mode (DESIGN.md §15).
///
/// One single-threaded supervision loop: each tick waits on the control
/// socket (a bounded poll — the loop never blocks without a deadline),
/// serves any pending control connections, scans the spool for new flow
/// logs and ingests them through supervised per-file stages (parse ->
/// admit/shed -> aggregate -> checkpoint). Parsing fans out across the
/// deterministic ThreadPool; application is strictly in name order, so
/// every aggregate is byte-identical at any pool size.
///
/// Crash safety: the YCK1 service checkpoint (aggregates + processed-file
/// ledger + shed log + control-mutation history) is flushed after every
/// `checkpoint_every` files and at graceful shutdown. A kill -9 loses at
/// most the files since the last checkpoint; `--resume` replays exactly
/// those from the spool and converges to byte-identical aggregates.
struct ServiceOptions {
    std::filesystem::path spool_dir;
    std::filesystem::path run_dir;
    /// Unix-domain control socket; empty = no control endpoint. A socket
    /// that cannot be bound degrades the daemon (warned, running) instead
    /// of failing it.
    std::filesystem::path socket_path;
    bool resume = false;
    /// Ingest everything currently in the spool, then quiesce — the
    /// batch-flavored entry the determinism tests and reference runs use.
    bool once = false;
    double gap_T_s = 1.0;        // session gap threshold (Section VI-A)
    std::size_t queue_capacity = 0;   // ingest queue, batches; 0 = unbounded
    std::size_t batch_records = 4096; // records per admission-control batch
    int tick_ms = 50;                 // control-poll / spool-scan cadence
    std::size_t checkpoint_every = 1; // files between checkpoints; 0 = only
                                      // at shutdown
    std::size_t threads = 0;          // parse pool; 0 = YTCDN_THREADS/cores
    study::StagePolicy policy;        // retry ladder for ingest stages
    std::ostream* log = nullptr;      // "[ytcdnd] ..." progress; null=silent
};

/// Ledger entry for one spool file the daemon has dealt with. Recorded in
/// the checkpoint (so resume never re-ingests) and the manifest.
struct ProcessedFile {
    std::string name;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;       // crc32 of the file bytes as ingested
    std::uint64_t records = 0;   // records applied to the aggregates
    std::uint32_t batches = 0;   // admitted batches
    std::uint32_t shed_batches = 0;
    std::string status;          // "ok" | "quarantined"
};

struct ServiceReport {
    std::uint64_t files_ingested = 0;
    std::uint64_t records_ingested = 0;
    std::uint64_t batches_shed = 0;
    std::uint64_t records_shed = 0;
    bool clean_shutdown = false;
    std::filesystem::path manifest_path;    // run_dir/service_manifest.txt
    std::filesystem::path aggregates_path;  // run_dir/aggregates.txt
    std::vector<std::string> warnings;
};

/// Signal-safe stop request (the SIGTERM/SIGINT handler calls this; tests
/// call it directly). The loop quiesces at the next tick boundary.
void request_stop() noexcept;
[[nodiscard]] bool stop_requested() noexcept;
/// Re-arms the loop after a handled stop (process startup / in-process
/// tests that run several services).
void clear_stop() noexcept;

class Service {
public:
    explicit Service(ServiceOptions options);

    /// The YCK1 key for the service checkpoint: every option that shapes
    /// aggregate bytes (gap, batching, queue capacity) folded together, so
    /// resuming under different knobs is a KeyMismatch, never silently
    /// divergent aggregates.
    [[nodiscard]] std::uint64_t fingerprint() const noexcept {
        return fingerprint_;
    }

    [[nodiscard]] util::Result<ServiceReport> run();

private:
    ServiceOptions options_;
    std::uint64_t fingerprint_ = 0;
};

}  // namespace ytcdn::service
