#include "service/control.hpp"

#include <sstream>

namespace ytcdn::service {

namespace {

ControlCommand fail(std::string message) {
    ControlCommand cmd;
    cmd.error = std::move(message);
    return cmd;
}

ControlCommand make(ControlVerb verb, std::vector<std::string> args = {}) {
    ControlCommand cmd;
    cmd.verb = verb;
    cmd.args = std::move(args);
    return cmd;
}

}  // namespace

ControlCommand parse_control_line(std::string_view line) {
    std::istringstream tokens{std::string(line)};
    std::string verb;
    if (!(tokens >> verb)) return fail("empty command");

    std::vector<std::string> words;
    std::string word;
    while (tokens >> word) words.push_back(word);

    const auto want = [&](std::size_t n,
                          std::string_view usage) -> const char* {
        return words.size() == n ? nullptr : usage.data();
    };

    if (verb == "ping") {
        if (const char* usage = want(0, "usage: ping")) return fail(usage);
        return make(ControlVerb::Ping);
    }
    if (verb == "stats") {
        if (const char* usage = want(0, "usage: stats")) return fail(usage);
        return make(ControlVerb::Stats);
    }
    if (verb == "render") {
        if (const char* usage = want(0, "usage: render")) return fail(usage);
        return make(ControlVerb::Render);
    }
    if (verb == "snapshot") {
        if (const char* usage = want(0, "usage: snapshot")) return fail(usage);
        return make(ControlVerb::Snapshot);
    }
    if (verb == "shutdown") {
        if (const char* usage = want(0, "usage: shutdown")) return fail(usage);
        return make(ControlVerb::Shutdown);
    }
    if (verb == "faults") {
        if (words.empty()) {
            return fail("usage: faults (clear | <plan spec, ';' for newlines>)");
        }
        if (words.size() == 1 && words[0] == "clear") {
            return make(ControlVerb::FaultsClear);
        }
        // The spec is the remainder of the line verbatim (it contains
        // spaces); re-derive it from the original text.
        const std::size_t at = line.find("faults");
        std::string spec{line.substr(at + 6)};
        const std::size_t start = spec.find_first_not_of(" \t");
        spec = start == std::string::npos ? std::string() : spec.substr(start);
        return make(ControlVerb::Faults, {std::move(spec)});
    }
    if (verb == "dns-policy") {
        if (const char* usage = want(1, "usage: dns-policy (rtt | load)")) {
            return fail(usage);
        }
        return make(ControlVerb::DnsPolicy, std::move(words));
    }
    // DC names are city names and may contain spaces ("Mountain View"), so
    // drain/undrain join every operand and scale treats the last word as
    // the factor.
    const auto join = [](const std::vector<std::string>& parts,
                         std::size_t first, std::size_t last) {
        std::string out;
        for (std::size_t i = first; i < last; ++i) {
            if (i > first) out += ' ';
            out += parts[i];
        }
        return out;
    };
    if (verb == "drain" || verb == "undrain") {
        if (words.empty()) {
            return fail("usage: " + verb + " <dc-name>");
        }
        return make(verb == "drain" ? ControlVerb::Drain
                                    : ControlVerb::Undrain,
                    {join(words, 0, words.size())});
    }
    if (verb == "scale") {
        if (words.size() < 2) {
            return fail("usage: scale <dc-name> <factor>");
        }
        return make(ControlVerb::Scale,
                    {join(words, 0, words.size() - 1), words.back()});
    }
    return fail("unknown command '" + verb + "'\n" +
                control_grammar_summary());
}

std::string control_grammar_summary() {
    return "commands: ping | stats | render | snapshot | shutdown | "
           "faults (clear|<spec>) | dns-policy (rtt|load) | "
           "drain <dc> | undrain <dc> | scale <dc> <factor>";
}

}  // namespace ytcdn::service
