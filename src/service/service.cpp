#include "service/service.hpp"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "service/control.hpp"
#include "service/spool.hpp"
#include "study/checkpoint.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace ytcdn::service {

namespace {

struct ServiceMetrics {
    util::metrics::Counter files_ingested =
        util::metrics::counter("service.files_ingested");
    util::metrics::Counter records_ingested =
        util::metrics::counter("service.records_ingested");
    util::metrics::Counter files_quarantined =
        util::metrics::counter("service.files_quarantined");
    util::metrics::Counter batches_shed =
        util::metrics::counter("service.batches_shed");
    util::metrics::Counter records_shed =
        util::metrics::counter("service.records_shed");
    util::metrics::Counter control_commands =
        util::metrics::counter("service.control_commands");
    util::metrics::Counter control_errors =
        util::metrics::counter("service.control_errors");
    util::metrics::Counter checkpoints_written =
        util::metrics::counter("service.checkpoints_written");
    util::metrics::Counter ticks =
        util::metrics::counter("service.ticks");
    util::metrics::Gauge queue_peak =
        util::metrics::gauge("service.queue_peak_batches");
};

ServiceMetrics& service_metrics() {
    static ServiceMetrics metrics;
    return metrics;
}

volatile std::sig_atomic_t g_stop = 0;

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t bits_of(double v) {
    std::uint64_t out = 0;
    std::memcpy(&out, &v, sizeof(out));
    return out;
}

std::string hex(std::uint64_t v, int digits) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(static_cast<std::size_t>(digits), '0');
    for (int i = digits - 1; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/// Every option that shapes aggregate bytes; mutable scenario state
/// (policy, drains, fault plans) is deliberately excluded — it is part of
/// the checkpointed state, not the key.
std::uint64_t fingerprint_of(const ServiceOptions& options) {
    std::uint64_t h = mix64(0x79'74'63'64'6Eull);  // "ytcdn" salt
    const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
    fold(bits_of(options.gap_T_s));
    fold(options.queue_capacity);
    fold(options.batch_records);
    return h;
}

// --- composite checkpoint payload -------------------------------------------
//
// aggregates section (ServiceAggregates codec) + processed-file ledger +
// shed log + control-mutation history + totals. Same conventions as the
// aggregates codec: little-endian, u32-length strings.

template <typename T>
void put(std::string& buf, T value) {
    char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    buf.append(raw, sizeof(T));
}

void put_str32(std::string& buf, std::string_view s) {
    put(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

class Reader {
public:
    explicit Reader(std::string_view data) : data_(data) {}

    template <typename T>
    bool take(T* out) {
        if (data_.size() - off_ < sizeof(T)) return false;
        std::memcpy(out, data_.data() + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    bool take_str32(std::string* out) {
        std::uint32_t n = 0;
        if (!take(&n)) return false;
        if (data_.size() - off_ < n) return false;
        out->assign(data_.substr(off_, n));
        off_ += n;
        return true;
    }

    [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

    [[nodiscard]] Error truncated() const {
        return Error(ErrorCode::Truncated,
                     "service checkpoint payload truncated at byte " +
                         std::to_string(off_));
    }

private:
    std::string_view data_;
    std::size_t off_ = 0;
};

struct ServiceState {
    ServiceAggregates aggregates{1.0};
    std::vector<ProcessedFile> ledger;
    std::vector<ShedRecord> shed_log;
    std::vector<std::string> mutations;  // applied control mutations, in order
    std::uint64_t files_ingested = 0;
    std::uint64_t records_ingested = 0;
};

std::string encode_state(const ServiceState& state) {
    std::string buf;
    put_str32(buf, state.aggregates.encode());
    put(buf, static_cast<std::uint32_t>(state.ledger.size()));
    for (const auto& entry : state.ledger) {
        put_str32(buf, entry.name);
        put(buf, entry.size);
        put(buf, entry.crc);
        put(buf, entry.records);
        put(buf, entry.batches);
        put(buf, entry.shed_batches);
        put_str32(buf, entry.status);
    }
    put(buf, static_cast<std::uint32_t>(state.shed_log.size()));
    for (const auto& shed : state.shed_log) {
        put_str32(buf, shed.file);
        put(buf, shed.batch);
        put(buf, shed.records);
    }
    put(buf, static_cast<std::uint32_t>(state.mutations.size()));
    for (const auto& mutation : state.mutations) put_str32(buf, mutation);
    put(buf, state.files_ingested);
    put(buf, state.records_ingested);
    return buf;
}

util::Result<ServiceState> decode_state(std::string_view payload) {
    Reader r(payload);
    ServiceState state;
    std::string aggregates_payload;
    if (!r.take_str32(&aggregates_payload)) return r.truncated();
    auto aggregates = ServiceAggregates::decode(aggregates_payload);
    if (!aggregates) {
        return std::move(aggregates).context("service checkpoint").error();
    }
    state.aggregates = std::move(aggregates).value();

    std::uint32_t n = 0;
    if (!r.take(&n)) return r.truncated();
    state.ledger.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ProcessedFile entry;
        if (!r.take_str32(&entry.name) || !r.take(&entry.size) ||
            !r.take(&entry.crc) || !r.take(&entry.records) ||
            !r.take(&entry.batches) || !r.take(&entry.shed_batches) ||
            !r.take_str32(&entry.status)) {
            return r.truncated();
        }
        state.ledger.push_back(std::move(entry));
    }
    if (!r.take(&n)) return r.truncated();
    state.shed_log.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ShedRecord shed;
        if (!r.take_str32(&shed.file) || !r.take(&shed.batch) ||
            !r.take(&shed.records)) {
            return r.truncated();
        }
        state.shed_log.push_back(std::move(shed));
    }
    if (!r.take(&n)) return r.truncated();
    state.mutations.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string mutation;
        if (!r.take_str32(&mutation)) return r.truncated();
        state.mutations.push_back(std::move(mutation));
    }
    if (!r.take(&state.files_ingested) || !r.take(&state.records_ingested)) {
        return r.truncated();
    }
    if (!r.done()) {
        return Error(ErrorCode::CountMismatch,
                     "service checkpoint: trailing bytes after payload");
    }
    return state;
}

/// Deterministic: no wall times, no RSS, no pids — two daemons that took
/// the same ingest path render the same manifest bytes.
std::string render_service_manifest(std::uint64_t fingerprint,
                                    const ServiceOptions& options,
                                    const ServiceState& state,
                                    std::string_view status) {
    std::ostringstream os;
    os << "# ytcdnd service manifest\n";
    os << "manifest_version 1\n";
    os << "fingerprint " << hex(fingerprint, 16) << '\n';
    os << "gap_s " << state.aggregates.gap() << '\n';
    os << "queue_capacity " << options.queue_capacity << '\n';
    os << "batch_records " << options.batch_records << '\n';
    for (const auto& entry : state.ledger) {
        os << "file " << entry.name << " size=" << entry.size << " crc="
           << hex(entry.crc, 8) << " records=" << entry.records
           << " batches=" << entry.batches << " shed=" << entry.shed_batches
           << " status=" << entry.status << '\n';
    }
    for (const auto& shed : state.shed_log) {
        os << "shed file=" << shed.file << " batch=" << shed.batch
           << " records=" << shed.records << '\n';
    }
    for (const auto& mutation : state.mutations) {
        os << "control " << mutation << '\n';
    }
    std::uint64_t shed_records = 0;
    for (const auto& shed : state.shed_log) shed_records += shed.records;
    os << "files_total " << state.files_ingested << '\n';
    os << "records_total " << state.records_ingested << '\n';
    os << "shed_batches_total " << state.shed_log.size() << '\n';
    os << "shed_records_total " << shed_records << '\n';
    os << "status " << status << '\n';
    return os.str();
}

struct ParsedFile {
    SpoolFile file;
    std::vector<capture::FlowRecord> records;
    std::uint32_t crc = 0;
    std::uint64_t size = 0;
    bool ok = false;
    std::string error;
};

}  // namespace

void request_stop() noexcept { g_stop = 1; }
bool stop_requested() noexcept { return g_stop != 0; }
void clear_stop() noexcept { g_stop = 0; }

Service::Service(ServiceOptions options)
    : options_(std::move(options)), fingerprint_(fingerprint_of(options_)) {}

util::Result<ServiceReport> Service::run() {
    namespace io = util::io;
    if (options_.spool_dir.empty() || options_.run_dir.empty()) {
        return Error(ErrorCode::InvalidArgument,
                     "ytcdnd: --spool and --out directories must be set");
    }
    if (options_.batch_records == 0) options_.batch_records = 1;
    auto& metrics = service_metrics();

    std::error_code ec;
    std::filesystem::create_directories(options_.spool_dir, ec);
    std::filesystem::create_directories(options_.run_dir / "checkpoints", ec);
    if (ec) {
        return Error(ErrorCode::Io, "ytcdnd: cannot create run directory " +
                                        options_.run_dir.string());
    }

    ServiceReport report;
    report.manifest_path = options_.run_dir / "service_manifest.txt";
    report.aggregates_path = options_.run_dir / "aggregates.txt";
    const auto warn = [&](std::string message) {
        if (options_.log) *options_.log << "[ytcdnd] " << message << '\n';
        report.warnings.push_back(std::move(message));
    };
    const auto note = [&](const std::string& message) {
        if (options_.log) *options_.log << "[ytcdnd] " << message << '\n';
    };

    const std::filesystem::path checkpoint_file =
        study::checkpoint_path(options_.run_dir, study::Stage::Service);

    ServiceState state;
    state.aggregates = ServiceAggregates(options_.gap_T_s);
    if (options_.resume) {
        std::string warning;
        auto payload = study::load_or_quarantine_checkpoint(
            checkpoint_file, fingerprint_, study::Stage::Service, &warning);
        if (!warning.empty()) warn(warning);
        if (payload) {
            auto decoded = decode_state(*payload);
            if (decoded) {
                state = std::move(decoded).value();
                note("resumed from checkpoint: " +
                     std::to_string(state.ledger.size()) + " files, " +
                     std::to_string(state.records_ingested) + " records");
            } else {
                warn(std::string("service checkpoint payload rejected (") +
                     decoded.error().what() + "); starting cold");
            }
        }
    }

    const auto write_state = [&](std::string_view status) {
        auto written = study::write_checkpoint(checkpoint_file, fingerprint_,
                                               study::Stage::Service,
                                               encode_state(state));
        if (!written) {
            warn(std::string("service checkpoint not written: ") +
                 written.error().what());
        } else {
            metrics.checkpoints_written.inc();
        }
        auto manifest = io::write_file_atomic(
            report.manifest_path,
            render_service_manifest(fingerprint_, options_, state, status));
        if (!manifest) {
            warn(std::string("service manifest not written: ") +
                 manifest.error().what());
        }
    };

    // The vantage point's server->DC map: the first *.dcmap in the spool,
    // unless a resumed checkpoint already carries one.
    const auto try_install_dc_map = [&] {
        if (state.aggregates.preference().has_map()) return;
        const auto maps = scan_dc_maps(options_.spool_dir);
        if (maps.empty()) return;
        auto bytes = io::read_file(maps.front().path);
        if (!bytes) {
            warn("dc map " + maps.front().name +
                 " unreadable: " + bytes.error().what());
            return;
        }
        try {
            std::istringstream is(std::move(bytes).value());
            state.aggregates.preference().set_map(analysis::read_dc_map(is));
            note("dc map installed from " + maps.front().name);
        } catch (const std::exception& e) {
            warn("dc map " + maps.front().name + " rejected: " + e.what());
        }
    };
    try_install_dc_map();

    io::UnixServerSocket socket;
    if (!options_.socket_path.empty()) {
        auto listening = io::UnixServerSocket::listen(options_.socket_path);
        if (listening) {
            socket = std::move(listening).value();
            note("control socket listening at " +
                 options_.socket_path.string());
        } else {
            // Degraded, not fatal: the daemon still ingests; only live
            // control is unavailable.
            warn(std::string("control socket unavailable: ") +
                 listening.error().what());
        }
    }

    IngestQueue queue(options_.queue_capacity);
    std::size_t shed_seen = 0;        // queue.shed() entries already merged
    std::size_t files_since_ckpt = 0;
    util::ThreadPool pool(options_.threads);
    bool stop = false;

    // One control connection, one command, one reply. Chaos faults on the
    // socket ops surface as warnings and a dropped connection — the loop
    // itself must survive anything the plan injects.
    const auto serve_connection = [&](int fd) {
        auto line = io::read_line_fd(fd, 1000);
        if (!line) {
            metrics.control_errors.inc();
            warn(std::string("control read failed: ") + line.error().what());
            io::close_fd(fd);
            return;
        }
        metrics.control_commands.inc();
        const ControlCommand cmd = parse_control_line(line.value());
        std::string response;
        const auto mutate = [&](const std::string& text) {
            state.mutations.push_back(text);
            note("control mutation: " + text);
        };
        switch (cmd.verb) {
            case ControlVerb::Ping: response = "ok pong\n"; break;
            case ControlVerb::Stats:
                response = "ok\n" +
                           util::metrics::Registry::global().snapshot().render();
                break;
            case ControlVerb::Render:
                response = "ok\n" + state.aggregates.render();
                break;
            case ControlVerb::Snapshot:
                write_state("running");
                response = "ok checkpoint " + checkpoint_file.string() + "\n";
                break;
            case ControlVerb::Shutdown:
                stop = true;
                response = "ok shutting down\n";
                break;
            case ControlVerb::Faults: {
                std::string spec = cmd.args[0];
                std::replace(spec.begin(), spec.end(), ';', '\n');
                auto plan = io::FaultPlan::parse(spec);
                if (plan) {
                    io::set_fault_plan(std::make_shared<io::FaultPlan>(
                        std::move(plan).value()));
                    mutate("faults " + cmd.args[0]);
                    response = "ok faults installed\n";
                } else {
                    response = std::string("err ") + plan.error().what() + "\n";
                }
                break;
            }
            case ControlVerb::FaultsClear:
                io::set_fault_plan(nullptr);
                mutate("faults clear");
                response = "ok faults cleared\n";
                break;
            case ControlVerb::DnsPolicy:
                if (state.aggregates.preference().set_policy(cmd.args[0])) {
                    mutate("dns-policy " + cmd.args[0]);
                    response = "ok policy " + cmd.args[0] + "\n";
                } else {
                    response = "err unknown policy '" + cmd.args[0] + "'\n";
                }
                break;
            case ControlVerb::Drain:
            case ControlVerb::Undrain: {
                const bool drained = cmd.verb == ControlVerb::Drain;
                if (state.aggregates.preference().set_drained(cmd.args[0],
                                                              drained)) {
                    mutate((drained ? "drain " : "undrain ") + cmd.args[0]);
                    response = "ok\n";
                } else {
                    response =
                        "err unknown data center '" + cmd.args[0] + "'\n";
                }
                break;
            }
            case ControlVerb::Scale: {
                char* end = nullptr;
                const double factor = std::strtod(cmd.args[1].c_str(), &end);
                if (end == cmd.args[1].c_str() ||
                    !state.aggregates.preference().set_scale(cmd.args[0],
                                                             factor)) {
                    response = "err unknown data center or bad factor\n";
                } else {
                    mutate("scale " + cmd.args[0] + " " + cmd.args[1]);
                    response = "ok\n";
                }
                break;
            }
            case ControlVerb::Unknown:
                metrics.control_errors.inc();
                response = "err " + cmd.error + "\n";
                break;
        }
        if (auto written = io::write_fd_all(fd, response); !written) {
            warn(std::string("control reply failed: ") +
                 written.error().what());
        }
        io::close_fd(fd);
    };

    // Waits one tick for control traffic, then serves everything pending.
    const auto control_tick = [&] {
        if (!socket.listening()) {
            (void)io::poll_readable(-1, options_.tick_ms);
            return;
        }
        int timeout = options_.tick_ms;
        for (;;) {
            auto client = socket.accept_ready(timeout);
            if (!client) {
                warn(std::string("control accept failed: ") +
                     client.error().what());
                return;
            }
            if (client.value() < 0) return;  // tick elapsed, nothing pending
            serve_connection(client.value());
            timeout = 0;  // drain the backlog without re-waiting
            if (stop) return;
        }
    };

    // Applies one file's already-parsed records through admission control
    // and the supervised aggregate stage, then updates ledger + metrics.
    const auto apply_file = [&](ParsedFile& parsed) {
        ProcessedFile entry;
        entry.name = parsed.file.name;
        entry.size = parsed.size;
        entry.crc = parsed.crc;
        if (!parsed.ok) {
            entry.status = "quarantined";
            metrics.files_quarantined.inc();
            auto quarantined = io::quarantine_file(parsed.file.path);
            warn("spool file " + parsed.file.name + " failed to parse (" +
                 parsed.error + "); " +
                 (quarantined ? "quarantined as " +
                                    quarantined.value().filename().string()
                              : std::string("quarantine also failed: ") +
                                    quarantined.error().what()));
            state.ledger.push_back(std::move(entry));
            state.files_ingested += 1;
            return;
        }

        // Admission control: batches beyond the queue's capacity are shed
        // deterministically (newest first), recorded, never silent.
        std::uint32_t index = 0;
        for (std::size_t off = 0; off < parsed.records.size();
             off += options_.batch_records, ++index) {
            IngestBatch batch;
            batch.file = parsed.file.name;
            batch.index = index;
            const std::size_t end =
                std::min(off + options_.batch_records, parsed.records.size());
            batch.records.assign(parsed.records.begin() +
                                     static_cast<std::ptrdiff_t>(off),
                                 parsed.records.begin() +
                                     static_cast<std::ptrdiff_t>(end));
            if (queue.push(std::move(batch))) {
                ++entry.batches;
            } else {
                ++entry.shed_batches;
            }
        }
        if (parsed.records.empty()) entry.batches = 0;
        metrics.queue_peak.update_max(queue.peak_size());

        // Merge new shed decisions into the durable log + metrics.
        for (; shed_seen < queue.shed().size(); ++shed_seen) {
            const auto& shed = queue.shed()[shed_seen];
            metrics.batches_shed.inc();
            metrics.records_shed.inc(shed.records);
            warn("shed file=" + shed.file + " batch=" +
                 std::to_string(shed.batch) + " records=" +
                 std::to_string(shed.records));
            state.shed_log.push_back(shed);
        }

        // The aggregate stage runs under the same watchdog ladder as the
        // study pipeline: a wedged or throwing stage is retried with
        // backoff, and a soft deadline overrun is reported, never fatal.
        const std::string stream = stream_of(parsed.file.name);
        std::uint64_t applied = 0;
        const study::StageOutcome outcome = study::run_supervised(
            "aggregate " + parsed.file.name, options_.policy,
            [&] {
                while (!queue.empty()) {
                    const IngestBatch batch = queue.pop();
                    for (const auto& record : batch.records) {
                        state.aggregates.add(stream, record);
                    }
                    applied += batch.records.size();
                }
            },
            options_.log);
        if (outcome.deadline_exceeded) {
            warn("aggregate stage for " + parsed.file.name +
                 " exceeded its deadline");
        }
        if (!outcome.completed) {
            warn("aggregate stage for " + parsed.file.name + " failed after " +
                 std::to_string(outcome.attempts) +
                 " attempts: " + outcome.error);
            entry.status = "degraded";
        } else {
            entry.status = "ok";
        }
        entry.records = applied;
        state.ledger.push_back(std::move(entry));
        state.files_ingested += 1;
        state.records_ingested += applied;
        metrics.files_ingested.inc();
        metrics.records_ingested.inc(applied);
        parsed.records.clear();
        parsed.records.shrink_to_fit();
    };

    const auto ingest_new_files = [&]() -> std::size_t {
        auto files = scan_spool(options_.spool_dir);
        files.erase(std::remove_if(files.begin(), files.end(),
                                   [&](const SpoolFile& f) {
                                       for (const auto& entry : state.ledger) {
                                           if (entry.name == f.name) {
                                               return true;
                                           }
                                       }
                                       return false;
                                   }),
                    files.end());
        if (files.empty()) return 0;
        try_install_dc_map();

        // Parse fans out on the deterministic pool (with the supervised
        // retry ladder inside each task); application stays in name order,
        // so aggregates are byte-identical at any pool size.
        std::vector<ParsedFile> parsed = util::parallel_map(
            pool, files, [&](const SpoolFile& file) {
                ParsedFile out;
                out.file = file;
                const study::StageOutcome outcome = study::run_supervised(
                    "parse " + file.name, options_.policy,
                    [&] {
                        auto bytes = io::read_file(file.path);
                        if (!bytes) throw bytes.error();
                        out.size = bytes.value().size();
                        out.crc = util::crc32(bytes.value());
                        auto records = read_spool_file(file.path);
                        if (!records) throw records.error();
                        out.records = std::move(records).value();
                    },
                    nullptr);
                out.ok = outcome.completed;
                out.error = outcome.error;
                return out;
            });

        for (auto& pf : parsed) {
            apply_file(pf);
            ++files_since_ckpt;
            if (options_.checkpoint_every != 0 &&
                files_since_ckpt >= options_.checkpoint_every) {
                write_state("running");
                files_since_ckpt = 0;
            }
            if (stop_requested()) break;  // quiesce promptly mid-batch
        }
        return parsed.size();
    };

    write_state("running");
    note("ingest loop started (spool " + options_.spool_dir.string() + ")");

    while (!stop && !stop_requested()) {
        metrics.ticks.inc();
        control_tick();
        if (stop || stop_requested()) break;
        const std::size_t ingested = ingest_new_files();
        if (options_.once && ingested == 0) break;
    }

    // Graceful quiesce: no new admissions; drain whatever is queued (only
    // non-empty when a stop interrupted apply_file mid-ladder), flush the
    // checkpoint, render the final aggregates.
    while (!queue.empty()) {
        const IngestBatch batch = queue.pop();
        const std::string stream = stream_of(batch.file);
        for (const auto& record : batch.records) {
            state.aggregates.add(stream, record);
        }
        state.records_ingested += batch.records.size();
        metrics.records_ingested.inc(batch.records.size());
    }
    write_state("shutdown");
    if (auto rendered = io::write_file_atomic(report.aggregates_path,
                                              state.aggregates.render());
        !rendered) {
        warn(std::string("aggregates.txt not written: ") +
             rendered.error().what());
    }
    socket.close();

    report.files_ingested = state.files_ingested;
    report.records_ingested = state.records_ingested;
    report.batches_shed = state.shed_log.size();
    for (const auto& shed : state.shed_log) {
        report.records_shed += shed.records;
    }
    report.clean_shutdown = true;
    note("shutdown complete: " + std::to_string(report.files_ingested) +
         " files, " + std::to_string(report.records_ingested) + " records");
    return report;
}

}  // namespace ytcdn::service
