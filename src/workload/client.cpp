#include "workload/client.hpp"

#include <ostream>

namespace ytcdn::workload {

std::string_view to_string(AccessTech t) noexcept {
    switch (t) {
        case AccessTech::Campus: return "campus";
        case AccessTech::Adsl: return "adsl";
        case AccessTech::Ftth: return "ftth";
    }
    return "unknown";
}

std::ostream& operator<<(std::ostream& os, AccessTech t) { return os << to_string(t); }

double access_rtt_ms(AccessTech t) noexcept {
    switch (t) {
        case AccessTech::Campus: return 1.0;
        case AccessTech::Adsl: return 16.0;  // interleaved DSL adds ~15 ms
        case AccessTech::Ftth: return 2.0;
    }
    return 5.0;
}

double downstream_bps(AccessTech t) noexcept {
    switch (t) {
        case AccessTech::Campus: return 20e6;
        case AccessTech::Adsl: return 4e6;
        case AccessTech::Ftth: return 10e6;
    }
    return 4e6;
}

}  // namespace ytcdn::workload
