#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>

#include "cdn/dns.hpp"
#include "net/ip_address.hpp"
#include "net/rtt_model.hpp"

namespace ytcdn::workload {

/// Access technology of a monitored network, which sets the last-mile RTT
/// and downstream bandwidth. The paper's PoPs differ exactly in this
/// dimension (EU1-ADSL vs EU1-FTTH vs campuses).
enum class AccessTech { Campus, Adsl, Ftth };

[[nodiscard]] std::string_view to_string(AccessTech t) noexcept;
std::ostream& operator<<(std::ostream& os, AccessTech t);

/// Typical last-mile round-trip contribution in ms.
[[nodiscard]] double access_rtt_ms(AccessTech t) noexcept;

/// Typical downstream bandwidth in bits per second.
[[nodiscard]] double downstream_bps(AccessTech t) noexcept;

using ClientId = std::int32_t;

/// One monitored end host. Clients of a vantage point share the PoP's
/// network site id (they ride the same upstream routes, so per-path
/// inflation is identical), but carry their own access-latency jitter.
struct Client {
    ClientId id = -1;
    net::IpAddress ip;
    /// Index of the internal subnet the client lives in (Fig. 12 groups
    /// non-preferred accesses by internal subnet).
    int subnet_index = 0;
    /// The local DNS resolver this client is configured with.
    cdn::LdnsId ldns = cdn::kInvalidLdns;
    /// Network site used for RTT: PoP site id + client-specific access RTT.
    net::NetSite site;
    double downstream_bps = 4e6;
};

}  // namespace ytcdn::workload
