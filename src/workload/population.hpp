#pragma once

#include <cstddef>

#include "sim/random.hpp"
#include "workload/vantage_point.hpp"

namespace ytcdn::workload {

/// Fills `vp.clients` with `count` hosts spread over `vp.subnets`
/// proportionally to each subnet's `client_share`. Every client gets an IP
/// inside its subnet, the subnet's resolver, the vantage point's site id,
/// and an access RTT jittered around the technology's typical value.
///
/// Requires `vp.subnets` to be non-empty and each subnet large enough for
/// its share of clients.
void populate_clients(VantagePoint& vp, std::size_t count, sim::Rng& rng);

/// Largest `count` populate_clients(vp, count, ...) accepts — i.e. the
/// address-space capacity of `vp.subnets` under the proportional split
/// (each subnet must hold its share plus network/broadcast). 0 when there
/// are no subnets. Large-scale runs cap the census here: the arrival
/// process, not the client count, sets traffic volume, so saturating the
/// address space just raises sessions-per-client (DESIGN.md §16).
[[nodiscard]] std::size_t max_clients(const VantagePoint& vp);

/// Picks a client index for a new session: clients are not equally active —
/// per-client activity follows a Zipf-ish skew so a minority of heavy
/// watchers dominates, as campus characterizations report. Deterministic in
/// the rng stream.
[[nodiscard]] std::size_t sample_client_index(const VantagePoint& vp, sim::Rng& rng);

}  // namespace ytcdn::workload
