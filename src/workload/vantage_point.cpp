#include "workload/vantage_point.hpp"

// VantagePoint is an aggregate; population.cpp builds it. This file exists
// to anchor the translation unit for the header's vtable-free types.
