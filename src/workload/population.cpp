#include "workload/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::workload {

void populate_clients(VantagePoint& vp, std::size_t count, sim::Rng& rng) {
    if (vp.subnets.empty()) {
        throw std::invalid_argument("populate_clients: vantage point has no subnets");
    }
    if (count == 0) throw std::invalid_argument("populate_clients: count must be > 0");

    double total_share = 0.0;
    for (const auto& s : vp.subnets) {
        if (s.client_share <= 0.0) {
            throw std::invalid_argument("populate_clients: non-positive client_share");
        }
        if (s.ldns == cdn::kInvalidLdns) {
            throw std::invalid_argument("populate_clients: subnet without resolver");
        }
        total_share += s.client_share;
    }

    vp.clients.clear();
    vp.clients.reserve(count);
    vp.client_activity_cdf.clear();
    vp.client_activity_cdf.reserve(count);

    const double base_access = access_rtt_ms(vp.tech);
    const double bw = downstream_bps(vp.tech);
    double cumulative_weight = 0.0;
    std::size_t assigned = 0;

    for (std::size_t si = 0; si < vp.subnets.size(); ++si) {
        const auto& group = vp.subnets[si];
        // Last subnet absorbs rounding leftovers so totals always match.
        const std::size_t here =
            si + 1 == vp.subnets.size()
                ? count - assigned
                : static_cast<std::size_t>(std::llround(
                      static_cast<double>(count) * group.client_share / total_share));
        if (here + 2 > group.prefix.size()) {
            throw std::invalid_argument("populate_clients: subnet too small for " +
                                        group.name);
        }
        for (std::size_t i = 0; i < here; ++i) {
            Client c;
            c.id = static_cast<ClientId>(vp.clients.size());
            c.ip = group.prefix.address_at(i + 1);  // skip network address
            c.subnet_index = static_cast<int>(si);
            c.ldns = group.ldns;
            // Same wide-area paths as the PoP, individual last mile.
            c.site = net::NetSite{vp.pop_site.id, vp.pop_site.location,
                                  base_access * rng.uniform(0.8, 1.4)};
            c.downstream_bps = bw * rng.uniform(0.7, 1.3);
            vp.clients.push_back(c);

            // Heavy-tailed per-client activity: lognormal gives a small core
            // of heavy watchers without starving anyone.
            cumulative_weight += rng.lognormal(0.0, 1.2);
            vp.client_activity_cdf.push_back(cumulative_weight);
        }
        assigned += here;
    }
}

std::size_t max_clients(const VantagePoint& vp) {
    if (vp.subnets.empty()) return 0;
    double total_share = 0.0;
    for (const auto& s : vp.subnets) {
        if (s.client_share <= 0.0) return 0;
        total_share += s.client_share;
    }

    // Replays populate_clients' exact rounding arithmetic (llround per
    // subnet, last absorbs leftovers) so the answer is the precise
    // boundary, not an estimate.
    const auto fits = [&](std::size_t count) {
        std::size_t assigned = 0;
        for (std::size_t si = 0; si < vp.subnets.size(); ++si) {
            const auto& group = vp.subnets[si];
            const std::size_t here =
                si + 1 == vp.subnets.size()
                    ? count - assigned
                    : static_cast<std::size_t>(std::llround(
                          static_cast<double>(count) * group.client_share /
                          total_share));
            if (here + 2 > group.prefix.size()) return false;
            assigned += here;
        }
        return true;
    };

    // Analytic bound per subnet (share of count must fit in size - 2),
    // then walk down over the rounding fringe to the exact maximum.
    double bound = 0.0;
    for (std::size_t si = 0; si < vp.subnets.size(); ++si) {
        const auto& group = vp.subnets[si];
        const double cap = (static_cast<double>(group.prefix.size()) - 2.0) *
                           total_share / group.client_share;
        bound = si == 0 ? cap : std::min(bound, cap);
    }
    auto count = static_cast<std::size_t>(bound) + vp.subnets.size() + 1;
    while (count > 0 && !fits(count)) --count;
    return count;
}

std::size_t sample_client_index(const VantagePoint& vp, sim::Rng& rng) {
    if (vp.client_activity_cdf.empty()) {
        throw std::logic_error("sample_client_index: populate_clients first");
    }
    const double u = rng.uniform(0.0, vp.client_activity_cdf.back());
    const auto it = std::lower_bound(vp.client_activity_cdf.begin(),
                                     vp.client_activity_cdf.end(), u);
    return static_cast<std::size_t>(it - vp.client_activity_cdf.begin());
}

}  // namespace ytcdn::workload
