#pragma once

#include <string>
#include <vector>

#include "cdn/dns.hpp"
#include "geo/city.hpp"
#include "net/rtt_model.hpp"
#include "net/subnet.hpp"
#include "sim/diurnal.hpp"
#include "workload/client.hpp"

namespace ytcdn::workload {

/// One internal subnet of a monitored network, with its share of the client
/// population and the local DNS resolver its hosts are configured with.
/// (Fig. 12's Net-3 effect comes from one subnet using a resolver that the
/// authoritative DNS maps to a different preferred data center.)
struct SubnetGroup {
    std::string name;        // e.g. "Net-3"
    net::Subnet prefix;
    double client_share = 1.0;  // relative weight of the population here
    cdn::LdnsId ldns = cdn::kInvalidLdns;
};

/// A monitored network edge: one of the paper's five capture locations.
struct VantagePoint {
    std::string name;  // "US-Campus", "EU1-ADSL", ...
    AccessTech tech = AccessTech::Campus;
    const geo::City* city = nullptr;
    /// Site representing the PoP's upstream attachment point. All client
    /// sites share this id so they see identical wide-area paths.
    net::NetSite pop_site;
    /// The Tstat probe PC, used for the active RTT measurements of
    /// Section V / Fig. 2 (it sits on the PoP LAN).
    net::NetSite probe_site;
    std::vector<SubnetGroup> subnets;
    std::vector<Client> clients;
    /// Cumulative per-client activity weights (heavy-tailed), built by
    /// populate_clients(); sample_client_index() draws from it.
    std::vector<double> client_activity_cdf;
    /// Mean video sessions per second across the whole week (scaled).
    double mean_sessions_per_s = 1.0;
    sim::DiurnalProfile profile = sim::DiurnalProfile::residential();
};

}  // namespace ytcdn::workload
