#include "workload/request_generator.hpp"

#include <numeric>
#include <stdexcept>

namespace ytcdn::workload {

namespace {

double max_rate_bound(const VantagePoint& vp) {
    // Peak hourly multiplier, weekend factor can exceed 1 for residential
    // networks; 10% headroom for interpolation between knots.
    return vp.mean_sessions_per_s * vp.profile.peak_to_mean() * 1.35;
}

}  // namespace

RequestGenerator::RequestGenerator(sim::Simulator& simulator, VantagePoint& vp,
                                   Player& player, const cdn::VideoCatalog& catalog,
                                   const Config& config, sim::Rng rng)
    : simulator_(&simulator),
      vp_(&vp),
      player_(&player),
      catalog_(&catalog),
      config_(config),
      rng_(rng),
      zipf_(catalog.size(), config.zipf_exponent),
      arrivals_([&vp](sim::SimTime t) {
                    return vp.mean_sessions_per_s * vp.profile.multiplier_at(t);
                },
                max_rate_bound(vp), rng.fork("arrivals")) {
    if (vp.clients.empty()) {
        throw std::invalid_argument("RequestGenerator: vantage point has no clients");
    }
    const double wsum = std::accumulate(config_.resolution_weights.begin(),
                                        config_.resolution_weights.end(), 0.0);
    if (wsum <= 0.0) {
        throw std::invalid_argument("RequestGenerator: resolution weights sum to 0");
    }
}

void RequestGenerator::run(sim::SimTime horizon) {
    horizon_ = horizon;
    schedule_next(simulator_->now());
}

void RequestGenerator::schedule_next(sim::SimTime after) {
    const sim::SimTime t = arrivals_.next_after(after);
    if (t >= horizon_) return;
    simulator_->schedule_at(t, [this] {
        fire_request();
        schedule_next(simulator_->now());
    });
}

void RequestGenerator::fire_request() {
    ++requests_;
    const std::size_t ci = sample_client_index(*vp_, rng_);
    const Client& client = vp_->clients[ci];
    const cdn::Video& video = sample_video();
    player_->start_session(client, video, sample_resolution());
}

cdn::Resolution RequestGenerator::sample_resolution() {
    const auto& w = config_.resolution_weights;
    double total = 0.0;
    for (const double v : w) total += v;
    double x = rng_.uniform(0.0, total);
    for (std::size_t i = 0; i < w.size(); ++i) {
        x -= w[i];
        if (x <= 0.0) return cdn::kAllResolutions[i];
    }
    return cdn::Resolution::R360;
}

const cdn::Video& RequestGenerator::sample_video() {
    if (const auto promoted = catalog_->promoted_rank(simulator_->now());
        promoted && rng_.bernoulli(config_.p_promoted)) {
        return catalog_->by_rank(*promoted);
    }
    return catalog_->by_rank(zipf_.sample(rng_));
}

}  // namespace ytcdn::workload
