#include "workload/noise_source.hpp"

#include <array>
#include <string_view>

#include "workload/population.hpp"

namespace ytcdn::workload {

namespace {

/// Payloads a DPI engine sees all day and must NOT classify as video flows.
/// Note the YouTube portal request: same domain family, not a video flow.
constexpr std::array<std::string_view, 5> kNoisePayloads{
    "GET / HTTP/1.1\r\nHost: www.example.com\r\nUser-Agent: Mozilla/5.0\r\n\r\n",
    "GET /watch?v=dQw4w9WgXcQ HTTP/1.1\r\nHost: www.youtube.com\r\n\r\n",
    "GET /static/ads.js HTTP/1.1\r\nHost: cdn.adnetwork.test\r\n\r\n",
    "POST /api/v1/sync HTTP/1.1\r\nHost: api.social.test\r\n\r\n",
    "\x16\x03\x01\x02\x00",  // TLS ClientHello prefix
};

}  // namespace

NoiseSource::NoiseSource(sim::Simulator& simulator, VantagePoint& vp,
                         capture::Sniffer& sniffer, const Config& config, sim::Rng rng)
    : simulator_(&simulator),
      vp_(&vp),
      sniffer_(&sniffer),
      config_(config),
      rng_(rng),
      arrivals_(
          [&vp, rate = config.flows_per_session](sim::SimTime t) {
              return rate * vp.mean_sessions_per_s * vp.profile.multiplier_at(t);
          },
          config.flows_per_session * vp.mean_sessions_per_s *
              vp.profile.peak_to_mean() * 1.35,
          rng.fork("noise-arrivals")) {}

void NoiseSource::run(sim::SimTime horizon) {
    horizon_ = horizon;
    schedule_next(simulator_->now());
}

void NoiseSource::schedule_next(sim::SimTime after) {
    const sim::SimTime t = arrivals_.next_after(after);
    if (t >= horizon_) return;
    simulator_->schedule_at(t, [this] {
        emit_flow();
        schedule_next(simulator_->now());
    });
}

void NoiseSource::emit_flow() {
    ++emitted_;
    const Client& client = vp_->clients[sample_client_index(*vp_, rng_)];

    capture::ObservedFlow flow;
    flow.client_ip = client.ip;
    // An arbitrary external server: popular CDN/hoster prefixes.
    static constexpr std::array<std::uint8_t, 4> kFirstOctets{23, 104, 151, 157};
    flow.server_ip = net::IpAddress::from_octets(
        kFirstOctets[rng_.uniform_index(kFirstOctets.size())],
        static_cast<std::uint8_t>(rng_.uniform_index(256)),
        static_cast<std::uint8_t>(rng_.uniform_index(256)),
        static_cast<std::uint8_t>(1 + rng_.uniform_index(254)));
    flow.start = simulator_->now();
    flow.end = flow.start + rng_.uniform(0.05, 30.0);
    flow.bytes_down = static_cast<std::uint64_t>(
        rng_.lognormal(config_.bytes_mu, config_.bytes_sigma));
    flow.first_payload = kNoisePayloads[rng_.uniform_index(kNoisePayloads.size())];
    sniffer_->observe(flow);
}

}  // namespace ytcdn::workload
