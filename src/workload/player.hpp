#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "capture/sniffer.hpp"
#include "cdn/cdn.hpp"
#include "cdn/dns.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/tracer.hpp"
#include "workload/client.hpp"

namespace ytcdn::workload {

/// Why a session reached its terminal point — the `code` field of
/// session-end trace events, aligned with the FailureCauses buckets
/// (Served covers both clean ends and the degraded redirect-exhausted
/// serve, which additionally reports RedirectExhausted).
enum class SessionOutcome : std::uint16_t {
    Served = 0,
    DnsFailure = 1,
    RetriesExhausted = 2,
    Timeout = 3,
    Reset = 4,
    RedirectExhausted = 5,
};

/// Emulates the Flash video player driving one video session end to end:
/// DNS resolution, the HTTP request to the content server, following
/// application-layer 302 redirects, early abandonment, pause/resume and
/// server-initiated resolution changes.
///
/// Every TCP connection the player opens is reported to the vantage point's
/// sniffer as an ObservedFlow carrying the real serialized HTTP request, so
/// the capture pipeline exercises genuine DPI parsing. This is what creates
/// the paper's session structure: control flows (<1 kB) preceding video
/// flows, 72-81% single-flow sessions, and redirect chains toward
/// non-preferred data centers.
class Player {
public:
    struct Config {
        /// Redirect chain bound; the real player gives up after a few hops.
        int max_redirects = 4;
        /// Control-flow response size range (Fig. 4's sub-1000-byte mode).
        double control_bytes_lo = 350.0;
        double control_bytes_hi = 950.0;
        /// Client think time between receiving a 302 and re-requesting.
        double redirect_think_lo_s = 0.10;
        double redirect_think_hi_s = 0.45;
        /// P(server answers the first request with a control message —
        /// resolution change or in-DC bounce — before the video flow) —
        /// yields the paper's dominant preferred,preferred two-flow
        /// sessions (Fig. 10b).
        double p_resolution_probe = 0.18;
        /// P(viewer abandons early) and the watched-fraction range then.
        double p_abort = 0.45;
        double min_watch_frac = 0.05;
        double max_abort_watch_frac = 0.85;
        /// P(viewer pauses and resumes later, splitting the download) —
        /// merged into one session only at large gap thresholds (Fig. 5).
        double p_pause_resume = 0.055;
        double pause_gap_lo_s = 15.0;
        double pause_gap_hi_s = 280.0;
        /// Server-side per-flow rate cap, bps.
        double server_rate_bps = 8e6;
        /// When true, legacy (YouTube-EU / other-AS) servers deliver the
        /// full requested stream instead of degraded low-resolution legacy
        /// encodes. The paper's EU2 network still pulled 10.4% of its bytes
        /// from the YouTube-EU AS (Table II) — a legacy configuration the
        /// study deployment reproduces by enabling this for EU2 only.
        bool legacy_full_quality = false;
        /// DNS answer TTL honoured by the client's stub resolver. 0 (the
        /// default) resolves every session, as the short-TTL 2010 YouTube
        /// DNS effectively did; larger values let clients reuse a mapping,
        /// which coarsens DNS-level load balancing (see the dns-ttl
        /// ablation bench).
        double dns_ttl_s = 0.0;

        // --- fault tolerance -------------------------------------------------
        /// How long the player waits on an unanswered SYN before giving up
        /// on a dark server (the Flash player's connect timer).
        double connect_timeout_s = 0.9;
        /// Connection attempts beyond the first before the session dies.
        int max_connect_retries = 3;
        /// Exponential backoff between connection retries:
        /// min(cap, base * 2^attempt) plus deterministic uniform jitter
        /// drawn from the player's seeded stream.
        double retry_backoff_base_s = 0.4;
        double retry_backoff_cap_s = 5.0;
        double retry_jitter_s = 0.2;
        /// Re-asks after a SERVFAIL this many times before the session is
        /// abandoned as a DNS failure.
        int dns_retry_limit = 2;
        double dns_retry_delay_s = 1.0;
    };

    /// Terminal failure causes: every abandoned session increments exactly
    /// one bucket (the paper-era player had a single opaque
    /// `failed_sessions` counter; the fault work needs the cause).
    struct FailureCauses {
        /// Final connection attempt timed out with no live failover target.
        std::uint64_t timeout = 0;
        /// Final connection attempt was reset (draining server) with no
        /// live failover target.
        std::uint64_t reset = 0;
        /// Local resolver answered SERVFAIL through every DNS retry.
        std::uint64_t dns_failure = 0;
        /// Connection retry budget exhausted while targets still existed.
        std::uint64_t retries_exhausted = 0;
        /// Redirect chain gave up (the pre-existing failure mode: chain
        /// bound hit or no redirect target with the content).
        std::uint64_t redirect_exhausted = 0;

        [[nodiscard]] std::uint64_t total() const noexcept {
            return timeout + reset + dns_failure + retries_exhausted +
                   redirect_exhausted;
        }
    };

    struct Stats {
        std::uint64_t sessions = 0;
        std::uint64_t video_flows = 0;
        std::uint64_t control_flows = 0;
        std::uint64_t redirects_miss = 0;
        std::uint64_t redirects_overload = 0;
        std::uint64_t resolution_probes = 0;
        std::uint64_t pauses = 0;
        std::uint64_t dns_cache_hits = 0;
        /// Non-terminal fault events observed while sessions kept going.
        std::uint64_t connect_timeouts = 0;   // individual attempts timed out
        std::uint64_t connect_resets = 0;     // individual attempts refused
        std::uint64_t dns_servfails = 0;      // SERVFAIL answers seen
        std::uint64_t stale_dns_answers = 0;  // past-TTL replays accepted
        std::uint64_t failovers = 0;          // switched to next-ranked DC
        /// Terminal failure-cause breakdown (replaces `failed_sessions`).
        FailureCauses failures;
        /// retry_histogram[k] = sessions that needed k connection retries
        /// (k = 0 for the fault-free fast path). Grown on demand.
        std::vector<std::uint64_t> retry_histogram;
    };

    /// `trace` (optional) receives structured per-session events; the
    /// default disabled stream makes every emission a no-op branch, so an
    /// untraced player is byte-identical to the pre-tracer one.
    Player(sim::Simulator& simulator, cdn::Cdn& cdn, cdn::DnsSystem& dns,
           capture::Sniffer& sniffer, const Config& config, sim::Rng rng,
           sim::TraceStream trace = {});

    /// Starts a session at simulator time now(): DNS-resolves via the
    /// client's local resolver and begins the request/redirect sequence.
    void start_session(const Client& client, const cdn::Video& video,
                       cdn::Resolution resolution);

    [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
    [[nodiscard]] const Config& config() const noexcept { return config_; }

    /// Drops every cached DNS answer, or only those pointing at `dc`. The
    /// fault injector calls the targeted form when a data center goes dark,
    /// so clients re-resolve instead of reconnecting into the outage.
    void invalidate_dns_cache();
    void invalidate_dns_cache(cdn::DcId dc);
    /// Live (non-expired plus not-yet-evicted) cached answers, for tests.
    [[nodiscard]] std::size_t dns_cache_size() const noexcept {
        return dns_cache_.size();
    }

private:
    struct Session;

    void start_resolved(const Session& s, cdn::DcId dc);
    void resolve_and_start(const Session& s, int dns_tries_left);
    void attempt(const Session& s, cdn::ServerId server, int redirects_left,
                 std::vector<cdn::DcId> visited);
    /// Reacts to a failed TCP connect: backoff + failover to the
    /// next-ranked live data center, or a terminal failure bucket.
    void handle_connect_failure(const Session& s, cdn::ServerId server,
                                cdn::ConnectOutcome outcome, int redirects_left,
                                std::vector<cdn::DcId> visited);
    void serve_video(const Session& s, cdn::ServerId server, double watch_frac,
                     bool allow_pause);
    void attempt_resume(const Session& s, cdn::ServerId server, double rest_frac);
    void emit_control_flow(const Session& s, cdn::ServerId server);
    /// Serializes the session's HTTP GET into the reusable payload buffer
    /// and returns a view of it (valid until the next render).
    [[nodiscard]] std::string_view render_request(const Session& s,
                                                  cdn::ServerId server);
    /// Records the session's connection-retry count at its terminal point
    /// (served or failed), feeding the failure-analysis histogram, and
    /// emits the session-end trace event — every session-start pairs with
    /// exactly one of these (trace_dump validates the invariant).
    void note_session_end(const Session& s, SessionOutcome outcome);
    [[nodiscard]] double retry_backoff_s(int attempt);
    [[nodiscard]] double flow_rtt_s(const Client& client, cdn::ServerId server) const;
    [[nodiscard]] double download_rate_bps(const Client& client,
                                           cdn::Resolution r) const noexcept;

    sim::Simulator* simulator_;
    cdn::Cdn* cdn_;
    cdn::DnsSystem* dns_;
    capture::Sniffer* sniffer_;
    Config config_;
    sim::Rng rng_;
    sim::TraceStream trace_;
    Stats stats_;
    /// Session ids for the trace (1-based, per player; the TraceStream's
    /// vantage-point index disambiguates across players).
    std::uint64_t next_session_id_ = 0;
    /// Per-client cached DNS answer and its expiry (only with dns_ttl_s > 0).
    std::unordered_map<ClientId, std::pair<cdn::DcId, sim::SimTime>> dns_cache_;
    /// Reusable wire-format scratch: the sniffer consumes payloads
    /// synchronously, so one buffer per player serves every flow without a
    /// per-event string allocation.
    std::string payload_buf_;
};

}  // namespace ytcdn::workload
