#include "workload/player.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cdn/http.hpp"
#include "util/metrics.hpp"

namespace ytcdn::workload {

namespace {

using sim::TraceEventType;

/// Registry handles, resolved once. Every one counts logical work the
/// session structure dictates, never scheduling detail, so the merged
/// snapshot is identical at any thread count (DESIGN.md §11).
struct PlayerMetrics {
    util::metrics::Counter sessions =
        util::metrics::counter("workload.player.sessions");
    util::metrics::Counter video_flows =
        util::metrics::counter("workload.player.video_flows");
    util::metrics::Counter control_flows =
        util::metrics::counter("workload.player.control_flows");
    util::metrics::Counter redirects =
        util::metrics::counter("workload.player.redirects");
    util::metrics::Counter dns_cache_hits =
        util::metrics::counter("workload.player.dns_cache_hits");
    util::metrics::Counter failovers =
        util::metrics::counter("workload.player.failovers");
    util::metrics::Counter failures =
        util::metrics::counter("workload.player.failures");
    util::metrics::Histogram retries_per_session = util::metrics::histogram(
        "workload.player.retries_per_session", {0.0, 1.0, 2.0, 4.0});
};

PlayerMetrics& player_metrics() {
    static PlayerMetrics metrics;
    return metrics;
}

}  // namespace

/// Immutable per-session context, copied into scheduled events.
struct Player::Session {
    Client client;
    cdn::Video video;
    cdn::Resolution resolution;
    /// Connection retries spent so far (bounded by max_connect_retries).
    int retries = 0;
    /// 1-based trace session id; unique per player.
    std::uint64_t id = 0;
};

Player::Player(sim::Simulator& simulator, cdn::Cdn& cdn, cdn::DnsSystem& dns,
               capture::Sniffer& sniffer, const Config& config, sim::Rng rng,
               sim::TraceStream trace)
    : simulator_(&simulator),
      cdn_(&cdn),
      dns_(&dns),
      sniffer_(&sniffer),
      config_(config),
      rng_(rng),
      trace_(trace) {}

double Player::flow_rtt_s(const Client& client, cdn::ServerId server) const {
    const auto& dc = cdn_->dc(cdn_->server(server).dc());
    return cdn_->rtt_model().base_rtt_ms(client.site, dc.site) / 1000.0;
}

double Player::download_rate_bps(const Client& client, cdn::Resolution r) const noexcept {
    // The server paces slightly above the nominal bitrate after the initial
    // burst; the client link and server cap bound it.
    const double paced = std::max(2.0 * cdn::bitrate_bps(r), 600e3);
    return std::min({client.downstream_bps, config_.server_rate_bps, paced});
}

std::string_view Player::render_request(const Session& s, cdn::ServerId server) {
    cdn::format_request_to(payload_buf_,
                           cdn::VideoRequestView{cdn_->server(server).hostname(),
                                                 s.video.id,
                                                 cdn::itag_of(s.resolution)});
    return payload_buf_;
}

void Player::emit_control_flow(const Session& s, cdn::ServerId server) {
    const auto& srv = cdn_->server(server);
    const double rtt = flow_rtt_s(s.client, server);
    capture::ObservedFlow flow;
    flow.client_ip = s.client.ip;
    flow.server_ip = srv.ip();
    flow.start = simulator_->now();
    flow.end = flow.start + 2.0 * rtt + rng_.uniform(0.01, 0.05);
    flow.bytes_down = static_cast<std::uint64_t>(
        rng_.uniform(config_.control_bytes_lo, config_.control_bytes_hi));
    flow.first_payload = render_request(s, server);
    sniffer_->observe(flow);
    ++stats_.control_flows;
    player_metrics().control_flows.inc();
}

void Player::note_session_end(const Session& s, SessionOutcome outcome) {
    const auto k = static_cast<std::size_t>(std::max(0, s.retries));
    if (stats_.retry_histogram.size() <= k) stats_.retry_histogram.resize(k + 1, 0);
    ++stats_.retry_histogram[k];
    player_metrics().retries_per_session.observe(static_cast<double>(k));
    if (outcome != SessionOutcome::Served) player_metrics().failures.inc();
    trace_.emit(simulator_->now(), TraceEventType::SessionEnd, s.id,
                static_cast<std::uint16_t>(outcome));
}

double Player::retry_backoff_s(int attempt) {
    const double backoff = std::min(config_.retry_backoff_cap_s,
                                    config_.retry_backoff_base_s *
                                        std::pow(2.0, static_cast<double>(attempt)));
    return backoff + rng_.uniform(0.0, std::max(1e-9, config_.retry_jitter_s));
}

void Player::invalidate_dns_cache() { dns_cache_.clear(); }

void Player::invalidate_dns_cache(cdn::DcId dc) {
    std::erase_if(dns_cache_,
                  [dc](const auto& entry) { return entry.second.first == dc; });
}

void Player::start_session(const Client& client, const cdn::Video& video,
                           cdn::Resolution resolution) {
    ++stats_.sessions;
    player_metrics().sessions.inc();
    const Session s{client, video, resolution, 0, ++next_session_id_};
    trace_.emit(simulator_->now(), TraceEventType::SessionStart, s.id,
                static_cast<std::uint16_t>(cdn::itag_of(resolution)),
                static_cast<std::int64_t>(video.id.value()), client.ldns);
    resolve_and_start(s, config_.dns_retry_limit);
}

void Player::resolve_and_start(const Session& s, int dns_tries_left) {
    if (config_.dns_ttl_s > 0.0) {
        const auto it = dns_cache_.find(s.client.id);
        if (it != dns_cache_.end()) {
            if (it->second.second > simulator_->now()) {
                ++stats_.dns_cache_hits;
                player_metrics().dns_cache_hits.inc();
                trace_.emit(simulator_->now(), TraceEventType::DnsCacheHit, s.id,
                            0, it->second.first);
                start_resolved(s, it->second.first);
                return;
            }
            // Expired: evict instead of leaking entries across a long run.
            dns_cache_.erase(it);
        }
    }
    trace_.emit(simulator_->now(), TraceEventType::DnsQuery, s.id, 0,
                s.client.ldns);
    const cdn::DnsAnswer answer = dns_->query(s.client.ldns, simulator_->now(), rng_);
    if (answer.status == cdn::DnsStatus::ServFail) {
        ++stats_.dns_servfails;
        trace_.emit(simulator_->now(), TraceEventType::DnsServFail, s.id, 0,
                    dns_tries_left);
        if (dns_tries_left <= 0) {
            ++stats_.failures.dns_failure;
            note_session_end(s, SessionOutcome::DnsFailure);
            return;
        }
        const double delay = config_.dns_retry_delay_s +
                             rng_.uniform(0.0, std::max(1e-9, config_.retry_jitter_s));
        simulator_->schedule_in(delay, [this, s, dns_tries_left] {
            resolve_and_start(s, dns_tries_left - 1);
        });
        return;
    }
    if (answer.stale) ++stats_.stale_dns_answers;
    trace_.emit(simulator_->now(), TraceEventType::DnsAnswer, s.id,
                answer.stale ? 1 : 0, answer.dc);
    if (config_.dns_ttl_s > 0.0) {
        dns_cache_[s.client.id] = {answer.dc, simulator_->now() + config_.dns_ttl_s};
    }
    start_resolved(s, answer.dc);
}

void Player::start_resolved(const Session& s, cdn::DcId dc) {
    const auto& dc_ref = cdn_->dc(dc);

    if (trace_.enabled()) {
        // DC selection with its candidate ranking: where the DNS-chosen
        // data center sits among the client's RTT-ordered candidates.
        // Guarded — the first query per site costs a sort, repeats hit the
        // Cdn's rank cache — and RNG-free either way.
        const std::vector<cdn::DcId>& ranked = cdn_->rank_by_rtt_cached(s.client.site);
        std::uint16_t rank = 0xFFFF;
        for (std::size_t i = 0; i < ranked.size(); ++i) {
            if (ranked[i] == dc) {
                rank = static_cast<std::uint16_t>(i);
                break;
            }
        }
        trace_.emit(simulator_->now(), TraceEventType::DcSelected, s.id, rank, dc,
                    static_cast<std::int64_t>(ranked.size()));
    }

    if (!cdn::in_analysis_scope(dc_ref.infra)) {
        // Legacy YouTube-EU / other-AS infrastructure: spread over its large
        // IP pool, always serves. Normally only degraded low-resolution
        // legacy encodes; networks with a legacy full-quality configuration
        // (EU2) stream the real thing.
        Session legacy = s;
        double watch_frac = rng_.uniform(0.2, 0.8);
        if (config_.legacy_full_quality) {
            watch_frac = rng_.bernoulli(config_.p_abort)
                             ? rng_.uniform(config_.min_watch_frac,
                                            config_.max_abort_watch_frac)
                             : 1.0;
        } else {
            legacy.resolution = cdn::Resolution::R240;
        }
        const auto& pool = dc_ref.servers;
        const cdn::ServerId server = pool[rng_.uniform_index(pool.size())];
        if (const auto conn = cdn_->connect_outcome(server);
            conn != cdn::ConnectOutcome::Ok) {
            handle_connect_failure(legacy, server, conn, config_.max_redirects, {});
            return;
        }
        note_session_end(legacy, SessionOutcome::Served);
        serve_video(legacy, server, watch_frac, /*allow_pause=*/false);
        return;
    }

    cdn::ServerId server = cdn_->pick_server(dc, s.video.id);
    if (const auto conn = cdn_->connect_outcome(server);
        conn != cdn::ConnectOutcome::Ok) {
        handle_connect_failure(s, server, conn, config_.max_redirects, {});
        return;
    }

    if (rng_.bernoulli(config_.p_resolution_probe)) {
        // The server answers with a "change resolution" control message; the
        // player re-requests at a lower resolution from the same server.
        ++stats_.resolution_probes;
        emit_control_flow(s, server);
        Session probe = s;
        probe.resolution = s.resolution == cdn::Resolution::R240
                               ? cdn::Resolution::R240
                               : cdn::Resolution::R360;
        const double delay =
            rng_.uniform(config_.redirect_think_lo_s, config_.redirect_think_hi_s);
        simulator_->schedule_in(delay, [this, probe, server] {
            attempt(probe, server, config_.max_redirects, {});
        });
        return;
    }

    attempt(s, server, config_.max_redirects, {});
}

void Player::attempt(const Session& s, cdn::ServerId server, int redirects_left,
                     std::vector<cdn::DcId> visited) {
    // A redirect target (or the session's first server) may have gone dark
    // between scheduling and firing; the TCP connect observes it first.
    if (const auto conn = cdn_->connect_outcome(server);
        conn != cdn::ConnectOutcome::Ok) {
        handle_connect_failure(s, server, conn, redirects_left, std::move(visited));
        return;
    }

    const cdn::ServeOutcome outcome = cdn_->classify_request(server, s.video);

    if (outcome == cdn::ServeOutcome::Served || redirects_left <= 0) {
        if (outcome != cdn::ServeOutcome::Served) ++stats_.failures.redirect_exhausted;
        note_session_end(s, outcome == cdn::ServeOutcome::Served
                                ? SessionOutcome::Served
                                : SessionOutcome::RedirectExhausted);
        const double watch_frac =
            rng_.bernoulli(config_.p_abort)
                ? rng_.uniform(config_.min_watch_frac, config_.max_abort_watch_frac)
                : 1.0;
        serve_video(s, server, watch_frac, /*allow_pause=*/true);
        return;
    }

    // The server cannot serve: it answers with a 302 (a control flow) and
    // the player retries against the redirect target.
    const cdn::DcId here = cdn_->server(server).dc();
    if (outcome == cdn::ServeOutcome::RedirectMiss) {
        ++stats_.redirects_miss;
        // The miss also triggers a back-office pull, so only this first
        // access leaves the data center (Section VII-C).
        cdn_->pull_content(here, s.video.id);
    } else {
        ++stats_.redirects_overload;
    }
    player_metrics().redirects.inc();
    cdn_->server(server).note_redirect();
    emit_control_flow(s, server);

    visited.push_back(here);
    const cdn::ServerId target = cdn_->redirect_target(s.client.site, s.video, visited);
    if (target == cdn::kInvalidServer) {
        ++stats_.failures.redirect_exhausted;
        note_session_end(s, SessionOutcome::RedirectExhausted);
        return;
    }
    // Serialize the actual 302 and chase its Location header, so the wire
    // format is exercised end to end (the DPI side parses the request; the
    // player side parses the redirect). The payload buffer is free again:
    // emit_control_flow's observe() consumed it synchronously.
    const cdn::VideoRequestView request{cdn_->server(server).hostname(), s.video.id,
                                        cdn::itag_of(s.resolution)};
    cdn::format_redirect_to(payload_buf_, request, cdn_->server(target).hostname());
    const auto location = cdn::parse_redirect_host_view(payload_buf_);
    const cdn::ServerId next =
        location ? cdn_->server_by_hostname(*location) : cdn::kInvalidServer;
    if (next == cdn::kInvalidServer) {
        ++stats_.failures.redirect_exhausted;
        note_session_end(s, SessionOutcome::RedirectExhausted);
        return;
    }
    const double delay = 2.0 * flow_rtt_s(s.client, server) +
                         rng_.uniform(config_.redirect_think_lo_s,
                                      config_.redirect_think_hi_s);
    trace_.emit(simulator_->now(), TraceEventType::Redirect, s.id,
                outcome == cdn::ServeOutcome::RedirectMiss ? 1 : 2, here,
                cdn_->server(next).dc(), delay);
    simulator_->schedule_in(delay, [this, s, next, redirects_left,
                                    visited = std::move(visited)]() mutable {
        attempt(s, next, redirects_left - 1, std::move(visited));
    });
}

void Player::handle_connect_failure(const Session& s, cdn::ServerId server,
                                    cdn::ConnectOutcome outcome, int redirects_left,
                                    std::vector<cdn::DcId> visited) {
    const bool timed_out = outcome == cdn::ConnectOutcome::Timeout;
    if (timed_out) {
        ++stats_.connect_timeouts;
    } else {
        ++stats_.connect_resets;
    }
    trace_.emit(simulator_->now(), TraceEventType::ConnectFail, s.id,
                timed_out ? 1 : 2, server);
    const cdn::DcId here = cdn_->server(server).dc();
    // The failed mapping is useless now — drop it so the next session
    // re-resolves instead of reconnecting into the outage.
    if (config_.dns_ttl_s > 0.0) {
        const auto it = dns_cache_.find(s.client.id);
        if (it != dns_cache_.end() && it->second.first == here) dns_cache_.erase(it);
    }

    if (s.retries >= config_.max_connect_retries) {
        ++stats_.failures.retries_exhausted;
        note_session_end(s, SessionOutcome::RetriesExhausted);
        return;
    }
    visited.push_back(here);
    // Failover: the next-ranked live data center that can actually serve
    // (rank_by_rtt inside redirect_target skips dark capacity).
    const cdn::ServerId target =
        cdn_->redirect_target(s.client.site, s.video, visited);
    if (target == cdn::kInvalidServer) {
        if (timed_out) {
            ++stats_.failures.timeout;
        } else {
            ++stats_.failures.reset;
        }
        note_session_end(s, timed_out ? SessionOutcome::Timeout
                                      : SessionOutcome::Reset);
        return;
    }
    ++stats_.failovers;
    player_metrics().failovers.inc();
    Session next = s;
    ++next.retries;
    // A timeout burns the full connect timer; a reset is observed after one
    // round trip. Either way the player backs off before the next attempt.
    const double observed =
        timed_out ? config_.connect_timeout_s : 2.0 * flow_rtt_s(s.client, server);
    const double delay = observed + retry_backoff_s(s.retries);
    trace_.emit(simulator_->now(), TraceEventType::Retry, s.id,
                static_cast<std::uint16_t>(next.retries), target, 0, delay);
    simulator_->schedule_in(delay, [this, next, target, redirects_left,
                                    visited = std::move(visited)]() mutable {
        attempt(next, target, redirects_left, std::move(visited));
    });
}

void Player::serve_video(const Session& s, cdn::ServerId server, double watch_frac,
                         bool allow_pause) {
    const bool paused = allow_pause && watch_frac > 0.3 &&
                        rng_.bernoulli(config_.p_pause_resume);
    // When pausing, the first connection carries a prefix of the download
    // and the remainder arrives on a fresh connection after a viewer gap.
    const double first_frac = paused ? rng_.uniform(0.2, 0.7) * watch_frac : watch_frac;

    const auto emit_video = [this, &s](cdn::ServerId srv_id, double frac,
                                       sim::SimTime start) -> sim::SimTime {
        const auto& srv = cdn_->server(srv_id);
        const auto bytes = static_cast<std::uint64_t>(
            std::max(1.0, frac * static_cast<double>(
                                     cdn::video_bytes(s.video, s.resolution))));
        const double rate = download_rate_bps(s.client, s.resolution);
        const double duration =
            static_cast<double>(bytes) * 8.0 / rate + 2.0 * flow_rtt_s(s.client, srv_id);
        capture::ObservedFlow flow;
        flow.client_ip = s.client.ip;
        flow.server_ip = srv.ip();
        flow.start = start;
        flow.end = start + duration;
        flow.bytes_down = bytes;
        flow.first_payload = render_request(s, srv_id);
        sniffer_->observe(flow);
        ++stats_.video_flows;
        player_metrics().video_flows.inc();

        cdn_->begin_flow(srv_id);
        simulator_->schedule_at(flow.end, [this, srv_id] { cdn_->end_flow(srv_id); });
        return flow.end;
    };

    const sim::SimTime first_end = emit_video(server, first_frac, simulator_->now());

    if (paused) {
        ++stats_.pauses;
        const double gap = rng_.uniform(config_.pause_gap_lo_s, config_.pause_gap_hi_s);
        trace_.emit(simulator_->now(), TraceEventType::Pause, s.id, 0, server, 0,
                    gap);
        const double rest = watch_frac - first_frac;
        Session resume = s;
        simulator_->schedule_at(first_end + gap, [this, resume, server, rest] {
            // The player re-uses the cached hostname; if the server is now
            // overloaded or the content was evicted the normal redirect
            // machinery kicks in.
            attempt_resume(resume, server, rest);
        });
    }
}

void Player::attempt_resume(const Session& s, cdn::ServerId server, double rest_frac) {
    trace_.emit(simulator_->now(), TraceEventType::Resume, s.id, 0, server, 0,
                rest_frac);
    // The cached server may have gone dark during the pause.
    if (const auto conn = cdn_->connect_outcome(server);
        conn != cdn::ConnectOutcome::Ok) {
        const bool timed_out = conn == cdn::ConnectOutcome::Timeout;
        if (timed_out) {
            ++stats_.connect_timeouts;
        } else {
            ++stats_.connect_resets;
        }
        trace_.emit(simulator_->now(), TraceEventType::ConnectFail, s.id,
                    timed_out ? 1 : 2, server);
        const std::vector<cdn::DcId> visited{cdn_->server(server).dc()};
        const cdn::ServerId target =
            cdn_->redirect_target(s.client.site, s.video, visited);
        if (target == cdn::kInvalidServer) {
            // The session already served its first part; the lost tail is
            // still a terminal failure for the resume.
            if (timed_out) {
                ++stats_.failures.timeout;
            } else {
                ++stats_.failures.reset;
            }
            return;
        }
        ++stats_.failovers;
        player_metrics().failovers.inc();
        const double observed = timed_out ? config_.connect_timeout_s
                                          : 2.0 * flow_rtt_s(s.client, server);
        const double delay = observed + retry_backoff_s(0);
        trace_.emit(simulator_->now(), TraceEventType::Failover, s.id, 0, target,
                    0, delay);
        Session resumed = s;
        const double rest = std::max(0.02, rest_frac);
        simulator_->schedule_in(delay, [this, resumed, target, rest] {
            serve_video(resumed, target, rest, /*allow_pause=*/false);
        });
        return;
    }
    const cdn::ServeOutcome outcome = cdn_->classify_request(server, s.video);
    cdn::ServerId target = server;
    if (outcome != cdn::ServeOutcome::Served) {
        cdn_->server(server).note_redirect();
        emit_control_flow(s, server);
        const cdn::DcId here = cdn_->server(server).dc();
        const std::vector<cdn::DcId> visited{here};
        target = cdn_->redirect_target(s.client.site, s.video, visited);
        if (target == cdn::kInvalidServer) {
            ++stats_.failures.redirect_exhausted;
            return;
        }
    }
    Session resumed = s;
    // Tail of the download, no further pause recursion.
    serve_video(resumed, target, std::max(0.02, rest_frac), /*allow_pause=*/false);
}

}  // namespace ytcdn::workload
