#pragma once

#include <cstdint>

#include "capture/sniffer.hpp"
#include "sim/arrival_process.hpp"
#include "sim/simulator.hpp"
#include "workload/vantage_point.hpp"

namespace ytcdn::workload {

/// Background (non-YouTube) traffic at a monitored edge.
///
/// A real probe PC sees *all* flows of the PoP; Tstat classifies YouTube
/// video flows out of that mixture. This source emits the rest — generic
/// web requests, TLS handshakes, and even YouTube *portal* traffic
/// (www.youtube.com page fetches) — none of which may end up in the flow
/// log. It exists so the capture pipeline is exercised against realistic
/// input, not a pre-filtered stream.
class NoiseSource {
public:
    struct Config {
        /// Noise flows per YouTube session (the paper's PoPs carried far
        /// more web traffic than YouTube video; 3x keeps runs affordable).
        double flows_per_session = 3.0;
        /// Lognormal size of noise responses.
        double bytes_mu = 10.3;  // ~30 kB median
        double bytes_sigma = 1.6;
    };

    NoiseSource(sim::Simulator& simulator, VantagePoint& vp, capture::Sniffer& sniffer,
                const Config& config, sim::Rng rng);

    /// Schedules the noise stream up to `horizon`.
    void run(sim::SimTime horizon);

    [[nodiscard]] std::uint64_t flows_emitted() const noexcept { return emitted_; }

private:
    void schedule_next(sim::SimTime after);
    void emit_flow();

    sim::Simulator* simulator_;
    VantagePoint* vp_;
    capture::Sniffer* sniffer_;
    Config config_;
    sim::Rng rng_;
    sim::ArrivalProcess arrivals_;
    sim::SimTime horizon_ = 0.0;
    std::uint64_t emitted_ = 0;
};

}  // namespace ytcdn::workload
