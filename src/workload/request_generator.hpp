#pragma once

#include <array>
#include <cstdint>

#include "cdn/catalog.hpp"
#include "sim/arrival_process.hpp"
#include "sim/simulator.hpp"
#include "sim/zipf.hpp"
#include "workload/player.hpp"
#include "workload/population.hpp"
#include "workload/vantage_point.hpp"

namespace ytcdn::workload {

/// Generates the video-request arrival stream of one vantage point:
/// a non-homogeneous Poisson process shaped by the network's diurnal
/// profile, with Zipf video popularity and an extra request share for the
/// front-page "video of the day" while a promotion is active.
class RequestGenerator {
public:
    struct Config {
        /// Zipf exponent for video popularity (~0.9 per the YouTube
        /// characterization literature the paper cites).
        double zipf_exponent = 0.9;
        /// Fraction of requests drawn to the promoted video while one is
        /// scheduled; this is what creates the Fig. 14 hot-spot spikes.
        double p_promoted = 0.08;
        /// Request mix over resolutions {240p, 360p, 480p, 720p, 1080p};
        /// 2010-era YouTube was overwhelmingly 360p flv.
        std::array<double, 5> resolution_weights{0.12, 0.62, 0.16, 0.08, 0.02};
    };

    RequestGenerator(sim::Simulator& simulator, VantagePoint& vp, Player& player,
                     const cdn::VideoCatalog& catalog, const Config& config,
                     sim::Rng rng);

    /// Schedules the full arrival stream on the simulator up to `horizon`
    /// (seconds). Call once, then Simulator::run_until(horizon).
    void run(sim::SimTime horizon);

    [[nodiscard]] std::uint64_t requests_generated() const noexcept { return requests_; }
    [[nodiscard]] const Config& config() const noexcept { return config_; }

private:
    void schedule_next(sim::SimTime after);
    void fire_request();
    [[nodiscard]] cdn::Resolution sample_resolution();
    [[nodiscard]] const cdn::Video& sample_video();

    sim::Simulator* simulator_;
    VantagePoint* vp_;
    Player* player_;
    const cdn::VideoCatalog* catalog_;
    Config config_;
    sim::Rng rng_;
    sim::ZipfDistribution zipf_;
    sim::ArrivalProcess arrivals_;
    sim::SimTime horizon_ = 0.0;
    std::uint64_t requests_ = 0;
};

}  // namespace ytcdn::workload
