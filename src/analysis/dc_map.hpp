#pragma once

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/continent.hpp"
#include "geo/geo_point.hpp"
#include "net/ip_address.hpp"

namespace ytcdn::analysis {

/// What the analysis knows about one data center, from the perspective of a
/// single vantage point: where it is and how far away it looks from the
/// probe PC (both in RTT and in km) — the two x-axes of Figs 7 and 8.
struct DataCenterInfo {
    std::string name;  // city name per CBG clustering
    geo::GeoPoint location;
    geo::Continent continent = geo::Continent::Europe;
    double rtt_ms = 0.0;       // min RTT probe -> data center
    double distance_km = 0.0;  // great-circle probe -> data center
};

/// The server-IP -> data-center mapping a vantage point's analysis runs on.
/// Assignments are stored at /24 granularity, mirroring the paper's
/// clustering invariant (same /24 => same data center).
class ServerDcMap {
public:
    ServerDcMap() = default;

    int add_data_center(DataCenterInfo info);

    /// Maps every address in `ip`'s /24 to the data center.
    void assign(net::IpAddress ip, int dc_index);

    [[nodiscard]] std::size_t num_data_centers() const noexcept { return dcs_.size(); }
    [[nodiscard]] const DataCenterInfo& info(int dc_index) const;
    [[nodiscard]] const std::vector<DataCenterInfo>& data_centers() const noexcept {
        return dcs_;
    }

    /// Data center of the server IP, or -1 when unmapped (e.g. legacy-AS
    /// servers excluded from the analysis scope).
    [[nodiscard]] int dc_of(net::IpAddress ip) const noexcept;

    /// All (/24 network address, data-center index) assignments, in no
    /// particular order. Used by the serialization below.
    [[nodiscard]] const std::unordered_map<net::IpAddress, int>& assignments()
        const noexcept {
        return by_slash24_;
    }

private:
    std::vector<DataCenterInfo> dcs_;
    std::unordered_map<net::IpAddress, int> by_slash24_;
};

/// Serializes a map as a two-section text file ("#dc" rows then "#assign"
/// rows), so the offline toolchain (ytcdn CLI `analyze`) can run the
/// paper's per-dataset analyses from a flow log plus this file alone.
void write_dc_map(std::ostream& os, const ServerDcMap& map);

/// Parses what write_dc_map produced; throws std::runtime_error with a line
/// number on malformed input.
[[nodiscard]] ServerDcMap read_dc_map(std::istream& is);

}  // namespace ytcdn::analysis
