#include "analysis/loadbalance_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/session.hpp"
#include "sim/time.hpp"

namespace ytcdn::analysis {

namespace {

struct HourTally {
    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> preferred;
};

HourTally tally_hours(const capture::Dataset& dataset, const ServerDcMap& map,
                      int preferred) {
    HourTally t;
    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        const auto hour = static_cast<std::size_t>(sim::hour_index(r.start));
        if (hour >= t.all.size()) {
            t.all.resize(hour + 1, 0);
            t.preferred.resize(hour + 1, 0);
        }
        ++t.all[hour];
        if (dc == preferred) ++t.preferred[hour];
    }
    return t;
}

HourTally tally_hours(const capture::FlowTable& table, std::span<const int> dc_col,
                      int preferred) {
    HourTally t;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (classify_flow_size(table.bytes[i]) != FlowKind::Video) continue;
        const int dc = dc_col[i];
        if (dc < 0) continue;
        const auto hour = static_cast<std::size_t>(sim::hour_index(table.start[i]));
        if (hour >= t.all.size()) {
            t.all.resize(hour + 1, 0);
            t.preferred.resize(hour + 1, 0);
        }
        ++t.all[hour];
        if (dc == preferred) ++t.preferred[hour];
    }
    return t;
}

EmpiricalCdf non_preferred_cdf(const HourTally& t) {
    EmpiricalCdf cdf;
    for (std::size_t h = 0; h < t.all.size(); ++h) {
        if (t.all[h] == 0) continue;  // empty slots carry no sample
        const double np = static_cast<double>(t.all[h] - t.preferred[h]);
        cdf.add(np / static_cast<double>(t.all[h]));
    }
    cdf.finalize();
    return cdf;
}

HourlyLoadSeries preferred_series(const HourTally& t, const std::string& name) {
    HourlyLoadSeries out;
    out.fraction_preferred.name = name + " fraction-to-preferred";
    out.flows_per_hour.name = name + " video-flows-per-hour";
    for (std::size_t h = 0; h < t.all.size(); ++h) {
        const double x = static_cast<double>(h);
        out.flows_per_hour.points.emplace_back(x, static_cast<double>(t.all[h]));
        if (t.all[h] > 0) {
            out.fraction_preferred.points.emplace_back(
                x, static_cast<double>(t.preferred[h]) /
                       static_cast<double>(t.all[h]));
        }
    }
    return out;
}

double correlation_of(const HourTally& t, std::uint64_t min_flows) {
    Series flows, np_fraction;
    for (std::size_t h = 0; h < t.all.size(); ++h) {
        if (t.all[h] < min_flows) continue;
        const double x = static_cast<double>(h);
        flows.points.emplace_back(x, static_cast<double>(t.all[h]));
        np_fraction.points.emplace_back(
            x, static_cast<double>(t.all[h] - t.preferred[h]) /
                   static_cast<double>(t.all[h]));
    }
    return pearson_correlation(flows, np_fraction);
}

}  // namespace

EmpiricalCdf hourly_non_preferred_fraction(const capture::Dataset& dataset,
                                           const ServerDcMap& map, int preferred) {
    return non_preferred_cdf(tally_hours(dataset, map, preferred));
}

EmpiricalCdf hourly_non_preferred_fraction(const capture::FlowTable& table,
                                           std::span<const int> dc, int preferred) {
    return non_preferred_cdf(tally_hours(table, dc, preferred));
}

HourlyLoadSeries hourly_preferred_series(const capture::Dataset& dataset,
                                         const ServerDcMap& map, int preferred) {
    return preferred_series(tally_hours(dataset, map, preferred), dataset.name);
}

HourlyLoadSeries hourly_preferred_series(const capture::FlowTable& table,
                                         std::span<const int> dc, int preferred) {
    return preferred_series(tally_hours(table, dc, preferred), table.name);
}

double pearson_correlation(const Series& a, const Series& b) {
    const std::size_t n = std::min(a.points.size(), b.points.size());
    if (n < 3) return 0.0;
    double ma = 0.0, mb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ma += a.points[i].second;
        mb += b.points[i].second;
    }
    ma /= static_cast<double>(n);
    mb /= static_cast<double>(n);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a.points[i].second - ma;
        const double db = b.points[i].second - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va <= 0.0 || vb <= 0.0) return 0.0;
    return cov / std::sqrt(va * vb);
}

double load_vs_nonpreferred_correlation(const capture::Dataset& dataset,
                                        const ServerDcMap& map, int preferred,
                                        std::uint64_t min_flows) {
    return correlation_of(tally_hours(dataset, map, preferred), min_flows);
}

double load_vs_nonpreferred_correlation(const capture::FlowTable& table,
                                        std::span<const int> dc, int preferred,
                                        std::uint64_t min_flows) {
    return correlation_of(tally_hours(table, dc, preferred), min_flows);
}

}  // namespace ytcdn::analysis
