#include "analysis/preferred_dc.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/session.hpp"

namespace ytcdn::analysis {

std::vector<DcTraffic> traffic_by_dc(const capture::Dataset& dataset,
                                     const ServerDcMap& map) {
    std::unordered_map<int, DcTraffic> tally;
    for (const auto& r : dataset.records) {
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        auto& t = tally[dc];
        t.dc = dc;
        t.bytes += r.bytes;
        if (classify_flow_size(r.bytes) == FlowKind::Video) ++t.video_flows;
    }
    std::vector<DcTraffic> out;
    out.reserve(tally.size());
    for (const auto& [dc, t] : tally) out.push_back(t);
    std::sort(out.begin(), out.end(), [](const DcTraffic& a, const DcTraffic& b) {
        if (a.bytes != b.bytes) return a.bytes > b.bytes;
        return a.dc < b.dc;
    });
    return out;
}

int preferred_dc(const capture::Dataset& dataset, const ServerDcMap& map,
                 double heavy_share) {
    const auto traffic = traffic_by_dc(dataset, map);
    if (traffic.empty()) return -1;
    std::uint64_t total = 0;
    for (const auto& t : traffic) total += t.bytes;
    if (total == 0) return traffic.front().dc;

    int best = traffic.front().dc;
    double best_rtt = map.info(best).rtt_ms;
    for (const auto& t : traffic) {
        if (static_cast<double>(t.bytes) / static_cast<double>(total) < heavy_share) {
            break;  // sorted by bytes: no more heavy hitters
        }
        if (map.info(t.dc).rtt_ms < best_rtt) {
            best = t.dc;
            best_rtt = map.info(t.dc).rtt_ms;
        }
    }
    return best;
}

NonPreferredShare non_preferred_share(const capture::Dataset& dataset,
                                      const ServerDcMap& map, int preferred) {
    std::uint64_t bytes_all = 0;
    std::uint64_t bytes_np = 0;
    std::uint64_t flows_all = 0;
    std::uint64_t flows_np = 0;
    for (const auto& r : dataset.records) {
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        bytes_all += r.bytes;
        const bool np = dc != preferred;
        if (np) bytes_np += r.bytes;
        if (classify_flow_size(r.bytes) == FlowKind::Video) {
            ++flows_all;
            if (np) ++flows_np;
        }
    }
    NonPreferredShare s;
    if (bytes_all > 0) {
        s.byte_fraction = static_cast<double>(bytes_np) / static_cast<double>(bytes_all);
    }
    if (flows_all > 0) {
        s.flow_fraction = static_cast<double>(flows_np) / static_cast<double>(flows_all);
    }
    return s;
}

}  // namespace ytcdn::analysis
