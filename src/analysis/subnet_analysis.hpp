#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/dc_map.hpp"
#include "capture/dataset.hpp"
#include "capture/flow_table.hpp"
#include "net/subnet.hpp"

namespace ytcdn::analysis {

/// A named internal subnet of the monitored network.
struct NamedSubnet {
    std::string name;
    net::Subnet prefix;
};

/// One bar pair of Fig. 12: the subnet's share of all video flows and its
/// share of the video flows that went to non-preferred data centers.
struct SubnetShare {
    std::string name;
    double all_flows_share = 0.0;
    double non_preferred_share = 0.0;
};

/// Computes Fig. 12's per-subnet breakdown: which internal subnets the
/// non-preferred accesses come from. Flows from clients outside every given
/// subnet are ignored; flows to unmapped (legacy) servers are ignored.
[[nodiscard]] std::vector<SubnetShare> subnet_breakdown(
    const capture::Dataset& dataset, const ServerDcMap& map, int preferred,
    const std::vector<NamedSubnet>& subnets);

/// Column-scan equivalent over the SoA mirror; `dc` is the table's
/// dc_column (see analysis/session_table.hpp). Bit-identical results.
[[nodiscard]] std::vector<SubnetShare> subnet_breakdown(
    const capture::FlowTable& table, std::span<const int> dc, int preferred,
    const std::vector<NamedSubnet>& subnets);

}  // namespace ytcdn::analysis
