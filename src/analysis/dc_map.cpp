#include "analysis/dc_map.hpp"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ytcdn::analysis {

int ServerDcMap::add_data_center(DataCenterInfo info) {
    dcs_.push_back(std::move(info));
    return static_cast<int>(dcs_.size() - 1);
}

void ServerDcMap::assign(net::IpAddress ip, int dc_index) {
    if (dc_index < 0 || static_cast<std::size_t>(dc_index) >= dcs_.size()) {
        throw std::out_of_range("ServerDcMap::assign: unknown data center");
    }
    by_slash24_[ip.slash24()] = dc_index;
}

const DataCenterInfo& ServerDcMap::info(int dc_index) const {
    if (dc_index < 0 || static_cast<std::size_t>(dc_index) >= dcs_.size()) {
        throw std::out_of_range("ServerDcMap::info");
    }
    return dcs_[static_cast<std::size_t>(dc_index)];
}

int ServerDcMap::dc_of(net::IpAddress ip) const noexcept {
    const auto it = by_slash24_.find(ip.slash24());
    return it == by_slash24_.end() ? -1 : it->second;
}

void write_dc_map(std::ostream& os, const ServerDcMap& map) {
    os << "# ytcdn server->data-center map v1\n";
    char buf[160];
    for (std::size_t i = 0; i < map.num_data_centers(); ++i) {
        const auto& info = map.info(static_cast<int>(i));
        std::snprintf(buf, sizeof(buf), "dc\t%zu\t%s\t%.6f\t%.6f\t%s\t%.4f\t%.2f\n", i,
                      info.name.c_str(), info.location.lat_deg, info.location.lon_deg,
                      std::string(geo::to_string(info.continent)).c_str(), info.rtt_ms,
                      info.distance_km);
        os << buf;
    }
    // Deterministic output: sort the /24 assignments.
    std::vector<std::pair<net::IpAddress, int>> rows(map.assignments().begin(),
                                                     map.assignments().end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [subnet, dc] : rows) {
        os << "assign\t" << subnet.to_string() << '\t' << dc << '\n';
    }
}

ServerDcMap read_dc_map(std::istream& is) {
    ServerDcMap map;
    std::string line;
    std::size_t line_no = 0;
    const auto fail = [&](const std::string& why) {
        throw std::runtime_error("read_dc_map: " + why + " at line " +
                                 std::to_string(line_no));
    };
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty() || line.front() == '#') continue;
        std::istringstream fields(line);
        std::string kind;
        std::getline(fields, kind, '\t');
        if (kind == "dc") {
            std::string idx, name, lat, lon, continent, rtt, dist;
            if (!std::getline(fields, idx, '\t') || !std::getline(fields, name, '\t') ||
                !std::getline(fields, lat, '\t') || !std::getline(fields, lon, '\t') ||
                !std::getline(fields, continent, '\t') ||
                !std::getline(fields, rtt, '\t') || !std::getline(fields, dist)) {
                fail("short dc row");
            }
            const auto cont = geo::continent_from_string(continent);
            if (!cont) fail("unknown continent '" + continent + "'");
            DataCenterInfo info;
            info.name = name;
            try {
                info.location = {std::stod(lat), std::stod(lon)};
                info.rtt_ms = std::stod(rtt);
                info.distance_km = std::stod(dist);
            } catch (const std::exception&) {
                fail("bad number");
            }
            info.continent = *cont;
            const int got = map.add_data_center(std::move(info));
            if (got != std::stoi(idx)) fail("dc rows out of order");
        } else if (kind == "assign") {
            std::string ip_text, dc_text;
            if (!std::getline(fields, ip_text, '\t') || !std::getline(fields, dc_text)) {
                fail("short assign row");
            }
            const auto ip = net::IpAddress::parse(ip_text);
            if (!ip) fail("bad ip '" + ip_text + "'");
            int dc = -1;
            try {
                dc = std::stoi(dc_text);
            } catch (const std::exception&) {
                fail("bad dc index");
            }
            if (dc < 0 || static_cast<std::size_t>(dc) >= map.num_data_centers()) {
                fail("dc index out of range");
            }
            map.assign(*ip, dc);
        } else {
            fail("unknown row kind '" + kind + "'");
        }
    }
    return map;
}

}  // namespace ytcdn::analysis
