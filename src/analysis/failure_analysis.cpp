#include "analysis/failure_analysis.hpp"

#include <algorithm>

#include "analysis/session.hpp"

namespace ytcdn::analysis {

AsciiTable failure_breakdown_table(
    const std::vector<VantageFailureCounts>& vantages) {
    AsciiTable t({"vantage", "sessions", "failed", "fail%", "timeout", "reset",
                  "dns", "retries", "redirect", "failovers", "servfails",
                  "stale"});
    for (const auto& v : vantages) {
        t.add_row({v.vantage, std::to_string(v.sessions),
                   std::to_string(v.failed_total()), fmt_pct(v.failure_rate()),
                   std::to_string(v.failed_timeout), std::to_string(v.failed_reset),
                   std::to_string(v.failed_dns),
                   std::to_string(v.failed_retries_exhausted),
                   std::to_string(v.failed_redirect_exhausted),
                   std::to_string(v.failovers), std::to_string(v.dns_servfails),
                   std::to_string(v.stale_dns_answers)});
    }
    return t;
}

AsciiTable retry_histogram_table(const std::vector<VantageFailureCounts>& vantages) {
    std::vector<std::string> header{"retries"};
    std::size_t buckets = 0;
    for (const auto& v : vantages) {
        header.push_back(v.vantage);
        buckets = std::max(buckets, v.retry_histogram.size());
    }
    AsciiTable t(std::move(header));
    for (std::size_t k = 0; k < buckets; ++k) {
        std::vector<std::string> row{std::to_string(k)};
        for (const auto& v : vantages) {
            const std::uint64_t n =
                k < v.retry_histogram.size() ? v.retry_histogram[k] : 0;
            row.push_back(std::to_string(n));
        }
        t.add_row(std::move(row));
    }
    return t;
}

OutageByteShift outage_byte_shift(const capture::Dataset& dataset,
                                  const ServerDcMap& map, int preferred,
                                  sim::SimTime t0, sim::SimTime t1) {
    std::uint64_t total[3] = {0, 0, 0};
    std::uint64_t non_preferred[3] = {0, 0, 0};
    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        const int window = r.start < t0 ? 0 : (r.start < t1 ? 1 : 2);
        total[window] += r.bytes;
        if (dc != preferred) non_preferred[window] += r.bytes;
    }
    const auto frac = [](std::uint64_t np, std::uint64_t all) {
        return all == 0 ? 0.0
                        : static_cast<double>(np) / static_cast<double>(all);
    };
    OutageByteShift shift;
    shift.before = frac(non_preferred[0], total[0]);
    shift.during = frac(non_preferred[1], total[1]);
    shift.after = frac(non_preferred[2], total[2]);
    shift.bytes_before = total[0];
    shift.bytes_during = total[1];
    shift.bytes_after = total[2];
    return shift;
}

Series hourly_non_preferred_bytes(const capture::Dataset& dataset,
                                  const ServerDcMap& map, int preferred) {
    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> np;
    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        const auto hour = static_cast<std::size_t>(sim::hour_index(r.start));
        if (hour >= all.size()) {
            all.resize(hour + 1, 0);
            np.resize(hour + 1, 0);
        }
        all[hour] += r.bytes;
        if (dc != preferred) np[hour] += r.bytes;
    }
    Series out;
    out.name = dataset.name + " non-preferred-byte-fraction";
    for (std::size_t h = 0; h < all.size(); ++h) {
        if (all[h] == 0) continue;
        out.points.emplace_back(static_cast<double>(h),
                                static_cast<double>(np[h]) /
                                    static_cast<double>(all[h]));
    }
    return out;
}

}  // namespace ytcdn::analysis
