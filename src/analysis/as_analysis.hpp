#pragma once

#include <string>
#include <vector>

#include "capture/dataset.hpp"
#include "net/as_registry.hpp"

namespace ytcdn::analysis {

/// One row of the paper's Table II: the share of distinct servers and of
/// bytes per AS group for a dataset.
struct AsBreakdownRow {
    std::string dataset;
    double google_servers = 0.0, google_bytes = 0.0;      // AS 15169
    double youtube_eu_servers = 0.0, youtube_eu_bytes = 0.0;  // AS 43515
    double same_as_servers = 0.0, same_as_bytes = 0.0;    // the PoP's own AS
    double other_servers = 0.0, other_bytes = 0.0;        // everything else
};

/// Computes the Table II row for one dataset. `local_as` is the AS of the
/// network the dataset was captured in (detects the EU2 in-ISP data
/// center). Shares are fractions in [0, 1].
[[nodiscard]] AsBreakdownRow as_breakdown(const capture::Dataset& dataset,
                                          const net::AsRegistry& whois,
                                          net::Asn local_as);

/// The set of server IPs (not /24s — the paper counts distinct addresses)
/// whose whois AS is in the analysis scope: Google's AS plus, when
/// `local_as` owns servers, the in-ISP data center (Section IV's filter).
[[nodiscard]] std::vector<net::IpAddress> analysis_scope_servers(
    const capture::Dataset& dataset, const net::AsRegistry& whois, net::Asn local_as);

}  // namespace ytcdn::analysis
