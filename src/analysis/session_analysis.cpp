#include "analysis/session_analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace ytcdn::analysis {

namespace {

/// Resolves every flow's data center once into `dcs` (reused across calls to
/// avoid reallocating per session); returns false if any flow is unmapped,
/// i.e. the session is outside the analysis scope. dc_of is a hash lookup
/// per call, and the pattern classifiers would otherwise repeat it two to
/// three times per flow.
bool resolve_session_dcs(const VideoSession& s, const ServerDcMap& map,
                         std::vector<int>& dcs) {
    dcs.clear();
    for (const auto* f : s.flows) {
        const int dc = map.dc_of(f->server_ip);
        if (dc < 0) return false;
        dcs.push_back(dc);
    }
    return true;
}

}  // namespace

std::vector<double> flows_per_session_cdf(const std::vector<VideoSession>& sessions,
                                          int max_bucket) {
    if (max_bucket < 1) throw std::invalid_argument("flows_per_session_cdf: max_bucket");
    std::vector<double> counts(static_cast<std::size_t>(max_bucket) + 1, 0.0);
    for (const auto& s : sessions) {
        const std::size_t n = s.num_flows();
        const std::size_t bucket =
            std::min<std::size_t>(n, static_cast<std::size_t>(max_bucket) + 1) - 1;
        counts[bucket] += 1.0;
    }
    std::vector<double> cdf(counts.size());
    double acc = 0.0;
    const double total = sessions.empty() ? 1.0 : static_cast<double>(sessions.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        acc += counts[i];
        cdf[i] = acc / total;
    }
    return cdf;
}

SessionPatternShares session_patterns(const std::vector<VideoSession>& sessions,
                                      const ServerDcMap& map, int preferred) {
    SessionPatternShares out;
    std::size_t scoped = 0;
    std::size_t single = 0, single_p = 0, single_np = 0;
    std::size_t two = 0, pp = 0, pn = 0, np = 0, nn = 0;
    std::size_t more = 0;

    std::vector<int> dcs;
    for (const auto& s : sessions) {
        if (!resolve_session_dcs(s, map, dcs)) continue;
        ++scoped;

        if (s.num_flows() == 1) {
            ++single;
            if (dcs[0] == preferred) {
                ++single_p;
            } else {
                ++single_np;
            }
        } else if (s.num_flows() == 2) {
            ++two;
            const bool a = dcs[0] == preferred;
            const bool b = dcs[1] == preferred;
            if (a && b) ++pp;
            else if (a && !b) ++pn;
            else if (!a && b) ++np;
            else ++nn;
        } else {
            ++more;
        }
    }

    out.total_sessions = scoped;
    if (scoped == 0) return out;
    const auto share = [t = static_cast<double>(scoped)](std::size_t c) {
        return static_cast<double>(c) / t;
    };
    out.single_flow = share(single);
    out.single_preferred = share(single_p);
    out.single_non_preferred = share(single_np);
    out.two_flow = share(two);
    out.two_pref_pref = share(pp);
    out.two_pref_nonpref = share(pn);
    out.two_nonpref_pref = share(np);
    out.two_nonpref_nonpref = share(nn);
    out.more_flows = share(more);
    return out;
}

MultiFlowPatternShares multi_flow_patterns(const std::vector<VideoSession>& sessions,
                                           const ServerDcMap& map, int preferred) {
    MultiFlowPatternShares out;
    std::size_t scoped_total = 0;
    std::size_t all_pref = 0, first_pref = 0, first_np = 0;
    std::vector<int> dcs;
    for (const auto& s : sessions) {
        if (!resolve_session_dcs(s, map, dcs)) continue;
        ++scoped_total;
        if (s.num_flows() < 3) continue;
        ++out.sessions;

        const bool starts_pref = dcs.front() == preferred;
        bool every_pref = starts_pref;
        for (const int dc : dcs) {
            if (dc != preferred) {
                every_pref = false;
                break;
            }
        }
        if (every_pref) {
            ++all_pref;
        } else if (starts_pref) {
            ++first_pref;
        } else {
            ++first_np;
        }
    }
    if (out.sessions == 0) return out;
    const double n = static_cast<double>(out.sessions);
    out.share_of_all_sessions =
        scoped_total == 0 ? 0.0 : n / static_cast<double>(scoped_total);
    out.all_preferred = static_cast<double>(all_pref) / n;
    out.first_preferred_then_other = static_cast<double>(first_pref) / n;
    out.first_non_preferred = static_cast<double>(first_np) / n;
    return out;
}

}  // namespace ytcdn::analysis
