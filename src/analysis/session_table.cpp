#include "analysis/session_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace ytcdn::analysis {

SessionTable SessionTable::build(const capture::FlowTable& table, double gap_T_s) {
    const std::size_t n = table.size();
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
    // One global sort replaces build_sessions' hash-group-then-sort: rows of
    // the same (client, video) key become contiguous, ordered by (start,
    // end) within the key exactly as the AoS grouping orders its flows. The
    // row-index tiebreak makes the permutation deterministic.
    std::sort(order.begin(), order.end(),
              [&table](std::uint32_t a, std::uint32_t b) {
                  if (table.client_ip[a] != table.client_ip[b]) {
                      return table.client_ip[a] < table.client_ip[b];
                  }
                  if (table.video[a] != table.video[b]) {
                      return table.video[a] < table.video[b];
                  }
                  if (table.start[a] != table.start[b]) {
                      return table.start[a] < table.start[b];
                  }
                  if (table.end[a] != table.end[b]) return table.end[a] < table.end[b];
                  return a < b;
              });

    // Sessions are contiguous slices [lo, hi) of `order`; collect the slice
    // bounds, then order sessions by (start, client, video) like
    // build_sessions does.
    struct Slice {
        sim::SimTime start;
        net::IpAddress client;
        cdn::VideoId video;
        std::uint32_t lo, hi;
    };
    std::vector<Slice> slices;
    std::size_t i = 0;
    while (i < n) {
        const net::IpAddress client = table.client_ip[order[i]];
        const cdn::VideoId video = table.video[order[i]];
        std::size_t key_end = i + 1;
        while (key_end < n && table.client_ip[order[key_end]] == client &&
               table.video[order[key_end]] == video) {
            ++key_end;
        }
        // Split the key's run at gaps, tracking the furthest end seen so
        // far (flows can nest — see build_sessions).
        std::size_t lo = i;
        double horizon = table.end[order[i]];
        for (std::size_t j = i + 1; j < key_end; ++j) {
            if (table.start[order[j]] - horizon > gap_T_s) {
                slices.push_back({table.start[order[lo]], client, video,
                                  static_cast<std::uint32_t>(lo),
                                  static_cast<std::uint32_t>(j)});
                lo = j;
                horizon = table.end[order[j]];
            } else {
                horizon = std::max(horizon, table.end[order[j]]);
            }
        }
        slices.push_back({table.start[order[lo]], client, video,
                          static_cast<std::uint32_t>(lo),
                          static_cast<std::uint32_t>(key_end)});
        i = key_end;
    }

    std::sort(slices.begin(), slices.end(), [](const Slice& a, const Slice& b) {
        if (a.start != b.start) return a.start < b.start;
        if (a.client != b.client) return a.client < b.client;
        return a.video < b.video;
    });

    SessionTable t;
    t.offsets.reserve(slices.size() + 1);
    t.flow_rows.reserve(n);
    t.client.reserve(slices.size());
    t.video.reserve(slices.size());
    t.start.reserve(slices.size());
    t.offsets.push_back(0);
    for (const auto& s : slices) {
        for (std::uint32_t j = s.lo; j < s.hi; ++j) t.flow_rows.push_back(order[j]);
        t.offsets.push_back(static_cast<std::uint32_t>(t.flow_rows.size()));
        t.client.push_back(s.client);
        t.video.push_back(s.video);
        t.start.push_back(s.start);
    }
    return t;
}

std::vector<int> dc_column(const capture::FlowTable& table, const ServerDcMap& map) {
    std::vector<int> dc;
    dc.reserve(table.size());
    for (const net::IpAddress ip : table.server_ip) dc.push_back(map.dc_of(ip));
    return dc;
}

std::vector<double> flows_per_session_cdf(const SessionTable& sessions,
                                          int max_bucket) {
    if (max_bucket < 1) throw std::invalid_argument("flows_per_session_cdf: max_bucket");
    std::vector<double> counts(static_cast<std::size_t>(max_bucket) + 1, 0.0);
    const std::size_t total = sessions.num_sessions();
    for (std::size_t s = 0; s < total; ++s) {
        const std::size_t n = sessions.flows_of(s).size();
        const std::size_t bucket =
            std::min<std::size_t>(n, static_cast<std::size_t>(max_bucket) + 1) - 1;
        counts[bucket] += 1.0;
    }
    std::vector<double> cdf(counts.size());
    double acc = 0.0;
    const double denom = total == 0 ? 1.0 : static_cast<double>(total);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        acc += counts[i];
        cdf[i] = acc / denom;
    }
    return cdf;
}

namespace {

/// True when every flow of the session is mapped (analysis scope); the
/// pattern breakdowns skip out-of-scope sessions, like resolve_session_dcs.
bool in_scope(const SessionTable& sessions, std::span<const int> dc, std::size_t s) {
    for (const std::uint32_t row : sessions.flows_of(s)) {
        if (dc[row] < 0) return false;
    }
    return true;
}

}  // namespace

SessionPatternShares session_patterns(const SessionTable& sessions,
                                      std::span<const int> dc, int preferred) {
    SessionPatternShares out;
    std::size_t scoped = 0;
    std::size_t single = 0, single_p = 0, single_np = 0;
    std::size_t two = 0, pp = 0, pn = 0, np = 0, nn = 0;
    std::size_t more = 0;

    for (std::size_t s = 0; s < sessions.num_sessions(); ++s) {
        if (!in_scope(sessions, dc, s)) continue;
        ++scoped;
        const auto flows = sessions.flows_of(s);
        if (flows.size() == 1) {
            ++single;
            if (dc[flows[0]] == preferred) {
                ++single_p;
            } else {
                ++single_np;
            }
        } else if (flows.size() == 2) {
            ++two;
            const bool a = dc[flows[0]] == preferred;
            const bool b = dc[flows[1]] == preferred;
            if (a && b) ++pp;
            else if (a && !b) ++pn;
            else if (!a && b) ++np;
            else ++nn;
        } else {
            ++more;
        }
    }

    out.total_sessions = scoped;
    if (scoped == 0) return out;
    const auto share = [t = static_cast<double>(scoped)](std::size_t c) {
        return static_cast<double>(c) / t;
    };
    out.single_flow = share(single);
    out.single_preferred = share(single_p);
    out.single_non_preferred = share(single_np);
    out.two_flow = share(two);
    out.two_pref_pref = share(pp);
    out.two_pref_nonpref = share(pn);
    out.two_nonpref_pref = share(np);
    out.two_nonpref_nonpref = share(nn);
    out.more_flows = share(more);
    return out;
}

MultiFlowPatternShares multi_flow_patterns(const SessionTable& sessions,
                                           std::span<const int> dc, int preferred) {
    MultiFlowPatternShares out;
    std::size_t scoped_total = 0;
    std::size_t all_pref = 0, first_pref = 0, first_np = 0;
    for (std::size_t s = 0; s < sessions.num_sessions(); ++s) {
        if (!in_scope(sessions, dc, s)) continue;
        ++scoped_total;
        const auto flows = sessions.flows_of(s);
        if (flows.size() < 3) continue;
        ++out.sessions;

        const bool starts_pref = dc[flows.front()] == preferred;
        bool every_pref = starts_pref;
        for (const std::uint32_t row : flows) {
            if (dc[row] != preferred) {
                every_pref = false;
                break;
            }
        }
        if (every_pref) {
            ++all_pref;
        } else if (starts_pref) {
            ++first_pref;
        } else {
            ++first_np;
        }
    }
    if (out.sessions == 0) return out;
    const double n = static_cast<double>(out.sessions);
    out.share_of_all_sessions =
        scoped_total == 0 ? 0.0 : n / static_cast<double>(scoped_total);
    out.all_preferred = static_cast<double>(all_pref) / n;
    out.first_preferred_then_other = static_cast<double>(first_pref) / n;
    out.first_non_preferred = static_cast<double>(first_np) / n;
    return out;
}

}  // namespace ytcdn::analysis
