#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "capture/dataset.hpp"
#include "sim/time.hpp"

namespace ytcdn::analysis {

/// Per-vantage-point failure counters, decoupled from the workload layer's
/// Player::Stats (the analysis library does not link workload); the study
/// layer converts one into the other.
struct VantageFailureCounts {
    std::string vantage;
    std::uint64_t sessions = 0;
    // Non-terminal fault events.
    std::uint64_t connect_timeouts = 0;
    std::uint64_t connect_resets = 0;
    std::uint64_t dns_servfails = 0;
    std::uint64_t stale_dns_answers = 0;
    std::uint64_t failovers = 0;
    // Terminal failure causes (each abandoned session counts once).
    std::uint64_t failed_timeout = 0;
    std::uint64_t failed_reset = 0;
    std::uint64_t failed_dns = 0;
    std::uint64_t failed_retries_exhausted = 0;
    std::uint64_t failed_redirect_exhausted = 0;
    /// retry_histogram[k] = sessions that needed k connection retries.
    std::vector<std::uint64_t> retry_histogram;

    [[nodiscard]] std::uint64_t failed_total() const noexcept {
        return failed_timeout + failed_reset + failed_dns +
               failed_retries_exhausted + failed_redirect_exhausted;
    }
    /// Session-failure rate in [0, 1]; 0 when no sessions ran.
    [[nodiscard]] double failure_rate() const noexcept {
        return sessions == 0 ? 0.0
                             : static_cast<double>(failed_total()) /
                                   static_cast<double>(sessions);
    }
};

/// Per-vantage failure breakdown: one row per vantage point with the
/// session-failure rate and the terminal-cause split.
[[nodiscard]] AsciiTable failure_breakdown_table(
    const std::vector<VantageFailureCounts>& vantages);

/// Connection-retry histogram across vantage points: one row per retry
/// count, one column per vantage point (counts). Rows cover the longest
/// histogram; missing buckets print as 0.
[[nodiscard]] AsciiTable retry_histogram_table(
    const std::vector<VantageFailureCounts>& vantages);

/// How an outage window shifts bytes toward non-preferred data centers.
/// Fractions are of video-flow bytes whose server maps to a known DC.
struct OutageByteShift {
    double before = 0.0;  // non-preferred byte fraction in [dataset start, t0)
    double during = 0.0;  // ... in [t0, t1)
    double after = 0.0;   // ... in [t1, dataset end]
    std::uint64_t bytes_before = 0;
    std::uint64_t bytes_during = 0;
    std::uint64_t bytes_after = 0;
};
[[nodiscard]] OutageByteShift outage_byte_shift(const capture::Dataset& dataset,
                                                const ServerDcMap& map, int preferred,
                                                sim::SimTime t0, sim::SimTime t1);

/// Hourly non-preferred byte fraction (x = hour index): the failure-mode
/// analogue of Fig. 9's timeline, used by the fault-tolerance ablation to
/// chart the shift during an injected outage and the recovery after it.
[[nodiscard]] Series hourly_non_preferred_bytes(const capture::Dataset& dataset,
                                                const ServerDcMap& map, int preferred);

}  // namespace ytcdn::analysis
