#include "analysis/geo_analysis.hpp"

#include <algorithm>
#include <unordered_map>

namespace ytcdn::analysis {

ContinentCounts servers_per_continent(
    const std::vector<geoloc::LocatedServer>& servers) {
    ContinentCounts c;
    for (const auto& s : servers) {
        if (s.city == nullptr) {
            ++c.unlocated;
            continue;
        }
        switch (geo::bucket_of(s.city->continent)) {
            case geo::ContinentBucket::NorthAmerica: ++c.north_america; break;
            case geo::ContinentBucket::Europe: ++c.europe; break;
            case geo::ContinentBucket::Others: ++c.others; break;
        }
    }
    return c;
}

namespace {

Series cumulative_bytes_by(const capture::Dataset& dataset, const ServerDcMap& map,
                           double (*key)(const DataCenterInfo&), const char* label) {
    std::unordered_map<int, std::uint64_t> bytes_per_dc;
    std::uint64_t total = 0;
    for (const auto& r : dataset.records) {
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        bytes_per_dc[dc] += r.bytes;
        total += r.bytes;
    }

    std::vector<std::pair<double, std::uint64_t>> ordered;
    ordered.reserve(bytes_per_dc.size());
    for (const auto& [dc, bytes] : bytes_per_dc) {
        ordered.emplace_back(key(map.info(dc)), bytes);
    }
    std::sort(ordered.begin(), ordered.end());

    Series s;
    s.name = dataset.name + std::string(" ") + label;
    s.points.emplace_back(0.0, 0.0);
    double acc = 0.0;
    for (const auto& [x, bytes] : ordered) {
        acc += static_cast<double>(bytes);
        s.points.emplace_back(x, total == 0 ? 0.0 : acc / static_cast<double>(total));
    }
    return s;
}

}  // namespace

Series bytes_vs_rtt(const capture::Dataset& dataset, const ServerDcMap& map) {
    return cumulative_bytes_by(
        dataset, map, [](const DataCenterInfo& i) { return i.rtt_ms; }, "bytes-vs-rtt");
}

Series bytes_vs_distance(const capture::Dataset& dataset, const ServerDcMap& map) {
    return cumulative_bytes_by(
        dataset, map, [](const DataCenterInfo& i) { return i.distance_km; },
        "bytes-vs-distance");
}

}  // namespace ytcdn::analysis
