#pragma once

#include <cstdint>
#include <vector>

#include "analysis/series.hpp"

namespace ytcdn::analysis {

/// A logarithmically binned histogram over positive values — the natural
/// view of flow sizes spanning 10^2..10^9 bytes (Fig. 4's log x-axis). Bin
/// i covers [min * ratio^i, min * ratio^(i+1)).
class LogHistogram {
public:
    /// `bins_per_decade` controls resolution (default 4 -> ratio 10^0.25).
    LogHistogram(double min_value, double max_value, int bins_per_decade = 4);

    void add(double value);
    void add(std::uint64_t value) { add(static_cast<double>(value)); }

    [[nodiscard]] std::size_t num_bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t count(std::size_t bin) const;
    /// Geometric center of a bin, for plotting.
    [[nodiscard]] double bin_center(std::size_t bin) const;
    [[nodiscard]] double bin_lower(std::size_t bin) const;

    /// Index of the bin containing `value` (clamped to the edge bins).
    [[nodiscard]] std::size_t bin_of(double value) const;

    /// (bin center, fraction of mass) series for plotting.
    [[nodiscard]] Series to_series(const std::string& name) const;

    /// The widest run of consecutive empty bins between two non-empty ones —
    /// the quantitative form of the paper's "distinct kink": a gap in the
    /// size distribution. Returns {first_empty_bin, length}; length 0 when
    /// there is no interior gap.
    struct Gap {
        std::size_t first_bin = 0;
        std::size_t length = 0;
    };
    [[nodiscard]] Gap widest_interior_gap() const;

private:
    double min_value_;
    double log_min_;
    double log_ratio_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace ytcdn::analysis
