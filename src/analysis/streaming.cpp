#include "analysis/streaming.hpp"

#include <algorithm>

#include "analysis/session.hpp"
#include "sim/time.hpp"

namespace ytcdn::analysis {

// --- IncrementalDcTraffic ----------------------------------------------------

void IncrementalDcTraffic::add(const capture::FlowRecord& record, int dc) {
    if (dc < 0) return;
    auto& t = tally_[dc];
    t.dc = dc;
    t.bytes += record.bytes;
    if (classify_flow_size(record.bytes) == FlowKind::Video) ++t.video_flows;
}

std::vector<DcTraffic> IncrementalDcTraffic::traffic() const {
    std::vector<DcTraffic> out;
    out.reserve(tally_.size());
    for (const auto& [dc, t] : tally_) out.push_back(t);
    std::sort(out.begin(), out.end(), [](const DcTraffic& a, const DcTraffic& b) {
        if (a.bytes != b.bytes) return a.bytes > b.bytes;
        return a.dc < b.dc;
    });
    return out;
}

int IncrementalDcTraffic::preferred(const ServerDcMap& map,
                                    double heavy_share) const {
    const auto traffic_sorted = traffic();
    if (traffic_sorted.empty()) return -1;
    std::uint64_t total = 0;
    for (const auto& t : traffic_sorted) total += t.bytes;
    if (total == 0) return traffic_sorted.front().dc;

    int best = traffic_sorted.front().dc;
    double best_rtt = map.info(best).rtt_ms;
    for (const auto& t : traffic_sorted) {
        if (static_cast<double>(t.bytes) / static_cast<double>(total) < heavy_share) {
            break;  // sorted by bytes: no more heavy hitters
        }
        if (map.info(t.dc).rtt_ms < best_rtt) {
            best = t.dc;
            best_rtt = map.info(t.dc).rtt_ms;
        }
    }
    return best;
}

NonPreferredShare IncrementalDcTraffic::share(int preferred) const {
    std::uint64_t bytes_all = 0;
    std::uint64_t bytes_np = 0;
    std::uint64_t flows_all = 0;
    std::uint64_t flows_np = 0;
    for (const auto& [dc, t] : tally_) {
        bytes_all += t.bytes;
        flows_all += t.video_flows;
        if (dc != preferred) {
            bytes_np += t.bytes;
            flows_np += t.video_flows;
        }
    }
    NonPreferredShare s;
    if (bytes_all > 0) {
        s.byte_fraction = static_cast<double>(bytes_np) / static_cast<double>(bytes_all);
    }
    if (flows_all > 0) {
        s.flow_fraction = static_cast<double>(flows_np) / static_cast<double>(flows_all);
    }
    return s;
}

// --- IncrementalHourlyLoad ---------------------------------------------------

void IncrementalHourlyLoad::add(const capture::FlowRecord& record, int dc) {
    if (classify_flow_size(record.bytes) != FlowKind::Video) return;
    if (dc < 0) return;
    const auto hour = static_cast<std::size_t>(sim::hour_index(record.start));
    if (hour >= all_.size()) {
        all_.resize(hour + 1, 0);
        pref_.resize(hour + 1, 0);
    }
    ++all_[hour];
    if (dc == preferred_) ++pref_[hour];
}

EmpiricalCdf IncrementalHourlyLoad::non_preferred_cdf() const {
    EmpiricalCdf cdf;
    for (std::size_t h = 0; h < all_.size(); ++h) {
        if (all_[h] == 0) continue;  // empty slots carry no sample
        const double np = static_cast<double>(all_[h] - pref_[h]);
        cdf.add(np / static_cast<double>(all_[h]));
    }
    cdf.finalize();
    return cdf;
}

HourlyLoadSeries IncrementalHourlyLoad::preferred_series() const {
    HourlyLoadSeries out;
    out.fraction_preferred.name = name_ + " fraction-to-preferred";
    out.flows_per_hour.name = name_ + " video-flows-per-hour";
    for (std::size_t h = 0; h < all_.size(); ++h) {
        const double x = static_cast<double>(h);
        out.flows_per_hour.points.emplace_back(x, static_cast<double>(all_[h]));
        if (all_[h] > 0) {
            out.fraction_preferred.points.emplace_back(
                x, static_cast<double>(pref_[h]) / static_cast<double>(all_[h]));
        }
    }
    return out;
}

double IncrementalHourlyLoad::correlation(std::uint64_t min_flows) const {
    Series flows, np_fraction;
    for (std::size_t h = 0; h < all_.size(); ++h) {
        if (all_[h] < min_flows) continue;
        const double x = static_cast<double>(h);
        flows.points.emplace_back(x, static_cast<double>(all_[h]));
        np_fraction.points.emplace_back(
            x, static_cast<double>(all_[h] - pref_[h]) /
                   static_cast<double>(all_[h]));
    }
    return pearson_correlation(flows, np_fraction);
}

// --- IncrementalVideoRedirects -----------------------------------------------

void IncrementalVideoRedirects::add(const capture::FlowRecord& record, int dc) {
    if (classify_flow_size(record.bytes) != FlowKind::Video) return;
    if (dc < 0 || dc == preferred_) return;
    ++counts_[record.video];
}

EmpiricalCdf IncrementalVideoRedirects::counts_cdf() const {
    EmpiricalCdf cdf;
    for (const auto& [video, count] : counts_) cdf.add(static_cast<double>(count));
    cdf.finalize();
    return cdf;
}

std::vector<cdn::VideoId> IncrementalVideoRedirects::top_videos(
    std::size_t k) const {
    std::vector<std::pair<std::uint64_t, cdn::VideoId>> ranked;
    ranked.reserve(counts_.size());
    for (const auto& [video, count] : counts_) ranked.emplace_back(count, video);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    });
    if (ranked.size() > k) ranked.resize(k);
    std::vector<cdn::VideoId> out;
    out.reserve(ranked.size());
    for (const auto& [count, video] : ranked) out.push_back(video);
    return out;
}

// --- IncrementalSubnetBreakdown ----------------------------------------------

IncrementalSubnetBreakdown::IncrementalSubnetBreakdown(
    int preferred, std::vector<NamedSubnet> subnets)
    : preferred_(preferred),
      subnets_(std::move(subnets)),
      all_(subnets_.size(), 0),
      np_(subnets_.size(), 0) {}

void IncrementalSubnetBreakdown::add(const capture::FlowRecord& record, int dc) {
    if (classify_flow_size(record.bytes) != FlowKind::Video) return;
    if (dc < 0) return;
    for (std::size_t i = 0; i < subnets_.size(); ++i) {
        if (!subnets_[i].prefix.contains(record.client_ip)) continue;
        ++all_[i];
        ++total_all_;
        if (dc != preferred_) {
            ++np_[i];
            ++total_np_;
        }
        break;  // first matching subnet wins, like the batch tally
    }
}

std::vector<SubnetShare> IncrementalSubnetBreakdown::shares() const {
    std::vector<SubnetShare> out;
    out.reserve(subnets_.size());
    for (std::size_t i = 0; i < subnets_.size(); ++i) {
        SubnetShare s;
        s.name = subnets_[i].name;
        s.all_flows_share =
            total_all_ == 0
                ? 0.0
                : static_cast<double>(all_[i]) / static_cast<double>(total_all_);
        s.non_preferred_share =
            total_np_ == 0
                ? 0.0
                : static_cast<double>(np_[i]) / static_cast<double>(total_np_);
        out.push_back(std::move(s));
    }
    return out;
}

// --- IncrementalServerLoad ---------------------------------------------------

void IncrementalServerLoad::add(const capture::FlowRecord& record, int dc) {
    if (dc != preferred_) return;
    const auto hour = static_cast<std::size_t>(sim::hour_index(record.start));
    if (hour >= hours_.size()) hours_.resize(hour + 1);
    ++hours_[hour][record.server_ip];
}

ServerLoadSeries IncrementalServerLoad::series() const {
    ServerLoadSeries out;
    out.avg.name = name_ + " per-server-avg";
    out.max.name = name_ + " per-server-max";
    for (std::size_t h = 0; h < hours_.size(); ++h) {
        if (hours_[h].empty()) continue;
        MinMeanMax m;
        for (const auto& [ip, count] : hours_[h]) m.add(static_cast<double>(count));
        out.avg.points.emplace_back(static_cast<double>(h), m.mean());
        out.max.points.emplace_back(static_cast<double>(h), m.max);
    }
    return out;
}

}  // namespace ytcdn::analysis
