#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::analysis {

LogHistogram::LogHistogram(double min_value, double max_value, int bins_per_decade)
    : min_value_(min_value) {
    if (min_value <= 0.0 || max_value <= min_value) {
        throw std::invalid_argument("LogHistogram: need 0 < min < max");
    }
    if (bins_per_decade <= 0) {
        throw std::invalid_argument("LogHistogram: bins_per_decade must be > 0");
    }
    log_min_ = std::log10(min_value);
    log_ratio_ = 1.0 / bins_per_decade;
    const double decades = std::log10(max_value) - log_min_;
    counts_.resize(static_cast<std::size_t>(std::ceil(decades / log_ratio_)) + 1, 0);
}

std::size_t LogHistogram::bin_of(double value) const {
    if (value <= min_value_) return 0;
    const double pos = (std::log10(value) - log_min_) / log_ratio_;
    const auto bin = static_cast<std::size_t>(pos);
    return std::min(bin, counts_.size() - 1);
}

void LogHistogram::add(double value) {
    ++counts_[bin_of(value)];
    ++total_;
}

std::uint64_t LogHistogram::count(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::count");
    return counts_[bin];
}

double LogHistogram::bin_lower(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::bin_lower");
    return std::pow(10.0, log_min_ + static_cast<double>(bin) * log_ratio_);
}

double LogHistogram::bin_center(std::size_t bin) const {
    if (bin >= counts_.size()) throw std::out_of_range("LogHistogram::bin_center");
    return std::pow(10.0,
                    log_min_ + (static_cast<double>(bin) + 0.5) * log_ratio_);
}

Series LogHistogram::to_series(const std::string& name) const {
    Series s;
    s.name = name;
    const double denom = total_ == 0 ? 1.0 : static_cast<double>(total_);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        s.points.emplace_back(bin_center(i), static_cast<double>(counts_[i]) / denom);
    }
    return s;
}

LogHistogram::Gap LogHistogram::widest_interior_gap() const {
    // Find the widest all-zero run strictly between non-empty bins.
    Gap best;
    std::size_t first_nonempty = counts_.size();
    std::size_t last_nonempty = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] > 0) {
            first_nonempty = std::min(first_nonempty, i);
            last_nonempty = i;
        }
    }
    if (first_nonempty >= last_nonempty) return best;

    std::size_t run_start = 0;
    std::size_t run_len = 0;
    for (std::size_t i = first_nonempty; i <= last_nonempty; ++i) {
        if (counts_[i] == 0) {
            if (run_len == 0) run_start = i;
            ++run_len;
            if (run_len > best.length) best = Gap{run_start, run_len};
        } else {
            run_len = 0;
        }
    }
    return best;
}

}  // namespace ytcdn::analysis
