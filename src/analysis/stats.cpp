#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ytcdn::analysis {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
    finalize();
}

void EmpiricalCdf::add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
}

void EmpiricalCdf::finalize() { ensure_sorted(); }

void EmpiricalCdf::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double EmpiricalCdf::fraction_at_or_below(double x) const {
    if (samples_.empty()) throw std::logic_error("EmpiricalCdf: no samples");
    ensure_sorted();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
    if (samples_.empty()) throw std::logic_error("EmpiricalCdf: no samples");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("EmpiricalCdf: q in [0,1]");
    ensure_sorted();
    if (q >= 1.0) return samples_.back();
    const auto idx = static_cast<std::size_t>(
        std::floor(q * static_cast<double>(samples_.size())));
    return samples_[std::min(idx, samples_.size() - 1)];
}

double EmpiricalCdf::min() const {
    if (samples_.empty()) throw std::logic_error("EmpiricalCdf: no samples");
    ensure_sorted();
    return samples_.front();
}

double EmpiricalCdf::max() const {
    if (samples_.empty()) throw std::logic_error("EmpiricalCdf: no samples");
    ensure_sorted();
    return samples_.back();
}

double EmpiricalCdf::mean() const {
    if (samples_.empty()) throw std::logic_error("EmpiricalCdf: no samples");
    double sum = 0.0;
    for (const double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t max_points) const {
    if (samples_.empty()) return {};
    ensure_sorted();
    std::vector<std::pair<double, double>> out;
    const std::size_t n = samples_.size();
    const std::size_t step = std::max<std::size_t>(1, n / max_points);
    for (std::size_t i = 0; i < n; i += step) {
        out.emplace_back(samples_[i],
                         static_cast<double>(i + 1) / static_cast<double>(n));
    }
    if (out.back().first != samples_.back() || out.back().second != 1.0) {
        out.emplace_back(samples_.back(), 1.0);
    }
    return out;
}

void MinMeanMax::add(double v) noexcept {
    if (count == 0) {
        min = max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    sum += v;
    ++count;
}

}  // namespace ytcdn::analysis
