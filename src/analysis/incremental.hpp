#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/dc_map.hpp"
#include "capture/flow_record.hpp"

namespace ytcdn::analysis {

/// Bounded-memory, one-flow-at-a-time counterparts of the batch analysis
/// closures, for ytcdnd's online ingestion (DESIGN.md §15). Each struct
/// consumes FlowRecords in arrival order and can answer its aggregate at
/// any moment; none of them retains the flows themselves. State that lives
/// in unordered containers is only ever *counted* or encoded sorted, so
/// rendered output and checkpoint payloads stay byte-deterministic.

/// Table I inputs: flows, volume, distinct servers/clients. Memory is
/// bounded by the number of distinct addresses, not the number of flows.
struct IncrementalSummary {
    std::uint64_t flows = 0;
    std::uint64_t video_flows = 0;  // >= kControlFlowMaxBytes (Section VI)
    std::uint64_t bytes = 0;
    std::unordered_set<std::uint32_t> servers;
    std::unordered_set<std::uint32_t> clients;
    std::unordered_set<std::uint32_t> server_slash24s;

    void add(const capture::FlowRecord& r);

    [[nodiscard]] double volume_gb() const noexcept {
        return static_cast<double>(bytes) / 1e9;
    }
};

/// Streaming variant of build_sessions: the same (client IP, VideoID) key
/// and the same gap rule (a flow extends the session when it starts within
/// `gap_T_s` of the session's last end, Section VI-A), but producing a
/// flows-per-session histogram instead of materialized sessions.
///
/// Sessions close three ways: the gap is exceeded by a same-key flow, the
/// open set outgrows `max_open` and a watermark sweep closes everything
/// whose last end is more than the gap behind the newest timestamp seen
/// (those can never be extended by in-order input), or close_all() at
/// shutdown/render. Equals the batch closure exactly when each stream's
/// flows arrive in start-time order — which the spool replay guarantees.
class IncrementalSessions {
public:
    explicit IncrementalSessions(double gap_T_s = 1.0,
                                 std::size_t max_open = 64 * 1024)
        : gap_(gap_T_s), max_open_(max_open == 0 ? 1 : max_open) {}

    void add(const capture::FlowRecord& r);

    /// Closes every open session into the histogram (shutdown / render).
    void close_all();

    /// Histogram buckets 1..kMaxBucket flows per closed session; the last
    /// bucket also counts anything larger.
    static constexpr std::size_t kMaxBucket = 8;

    [[nodiscard]] double gap() const noexcept { return gap_; }
    [[nodiscard]] std::size_t max_open() const noexcept { return max_open_; }
    [[nodiscard]] std::uint64_t sessions_closed() const noexcept;
    [[nodiscard]] std::uint64_t multi_flow_sessions() const noexcept;
    [[nodiscard]] const std::array<std::uint64_t, kMaxBucket + 1>& histogram()
        const noexcept {
        return closed_;
    }
    [[nodiscard]] std::size_t open_count() const noexcept {
        return open_.size();
    }

    struct OpenSession {
        double last_end = 0.0;
        std::uint32_t flows = 0;
    };
    using Key = std::pair<std::uint32_t, std::uint64_t>;  // client, video

    /// Ordered so checkpoint encoding is independent of insertion order.
    [[nodiscard]] const std::map<Key, OpenSession>& open() const noexcept {
        return open_;
    }

    /// Checkpoint restore: reinstates one open session / the watermark.
    void restore_open(Key key, OpenSession session);
    void restore_closed(std::size_t bucket, std::uint64_t count);
    void set_watermark(double watermark) noexcept { watermark_ = watermark; }
    [[nodiscard]] double watermark() const noexcept { return watermark_; }

private:
    void close_into_histogram(std::uint32_t flows);
    void evict_stale();

    double gap_;
    std::size_t max_open_;
    double watermark_ = 0.0;  // newest flow end seen
    std::map<Key, OpenSession> open_;
    std::array<std::uint64_t, kMaxBucket + 1> closed_{};  // [0] unused
};

/// §VII preferred-data-center accounting with live control mutations: the
/// non-preferred traffic share (Table III's headline number) updated per
/// flow, under a selection policy the daemon can flip at runtime, with DCs
/// that can be drained (never preferred) or capacity-scaled without
/// restart. Mutations change how *subsequent* flows are classified; history
/// is never rewritten, which keeps replay deterministic.
class IncrementalPreference {
public:
    /// Installs the vantage point's server->DC map (resets per-DC state).
    void set_map(ServerDcMap map);
    [[nodiscard]] bool has_map() const noexcept {
        return map_.num_data_centers() > 0;
    }
    [[nodiscard]] const ServerDcMap& map() const noexcept { return map_; }

    /// "rtt" (the paper's proximity default: lowest probe RTT wins) or
    /// "load" (least accumulated bytes / capacity scale wins). Returns
    /// false on an unknown policy name.
    [[nodiscard]] bool set_policy(std::string_view name);
    [[nodiscard]] const std::string& policy() const noexcept { return policy_; }

    /// Drained DCs are never preferred (the paper's hot-spot drain). False
    /// when no DC has that name.
    [[nodiscard]] bool set_drained(std::string_view dc_name, bool drained);

    /// Capacity scale for the load policy (> 0). False on unknown DC or
    /// non-positive factor.
    [[nodiscard]] bool set_scale(std::string_view dc_name, double factor);

    void add(const capture::FlowRecord& r);

    /// The DC a flow arriving now would prefer, or -1 without a map or with
    /// every DC drained.
    [[nodiscard]] int preferred_dc() const;

    struct DcState {
        bool drained = false;
        double scale = 1.0;
        std::uint64_t flows = 0;
        std::uint64_t bytes = 0;
    };

    [[nodiscard]] const std::vector<DcState>& dcs() const noexcept {
        return dcs_;
    }
    [[nodiscard]] std::vector<DcState>& mutable_dcs() noexcept { return dcs_; }

    std::uint64_t mapped_flows = 0;
    std::uint64_t unmapped_flows = 0;  // dc_of() == -1 (out-of-scope /24s)
    std::uint64_t preferred_flows = 0;
    std::uint64_t non_preferred_flows = 0;
    std::uint64_t preferred_bytes = 0;
    std::uint64_t non_preferred_bytes = 0;

    [[nodiscard]] double non_preferred_flow_share() const noexcept {
        return mapped_flows == 0
                   ? 0.0
                   : static_cast<double>(non_preferred_flows) /
                         static_cast<double>(mapped_flows);
    }

private:
    ServerDcMap map_;
    std::string policy_ = "rtt";
    std::vector<DcState> dcs_;
};

}  // namespace ytcdn::analysis
