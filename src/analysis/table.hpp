#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ytcdn::analysis {

/// A minimal right-padded ASCII table for bench/example output.
class AsciiTable {
public:
    explicit AsciiTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

    /// Renders with a header underline; columns sized to their widest cell.
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const AsciiTable& t);

/// Formats a double with the given decimals (no locale surprises).
[[nodiscard]] std::string fmt(double v, int decimals = 2);
/// Formats a ratio as a percentage string, e.g. 0.9866 -> "98.66".
[[nodiscard]] std::string fmt_pct(double ratio, int decimals = 2);

}  // namespace ytcdn::analysis
