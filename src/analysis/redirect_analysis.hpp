#pragma once

#include <span>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/series.hpp"
#include "analysis/session.hpp"
#include "analysis/session_table.hpp"
#include "analysis/stats.hpp"
#include "capture/dataset.hpp"
#include "capture/flow_table.hpp"

namespace ytcdn::analysis {

/// Fig. 13: for every video downloaded at least once from a non-preferred
/// data center, the number of such downloads. The CDF separates the
/// unpopular-content effect (mass at exactly 1) from the hot-spot tail.
[[nodiscard]] EmpiricalCdf video_non_preferred_counts(const capture::Dataset& dataset,
                                                      const ServerDcMap& map,
                                                      int preferred);

/// The k videos with the most non-preferred video-flow downloads
/// (Fig. 14 picks the top 4), most-redirected first.
[[nodiscard]] std::vector<cdn::VideoId> top_redirected_videos(
    const capture::Dataset& dataset, const ServerDcMap& map, int preferred,
    std::size_t k);

/// Fig. 14: hourly request series for one video — total accesses and
/// accesses served by non-preferred data centers.
struct VideoLoadSeries {
    Series all;
    Series non_preferred;
};
[[nodiscard]] VideoLoadSeries video_hourly_load(const capture::Dataset& dataset,
                                                const ServerDcMap& map, int preferred,
                                                cdn::VideoId video);

/// Fig. 15: per-hour average and maximum number of video requests handled
/// by a single server of the preferred data center.
struct ServerLoadSeries {
    Series avg;
    Series max;
};
[[nodiscard]] ServerLoadSeries preferred_dc_server_load(const capture::Dataset& dataset,
                                                        const ServerDcMap& map,
                                                        int preferred);

/// Fig. 16: the load, in sessions per hour, on the server of the preferred
/// data center that handles `video`, broken down by whether the session's
/// flows stayed at the preferred data center.
struct HotServerSessions {
    net::IpAddress server;              // the server handling the video
    Series all_preferred;               // every flow to the preferred DC
    Series first_preferred_then_other;  // DNS was right, redirection happened
    Series others;                      // remaining patterns
};
[[nodiscard]] HotServerSessions hot_server_sessions(
    const capture::Dataset& dataset, const std::vector<VideoSession>& sessions,
    const ServerDcMap& map, int preferred, cdn::VideoId video);

/// Column-scan equivalents over the SoA mirror; `dc` is the table's
/// dc_column (see analysis/session_table.hpp). Bit-identical results.
[[nodiscard]] EmpiricalCdf video_non_preferred_counts(const capture::FlowTable& table,
                                                      std::span<const int> dc,
                                                      int preferred);
[[nodiscard]] std::vector<cdn::VideoId> top_redirected_videos(
    const capture::FlowTable& table, std::span<const int> dc, int preferred,
    std::size_t k);
[[nodiscard]] VideoLoadSeries video_hourly_load(const capture::FlowTable& table,
                                                std::span<const int> dc, int preferred,
                                                cdn::VideoId video);
[[nodiscard]] ServerLoadSeries preferred_dc_server_load(const capture::FlowTable& table,
                                                        std::span<const int> dc,
                                                        int preferred);
[[nodiscard]] HotServerSessions hot_server_sessions(const capture::FlowTable& table,
                                                    const SessionTable& sessions,
                                                    std::span<const int> dc,
                                                    int preferred, cdn::VideoId video);

}  // namespace ytcdn::analysis
