#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dc_map.hpp"
#include "capture/dataset.hpp"

namespace ytcdn::analysis {

/// Byte and flow tallies per data center for one dataset.
struct DcTraffic {
    int dc = -1;
    std::uint64_t bytes = 0;
    std::uint64_t video_flows = 0;
};

/// Per-data-center traffic for the dataset; includes only flows whose
/// server maps to a known data center. Sorted by bytes descending.
[[nodiscard]] std::vector<DcTraffic> traffic_by_dc(const capture::Dataset& dataset,
                                                   const ServerDcMap& map);

/// Determines the *preferred* data center (Section VI-B): the data center
/// carrying the most bytes — except when several data centers carry a large
/// share (EU2's split between the in-ISP cache and an external site), in
/// which case the paper labels the lowest-RTT heavy hitter as preferred.
/// `heavy_share` is the byte share above which a data center counts as a
/// heavy hitter (default 20%).
[[nodiscard]] int preferred_dc(const capture::Dataset& dataset, const ServerDcMap& map,
                               double heavy_share = 0.20);

/// Convenience used throughout: per-dataset fraction of video-flow bytes
/// (or flows) served by data centers other than `preferred`.
struct NonPreferredShare {
    double byte_fraction = 0.0;
    double flow_fraction = 0.0;
};
[[nodiscard]] NonPreferredShare non_preferred_share(const capture::Dataset& dataset,
                                                    const ServerDcMap& map,
                                                    int preferred);

}  // namespace ytcdn::analysis
