#include "analysis/series.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace ytcdn::analysis {

namespace {

void write_point(std::ostream& os, double x, double y, int xd, int yd) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.*f %.*f", xd, x, yd, y);
    os << buf << '\n';
}

}  // namespace

void write_series(std::ostream& os, const std::vector<Series>& series, int x_decimals,
                  int y_decimals) {
    for (const auto& s : series) {
        os << "# " << s.name << '\n';
        for (const auto& [x, y] : s.points) {
            write_point(os, x, y, x_decimals, y_decimals);
        }
        os << '\n';
    }
}

void write_series_sampled(std::ostream& os, const std::vector<Series>& series,
                          std::size_t max_points, int x_decimals, int y_decimals) {
    for (const auto& s : series) {
        os << "# " << s.name << '\n';
        const std::size_t n = s.points.size();
        if (n == 0) {
            os << '\n';
            continue;
        }
        const std::size_t step = std::max<std::size_t>(1, n / max_points);
        for (std::size_t i = 0; i < n; i += step) {
            write_point(os, s.points[i].first, s.points[i].second, x_decimals,
                        y_decimals);
        }
        if ((n - 1) % step != 0) {
            write_point(os, s.points.back().first, s.points.back().second, x_decimals,
                        y_decimals);
        }
        os << '\n';
    }
}

}  // namespace ytcdn::analysis
