#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ytcdn::analysis {

/// A named (x, y) series — one curve of a figure. Benches print these in a
/// gnuplot-friendly block format so every paper figure can be regenerated.
struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
};

/// Writes series as "# <name>\nx y\n..." blocks separated by blank lines.
void write_series(std::ostream& os, const std::vector<Series>& series,
                  int x_decimals = 4, int y_decimals = 4);

/// Writes at most `max_points` per series (uniform subsampling, endpoints
/// kept) — benches use this to keep output readable.
void write_series_sampled(std::ostream& os, const std::vector<Series>& series,
                          std::size_t max_points, int x_decimals = 4,
                          int y_decimals = 4);

}  // namespace ytcdn::analysis
