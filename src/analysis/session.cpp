#include "analysis/session.hpp"

#include <algorithm>
#include <unordered_map>

namespace ytcdn::analysis {

namespace {

struct GroupKey {
    net::IpAddress client;
    cdn::VideoId video;
    friend bool operator==(const GroupKey&, const GroupKey&) = default;
};

struct GroupKeyHash {
    std::size_t operator()(const GroupKey& k) const noexcept {
        const std::size_t h1 = std::hash<net::IpAddress>{}(k.client);
        const std::size_t h2 = std::hash<cdn::VideoId>{}(k.video);
        return h1 ^ (h2 + 0x9E3779B97F4A7C15ull + (h1 << 6) + (h1 >> 2));
    }
};

}  // namespace

std::vector<VideoSession> build_sessions(const capture::Dataset& dataset,
                                         double gap_T_s) {
    std::unordered_map<GroupKey, std::vector<const capture::FlowRecord*>, GroupKeyHash>
        groups;
    for (const auto& r : dataset.records) {
        groups[GroupKey{r.client_ip, r.video}].push_back(&r);
    }

    std::vector<VideoSession> sessions;
    sessions.reserve(groups.size());
    for (auto& [key, flows] : groups) {
        std::sort(flows.begin(), flows.end(),
                  [](const capture::FlowRecord* a, const capture::FlowRecord* b) {
                      if (a->start != b->start) return a->start < b->start;
                      return a->end < b->end;
                  });
        VideoSession current{key.client, key.video, {}};
        // Track the furthest end seen so far: flows can nest (a long video
        // flow can outlive a short control flow started after it).
        double horizon = 0.0;
        for (const auto* f : flows) {
            if (!current.flows.empty() && f->start - horizon > gap_T_s) {
                sessions.push_back(std::move(current));
                current = VideoSession{key.client, key.video, {}};
            }
            horizon = current.flows.empty() ? f->end : std::max(horizon, f->end);
            current.flows.push_back(f);
        }
        if (!current.flows.empty()) sessions.push_back(std::move(current));
    }

    std::sort(sessions.begin(), sessions.end(),
              [](const VideoSession& a, const VideoSession& b) {
                  if (a.start() != b.start()) return a.start() < b.start();
                  if (a.client != b.client) return a.client < b.client;
                  return a.video < b.video;
              });
    return sessions;
}

namespace {

template <typename NextFlow>
std::vector<ResolutionShare> resolution_breakdown_impl(std::size_t n, NextFlow next) {
    std::vector<ResolutionShare> out;
    out.reserve(std::size(cdn::kAllResolutions));
    for (const auto r : cdn::kAllResolutions) {
        out.push_back(ResolutionShare{r, 0.0, 0.0});
    }
    std::uint64_t flows = 0;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const auto [b, res] = next(i);
        if (classify_flow_size(b) != FlowKind::Video) continue;
        auto& share = out[static_cast<std::size_t>(res)];
        share.flow_share += 1.0;
        share.byte_share += static_cast<double>(b);
        ++flows;
        bytes += b;
    }
    for (auto& share : out) {
        if (flows > 0) share.flow_share /= static_cast<double>(flows);
        if (bytes > 0) share.byte_share /= static_cast<double>(bytes);
    }
    return out;
}

}  // namespace

std::vector<ResolutionShare> resolution_breakdown(const capture::Dataset& dataset) {
    return resolution_breakdown_impl(
        dataset.records.size(), [&dataset](std::size_t i) {
            const auto& rec = dataset.records[i];
            return std::pair{rec.bytes, rec.resolution};
        });
}

std::vector<ResolutionShare> resolution_breakdown(const capture::FlowTable& table) {
    return resolution_breakdown_impl(table.size(), [&table](std::size_t i) {
        return std::pair{table.bytes[i], table.resolution[i]};
    });
}

}  // namespace ytcdn::analysis
