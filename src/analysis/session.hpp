#pragma once

#include <cstdint>
#include <vector>

#include "capture/dataset.hpp"
#include "capture/flow_record.hpp"
#include "capture/flow_table.hpp"

namespace ytcdn::analysis {

/// The control/video flow-size threshold the paper derives from the kink in
/// Fig. 4: "flows smaller than 1000 bytes ... correspond to control flows".
inline constexpr std::uint64_t kControlFlowMaxBytes = 1000;

enum class FlowKind { Control, Video };

[[nodiscard]] constexpr FlowKind classify_flow_size(std::uint64_t bytes) noexcept {
    return bytes < kControlFlowMaxBytes ? FlowKind::Control : FlowKind::Video;
}

/// A video session: "all flows that i) have the same source IP address and
/// VideoID, and ii) are overlapped in time", where two flows overlap if the
/// gap between the end of one and the start of the next is below T
/// (Section VI-A).
struct VideoSession {
    net::IpAddress client;
    cdn::VideoId video;
    /// Flows in start-time order, pointing into the dataset's records.
    std::vector<const capture::FlowRecord*> flows;

    [[nodiscard]] std::size_t num_flows() const noexcept { return flows.size(); }
    [[nodiscard]] sim::SimTime start() const noexcept { return flows.front()->start; }
};

/// Groups a dataset's records into sessions with gap threshold `gap_T_s`
/// (the paper settles on T = 1 s after the Fig. 5 sensitivity study).
/// The dataset does not need to be pre-sorted.
[[nodiscard]] std::vector<VideoSession> build_sessions(const capture::Dataset& dataset,
                                                       double gap_T_s = 1.0);

/// Composition of a dataset by streamed resolution — Tstat records the
/// actual itag served, so this is directly available from the flow logs.
struct ResolutionShare {
    cdn::Resolution resolution = cdn::Resolution::R360;
    double flow_share = 0.0;  // of video flows
    double byte_share = 0.0;  // of video-flow bytes
};

/// Shares over video flows only (control flows carry no stream), ordered by
/// ascending resolution. Entries with zero flows are included.
[[nodiscard]] std::vector<ResolutionShare> resolution_breakdown(
    const capture::Dataset& dataset);

/// Column-scan equivalent over the dataset's SoA mirror (bytes + resolution
/// columns only).
[[nodiscard]] std::vector<ResolutionShare> resolution_breakdown(
    const capture::FlowTable& table);

}  // namespace ytcdn::analysis
