#include "analysis/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ytcdn::analysis {

AsciiTable::AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("AsciiTable: empty header");
}

void AsciiTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("AsciiTable: row width mismatch");
    }
    rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    const auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };
    emit_row(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const AsciiTable& t) {
    return os << t.render();
}

std::string fmt(double v, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string fmt_pct(double ratio, int decimals) { return fmt(ratio * 100.0, decimals); }

}  // namespace ytcdn::analysis
