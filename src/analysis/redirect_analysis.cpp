#include "analysis/redirect_analysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "sim/time.hpp"

namespace ytcdn::analysis {

namespace {

std::unordered_map<cdn::VideoId, std::uint64_t> non_preferred_per_video(
    const capture::Dataset& dataset, const ServerDcMap& map, int preferred) {
    std::unordered_map<cdn::VideoId, std::uint64_t> counts;
    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0 || dc == preferred) continue;
        ++counts[r.video];
    }
    return counts;
}

std::unordered_map<cdn::VideoId, std::uint64_t> non_preferred_per_video(
    const capture::FlowTable& table, std::span<const int> dc_col, int preferred) {
    std::unordered_map<cdn::VideoId, std::uint64_t> counts;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (classify_flow_size(table.bytes[i]) != FlowKind::Video) continue;
        const int dc = dc_col[i];
        if (dc < 0 || dc == preferred) continue;
        ++counts[table.video[i]];
    }
    return counts;
}

EmpiricalCdf counts_to_cdf(const std::unordered_map<cdn::VideoId, std::uint64_t>& counts) {
    EmpiricalCdf cdf;
    for (const auto& [video, count] : counts) cdf.add(static_cast<double>(count));
    cdf.finalize();
    return cdf;
}

std::vector<cdn::VideoId> rank_counts(
    const std::unordered_map<cdn::VideoId, std::uint64_t>& counts, std::size_t k) {
    std::vector<std::pair<std::uint64_t, cdn::VideoId>> ranked;
    ranked.reserve(counts.size());
    for (const auto& [video, count] : counts) ranked.emplace_back(count, video);
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    });
    if (ranked.size() > k) ranked.resize(k);
    std::vector<cdn::VideoId> out;
    out.reserve(ranked.size());
    for (const auto& [count, video] : ranked) out.push_back(video);
    return out;
}

void bump_hour(std::vector<std::uint64_t>& v, sim::SimTime t) {
    const auto hour = static_cast<std::size_t>(sim::hour_index(t));
    if (hour >= v.size()) v.resize(hour + 1, 0);
    ++v[hour];
}

Series to_series(const std::vector<std::uint64_t>& hours, std::string name) {
    Series s;
    s.name = std::move(name);
    for (std::size_t h = 0; h < hours.size(); ++h) {
        s.points.emplace_back(static_cast<double>(h), static_cast<double>(hours[h]));
    }
    return s;
}

}  // namespace

EmpiricalCdf video_non_preferred_counts(const capture::Dataset& dataset,
                                        const ServerDcMap& map, int preferred) {
    return counts_to_cdf(non_preferred_per_video(dataset, map, preferred));
}

EmpiricalCdf video_non_preferred_counts(const capture::FlowTable& table,
                                        std::span<const int> dc, int preferred) {
    return counts_to_cdf(non_preferred_per_video(table, dc, preferred));
}

std::vector<cdn::VideoId> top_redirected_videos(const capture::Dataset& dataset,
                                                const ServerDcMap& map, int preferred,
                                                std::size_t k) {
    return rank_counts(non_preferred_per_video(dataset, map, preferred), k);
}

std::vector<cdn::VideoId> top_redirected_videos(const capture::FlowTable& table,
                                                std::span<const int> dc, int preferred,
                                                std::size_t k) {
    return rank_counts(non_preferred_per_video(table, dc, preferred), k);
}

VideoLoadSeries video_hourly_load(const capture::Dataset& dataset,
                                  const ServerDcMap& map, int preferred,
                                  cdn::VideoId video) {
    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> np;
    for (const auto& r : dataset.records) {
        if (r.video != video) continue;
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        bump_hour(all, r.start);
        if (dc != preferred) bump_hour(np, r.start);
    }
    np.resize(all.size(), 0);
    VideoLoadSeries out;
    out.all = to_series(all, dataset.name + " video-all");
    out.non_preferred = to_series(np, dataset.name + " video-non-preferred");
    return out;
}

VideoLoadSeries video_hourly_load(const capture::FlowTable& table,
                                  std::span<const int> dc_col, int preferred,
                                  cdn::VideoId video) {
    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> np;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table.video[i] != video) continue;
        if (classify_flow_size(table.bytes[i]) != FlowKind::Video) continue;
        const int dc = dc_col[i];
        if (dc < 0) continue;
        bump_hour(all, table.start[i]);
        if (dc != preferred) bump_hour(np, table.start[i]);
    }
    np.resize(all.size(), 0);
    VideoLoadSeries out;
    out.all = to_series(all, table.name + " video-all");
    out.non_preferred = to_series(np, table.name + " video-non-preferred");
    return out;
}

ServerLoadSeries preferred_dc_server_load(const capture::Dataset& dataset,
                                          const ServerDcMap& map, int preferred) {
    // requests[hour][server] -> count, for servers inside the preferred DC.
    std::vector<std::unordered_map<net::IpAddress, std::uint64_t>> hours;
    for (const auto& r : dataset.records) {
        if (map.dc_of(r.server_ip) != preferred) continue;
        const auto hour = static_cast<std::size_t>(sim::hour_index(r.start));
        if (hour >= hours.size()) hours.resize(hour + 1);
        ++hours[hour][r.server_ip];
    }

    ServerLoadSeries out;
    out.avg.name = dataset.name + " per-server-avg";
    out.max.name = dataset.name + " per-server-max";
    for (std::size_t h = 0; h < hours.size(); ++h) {
        if (hours[h].empty()) continue;
        MinMeanMax m;
        for (const auto& [ip, count] : hours[h]) m.add(static_cast<double>(count));
        out.avg.points.emplace_back(static_cast<double>(h), m.mean());
        out.max.points.emplace_back(static_cast<double>(h), m.max);
    }
    return out;
}

ServerLoadSeries preferred_dc_server_load(const capture::FlowTable& table,
                                          std::span<const int> dc, int preferred) {
    // requests[hour][server] -> count, for servers inside the preferred DC.
    std::vector<std::unordered_map<net::IpAddress, std::uint64_t>> hours;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (dc[i] != preferred) continue;
        const auto hour = static_cast<std::size_t>(sim::hour_index(table.start[i]));
        if (hour >= hours.size()) hours.resize(hour + 1);
        ++hours[hour][table.server_ip[i]];
    }

    ServerLoadSeries out;
    out.avg.name = table.name + " per-server-avg";
    out.max.name = table.name + " per-server-max";
    for (std::size_t h = 0; h < hours.size(); ++h) {
        if (hours[h].empty()) continue;
        MinMeanMax m;
        for (const auto& [ip, count] : hours[h]) m.add(static_cast<double>(count));
        out.avg.points.emplace_back(static_cast<double>(h), m.mean());
        out.max.points.emplace_back(static_cast<double>(h), m.max);
    }
    return out;
}

HotServerSessions hot_server_sessions(const capture::FlowTable& table,
                                      const SessionTable& sessions,
                                      std::span<const int> dc, int preferred,
                                      cdn::VideoId video) {
    // The "server handling the video": the preferred-DC server with the most
    // requests for it.
    std::unordered_map<net::IpAddress, std::uint64_t> counts;
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table.video[i] != video || dc[i] != preferred) continue;
        ++counts[table.server_ip[i]];
    }
    HotServerSessions out;
    if (counts.empty()) return out;
    out.server = std::max_element(counts.begin(), counts.end(),
                                  [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                  })
                     ->first;

    std::vector<std::uint64_t> all_pref, first_pref, others;
    for (std::size_t s = 0; s < sessions.num_sessions(); ++s) {
        const auto flows = sessions.flows_of(s);
        // Sessions that *arrive* at this server: their first flow hits it.
        if (table.server_ip[flows.front()] != out.server) continue;
        bool every_pref = true;
        for (const std::uint32_t row : flows) {
            if (dc[row] != preferred) {
                every_pref = false;
                break;
            }
        }
        const sim::SimTime t = sessions.start[s];
        if (every_pref) {
            bump_hour(all_pref, t);
        } else if (dc[flows.front()] == preferred) {
            bump_hour(first_pref, t);
        } else {
            bump_hour(others, t);
        }
    }
    const std::size_t n = std::max({all_pref.size(), first_pref.size(), others.size()});
    all_pref.resize(n, 0);
    first_pref.resize(n, 0);
    others.resize(n, 0);
    out.all_preferred = to_series(all_pref, table.name + " all-preferred");
    out.first_preferred_then_other =
        to_series(first_pref, table.name + " first-preferred-then-other");
    out.others = to_series(others, table.name + " others");
    return out;
}

HotServerSessions hot_server_sessions(const capture::Dataset& dataset,
                                      const std::vector<VideoSession>& sessions,
                                      const ServerDcMap& map, int preferred,
                                      cdn::VideoId video) {
    // The "server handling the video": the preferred-DC server with the most
    // requests for it.
    std::unordered_map<net::IpAddress, std::uint64_t> counts;
    for (const auto& r : dataset.records) {
        if (r.video != video || map.dc_of(r.server_ip) != preferred) continue;
        ++counts[r.server_ip];
    }
    HotServerSessions out;
    if (counts.empty()) return out;
    out.server = std::max_element(counts.begin(), counts.end(),
                                  [](const auto& a, const auto& b) {
                                      return a.second < b.second;
                                  })
                     ->first;

    std::vector<std::uint64_t> all_pref, first_pref, others;
    for (const auto& s : sessions) {
        // Sessions that *arrive* at this server: their first flow hits it.
        if (s.flows.front()->server_ip != out.server) continue;
        bool every_pref = true;
        for (const auto* f : s.flows) {
            if (map.dc_of(f->server_ip) != preferred) {
                every_pref = false;
                break;
            }
        }
        const sim::SimTime t = s.start();
        if (every_pref) {
            bump_hour(all_pref, t);
        } else if (map.dc_of(s.flows.front()->server_ip) == preferred) {
            bump_hour(first_pref, t);
        } else {
            bump_hour(others, t);
        }
    }
    const std::size_t n = std::max({all_pref.size(), first_pref.size(), others.size()});
    all_pref.resize(n, 0);
    first_pref.resize(n, 0);
    others.resize(n, 0);
    out.all_preferred = to_series(all_pref, dataset.name + " all-preferred");
    out.first_preferred_then_other =
        to_series(first_pref, dataset.name + " first-preferred-then-other");
    out.others = to_series(others, dataset.name + " others");
    return out;
}

}  // namespace ytcdn::analysis
