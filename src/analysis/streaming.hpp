#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/loadbalance_analysis.hpp"
#include "analysis/preferred_dc.hpp"
#include "analysis/redirect_analysis.hpp"
#include "analysis/subnet_analysis.hpp"
#include "capture/flow_record.hpp"

namespace ytcdn::analysis {

/// Out-of-core §VII analysis: incremental counterparts of the batch
/// modules, consuming one flow record at a time so a 10-100M-session run
/// fits bounded memory (DESIGN.md §16). Each add() takes the pre-resolved
/// data-center index for the flow's server (`map.dc_of(server_ip)`),
/// decoupling the accumulators from the map so the caller resolves once
/// per record.
///
/// Equivalence contract: feeding a module the records of a time-sorted
/// dataset in order produces *byte-identical* results to its whole-vector
/// counterpart — tests/test_streaming_analysis.cpp pins every module
/// against its batch twin and proves chunk-boundary invariance. All
/// tallies here are order-independent integers except
/// IncrementalServerLoad, which replicates the batch module's exact
/// insertion sequence (see its note).

/// Streams the per-DC byte/flow tallies behind preferred_dc() and
/// non_preferred_share(). Order-independent.
class IncrementalDcTraffic {
public:
    void add(const capture::FlowRecord& record, int dc);

    /// traffic_by_dc() of everything added: sorted by (bytes desc, dc asc).
    [[nodiscard]] std::vector<DcTraffic> traffic() const;
    /// preferred_dc() of everything added so far.
    [[nodiscard]] int preferred(const ServerDcMap& map,
                                double heavy_share = 0.20) const;
    /// non_preferred_share() of everything added so far.
    [[nodiscard]] NonPreferredShare share(int preferred) const;

private:
    std::unordered_map<int, DcTraffic> tally_;
    std::uint64_t bytes_all_ = 0;
    std::uint64_t flows_all_ = 0;
};

/// Streams the per-hour (all, preferred) video-flow tallies behind Figs 9
/// and 11 and the §VII-A load correlation. Order-independent.
class IncrementalHourlyLoad {
public:
    IncrementalHourlyLoad(int preferred, std::string name)
        : preferred_(preferred), name_(std::move(name)) {}

    void add(const capture::FlowRecord& record, int dc);

    [[nodiscard]] EmpiricalCdf non_preferred_cdf() const;        // Fig. 9
    [[nodiscard]] HourlyLoadSeries preferred_series() const;     // Fig. 11
    [[nodiscard]] double correlation(std::uint64_t min_flows = 5) const;

private:
    int preferred_;
    std::string name_;
    std::vector<std::uint64_t> all_;
    std::vector<std::uint64_t> pref_;
};

/// Streams the per-video non-preferred download counts behind Figs 13/14.
/// Order-independent (the CDF sorts, the ranking is a total order).
class IncrementalVideoRedirects {
public:
    explicit IncrementalVideoRedirects(int preferred) : preferred_(preferred) {}

    void add(const capture::FlowRecord& record, int dc);

    [[nodiscard]] EmpiricalCdf counts_cdf() const;               // Fig. 13
    /// Most-redirected videos, (count desc, video asc), at most k.
    [[nodiscard]] std::vector<cdn::VideoId> top_videos(std::size_t k) const;
    /// Distinct videos with at least one non-preferred download.
    [[nodiscard]] std::uint64_t num_videos() const noexcept {
        return counts_.size();
    }

private:
    int preferred_;
    std::unordered_map<cdn::VideoId, std::uint64_t> counts_;
};

/// Streams Fig. 12's per-subnet breakdown. Order-independent.
class IncrementalSubnetBreakdown {
public:
    IncrementalSubnetBreakdown(int preferred, std::vector<NamedSubnet> subnets);

    void add(const capture::FlowRecord& record, int dc);

    [[nodiscard]] std::vector<SubnetShare> shares() const;

private:
    int preferred_;
    std::vector<NamedSubnet> subnets_;
    std::vector<std::uint64_t> all_;
    std::vector<std::uint64_t> np_;
    std::uint64_t total_all_ = 0;
    std::uint64_t total_np_ = 0;
};

/// Streams Fig. 15's per-hour per-server request tallies for the preferred
/// data center. The hourly mean accumulates doubles over unordered-map
/// iteration, so byte-identity with the batch module requires the *same
/// insertion sequence* per hour map — which holds exactly when records
/// arrive in the dataset's time-sorted order (the FlowSink ordering
/// contract; exact start-time ties across distinct servers would be the
/// only exception and have measure zero under the continuous workload).
class IncrementalServerLoad {
public:
    IncrementalServerLoad(int preferred, std::string name)
        : preferred_(preferred), name_(std::move(name)) {}

    void add(const capture::FlowRecord& record, int dc);

    [[nodiscard]] ServerLoadSeries series() const;

private:
    int preferred_;
    std::string name_;
    std::vector<std::unordered_map<net::IpAddress, std::uint64_t>> hours_;
};

}  // namespace ytcdn::analysis
