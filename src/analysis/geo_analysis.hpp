#pragma once

#include <cstddef>

#include "analysis/dc_map.hpp"
#include "analysis/series.hpp"
#include "capture/dataset.hpp"
#include "geoloc/dc_clustering.hpp"

namespace ytcdn::analysis {

/// Table III: distinct servers per continent bucket for one dataset.
struct ContinentCounts {
    std::size_t north_america = 0;
    std::size_t europe = 0;
    std::size_t others = 0;
    std::size_t unlocated = 0;

    [[nodiscard]] std::size_t located_total() const noexcept {
        return north_america + europe + others;
    }
};

/// Counts located servers per continent bucket (Table III's columns).
[[nodiscard]] ContinentCounts servers_per_continent(
    const std::vector<geoloc::LocatedServer>& servers);

/// Fig. 7: cumulative fraction of dataset bytes served by data centers with
/// RTT (from the probe PC) below x. One step per data center, sorted by RTT.
[[nodiscard]] Series bytes_vs_rtt(const capture::Dataset& dataset,
                                  const ServerDcMap& map);

/// Fig. 8: same, ordered by great-circle distance instead of RTT.
[[nodiscard]] Series bytes_vs_distance(const capture::Dataset& dataset,
                                       const ServerDcMap& map);

}  // namespace ytcdn::analysis
