#include "analysis/as_analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ytcdn::analysis {

AsBreakdownRow as_breakdown(const capture::Dataset& dataset,
                            const net::AsRegistry& whois, net::Asn local_as) {
    struct Tally {
        std::unordered_set<net::IpAddress> servers;
        std::uint64_t bytes = 0;
    };
    Tally google, youtube_eu, same_as, other;

    for (const auto& r : dataset.records) {
        const auto asn = whois.asn_of(r.server_ip);
        Tally* t = &other;
        if (asn == net::well_known_as::kGoogle) {
            t = &google;
        } else if (asn == net::well_known_as::kYouTubeEu) {
            t = &youtube_eu;
        } else if (asn == local_as) {
            t = &same_as;
        }
        t->servers.insert(r.server_ip);
        t->bytes += r.bytes;
    }

    const double total_servers =
        static_cast<double>(google.servers.size() + youtube_eu.servers.size() +
                            same_as.servers.size() + other.servers.size());
    const double total_bytes = static_cast<double>(google.bytes + youtube_eu.bytes +
                                                   same_as.bytes + other.bytes);

    AsBreakdownRow row;
    row.dataset = dataset.name;
    if (total_servers > 0.0) {
        row.google_servers = static_cast<double>(google.servers.size()) / total_servers;
        row.youtube_eu_servers =
            static_cast<double>(youtube_eu.servers.size()) / total_servers;
        row.same_as_servers = static_cast<double>(same_as.servers.size()) / total_servers;
        row.other_servers = static_cast<double>(other.servers.size()) / total_servers;
    }
    if (total_bytes > 0.0) {
        row.google_bytes = static_cast<double>(google.bytes) / total_bytes;
        row.youtube_eu_bytes = static_cast<double>(youtube_eu.bytes) / total_bytes;
        row.same_as_bytes = static_cast<double>(same_as.bytes) / total_bytes;
        row.other_bytes = static_cast<double>(other.bytes) / total_bytes;
    }
    return row;
}

std::vector<net::IpAddress> analysis_scope_servers(const capture::Dataset& dataset,
                                                   const net::AsRegistry& whois,
                                                   net::Asn local_as) {
    std::unordered_set<net::IpAddress> set;
    for (const auto& r : dataset.records) {
        const auto asn = whois.asn_of(r.server_ip);
        if (asn == net::well_known_as::kGoogle || asn == local_as) {
            set.insert(r.server_ip);
        }
    }
    std::vector<net::IpAddress> out(set.begin(), set.end());
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace ytcdn::analysis
