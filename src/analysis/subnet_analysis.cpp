#include "analysis/subnet_analysis.hpp"

#include "analysis/session.hpp"

namespace ytcdn::analysis {

std::vector<SubnetShare> subnet_breakdown(const capture::Dataset& dataset,
                                          const ServerDcMap& map, int preferred,
                                          const std::vector<NamedSubnet>& subnets) {
    std::vector<std::uint64_t> all(subnets.size(), 0);
    std::vector<std::uint64_t> np(subnets.size(), 0);
    std::uint64_t total_all = 0;
    std::uint64_t total_np = 0;

    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        for (std::size_t i = 0; i < subnets.size(); ++i) {
            if (!subnets[i].prefix.contains(r.client_ip)) continue;
            ++all[i];
            ++total_all;
            if (dc != preferred) {
                ++np[i];
                ++total_np;
            }
            break;
        }
    }

    std::vector<SubnetShare> out;
    out.reserve(subnets.size());
    for (std::size_t i = 0; i < subnets.size(); ++i) {
        SubnetShare s;
        s.name = subnets[i].name;
        s.all_flows_share =
            total_all == 0 ? 0.0
                           : static_cast<double>(all[i]) / static_cast<double>(total_all);
        s.non_preferred_share =
            total_np == 0 ? 0.0
                          : static_cast<double>(np[i]) / static_cast<double>(total_np);
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace ytcdn::analysis
