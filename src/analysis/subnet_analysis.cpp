#include "analysis/subnet_analysis.hpp"

#include "analysis/session.hpp"

namespace ytcdn::analysis {

namespace {

struct SubnetTally {
    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> np;
    std::uint64_t total_all = 0;
    std::uint64_t total_np = 0;
};

void tally_flow(SubnetTally& t, const std::vector<NamedSubnet>& subnets,
                net::IpAddress client, int dc, int preferred) {
    for (std::size_t i = 0; i < subnets.size(); ++i) {
        if (!subnets[i].prefix.contains(client)) continue;
        ++t.all[i];
        ++t.total_all;
        if (dc != preferred) {
            ++t.np[i];
            ++t.total_np;
        }
        break;
    }
}

std::vector<SubnetShare> shares_of(const SubnetTally& t,
                                   const std::vector<NamedSubnet>& subnets);

}  // namespace

std::vector<SubnetShare> subnet_breakdown(const capture::Dataset& dataset,
                                          const ServerDcMap& map, int preferred,
                                          const std::vector<NamedSubnet>& subnets) {
    SubnetTally t{std::vector<std::uint64_t>(subnets.size(), 0),
                  std::vector<std::uint64_t>(subnets.size(), 0), 0, 0};
    for (const auto& r : dataset.records) {
        if (classify_flow_size(r.bytes) != FlowKind::Video) continue;
        const int dc = map.dc_of(r.server_ip);
        if (dc < 0) continue;
        tally_flow(t, subnets, r.client_ip, dc, preferred);
    }
    return shares_of(t, subnets);
}

std::vector<SubnetShare> subnet_breakdown(const capture::FlowTable& table,
                                          std::span<const int> dc_col, int preferred,
                                          const std::vector<NamedSubnet>& subnets) {
    SubnetTally t{std::vector<std::uint64_t>(subnets.size(), 0),
                  std::vector<std::uint64_t>(subnets.size(), 0), 0, 0};
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (classify_flow_size(table.bytes[i]) != FlowKind::Video) continue;
        const int dc = dc_col[i];
        if (dc < 0) continue;
        tally_flow(t, subnets, table.client_ip[i], dc, preferred);
    }
    return shares_of(t, subnets);
}

namespace {

std::vector<SubnetShare> shares_of(const SubnetTally& t,
                                   const std::vector<NamedSubnet>& subnets) {
    const auto& all = t.all;
    const auto& np = t.np;
    const std::uint64_t total_all = t.total_all;
    const std::uint64_t total_np = t.total_np;
    std::vector<SubnetShare> out;
    out.reserve(subnets.size());
    for (std::size_t i = 0; i < subnets.size(); ++i) {
        SubnetShare s;
        s.name = subnets[i].name;
        s.all_flows_share =
            total_all == 0 ? 0.0
                           : static_cast<double>(all[i]) / static_cast<double>(total_all);
        s.non_preferred_share =
            total_np == 0 ? 0.0
                          : static_cast<double>(np[i]) / static_cast<double>(total_np);
        out.push_back(std::move(s));
    }
    return out;
}

}  // namespace

}  // namespace ytcdn::analysis
