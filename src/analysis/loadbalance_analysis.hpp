#pragma once

#include <span>

#include "analysis/dc_map.hpp"
#include "analysis/series.hpp"
#include "analysis/stats.hpp"
#include "capture/dataset.hpp"
#include "capture/flow_table.hpp"

namespace ytcdn::analysis {

/// Fig. 9: the distribution over one-hour slots of the fraction of video
/// flows directed to non-preferred data centers.
[[nodiscard]] EmpiricalCdf hourly_non_preferred_fraction(const capture::Dataset& dataset,
                                                         const ServerDcMap& map,
                                                         int preferred);

/// Fig. 11: per-hour fraction of video flows served by the preferred (EU2:
/// in-ISP) data center, and the per-hour total number of video flows.
struct HourlyLoadSeries {
    Series fraction_preferred;  // x = hour index, y in [0, 1]
    Series flows_per_hour;      // x = hour index, y = count
};
[[nodiscard]] HourlyLoadSeries hourly_preferred_series(const capture::Dataset& dataset,
                                                       const ServerDcMap& map,
                                                       int preferred);

/// Pearson correlation between two series' y-values, matched by index.
/// Returns 0 when either series is degenerate (constant or too short).
[[nodiscard]] double pearson_correlation(const Series& a, const Series& b);

/// Section VII-A's discriminator: at EU2 the hourly non-preferred fraction
/// tracks the hourly request volume (adaptive DNS balancing reacts to
/// load); at the other vantage points "there is much less correlation with
/// the number of requests". Computes corr(flows/hour, non-preferred
/// fraction/hour) over hours with at least `min_flows` video flows.
[[nodiscard]] double load_vs_nonpreferred_correlation(const capture::Dataset& dataset,
                                                      const ServerDcMap& map,
                                                      int preferred,
                                                      std::uint64_t min_flows = 5);

/// Column-scan equivalents over the SoA mirror; `dc` is the table's
/// dc_column (see analysis/session_table.hpp). Bit-identical results.
[[nodiscard]] EmpiricalCdf hourly_non_preferred_fraction(
    const capture::FlowTable& table, std::span<const int> dc, int preferred);
[[nodiscard]] HourlyLoadSeries hourly_preferred_series(const capture::FlowTable& table,
                                                       std::span<const int> dc,
                                                       int preferred);
[[nodiscard]] double load_vs_nonpreferred_correlation(const capture::FlowTable& table,
                                                      std::span<const int> dc,
                                                      int preferred,
                                                      std::uint64_t min_flows = 5);

}  // namespace ytcdn::analysis
