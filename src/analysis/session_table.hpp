#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "capture/flow_table.hpp"

namespace ytcdn::analysis {

/// Compressed-sparse-row view of a dataset's video sessions over a
/// FlowTable: session s owns the flow rows
/// flow_rows[offsets[s] .. offsets[s+1]), in start-time order.
///
/// Semantics match build_sessions exactly — same grouping key (client IP,
/// VideoID), same gap threshold, same (start, client, video) session order —
/// so the pattern analyses below are bit-compatible with the
/// VideoSession-based ones, without the per-session pointer vectors (one
/// index array and one offset array replace ~a million small allocations at
/// paper scale).
struct SessionTable {
    std::vector<std::uint32_t> offsets;    // num_sessions() + 1 entries
    std::vector<std::uint32_t> flow_rows;  // row indices into the FlowTable
    std::vector<net::IpAddress> client;    // per session
    std::vector<cdn::VideoId> video;       // per session
    std::vector<sim::SimTime> start;       // per session (first flow's start)

    [[nodiscard]] std::size_t num_sessions() const noexcept {
        return offsets.empty() ? 0 : offsets.size() - 1;
    }
    [[nodiscard]] std::span<const std::uint32_t> flows_of(std::size_t s) const noexcept {
        return {flow_rows.data() + offsets[s], flow_rows.data() + offsets[s + 1]};
    }

    /// Groups the table's rows into sessions with gap threshold `gap_T_s`
    /// (the paper's T = 1 s by default). The table need not be pre-sorted.
    [[nodiscard]] static SessionTable build(const capture::FlowTable& table,
                                            double gap_T_s = 1.0);
};

/// Resolves every row's server to its data center once: element i is
/// map.dc_of(table.server_ip[i]) (-1 when unmapped). The analyses take this
/// column instead of the map, so the hash lookup is paid once per flow per
/// run instead of once per flow per artifact.
[[nodiscard]] std::vector<int> dc_column(const capture::FlowTable& table,
                                         const ServerDcMap& map);

/// Column-scan equivalents of the session_analysis.hpp functions; `dc` is
/// the table's dc_column.
[[nodiscard]] std::vector<double> flows_per_session_cdf(const SessionTable& sessions,
                                                        int max_bucket = 9);
[[nodiscard]] SessionPatternShares session_patterns(const SessionTable& sessions,
                                                    std::span<const int> dc,
                                                    int preferred);
[[nodiscard]] MultiFlowPatternShares multi_flow_patterns(const SessionTable& sessions,
                                                         std::span<const int> dc,
                                                         int preferred);

}  // namespace ytcdn::analysis
