#pragma once

#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/session.hpp"

namespace ytcdn::analysis {

/// Fig. 5 / Fig. 6: CDF of the number of flows per session. Element i is
/// P(num_flows <= i+1); the final element covers ">max_bucket" and is 1.
[[nodiscard]] std::vector<double> flows_per_session_cdf(
    const std::vector<VideoSession>& sessions, int max_bucket = 9);

/// Fig. 10: breakdown of sessions by how many flows they have and whether
/// each flow went to the preferred data center. All values are fractions of
/// the *total* number of (scoped) sessions, matching the paper's bars.
struct SessionPatternShares {
    double single_flow = 0.0;            // sessions with exactly one flow
    double single_preferred = 0.0;       //   ... to the preferred DC
    double single_non_preferred = 0.0;   //   ... to a non-preferred DC
    double two_flow = 0.0;               // sessions with exactly two flows
    double two_pref_pref = 0.0;          //   (preferred, preferred)
    double two_pref_nonpref = 0.0;       //   (preferred, non-preferred)
    double two_nonpref_pref = 0.0;       //   (non-preferred, preferred)
    double two_nonpref_nonpref = 0.0;    //   (non-preferred, non-preferred)
    double more_flows = 0.0;             // sessions with three or more flows
    std::size_t total_sessions = 0;      // denominator (scoped sessions)
};

/// Computes the Fig. 10 shares. Sessions containing any flow to a server
/// outside the mapped analysis scope (legacy ASes) are excluded, following
/// the paper's Section IV filter.
[[nodiscard]] SessionPatternShares session_patterns(
    const std::vector<VideoSession>& sessions, const ServerDcMap& map, int preferred);

/// Section VI-C's closing observation: sessions with more than 2 flows
/// (5.18-10% of sessions) "show similar trends to 2-flow sessions" — for
/// the EU1 datasets a significant fraction starts at the preferred data
/// center and is redirected away. Fractions are of the >2-flow sessions.
struct MultiFlowPatternShares {
    std::size_t sessions = 0;                  // scoped sessions with >= 3 flows
    double share_of_all_sessions = 0.0;        // paper: 5.18-10%
    double all_preferred = 0.0;                // every flow at the preferred DC
    double first_preferred_then_other = 0.0;   // starts preferred, leaves
    double first_non_preferred = 0.0;          // DNS already sent it away
};

[[nodiscard]] MultiFlowPatternShares multi_flow_patterns(
    const std::vector<VideoSession>& sessions, const ServerDcMap& map, int preferred);

}  // namespace ytcdn::analysis
