#include "analysis/incremental.hpp"

#include <algorithm>

#include "analysis/session.hpp"

namespace ytcdn::analysis {

void IncrementalSummary::add(const capture::FlowRecord& r) {
    ++flows;
    if (classify_flow_size(r.bytes) == FlowKind::Video) ++video_flows;
    bytes += r.bytes;
    servers.insert(r.server_ip.value());
    clients.insert(r.client_ip.value());
    server_slash24s.insert(r.server_ip.slash24().value());
}

void IncrementalSessions::close_into_histogram(std::uint32_t flows) {
    const std::size_t bucket =
        std::min<std::size_t>(flows, kMaxBucket);
    if (bucket > 0) ++closed_[bucket];
}

void IncrementalSessions::evict_stale() {
    // In-order input can never extend a session whose last end is more than
    // the gap behind the newest timestamp seen, so closing those early is
    // exactly what the batch closure would eventually do.
    const double horizon = watermark_ - gap_;
    for (auto it = open_.begin(); it != open_.end();) {
        if (it->second.last_end < horizon) {
            close_into_histogram(it->second.flows);
            it = open_.erase(it);
        } else {
            ++it;
        }
    }
}

void IncrementalSessions::add(const capture::FlowRecord& r) {
    watermark_ = std::max(watermark_, r.end);
    const Key key{r.client_ip.value(), r.video.value()};
    auto [it, inserted] = open_.try_emplace(key);
    OpenSession& session = it->second;
    if (!inserted) {
        if (r.start - session.last_end > gap_) {
            // The gap rule splits here: the open session is complete.
            close_into_histogram(session.flows);
            session.flows = 0;
        }
    }
    ++session.flows;
    session.last_end = std::max(session.last_end, r.end);
    if (open_.size() > max_open_) evict_stale();
}

void IncrementalSessions::close_all() {
    for (const auto& [key, session] : open_) {
        close_into_histogram(session.flows);
    }
    open_.clear();
}

std::uint64_t IncrementalSessions::sessions_closed() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t k = 1; k <= kMaxBucket; ++k) total += closed_[k];
    return total;
}

std::uint64_t IncrementalSessions::multi_flow_sessions() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t k = 2; k <= kMaxBucket; ++k) total += closed_[k];
    return total;
}

void IncrementalSessions::restore_open(Key key, OpenSession session) {
    open_[key] = session;
}

void IncrementalSessions::restore_closed(std::size_t bucket,
                                         std::uint64_t count) {
    if (bucket >= 1 && bucket <= kMaxBucket) closed_[bucket] = count;
}

void IncrementalPreference::set_map(ServerDcMap map) {
    map_ = std::move(map);
    dcs_.assign(map_.num_data_centers(), DcState{});
}

bool IncrementalPreference::set_policy(std::string_view name) {
    if (name != "rtt" && name != "load") return false;
    policy_.assign(name);
    return true;
}

namespace {

int find_dc(const ServerDcMap& map, std::string_view name) {
    for (std::size_t i = 0; i < map.num_data_centers(); ++i) {
        if (map.info(static_cast<int>(i)).name == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

}  // namespace

bool IncrementalPreference::set_drained(std::string_view dc_name,
                                        bool drained) {
    const int dc = find_dc(map_, dc_name);
    if (dc < 0) return false;
    dcs_[static_cast<std::size_t>(dc)].drained = drained;
    return true;
}

bool IncrementalPreference::set_scale(std::string_view dc_name,
                                      double factor) {
    const int dc = find_dc(map_, dc_name);
    if (dc < 0 || !(factor > 0.0)) return false;
    dcs_[static_cast<std::size_t>(dc)].scale = factor;
    return true;
}

int IncrementalPreference::preferred_dc() const {
    int best = -1;
    double best_score = 0.0;
    for (std::size_t i = 0; i < dcs_.size(); ++i) {
        if (dcs_[i].drained) continue;
        // rtt: the paper's proximity rule — lowest probe RTT wins.
        // load: least accumulated bytes per unit of capacity wins, so a
        // scaled-up DC absorbs proportionally more traffic.
        const double score =
            policy_ == "load"
                ? static_cast<double>(dcs_[i].bytes) / dcs_[i].scale
                : map_.info(static_cast<int>(i)).rtt_ms;
        if (best < 0 || score < best_score) {
            best = static_cast<int>(i);
            best_score = score;
        }
    }
    return best;
}

void IncrementalPreference::add(const capture::FlowRecord& r) {
    if (!has_map()) return;
    const int dc = map_.dc_of(r.server_ip);
    if (dc < 0) {
        ++unmapped_flows;
        return;
    }
    const int preferred = preferred_dc();
    ++mapped_flows;
    auto& state = dcs_[static_cast<std::size_t>(dc)];
    ++state.flows;
    state.bytes += r.bytes;
    if (dc == preferred) {
        ++preferred_flows;
        preferred_bytes += r.bytes;
    } else {
        ++non_preferred_flows;
        non_preferred_bytes += r.bytes;
    }
}

}  // namespace ytcdn::analysis
