#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace ytcdn::analysis {

/// An empirical cumulative distribution function over double samples.
/// Backs every CDF plot in the paper (Figs 2-6, 9, 13, 18, ...).
class EmpiricalCdf {
public:
    EmpiricalCdf() = default;
    explicit EmpiricalCdf(std::vector<double> samples);

    void add(double sample);
    /// Must be called (or the vector constructor used) before queries after
    /// the last add(); queries call it lazily too.
    void finalize();

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

    /// P(X <= x).
    [[nodiscard]] double fraction_at_or_below(double x) const;
    /// The q-quantile, q in [0, 1]; uses the lower sample (type-1 quantile).
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;

    /// (x, F(x)) pairs subsampled to at most `max_points` for plotting.
    [[nodiscard]] std::vector<std::pair<double, double>> curve(
        std::size_t max_points = 200) const;

private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = false;
};

/// Mean/max accumulator for time-bucketed load series (Fig. 15).
struct MinMeanMax {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void add(double v) noexcept;
    [[nodiscard]] double mean() const noexcept {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

}  // namespace ytcdn::analysis
