#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/session_table.hpp"
#include "capture/flow_table.hpp"
#include "study/deployment.hpp"
#include "study/trace_driver.hpp"
#include "util/parallel.hpp"

namespace ytcdn::study {

/// A complete, analysis-ready run of the study: deployment + one week of
/// traces + per-vantage-point data-center maps and preferred data centers.
/// Benches and examples start from one of these.
struct StudyRun {
    StudyConfig config;
    std::unique_ptr<StudyDeployment> deployment;
    TraceOutputs traces;
    /// Ground-truth server->DC map per vantage point (probe RTT measured).
    std::vector<analysis::ServerDcMap> maps;
    /// Preferred data-center index (into maps[i]) per vantage point.
    std::vector<int> preferred;
    /// Dataset name -> index, built once by assemble_study_run (the
    /// analyses resolve vantage points by name in inner loops).
    std::unordered_map<std::string, std::size_t> vp_index_by_name;

    /// SoA mirrors of traces.datasets, built once during derivation and
    /// borrowed (read-only) by the report closures; index-aligned with
    /// `datasets`. Empty only on hand-assembled runs (tests) that skip
    /// derive_run.
    std::vector<capture::FlowTable> tables;
    /// CSR session tables at the paper's T = 1 s gap, aligned with `tables`
    /// (fig05's gap-sensitivity sweep rebuilds at other gaps on the fly).
    std::vector<analysis::SessionTable> sessions;
    /// Pre-resolved dc_of(server_ip) per flow row, aligned with `tables`.
    std::vector<std::vector<int>> dc_columns;

    [[nodiscard]] std::size_t vp_index(std::string_view name) const;
    [[nodiscard]] const capture::Dataset& dataset(std::string_view name) const;
};

/// Builds the deployment, simulates the week, and derives the per-vantage
/// point maps and preferred data centers. The event-driven simulation is
/// single-threaded by design (all vantage points share one CDN); the
/// derivation stages fan out on `pool`. A non-null `tracer` collects the
/// simulation's structured event stream (see sim/tracer.hpp) without
/// changing any output byte.
[[nodiscard]] StudyRun run_study(const StudyConfig& config, util::ThreadPool& pool,
                                 sim::Tracer* tracer = nullptr);
/// Same, on a pool sized by config.effective_threads().
[[nodiscard]] StudyRun run_study(const StudyConfig& config,
                                 sim::Tracer* tracer = nullptr);

/// Rebuilds the analysis-ready run around already-simulated traces (e.g.
/// loaded from a snapshot — see study/snapshot.hpp): constructs the
/// deployment and derives maps/preferred exactly as run_study would, so the
/// result is bit-identical to the run that produced the traces.
[[nodiscard]] StudyRun assemble_study_run(const StudyConfig& config,
                                          TraceOutputs traces,
                                          util::ThreadPool& pool);

}  // namespace ytcdn::study
