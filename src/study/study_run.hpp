#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "analysis/dc_map.hpp"
#include "study/deployment.hpp"
#include "study/trace_driver.hpp"

namespace ytcdn::study {

/// A complete, analysis-ready run of the study: deployment + one week of
/// traces + per-vantage-point data-center maps and preferred data centers.
/// Benches and examples start from one of these.
struct StudyRun {
    StudyConfig config;
    std::unique_ptr<StudyDeployment> deployment;
    TraceOutputs traces;
    /// Ground-truth server->DC map per vantage point (probe RTT measured).
    std::vector<analysis::ServerDcMap> maps;
    /// Preferred data-center index (into maps[i]) per vantage point.
    std::vector<int> preferred;

    [[nodiscard]] std::size_t vp_index(std::string_view name) const;
    [[nodiscard]] const capture::Dataset& dataset(std::string_view name) const;
};

/// Builds the deployment, simulates the week, and derives the per-vantage
/// point maps and preferred data centers.
[[nodiscard]] StudyRun run_study(const StudyConfig& config);

}  // namespace ytcdn::study
