#include "study/snapshot.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "capture/binary_log.hpp"
#include "sim/random.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace ytcdn::study {

namespace {

constexpr char kMagic[4] = {'Y', 'S', 'S', '2'};

template <typename T>
void put(std::ostream& os, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_string(std::ostream& os, const std::string& s) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void put_u64s(std::ostream& os, const std::vector<std::uint64_t>& v) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) put(os, x);
}

void put_stats(std::ostream& os, const workload::Player::Stats& s) {
    put(os, s.sessions);
    put(os, s.video_flows);
    put(os, s.control_flows);
    put(os, s.redirects_miss);
    put(os, s.redirects_overload);
    put(os, s.resolution_probes);
    put(os, s.pauses);
    put(os, s.dns_cache_hits);
    put(os, s.connect_timeouts);
    put(os, s.connect_resets);
    put(os, s.dns_servfails);
    put(os, s.stale_dns_answers);
    put(os, s.failovers);
    put(os, s.failures.timeout);
    put(os, s.failures.reset);
    put(os, s.failures.dns_failure);
    put(os, s.failures.retries_exhausted);
    put(os, s.failures.redirect_exhausted);
    put_u64s(os, s.retry_histogram);
}

/// Bounds-checked reader over the in-memory snapshot body. Every failure
/// carries the byte offset where the data ran out or went bad.
class Cursor {
public:
    explicit Cursor(std::string_view data) : data_(data) {}

    [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
    [[nodiscard]] bool at_end() const noexcept { return pos_ == data_.size(); }

    template <typename T>
    [[nodiscard]] util::Result<void> get(T& value, std::string_view field) {
        static_assert(std::is_trivially_copyable_v<T>);
        if (data_.size() - pos_ < sizeof(T)) return truncated(field);
        std::memcpy(&value, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return {};
    }

    [[nodiscard]] util::Result<void> get_bytes(std::string& out, std::uint64_t n,
                                               std::string_view field) {
        if (data_.size() - pos_ < n) return truncated(field);
        out.assign(data_.substr(pos_, static_cast<std::size_t>(n)));
        pos_ += static_cast<std::size_t>(n);
        return {};
    }

    [[nodiscard]] Error bad_field(std::string_view message) const {
        return error_at_byte(ErrorCode::BadField, message, pos_);
    }

private:
    [[nodiscard]] util::Result<void> truncated(std::string_view field) const {
        return error_at_byte(ErrorCode::Truncated,
                             "snapshot truncated reading " + std::string(field),
                             pos_);
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

[[nodiscard]] util::Result<void> get_string(Cursor& c, std::string& s,
                                            std::string_view field) {
    std::uint32_t n = 0;
    if (auto r = c.get(n, field); !r) return r;
    if (n > (1u << 20)) {  // names are short
        return c.bad_field("snapshot string length " + std::to_string(n) +
                           " out of range for " + std::string(field));
    }
    return c.get_bytes(s, n, field);
}

[[nodiscard]] util::Result<void> get_u64s(Cursor& c,
                                          std::vector<std::uint64_t>& v,
                                          std::string_view field) {
    std::uint32_t n = 0;
    if (auto r = c.get(n, field); !r) return r;
    if (n > (1u << 20)) {
        return c.bad_field("snapshot array length " + std::to_string(n) +
                           " out of range for " + std::string(field));
    }
    v.resize(n);
    for (std::uint64_t& x : v) {
        if (auto r = c.get(x, field); !r) return r;
    }
    return {};
}

[[nodiscard]] util::Result<void> get_stats(Cursor& c,
                                           workload::Player::Stats& s) {
    const auto field = std::string_view("player stats");
    for (std::uint64_t* x : {&s.sessions, &s.video_flows, &s.control_flows,
                             &s.redirects_miss, &s.redirects_overload,
                             &s.resolution_probes, &s.pauses, &s.dns_cache_hits,
                             &s.connect_timeouts, &s.connect_resets,
                             &s.dns_servfails, &s.stale_dns_answers, &s.failovers,
                             &s.failures.timeout, &s.failures.reset,
                             &s.failures.dns_failure,
                             &s.failures.retries_exhausted,
                             &s.failures.redirect_exhausted}) {
        if (auto r = c.get(*x, field); !r) return r;
    }
    return get_u64s(c, s.retry_histogram, "retry histogram");
}

/// Hash-combine in fingerprint order. Doubles contribute their exact bit
/// pattern, so any representable change — however small — changes the key.
class Fingerprint {
public:
    void mix(std::uint64_t x) { h_ = sim::mix64(h_ ^ sim::mix64(x)); }
    void mix(double x) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &x, sizeof(bits));
        mix(bits);
    }
    void mix(bool x) { mix(static_cast<std::uint64_t>(x)); }
    [[nodiscard]] std::uint64_t value() const { return h_; }

private:
    std::uint64_t h_ = 0x5953'5332'2011ull;  // "YSS2" | paper year
};

}  // namespace

std::uint64_t config_fingerprint(const StudyConfig& config) {
    Fingerprint fp;
    fp.mix(config.seed);
    fp.mix(config.scale);
    fp.mix(static_cast<std::uint64_t>(config.catalog_size));
    fp.mix(config.zipf_exponent);
    fp.mix(config.replicate_fraction);
    fp.mix(static_cast<std::uint64_t>(config.origin_replicas));
    fp.mix(static_cast<std::uint64_t>(config.max_pulled_per_dc));
    fp.mix(static_cast<std::uint64_t>(config.server_capacity));
    fp.mix(config.p_dns_secondary_eu1);
    fp.mix(config.p_dns_secondary_us);
    fp.mix(config.p_legacy_youtube);
    fp.mix(config.p_legacy_youtube_eu2);
    fp.mix(config.p_other_as);
    fp.mix(config.p_promoted);
    fp.mix(config.eu2_local_rate_factor);
    fp.mix(config.feb2011_us_shift);
    return fp.value();
}

std::string snapshot_name(const StudyConfig& config) {
    std::ostringstream name;
    name << "trace-" << std::hex << config.seed << "-" << std::hex
         << config_fingerprint(config) << "-v" << std::dec
         << kSnapshotSchemaVersion << ".yss";
    return name.str();
}

bool write_trace_snapshot(std::ostream& os, const StudyConfig& config,
                          const TraceOutputs& traces) {
    if (!config.fault_schedule.empty()) return false;

    // Serialize the body in memory first so the trailing CRC can cover
    // every byte of it.
    std::ostringstream body;
    body.write(kMagic, sizeof(kMagic));
    put(body, kSnapshotSchemaVersion);
    put(body, config_fingerprint(config));
    put(body, traces.events_processed);
    put(body, traces.faults_injected);
    put<std::uint32_t>(body, static_cast<std::uint32_t>(traces.datasets.size()));

    for (std::size_t i = 0; i < traces.datasets.size(); ++i) {
        const auto& ds = traces.datasets[i];
        put_string(body, ds.name);
        put_stats(body, traces.player_stats[i]);
        put(body, traces.requests_generated[i]);
        put(body, traces.flows_observed[i]);
        put(body, traces.flows_ignored[i]);
        // Length-prefixed so the reader can carve the blob out of the
        // stream without parsing it first.
        put<std::uint64_t>(body, capture::binary_log_size(ds.records.size()));
        capture::write_binary_log(body, ds.records);
    }

    const std::string bytes = body.str();
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    put(os, util::crc32(bytes));
    return os.good();
}

bool write_trace_snapshot(const std::filesystem::path& path,
                          const StudyConfig& config,
                          const TraceOutputs& traces) {
    if (!config.fault_schedule.empty()) return false;
    return util::atomic_write_file(path, [&](std::ostream& os) {
               return write_trace_snapshot(os, config, traces);
           })
        .ok();
}

util::Result<TraceOutputs> load_trace_snapshot_result(std::istream& is,
                                                      const StudyConfig& config) {
    if (!config.fault_schedule.empty()) {
        return Error(ErrorCode::KeyMismatch,
                     "snapshot refused: run has a fault schedule");
    }

    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (is.bad()) return Error(ErrorCode::Io, "snapshot read failed");

    constexpr std::size_t kMinSize =
        sizeof(kMagic) + sizeof(std::uint32_t) /*version*/ +
        sizeof(std::uint32_t) /*crc trailer*/;
    if (data.size() < kMinSize) {
        return error_at_byte(ErrorCode::Truncated,
                             "snapshot smaller than its fixed framing",
                             data.size());
    }
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
        return error_at_byte(ErrorCode::BadMagic,
                             "snapshot magic is not 'YSS2'", 0);
    }
    std::uint32_t version = 0;
    std::memcpy(&version, data.data() + sizeof(kMagic), sizeof(version));
    if (version != kSnapshotSchemaVersion) {
        return error_at_byte(ErrorCode::UnsupportedVersion,
                             "snapshot schema version " +
                                 std::to_string(version) + " (expected " +
                                 std::to_string(kSnapshotSchemaVersion) + ")",
                             sizeof(kMagic));
    }

    // Whole-file CRC before any structural parsing: a flipped bit anywhere
    // is reported as corruption, not as whatever field it happened to land
    // in.
    const std::size_t body_size = data.size() - sizeof(std::uint32_t);
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, data.data() + body_size, sizeof(stored_crc));
    const std::uint32_t actual_crc =
        util::crc32(std::string_view(data).substr(0, body_size));
    if (stored_crc != actual_crc) {
        return error_at_byte(ErrorCode::ChecksumMismatch,
                             "snapshot CRC mismatch", body_size);
    }

    Cursor c(std::string_view(data).substr(0, body_size));
    {
        // Skip magic + version, already validated.
        std::uint32_t skip32 = 0;
        if (auto r = c.get(skip32, "magic"); !r) return r.error();
        if (auto r = c.get(skip32, "version"); !r) return r.error();
    }
    std::uint64_t fingerprint = 0;
    if (auto r = c.get(fingerprint, "fingerprint"); !r) return r.error();
    if (fingerprint != config_fingerprint(config)) {
        return error_at_byte(ErrorCode::KeyMismatch,
                             "snapshot fingerprint does not match this config",
                             sizeof(kMagic) + sizeof(std::uint32_t));
    }

    TraceOutputs traces;
    std::uint32_t vps = 0;
    if (auto r = c.get(traces.events_processed, "events_processed"); !r)
        return r.error();
    if (auto r = c.get(traces.faults_injected, "faults_injected"); !r)
        return r.error();
    if (auto r = c.get(vps, "vantage-point count"); !r) return r.error();
    if (vps > 64) {
        return c.bad_field("snapshot vantage-point count " +
                           std::to_string(vps) + " out of range");
    }

    for (std::uint32_t i = 0; i < vps; ++i) {
        capture::Dataset ds;
        workload::Player::Stats stats;
        std::uint64_t requests = 0;
        std::uint64_t observed = 0;
        std::uint64_t ignored = 0;
        std::uint64_t blob_size = 0;
        if (auto r = get_string(c, ds.name, "vantage-point name"); !r)
            return r.error();
        if (auto r = get_stats(c, stats); !r) return r.error();
        if (auto r = c.get(requests, "requests_generated"); !r) return r.error();
        if (auto r = c.get(observed, "flows_observed"); !r) return r.error();
        if (auto r = c.get(ignored, "flows_ignored"); !r) return r.error();
        if (auto r = c.get(blob_size, "blob size"); !r) return r.error();
        if (blob_size > (1ull << 34)) {
            return c.bad_field("snapshot blob size " +
                               std::to_string(blob_size) + " out of range");
        }
        std::string blob;
        if (auto r = c.get_bytes(blob, blob_size, "binary-log blob"); !r)
            return r.error();
        std::istringstream blob_stream(std::move(blob));
        auto records = capture::read_binary_log_result(blob_stream);
        if (!records) {
            return records.error().context("snapshot blob for vantage point '" +
                                           ds.name + "'");
        }
        ds.records = std::move(records).value();
        traces.datasets.push_back(std::move(ds));
        traces.player_stats.push_back(std::move(stats));
        traces.requests_generated.push_back(requests);
        traces.flows_observed.push_back(observed);
        traces.flows_ignored.push_back(ignored);
    }
    // Trailing bytes mean the writer and reader disagree about layout.
    if (!c.at_end()) {
        return error_at_byte(ErrorCode::CountMismatch,
                             "snapshot has trailing bytes after the last "
                             "vantage point",
                             c.pos());
    }
    return traces;
}

util::Result<TraceOutputs> load_trace_snapshot_result(
    const std::filesystem::path& path, const StudyConfig& config) {
    auto data = util::io::read_file(path);
    if (!data) {
        return std::move(data).context("snapshot " + path.string()).error();
    }
    std::istringstream is(std::move(data).value());
    return load_trace_snapshot_result(is, config)
        .context("snapshot " + path.string());
}

std::optional<TraceOutputs> load_trace_snapshot(std::istream& is,
                                                const StudyConfig& config) {
    auto result = load_trace_snapshot_result(is, config);
    if (!result) return std::nullopt;
    return std::move(result).value();
}

std::optional<TraceOutputs> load_trace_snapshot(
    const std::filesystem::path& path, const StudyConfig& config) {
    auto result = load_trace_snapshot_result(path, config);
    if (!result) return std::nullopt;
    return std::move(result).value();
}

std::optional<TraceOutputs> load_or_quarantine_snapshot(
    const std::filesystem::path& path, const StudyConfig& config,
    std::string* warning) {
    if (!config.fault_schedule.empty()) return std::nullopt;
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        return std::nullopt;  // missing file: a plain cold-cache miss
    }
    auto result = load_trace_snapshot_result(path, config);
    if (result) return std::move(result).value();

    // The file exists but failed validation: move it aside so it cannot
    // poison the next run, and let the caller regenerate. Retention is
    // bounded (keep the newest few "<name>.corrupt.<k>" siblings) so
    // repeated corruption over a long campaign cannot fill the disk.
    // Cache damage is never fatal.
    auto quarantined = util::io::quarantine_file(path);
    if (warning) {
        *warning = "warning: snapshot " + path.string() + " failed to load (" +
                   result.error().what() + "); ";
        *warning += !quarantined
                        ? "quarantine rename also failed; regenerating"
                        : "quarantined as " +
                              quarantined.value().filename().string() +
                              " and regenerating";
    }
    return std::nullopt;
}

}  // namespace ytcdn::study
