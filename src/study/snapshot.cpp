#include "study/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "capture/binary_log.hpp"
#include "sim/random.hpp"

namespace ytcdn::study {

namespace {

constexpr char kMagic[4] = {'Y', 'S', 'S', '1'};

template <typename T>
void put(std::ostream& os, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    os.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
[[nodiscard]] bool get(std::istream& is, T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    is.read(reinterpret_cast<char*>(&value), sizeof(value));
    return is.good();
}

void put_string(std::ostream& os, const std::string& s) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] bool get_string(std::istream& is, std::string& s) {
    std::uint32_t n = 0;
    if (!get(is, n) || n > (1u << 20)) return false;  // names are short
    s.resize(n);
    is.read(s.data(), n);
    return is.good();
}

void put_u64s(std::ostream& os, const std::vector<std::uint64_t>& v) {
    put<std::uint32_t>(os, static_cast<std::uint32_t>(v.size()));
    for (const std::uint64_t x : v) put(os, x);
}

[[nodiscard]] bool get_u64s(std::istream& is, std::vector<std::uint64_t>& v) {
    std::uint32_t n = 0;
    if (!get(is, n) || n > (1u << 20)) return false;
    v.resize(n);
    for (std::uint64_t& x : v) {
        if (!get(is, x)) return false;
    }
    return true;
}

void put_stats(std::ostream& os, const workload::Player::Stats& s) {
    put(os, s.sessions);
    put(os, s.video_flows);
    put(os, s.control_flows);
    put(os, s.redirects_miss);
    put(os, s.redirects_overload);
    put(os, s.resolution_probes);
    put(os, s.pauses);
    put(os, s.dns_cache_hits);
    put(os, s.connect_timeouts);
    put(os, s.connect_resets);
    put(os, s.dns_servfails);
    put(os, s.stale_dns_answers);
    put(os, s.failovers);
    put(os, s.failures.timeout);
    put(os, s.failures.reset);
    put(os, s.failures.dns_failure);
    put(os, s.failures.retries_exhausted);
    put(os, s.failures.redirect_exhausted);
    put_u64s(os, s.retry_histogram);
}

[[nodiscard]] bool get_stats(std::istream& is, workload::Player::Stats& s) {
    return get(is, s.sessions) && get(is, s.video_flows) &&
           get(is, s.control_flows) && get(is, s.redirects_miss) &&
           get(is, s.redirects_overload) && get(is, s.resolution_probes) &&
           get(is, s.pauses) && get(is, s.dns_cache_hits) &&
           get(is, s.connect_timeouts) && get(is, s.connect_resets) &&
           get(is, s.dns_servfails) && get(is, s.stale_dns_answers) &&
           get(is, s.failovers) && get(is, s.failures.timeout) &&
           get(is, s.failures.reset) && get(is, s.failures.dns_failure) &&
           get(is, s.failures.retries_exhausted) &&
           get(is, s.failures.redirect_exhausted) &&
           get_u64s(is, s.retry_histogram);
}

/// Hash-combine in fingerprint order. Doubles contribute their exact bit
/// pattern, so any representable change — however small — changes the key.
class Fingerprint {
public:
    void mix(std::uint64_t x) { h_ = sim::mix64(h_ ^ sim::mix64(x)); }
    void mix(double x) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &x, sizeof(bits));
        mix(bits);
    }
    void mix(bool x) { mix(static_cast<std::uint64_t>(x)); }
    [[nodiscard]] std::uint64_t value() const { return h_; }

private:
    std::uint64_t h_ = 0x5953'5331'2011ull;  // "YSS1" | paper year
};

}  // namespace

std::uint64_t config_fingerprint(const StudyConfig& config) {
    Fingerprint fp;
    fp.mix(config.seed);
    fp.mix(config.scale);
    fp.mix(static_cast<std::uint64_t>(config.catalog_size));
    fp.mix(config.zipf_exponent);
    fp.mix(config.replicate_fraction);
    fp.mix(static_cast<std::uint64_t>(config.origin_replicas));
    fp.mix(static_cast<std::uint64_t>(config.max_pulled_per_dc));
    fp.mix(static_cast<std::uint64_t>(config.server_capacity));
    fp.mix(config.p_dns_secondary_eu1);
    fp.mix(config.p_dns_secondary_us);
    fp.mix(config.p_legacy_youtube);
    fp.mix(config.p_legacy_youtube_eu2);
    fp.mix(config.p_other_as);
    fp.mix(config.p_promoted);
    fp.mix(config.eu2_local_rate_factor);
    fp.mix(config.feb2011_us_shift);
    return fp.value();
}

std::string snapshot_name(const StudyConfig& config) {
    std::ostringstream name;
    name << "trace-" << std::hex << config.seed << "-" << std::hex
         << config_fingerprint(config) << "-v" << std::dec
         << kSnapshotSchemaVersion << ".yss";
    return name.str();
}

bool write_trace_snapshot(std::ostream& os, const StudyConfig& config,
                          const TraceOutputs& traces) {
    if (!config.fault_schedule.empty()) return false;

    os.write(kMagic, sizeof(kMagic));
    put(os, kSnapshotSchemaVersion);
    put(os, config_fingerprint(config));
    put(os, traces.events_processed);
    put(os, traces.faults_injected);
    put<std::uint32_t>(os, static_cast<std::uint32_t>(traces.datasets.size()));

    for (std::size_t i = 0; i < traces.datasets.size(); ++i) {
        const auto& ds = traces.datasets[i];
        put_string(os, ds.name);
        put_stats(os, traces.player_stats[i]);
        put(os, traces.requests_generated[i]);
        put(os, traces.flows_observed[i]);
        put(os, traces.flows_ignored[i]);
        // Length-prefixed so the reader can carve the blob out of the
        // stream (read_binary_log consumes an entire istream).
        put<std::uint64_t>(os, capture::binary_log_size(ds.records.size()));
        capture::write_binary_log(os, ds.records);
    }
    return os.good();
}

bool write_trace_snapshot(const std::filesystem::path& path,
                          const StudyConfig& config,
                          const TraceOutputs& traces) {
    if (!config.fault_schedule.empty()) return false;
    std::error_code ec;
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec) return false;
    }
    // Write to a sibling temp file and rename, so a crashed or concurrent
    // writer never leaves a torn snapshot under the final name.
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os || !write_trace_snapshot(os, config, traces)) {
            std::filesystem::remove(tmp, ec);
            return false;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<TraceOutputs> load_trace_snapshot(std::istream& is,
                                                const StudyConfig& config) {
    if (!config.fault_schedule.empty()) return std::nullopt;

    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        return std::nullopt;
    }
    std::uint32_t version = 0;
    std::uint64_t fingerprint = 0;
    if (!get(is, version) || version != kSnapshotSchemaVersion) return std::nullopt;
    if (!get(is, fingerprint) || fingerprint != config_fingerprint(config)) {
        return std::nullopt;
    }

    TraceOutputs traces;
    std::uint32_t vps = 0;
    if (!get(is, traces.events_processed) || !get(is, traces.faults_injected) ||
        !get(is, vps) || vps > 64) {
        return std::nullopt;
    }

    for (std::uint32_t i = 0; i < vps; ++i) {
        capture::Dataset ds;
        workload::Player::Stats stats;
        std::uint64_t requests = 0;
        std::uint64_t observed = 0;
        std::uint64_t ignored = 0;
        std::uint64_t blob_size = 0;
        if (!get_string(is, ds.name) || !get_stats(is, stats) ||
            !get(is, requests) || !get(is, observed) || !get(is, ignored) ||
            !get(is, blob_size) || blob_size > (1ull << 34)) {
            return std::nullopt;
        }
        std::string blob(blob_size, '\0');
        is.read(blob.data(), static_cast<std::streamsize>(blob_size));
        if (!is.good()) return std::nullopt;
        try {
            std::istringstream blob_stream(std::move(blob));
            ds.records = capture::read_binary_log(blob_stream);
        } catch (const std::runtime_error&) {
            return std::nullopt;
        }
        traces.datasets.push_back(std::move(ds));
        traces.player_stats.push_back(std::move(stats));
        traces.requests_generated.push_back(requests);
        traces.flows_observed.push_back(observed);
        traces.flows_ignored.push_back(ignored);
    }
    // A trailing byte means the writer and reader disagree about layout.
    if (is.peek() != std::istream::traits_type::eof()) return std::nullopt;
    return traces;
}

std::optional<TraceOutputs> load_trace_snapshot(
    const std::filesystem::path& path, const StudyConfig& config) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return std::nullopt;
    return load_trace_snapshot(is, config);
}

}  // namespace ytcdn::study
