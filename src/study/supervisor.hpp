#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/tracer.hpp"
#include "study/checkpoint.hpp"
#include "study/config.hpp"
#include "util/error.hpp"

namespace ytcdn::study {

/// Per-stage supervision policy, shared by all five stages.
struct StagePolicy {
    /// Attempts per stage before the supervisor gives up on it (>= 1).
    /// Transient injected faults (see util::io::FaultPlan) are exactly what
    /// the retry exists for.
    int attempts = 3;
    /// First retry sleeps this long, doubling per attempt. Tests set 0.
    double backoff_s = 0.0;
    /// Soft wall-clock budget per stage, seconds; 0 = no budget. An
    /// overrun is reported (metrics + Guard trace event + manifest), not
    /// fatal: the study's answer is still worth having late.
    double deadline_s = 0.0;
    /// Soft peak-RSS ceiling, MiB; 0 = no ceiling. Same reporting-only
    /// semantics as the deadline.
    double max_rss_mib = 0.0;
};

struct SupervisorOptions {
    /// Where checkpoints, logs, artifacts, report.txt and manifest.txt go.
    std::filesystem::path run_dir;
    /// Load completed-stage checkpoints from run_dir instead of recomputing
    /// (the CLI's --resume). A resumed run renders a byte-identical
    /// report.txt; stale/corrupt/foreign checkpoints are quarantined and
    /// their stages recomputed.
    bool resume = false;
    /// Skip writing checkpoints (chaos experiments that only want the
    /// supervision semantics). Runs with a sim fault schedule skip the
    /// simulate checkpoint regardless (YSS2 refuses them).
    bool checkpoints = true;
    /// Stop after this many stages (0 = all). Tests use it to simulate a
    /// crash at a stage boundary; the interrupted run writes its manifest
    /// and is resumable.
    std::size_t max_stages = 0;
    ReportOptions report;
    StagePolicy policy;
    /// Progress/warning lines ("[supervisor] ..."); null = silent.
    std::ostream* log = nullptr;
    /// Receives Guard events for resource-guard overruns; may be null.
    sim::Tracer* tracer = nullptr;
};

/// What one supervised attempt ladder observed: the reusable core of the
/// per-stage retry/backoff machinery, shared by the study pipeline and
/// ytcdnd's per-file ingest stages (src/service).
struct StageOutcome {
    std::string name;
    int attempts = 0;
    bool completed = false;
    bool deadline_exceeded = false;  // soft guard: reported, never fatal
    bool rss_exceeded = false;       // soft guard: reported, never fatal
    std::string error;               // last attempt's failure, if any
    ErrorCode error_code = ErrorCode::Io;  // code of that failure
    double wall_s = 0.0;
    std::uint64_t peak_rss_kb = 0;   // process peak after the ladder
};

/// Runs `body` under the retry/backoff ladder: up to policy.attempts tries,
/// backoff_s doubling between them, typed errors and std::exceptions both
/// caught, wall/RSS measured, the soft deadline/RSS guards evaluated into
/// the outcome flags (and the supervisor.* guard metrics). `log`, when
/// non-null, receives one "[supervised] retrying ..." line per retry.
/// Emission of warnings/trace events stays with the caller — this helper
/// only observes.
[[nodiscard]] StageOutcome run_supervised(std::string_view name,
                                          const StagePolicy& policy,
                                          const std::function<void()>& body,
                                          std::ostream* log = nullptr);

/// What happened to one stage, for the manifest and the caller.
struct StageStatus {
    Stage stage = Stage::Simulate;
    int attempts = 0;              // 0 = never started (interrupted earlier)
    bool completed = false;
    bool from_checkpoint = false;  // satisfied by a resume checkpoint
    bool degraded = false;         // failed but the run continued without it
    bool deadline_exceeded = false;
    bool rss_exceeded = false;
    std::string error;             // last attempt's failure, if any
    double wall_s = 0.0;
    std::uint64_t peak_rss_kb = 0;  // process peak after the stage
};

struct SupervisorResult {
    std::vector<StageStatus> stages;
    /// Degraded artifacts: report artifacts that rendered as placeholders,
    /// "logs/<name>.yfl" capture outputs that could not be written, and
    /// "artifacts/<name>" files that failed to land on disk.
    std::vector<std::string> degraded;
    std::vector<std::string> warnings;
    bool completed = false;  // all five stages ran (not max_stages-limited)
    std::filesystem::path report_path;    // run_dir/report.txt
    std::filesystem::path manifest_path;  // run_dir/manifest.txt
};

/// Runs the study pipeline as five supervised stages
/// (simulate -> capture -> geolocate -> analyze -> render) with per-stage
/// retry/backoff, crash-safe YCK1 checkpoints, graceful degradation and
/// soft resource guards. See DESIGN.md §12.
///
/// Degradation ladder: a failing report artifact becomes a placeholder
/// (non-strict mode, as in make_full_report); a capture or artifact file
/// that cannot be written is listed as degraded in the manifest; only a
/// required stage exhausting its attempts fails the run. Strict mode
/// (StudyConfig::effective_strict_artifacts) turns every degradation into
/// a failure, generalizing YTCDN_STRICT_ARTIFACTS.
class Supervisor {
public:
    Supervisor(StudyConfig config, SupervisorOptions options);

    /// The YCK1 key: config_fingerprint folded with the report options, so
    /// resuming under different flags is a KeyMismatch, not a wrong report.
    [[nodiscard]] std::uint64_t run_fingerprint() const noexcept {
        return fingerprint_;
    }

    [[nodiscard]] util::Result<SupervisorResult> run();

private:
    StudyConfig config_;
    SupervisorOptions options_;
    std::uint64_t fingerprint_ = 0;
};

}  // namespace ytcdn::study
