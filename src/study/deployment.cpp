#include "study/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/population.hpp"

namespace ytcdn::study {

namespace {

using geo::Continent;

/// Site-id ranges; clients share their PoP's id, so these only need to be
/// disjoint across PoPs / landmarks / data centers.
constexpr std::uint64_t kPopSiteBase = 0x1000'0000ull;

/// Ground-truth Google CDN cities (13 US + 13 EU + 6 other; the 14th EU
/// data center is the EU2 in-ISP cache added separately — 33 total, as in
/// Section V).
struct DcSpec {
    const char* city;
    int servers;
};

constexpr DcSpec kGoogleUs[] = {
    {"Mountain View", 120}, {"Seattle", 80},      {"The Dalles", 110},
    {"Los Angeles", 90},    {"Denver", 60},       {"Dallas", 420},
    {"Chicago", 130},       {"Council Bluffs", 100}, {"Atlanta", 90},
    {"Miami", 70},          {"Washington", 150},  {"New York", 140},
    {"Boston", 60},
};

constexpr DcSpec kGoogleEu[] = {
    {"London", 130},  {"Dublin", 70},   {"Paris", 110},  {"Amsterdam", 120},
    {"Frankfurt", 300}, {"Hamburg", 60}, {"Zurich", 80},  {"Vienna", 90},
    {"Warsaw", 60},   {"Madrid", 80},   {"Milan", 380},  {"Stockholm", 70},
    {"Brussels", 60},
};

constexpr DcSpec kGoogleOther[] = {
    {"Tokyo", 90},     {"Hong Kong", 70},    {"Singapore", 70},
    {"Sydney", 60},    {"Sao Paulo", 70},    {"Buenos Aires", 50},
};

/// Legacy YouTube-EU (AS 43515) sites: large IP pools, little traffic.
constexpr DcSpec kLegacy[] = {{"Amsterdam", 170}, {"London", 160}, {"Paris", 150}};

/// Residual "other AS" sites: CW (AS 1273) and GBLX (AS 3549).
constexpr DcSpec kOtherAs[] = {{"London", 40}, {"New York", 40}};

constexpr net::Asn kUsCampusAs{4600};
constexpr net::Asn kEu1NrenAs{137};
constexpr net::Asn kEu1IspAs{3269};
constexpr net::Asn kEu2IspAs{5483};

const geo::City& city_or_throw(std::string_view name) {
    const geo::City* c = geo::CityDatabase::builtin().find(name);
    if (c == nullptr) {
        throw std::logic_error("StudyDeployment: unknown city " + std::string(name));
    }
    return *c;
}

}  // namespace

StudyDeployment::StudyDeployment(const StudyConfig& config) : config_(config) {
    net::RttModel::Config rtt_cfg;
    rtt_ = std::make_unique<net::RttModel>(rtt_cfg);

    cdn::Cdn::ReplicationConfig repl;
    repl.replicate_top_ranks = config_.replicate_top_ranks();
    repl.origin_replicas = config_.origin_replicas;
    repl.max_pulled_per_dc = config_.max_pulled_per_dc;
    cdn_ = std::make_unique<cdn::Cdn>(*rtt_, repl);
    dns_ = std::make_unique<cdn::DnsSystem>();

    sim::Rng rng = root_rng();
    build_cdn(rng);
    build_catalog(rng);
    build_dns_and_vantage_points(rng);
}

void StudyDeployment::build_cdn(sim::Rng& rng) {
    const int capacity = config_.effective_server_capacity();
    // Legacy pools have effectively unbounded capacity: they never redirect.
    const int legacy_capacity = 1'000'000;

    int next_prefix_block = 0;  // walks 173.194.x.0/24 blocks for Google DCs
    const auto add_google_prefixes = [&](cdn::DcId dc, int servers) {
        const int prefixes = servers / 120 + 1;
        for (int j = 0; j < prefixes; ++j) {
            cdn_->add_prefix(
                dc, net::Subnet{net::IpAddress::from_octets(
                                    173, 194, static_cast<std::uint8_t>(next_prefix_block++),
                                    0),
                                24});
        }
    };

    const auto add_dc = [&](const DcSpec& spec, Continent continent, net::Asn asn,
                            cdn::InfraClass infra) {
        const geo::City& city = city_or_throw(spec.city);
        if (city.continent != continent) {
            throw std::logic_error("StudyDeployment: continent mismatch for " +
                                   std::string(spec.city));
        }
        return cdn_->add_data_center(city.name, city.continent, city.location, asn,
                                     infra, /*site_access_rtt_ms=*/0.5);
    };

    for (const auto& spec : kGoogleUs) {
        const cdn::DcId dc = add_dc(spec, Continent::NorthAmerica,
                                    net::well_known_as::kGoogle,
                                    cdn::InfraClass::GoogleCdn);
        add_google_prefixes(dc, spec.servers);
        cdn_->add_servers(dc, spec.servers, capacity);
    }
    for (const auto& spec : kGoogleEu) {
        const cdn::DcId dc = add_dc(spec, Continent::Europe, net::well_known_as::kGoogle,
                                    cdn::InfraClass::GoogleCdn);
        add_google_prefixes(dc, spec.servers);
        cdn_->add_servers(dc, spec.servers, capacity);
    }
    for (const auto& spec : kGoogleOther) {
        const geo::City& city = city_or_throw(spec.city);
        const cdn::DcId dc = cdn_->add_data_center(
            city.name, city.continent, city.location, net::well_known_as::kGoogle,
            cdn::InfraClass::GoogleCdn, 0.5);
        add_google_prefixes(dc, spec.servers);
        cdn_->add_servers(dc, spec.servers, capacity);
    }

    // The EU2 in-ISP data center (Budapest), announced from the ISP's AS —
    // the Table II "Same AS" row and the Fig. 11 protagonist.
    {
        const geo::City& city = city_or_throw("Budapest");
        const cdn::DcId dc =
            cdn_->add_data_center(city.name, city.continent, city.location, kEu2IspAs,
                                  cdn::InfraClass::IspInternal, 0.5);
        cdn_->add_prefix(dc, net::Subnet{net::IpAddress::from_octets(84, 116, 0, 0), 24});
        cdn_->add_prefix(dc, net::Subnet{net::IpAddress::from_octets(84, 116, 1, 0), 24});
        cdn_->add_servers(dc, 160, capacity);
    }

    // Legacy YouTube-EU pools.
    int legacy_block = 0;
    for (const auto& spec : kLegacy) {
        const geo::City& city = city_or_throw(spec.city);
        const cdn::DcId dc = cdn_->add_data_center(
            city.name, city.continent, city.location, net::well_known_as::kYouTubeEu,
            cdn::InfraClass::LegacyYouTube, 0.5);
        for (int j = 0; j < 2; ++j) {
            cdn_->add_prefix(dc, net::Subnet{net::IpAddress::from_octets(
                                                 212, 187,
                                                 static_cast<std::uint8_t>(legacy_block++),
                                                 0),
                                             24});
        }
        cdn_->add_servers(dc, spec.servers, legacy_capacity);
        legacy_dcs_.push_back(dc);
    }

    // Residual other-AS pools (CW London, GBLX New York).
    {
        const geo::City& lon = city_or_throw(kOtherAs[0].city);
        const cdn::DcId cw = cdn_->add_data_center(
            lon.name, lon.continent, lon.location, net::well_known_as::kCableWireless,
            cdn::InfraClass::OtherAs, 0.5);
        cdn_->add_prefix(cw,
                         net::Subnet{net::IpAddress::from_octets(166, 49, 128, 0), 24});
        cdn_->add_servers(cw, kOtherAs[0].servers, legacy_capacity);
        other_as_dcs_.push_back(cw);

        const geo::City& nyc = city_or_throw(kOtherAs[1].city);
        const cdn::DcId gblx = cdn_->add_data_center(
            nyc.name, nyc.continent, nyc.location, net::well_known_as::kGblx,
            cdn::InfraClass::OtherAs, 0.5);
        cdn_->add_prefix(gblx,
                         net::Subnet{net::IpAddress::from_octets(64, 214, 0, 0), 24});
        cdn_->add_servers(gblx, kOtherAs[1].servers, legacy_capacity);
        other_as_dcs_.push_back(gblx);
    }

    cdn_->register_prefixes(whois_);
    (void)rng;
}

void StudyDeployment::build_catalog(sim::Rng& rng) {
    cdn::VideoCatalog::Config cfg;
    cfg.num_videos = config_.effective_catalog_size();
    // Tuned so mean video-flow volume lands near the paper's Table I
    // (~8 MB/flow): shorter median with a moderate tail.
    cfg.duration_median_s = 130.0;
    cfg.duration_sigma = 0.65;
    catalog_ = std::make_unique<cdn::VideoCatalog>(cfg, rng.fork("catalog"));

    // One front-page promotion per day, days 1-6, each "played by default
    // ... for exactly 24 hours" (Section VII-C). Mid-popularity ranks: hot
    // enough to be replicated everywhere, cold enough that the promotion
    // dominates their baseline load.
    const std::size_t base = std::min<std::size_t>(900, catalog_->size() / 4);
    for (int day = 1; day <= 6; ++day) {
        const std::size_t rank = base + static_cast<std::size_t>(day) * 200;
        catalog_->promote(day, rank);
        promoted_ranks_.push_back(rank);
    }
}

std::unique_ptr<cdn::SelectionPolicy> StudyDeployment::make_edge_policy(
    std::vector<cdn::DcId> ranked, double p_secondary, double p_legacy,
    double p_other) {
    if (ranked.size() < 4) {
        throw std::logic_error("make_edge_policy: need at least 4 ranked data centers");
    }
    // Innermost: the preferred data center with occasional second/third
    // choice (ambient DNS balancing noise).
    std::unique_ptr<cdn::SelectionPolicy> policy =
        std::make_unique<cdn::MixturePolicy>(
            std::make_unique<cdn::StaticPreferencePolicy>(ranked),
            std::make_unique<cdn::UniformChoicePolicy>(
                std::vector<cdn::DcId>{ranked[1], ranked[2], ranked[3]}),
            p_secondary);
    // Legacy YouTube-EU residue.
    policy = std::make_unique<cdn::MixturePolicy>(
        std::move(policy), std::make_unique<cdn::UniformChoicePolicy>(legacy_dcs_),
        p_legacy);
    // Other-AS residue.
    policy = std::make_unique<cdn::MixturePolicy>(
        std::move(policy), std::make_unique<cdn::UniformChoicePolicy>(other_as_dcs_),
        p_other);
    return policy;
}

void StudyDeployment::build_dns_and_vantage_points(sim::Rng& rng) {
    const auto dc_id = [this](std::string_view city) {
        const cdn::DcId id = dc_by_city(city);
        if (id == cdn::kInvalidDc) {
            throw std::logic_error("StudyDeployment: no data center in " +
                                   std::string(city));
        }
        return id;
    };

    struct VpSpec {
        std::size_t target_index;
        const char* city;
        workload::AccessTech tech;
        net::Asn asn;
        const char* preferred_city;
        double pop_inflation_to_preferred;
    };
    const VpSpec specs[] = {
        {0, "West Lafayette", workload::AccessTech::Campus, kUsCampusAs, "Dallas", 1.12},
        {1, "Turin", workload::AccessTech::Campus, kEu1NrenAs, "Milan", 1.25},
        {2, "Turin", workload::AccessTech::Adsl, kEu1IspAs, "Milan", 1.25},
        {3, "Turin", workload::AccessTech::Ftth, kEu1IspAs, "Milan", 1.25},
        {4, "Budapest", workload::AccessTech::Adsl, kEu2IspAs, "Budapest", 1.10},
    };

    vps_.resize(kNumVantagePoints);
    vp_as_.resize(kNumVantagePoints);

    for (std::size_t i = 0; i < kNumVantagePoints; ++i) {
        const VpSpec& spec = specs[i];
        const VantageTargets& target = kPaperTargets[spec.target_index];
        const geo::City& city = city_or_throw(spec.city);

        workload::VantagePoint& vp = vps_[i];
        vp.name = target.name;
        vp.tech = spec.tech;
        vp.city = &city;
        vp.pop_site = net::NetSite{kPopSiteBase + i, city.location, 0.0};
        vp.probe_site = net::NetSite{kPopSiteBase + i, city.location, 0.5};
        vp.profile = spec.tech == workload::AccessTech::Campus
                         ? sim::DiurnalProfile::campus()
                         : sim::DiurnalProfile::residential();
        // Divide out the weekly mean multiplier so the week's request total
        // tracks Table I regardless of the weekend shape.
        vp.mean_sessions_per_s =
            mean_sessions_per_s(target, config_.scale) / vp.profile.weekly_mean();
        vp_as_[i] = spec.asn;

        // Pin the preferred data center's path quality.
        rtt_->set_inflation(vp.pop_site.id, cdn_->dc(dc_id(spec.preferred_city)).site.id,
                            spec.pop_inflation_to_preferred);
    }

    // US-Campus: the five geographically closest data centers ride inflated
    // routes, so the preferred (lowest-RTT) data center is Dallas, ~1300 km
    // away — Fig. 8's "closest five serve <2%" anecdote.
    {
        const auto& us = vps_[0];
        rtt_->set_inflation(us.pop_site.id, cdn_->dc(dc_id("Chicago")).site.id, 14.0);
        rtt_->set_inflation(us.pop_site.id, cdn_->dc(dc_id("Atlanta")).site.id, 3.5);
        rtt_->set_inflation(us.pop_site.id, cdn_->dc(dc_id("Washington")).site.id, 3.0);
        rtt_->set_inflation(us.pop_site.id, cdn_->dc(dc_id("New York")).site.id, 2.8);
        rtt_->set_inflation(us.pop_site.id, cdn_->dc(dc_id("Council Bluffs")).site.id,
                            4.0);
    }
    // EU2: the external overflow target (Frankfurt) rides a clean path.
    rtt_->set_inflation(vps_[4].pop_site.id, cdn_->dc(dc_id("Frankfurt")).site.id, 1.25);

    // Section VI-B what-if: in the Feb-2011 configuration US-Campus
    // requests went to a data center more than 100 ms away. Pin Mountain
    // View onto a >100 ms path so the remapped resolver below exhibits it.
    if (config_.feb2011_us_shift) {
        rtt_->set_inflation(vps_[0].pop_site.id,
                            cdn_->dc(dc_id("Mountain View")).site.id, 3.5);
    }

    // --- DNS resolvers ------------------------------------------------------

    const auto ranked_for = [this](const workload::VantagePoint& vp) {
        return cdn_->rank_by_rtt(vp.pop_site);
    };

    // US-Campus: main resolver plus the Net-3 resolver that the
    // authoritative side maps to a different preferred data center
    // (Section VII-B).
    std::vector<cdn::DcId> us_ranked = ranked_for(vps_[0]);
    if (config_.feb2011_us_shift) {
        // The authoritative DNS now maps the campus to Mountain View even
        // though several data centers are far closer in RTT.
        const cdn::DcId mv = dc_id("Mountain View");
        std::erase(us_ranked, mv);
        us_ranked.insert(us_ranked.begin(), mv);
    }
    const cdn::LdnsId us_main = dns_->add_resolver(
        "us-campus-main", make_edge_policy(std::move(us_ranked),
                                           config_.p_dns_secondary_us,
                                           config_.p_legacy_youtube, config_.p_other_as));
    std::vector<cdn::DcId> net3_ranked = ranked_for(vps_[0]);
    const cdn::DcId net3_target = dc_id("Boston");
    std::erase(net3_ranked, net3_target);
    net3_ranked.insert(net3_ranked.begin(), net3_target);
    const cdn::LdnsId us_net3 = dns_->add_resolver(
        "us-campus-net3", make_edge_policy(std::move(net3_ranked),
                                           config_.p_dns_secondary_us,
                                           config_.p_legacy_youtube, config_.p_other_as));

    const cdn::LdnsId eu1_campus = dns_->add_resolver(
        "eu1-campus", make_edge_policy(ranked_for(vps_[1]), config_.p_dns_secondary_eu1,
                                       config_.p_legacy_youtube, config_.p_other_as));
    const cdn::LdnsId eu1_adsl = dns_->add_resolver(
        "eu1-adsl", make_edge_policy(ranked_for(vps_[2]), config_.p_dns_secondary_eu1,
                                     config_.p_legacy_youtube, config_.p_other_as));
    const cdn::LdnsId eu1_ftth = dns_->add_resolver(
        "eu1-ftth", make_edge_policy(ranked_for(vps_[3]), config_.p_dns_secondary_eu1,
                                     config_.p_legacy_youtube, config_.p_other_as));

    // EU2: adaptive DNS-level load balancing between the in-ISP cache and
    // Frankfurt (Section VII-A), plus the usual legacy residue.
    cdn::LdnsId eu2_main = cdn::kInvalidLdns;
    {
        std::vector<cdn::DcId> ranked{dc_id("Budapest"), dc_id("Frankfurt")};
        const double rate =
            config_.eu2_local_rate_factor * vps_[4].mean_sessions_per_s;
        const double burst = std::max(10.0, rate * 600.0);
        std::unique_ptr<cdn::SelectionPolicy> policy =
            std::make_unique<cdn::TokenBucketLoadBalancePolicy>(ranked, rate, burst);
        policy = std::make_unique<cdn::MixturePolicy>(
            std::move(policy), std::make_unique<cdn::UniformChoicePolicy>(legacy_dcs_),
            config_.p_legacy_youtube_eu2);
        policy = std::make_unique<cdn::MixturePolicy>(
            std::move(policy),
            std::make_unique<cdn::UniformChoicePolicy>(other_as_dcs_),
            config_.p_other_as);
        eu2_main = dns_->add_resolver("eu2-main", std::move(policy));
    }

    // --- Subnets and client populations --------------------------------------

    const auto subnet = [](std::uint8_t a, std::uint8_t b, std::uint8_t c, int len) {
        return net::Subnet{net::IpAddress::from_octets(a, b, c, 0), len};
    };

    vps_[0].subnets = {
        {"Net-1", subnet(128, 210, 0, 18), 0.30, us_main},
        {"Net-2", subnet(128, 210, 64, 18), 0.26, us_main},
        {"Net-3", subnet(128, 210, 128, 18), 0.04, us_net3},
        {"Net-4", subnet(128, 210, 192, 18), 0.22, us_main},
        {"Net-5", subnet(128, 211, 0, 18), 0.18, us_main},
    };
    vps_[1].subnets = {
        {"Campus-A", subnet(130, 192, 0, 18), 0.6, eu1_campus},
        {"Campus-B", subnet(130, 192, 64, 18), 0.4, eu1_campus},
    };
    vps_[2].subnets = {
        {"ADSL-A", subnet(151, 24, 0, 17), 0.35, eu1_adsl},
        {"ADSL-B", subnet(151, 24, 128, 17), 0.35, eu1_adsl},
        {"ADSL-C", subnet(151, 25, 0, 17), 0.30, eu1_adsl},
    };
    vps_[3].subnets = {
        {"FTTH-A", subnet(151, 60, 0, 18), 1.0, eu1_ftth},
    };
    vps_[4].subnets = {
        {"EU2-A", subnet(84, 2, 0, 17), 0.34, eu2_main},
        {"EU2-B", subnet(84, 2, 128, 17), 0.33, eu2_main},
        {"EU2-C", subnet(84, 3, 0, 17), 0.33, eu2_main},
    };

    // whois entries for the client networks ("Same AS" detection).
    whois_.add(net::Subnet{net::IpAddress::from_octets(128, 210, 0, 0), 15}, kUsCampusAs,
               "US-Campus-AS");
    whois_.add(net::Subnet{net::IpAddress::from_octets(130, 192, 0, 0), 16}, kEu1NrenAs,
               "EU1-NREN");
    whois_.add(net::Subnet{net::IpAddress::from_octets(151, 24, 0, 0), 14}, kEu1IspAs,
               "EU1-ISP");
    whois_.add(net::Subnet{net::IpAddress::from_octets(151, 60, 0, 0), 16}, kEu1IspAs,
               "EU1-ISP");
    whois_.add(net::Subnet{net::IpAddress::from_octets(84, 2, 0, 0), 15}, kEu2IspAs,
               "EU2-ISP");

    for (std::size_t i = 0; i < kNumVantagePoints; ++i) {
        const auto clients = std::max<std::uint64_t>(
            40, static_cast<std::uint64_t>(std::llround(
                    static_cast<double>(kPaperTargets[i].clients) * config_.scale)));
        // Above scale ~2.7 the paper's /17–/18 client subnets saturate
        // (US-Campus Net-1 first). Cap the census at the address-space
        // capacity: traffic volume is set by the arrival process, so a
        // saturated census just raises sessions-per-client — which is what
        // a fixed campus network under growing demand does anyway.
        const auto capped = std::min<std::uint64_t>(
            clients, workload::max_clients(vps_[i]));
        sim::Rng vp_rng = rng.fork(vps_[i].name);
        workload::populate_clients(vps_[i], capped, vp_rng);
    }
}

workload::VantagePoint& StudyDeployment::vantage(std::size_t i) {
    if (i >= vps_.size()) throw std::out_of_range("StudyDeployment::vantage");
    return vps_[i];
}

const workload::VantagePoint& StudyDeployment::vantage(std::size_t i) const {
    if (i >= vps_.size()) throw std::out_of_range("StudyDeployment::vantage");
    return vps_[i];
}

workload::VantagePoint& StudyDeployment::vantage(std::string_view name) {
    for (auto& vp : vps_) {
        if (vp.name == name) return vp;
    }
    throw std::out_of_range("StudyDeployment::vantage: unknown name");
}

net::Asn StudyDeployment::local_as(std::size_t vp_index) const {
    if (vp_index >= vp_as_.size()) throw std::out_of_range("StudyDeployment::local_as");
    return vp_as_[vp_index];
}

cdn::DcId StudyDeployment::dc_by_city(std::string_view city) const noexcept {
    for (const auto& dc : cdn_->data_centers()) {
        if (dc.city == city && cdn::in_analysis_scope(dc.infra)) return dc.id;
    }
    return cdn::kInvalidDc;
}

}  // namespace ytcdn::study
