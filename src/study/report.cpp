#include "study/report.hpp"

#include <exception>
#include <functional>
#include <sstream>
#include <utility>

#include "analysis/as_analysis.hpp"
#include "analysis/loadbalance_analysis.hpp"
#include "analysis/redirect_analysis.hpp"
#include "analysis/series.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "analysis/stats.hpp"
#include "analysis/subnet_analysis.hpp"
#include "cdn/video.hpp"
#include "geo/city.hpp"
#include "study/dc_map_builder.hpp"

namespace ytcdn::study {

namespace {

/// Paper's Table I rows for side-by-side comparison.
struct PaperRow {
    const char* flows;
    const char* volume_gb;
    const char* servers;
    const char* clients;
};
constexpr PaperRow kPaperTable1[] = {
    {"874649", "7061.27", "1985", "20443"}, {"134789", "580.25", "1102", "1113"},
    {"877443", "3709.98", "1977", "8348"},  {"91955", "463.1", "1081", "997"},
    {"513403", "2834.99", "1637", "6552"},
};

}  // namespace

analysis::AsciiTable make_table1(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Flows", "Volume[GB]", "#Servers", "#Clients",
                            "paper:Flows", "paper:GB", "paper:Srv", "paper:Cli"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        const auto s = ds.summary();
        t.add_row({ds.name, std::to_string(s.flows), analysis::fmt(s.volume_gb, 2),
                   std::to_string(s.distinct_servers), std::to_string(s.distinct_clients),
                   kPaperTable1[i].flows, kPaperTable1[i].volume_gb,
                   kPaperTable1[i].servers, kPaperTable1[i].clients});
    }
    return t;
}

analysis::AsciiTable make_table2(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Google srv%", "Google byt%", "YT-EU srv%",
                            "YT-EU byt%", "SameAS srv%", "SameAS byt%", "Other srv%",
                            "Other byt%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto row = analysis::as_breakdown(run.traces.datasets[i],
                                                run.deployment->whois(),
                                                run.deployment->local_as(i));
        t.add_row({row.dataset, analysis::fmt_pct(row.google_servers, 1),
                   analysis::fmt_pct(row.google_bytes, 1),
                   analysis::fmt_pct(row.youtube_eu_servers, 1),
                   analysis::fmt_pct(row.youtube_eu_bytes, 1),
                   analysis::fmt_pct(row.same_as_servers, 1),
                   analysis::fmt_pct(row.same_as_bytes, 1),
                   analysis::fmt_pct(row.other_servers, 1),
                   analysis::fmt_pct(row.other_bytes, 1)});
    }
    return t;
}

analysis::AsciiTable make_table3(const StudyRun& run,
                                 const std::vector<analysis::ContinentCounts>& counts) {
    analysis::AsciiTable t({"Dataset", "N. America", "Europe", "Others", "unlocated"});
    for (std::size_t i = 0; i < counts.size() && i < run.traces.datasets.size(); ++i) {
        t.add_row({run.traces.datasets[i].name, std::to_string(counts[i].north_america),
                   std::to_string(counts[i].europe), std::to_string(counts[i].others),
                   std::to_string(counts[i].unlocated)});
    }
    return t;
}

analysis::VantageFailureCounts failure_counts_of(std::string vantage,
                                                 const workload::Player::Stats& stats) {
    analysis::VantageFailureCounts c;
    c.vantage = std::move(vantage);
    c.sessions = stats.sessions;
    c.connect_timeouts = stats.connect_timeouts;
    c.connect_resets = stats.connect_resets;
    c.dns_servfails = stats.dns_servfails;
    c.stale_dns_answers = stats.stale_dns_answers;
    c.failovers = stats.failovers;
    c.failed_timeout = stats.failures.timeout;
    c.failed_reset = stats.failures.reset;
    c.failed_dns = stats.failures.dns_failure;
    c.failed_retries_exhausted = stats.failures.retries_exhausted;
    c.failed_redirect_exhausted = stats.failures.redirect_exhausted;
    c.retry_histogram = stats.retry_histogram;
    return c;
}

std::vector<analysis::VantageFailureCounts> failure_counts(const StudyRun& run) {
    std::vector<analysis::VantageFailureCounts> out;
    out.reserve(run.traces.datasets.size());
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        out.push_back(failure_counts_of(run.traces.datasets[i].name,
                                        run.traces.player_stats[i]));
    }
    return out;
}

analysis::AsciiTable make_failure_table(const StudyRun& run) {
    return analysis::failure_breakdown_table(failure_counts(run));
}

analysis::AsciiTable make_retry_table(const StudyRun& run) {
    return analysis::retry_histogram_table(failure_counts(run));
}

const std::string* FullReport::content(std::string_view name) const {
    for (const auto& a : artifacts) {
        if (a.name == name) return &a.content;
    }
    return nullptr;
}

std::string FullReport::render() const {
    std::string out;
    for (const auto& a : artifacts) {
        out += "== " + a.name + " ==\n";
        out += a.content;
        if (!a.content.empty() && a.content.back() != '\n') out += '\n';
    }
    return out;
}

namespace {

std::string render_series(const std::vector<analysis::Series>& series) {
    std::ostringstream os;
    analysis::write_series(os, series);
    return os.str();
}

analysis::Series flows_cdf_series(std::string name, const std::vector<double>& cdf) {
    analysis::Series s{std::move(name), {}};
    for (std::size_t i = 0; i < cdf.size(); ++i) {
        s.points.emplace_back(static_cast<double>(i + 1), cdf[i]);
    }
    return s;
}

std::string render_table3_artifact(const StudyRun& run, const ReportOptions& options,
                                   util::ThreadPool& pool) {
    geoloc::CbgLocator locator(
        run.deployment->rtt(),
        geoloc::make_planetlab_landmarks(geo::CityDatabase::builtin(),
                                         sim::Rng(run.config.seed ^ 0x9B),
                                         options.landmarks),
        options.cbg, run.config.seed ^ 0xCB6);
    locator.calibrate(pool);
    std::vector<analysis::ContinentCounts> counts;
    counts.reserve(run.traces.datasets.size());
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto mapping =
            cbg_dc_map(*run.deployment, run.traces.datasets[i], locator,
                       run.deployment->vantage(i), run.deployment->local_as(i), pool);
        counts.push_back(analysis::servers_per_continent(mapping.located));
    }
    return make_table3(run, counts).render();
}

std::string render_fig10(const StudyRun& run, bool soa) {
    analysis::AsciiTable t({"Dataset", "1-flow", "1:pref", "1:nonpref", "2-flow",
                            "2:pp", "2:pn", "2:np", "2:nn", ">2-flow", ">2:allpref",
                            ">2:pref-then-other", ">2:nonpref-first"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        analysis::SessionPatternShares p;
        analysis::MultiFlowPatternShares m;
        if (soa) {
            p = analysis::session_patterns(run.sessions[i], run.dc_columns[i],
                                           run.preferred[i]);
            m = analysis::multi_flow_patterns(run.sessions[i], run.dc_columns[i],
                                              run.preferred[i]);
        } else {
            const auto sessions = analysis::build_sessions(run.traces.datasets[i], 1.0);
            p = analysis::session_patterns(sessions, run.maps[i], run.preferred[i]);
            m = analysis::multi_flow_patterns(sessions, run.maps[i], run.preferred[i]);
        }
        t.add_row({run.traces.datasets[i].name, analysis::fmt_pct(p.single_flow, 2),
                   analysis::fmt_pct(p.single_preferred, 2),
                   analysis::fmt_pct(p.single_non_preferred, 2),
                   analysis::fmt_pct(p.two_flow, 2), analysis::fmt_pct(p.two_pref_pref, 2),
                   analysis::fmt_pct(p.two_pref_nonpref, 2),
                   analysis::fmt_pct(p.two_nonpref_pref, 2),
                   analysis::fmt_pct(p.two_nonpref_nonpref, 2),
                   analysis::fmt_pct(p.more_flows, 2),
                   analysis::fmt_pct(m.all_preferred, 2),
                   analysis::fmt_pct(m.first_preferred_then_other, 2),
                   analysis::fmt_pct(m.first_non_preferred, 2)});
    }
    return t.render();
}

std::string render_fig12(const StudyRun& run, bool soa) {
    analysis::AsciiTable t({"Dataset", "Subnet", "flows%", "non-preferred%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& vp = run.deployment->vantage(i);
        std::vector<analysis::NamedSubnet> subnets;
        subnets.reserve(vp.subnets.size());
        for (const auto& s : vp.subnets) subnets.push_back({s.name, s.prefix});
        const auto shares =
            soa ? analysis::subnet_breakdown(run.tables[i], run.dc_columns[i],
                                             run.preferred[i], subnets)
                : analysis::subnet_breakdown(run.traces.datasets[i], run.maps[i],
                                             run.preferred[i], subnets);
        for (const auto& share : shares) {
            t.add_row({run.traces.datasets[i].name, share.name,
                       analysis::fmt_pct(share.all_flows_share, 2),
                       analysis::fmt_pct(share.non_preferred_share, 2)});
        }
    }
    return t.render();
}

std::string render_resolutions(const StudyRun& run, bool soa) {
    analysis::AsciiTable t({"Dataset", "Resolution", "flow%", "byte%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        const auto shares = soa ? analysis::resolution_breakdown(run.tables[i])
                                : analysis::resolution_breakdown(ds);
        for (const auto& share : shares) {
            t.add_row({ds.name, std::string(cdn::to_string(share.resolution)),
                       analysis::fmt_pct(share.flow_share, 2),
                       analysis::fmt_pct(share.byte_share, 2)});
        }
    }
    return t.render();
}

}  // namespace

FullReport make_full_report(const StudyRun& run, util::ThreadPool& pool,
                            const ReportOptions& options) {
    // Every artifact is a pure function of the immutable run: closures only
    // read `run` (and fork their own probe RNGs, for Table III), so they can
    // execute in any order on any thread. parallel_map returns them in list
    // order, making the report bytes independent of the schedule.
    using Job = std::pair<std::string, std::function<std::string()>>;
    std::vector<Job> jobs;
    jobs.reserve(20);

    // Column scans need the SoA tables derive_run builds; hand-assembled
    // runs (tests) that skip derivation fall back to the AoS walks.
    const bool soa = options.use_flow_tables &&
                     run.tables.size() == run.traces.datasets.size() &&
                     run.sessions.size() == run.traces.datasets.size() &&
                     run.dc_columns.size() == run.traces.datasets.size();

    jobs.emplace_back("table1.txt", [&run] { return make_table1(run).render(); });
    jobs.emplace_back("table2.txt", [&run] { return make_table2(run).render(); });
    if (options.include_table3) {
        jobs.emplace_back("table3.txt",
                          [&run, &options, &pool] {
                              return render_table3_artifact(run, options, pool);
                          });
    }
    jobs.emplace_back("failure_breakdown.txt",
                      [&run] { return make_failure_table(run).render(); });
    jobs.emplace_back("retry_histogram.txt",
                      [&run] { return make_retry_table(run).render(); });
    jobs.emplace_back("resolutions.txt",
                      [&run, soa] { return render_resolutions(run, soa); });

    jobs.emplace_back("fig04_flow_sizes.dat", [&run, soa] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            const auto& ds = run.traces.datasets[i];
            std::vector<double> sizes;
            sizes.reserve(ds.records.size());
            if (soa) {
                for (const std::uint64_t b : run.tables[i].bytes) {
                    sizes.push_back(static_cast<double>(b));
                }
            } else {
                for (const auto& r : ds.records) {
                    sizes.push_back(static_cast<double>(r.bytes));
                }
            }
            series.push_back({ds.name, analysis::EmpiricalCdf(std::move(sizes)).curve(120)});
        }
        return render_series(series);
    });

    jobs.emplace_back("fig05_gap_sensitivity.dat", [&run, soa] {
        std::vector<analysis::Series> series;
        const auto us = run.vp_index("US-Campus");
        for (const double gap : {1.0, 5.0, 10.0, 60.0, 300.0}) {
            const auto cdf =
                soa ? analysis::flows_per_session_cdf(
                          analysis::SessionTable::build(run.tables[us], gap))
                    : analysis::flows_per_session_cdf(
                          analysis::build_sessions(run.traces.datasets[us], gap));
            series.push_back(flows_cdf_series(
                "T=" + std::to_string(static_cast<int>(gap)) + "s", cdf));
        }
        return render_series(series);
    });

    jobs.emplace_back("fig06_flows_per_session.dat", [&run, soa] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            const auto cdf = soa
                                 ? analysis::flows_per_session_cdf(run.sessions[i])
                                 : analysis::flows_per_session_cdf(analysis::build_sessions(
                                       run.traces.datasets[i], 1.0));
            series.push_back(flows_cdf_series(run.traces.datasets[i].name, cdf));
        }
        return render_series(series);
    });

    jobs.emplace_back("fig07_bytes_vs_rtt.dat", [&run] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            series.push_back(
                analysis::bytes_vs_rtt(run.traces.datasets[i], run.maps[i]));
        }
        return render_series(series);
    });

    jobs.emplace_back("fig08_bytes_vs_distance.dat", [&run] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            series.push_back(
                analysis::bytes_vs_distance(run.traces.datasets[i], run.maps[i]));
        }
        return render_series(series);
    });

    jobs.emplace_back("fig09_hourly_nonpreferred_cdf.dat", [&run, soa] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            const auto cdf =
                soa ? analysis::hourly_non_preferred_fraction(
                          run.tables[i], run.dc_columns[i], run.preferred[i])
                    : analysis::hourly_non_preferred_fraction(
                          run.traces.datasets[i], run.maps[i], run.preferred[i]);
            series.push_back({run.traces.datasets[i].name, cdf.curve(60)});
        }
        return render_series(series);
    });

    jobs.emplace_back("fig10_session_patterns.txt",
                      [&run, soa] { return render_fig10(run, soa); });

    jobs.emplace_back("fig11_eu2_load_balancing.dat", [&run, soa] {
        const auto eu2 = run.vp_index("EU2");
        auto hourly = soa ? analysis::hourly_preferred_series(
                                run.tables[eu2], run.dc_columns[eu2], run.preferred[eu2])
                          : analysis::hourly_preferred_series(
                                run.traces.datasets[eu2], run.maps[eu2],
                                run.preferred[eu2]);
        return render_series({std::move(hourly.fraction_preferred),
                              std::move(hourly.flows_per_hour)});
    });

    jobs.emplace_back("fig12_subnet_breakdown.txt",
                      [&run, soa] { return render_fig12(run, soa); });

    jobs.emplace_back("fig13_video_redirect_counts_cdf.dat", [&run, soa] {
        std::vector<analysis::Series> series;
        for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
            const auto counts =
                soa ? analysis::video_non_preferred_counts(
                          run.tables[i], run.dc_columns[i], run.preferred[i])
                    : analysis::video_non_preferred_counts(
                          run.traces.datasets[i], run.maps[i], run.preferred[i]);
            if (!counts.empty()) {
                series.push_back({run.traces.datasets[i].name, counts.curve(60)});
            }
        }
        return render_series(series);
    });

    jobs.emplace_back("fig14_hotspot_videos.dat", [&run, soa] {
        const auto adsl = run.vp_index("EU1-ADSL");
        const auto top =
            soa ? analysis::top_redirected_videos(run.tables[adsl],
                                                  run.dc_columns[adsl],
                                                  run.preferred[adsl], 4)
                : analysis::top_redirected_videos(run.traces.datasets[adsl],
                                                  run.maps[adsl], run.preferred[adsl],
                                                  4);
        std::vector<analysis::Series> series;
        for (std::size_t v = 0; v < top.size(); ++v) {
            auto load = soa ? analysis::video_hourly_load(run.tables[adsl],
                                                          run.dc_columns[adsl],
                                                          run.preferred[adsl], top[v])
                            : analysis::video_hourly_load(run.traces.datasets[adsl],
                                                          run.maps[adsl],
                                                          run.preferred[adsl], top[v]);
            load.all.name = "video" + std::to_string(v + 1) + " all";
            load.non_preferred.name =
                "video" + std::to_string(v + 1) + " non-preferred";
            series.push_back(std::move(load.all));
            series.push_back(std::move(load.non_preferred));
        }
        return render_series(series);
    });

    jobs.emplace_back("fig15_server_load.dat", [&run, soa] {
        const auto adsl = run.vp_index("EU1-ADSL");
        auto load = soa ? analysis::preferred_dc_server_load(
                              run.tables[adsl], run.dc_columns[adsl],
                              run.preferred[adsl])
                        : analysis::preferred_dc_server_load(
                              run.traces.datasets[adsl], run.maps[adsl],
                              run.preferred[adsl]);
        return render_series({std::move(load.avg), std::move(load.max)});
    });

    jobs.emplace_back("fig16_hot_server_sessions.dat", [&run, soa] {
        const auto adsl = run.vp_index("EU1-ADSL");
        analysis::HotServerSessions hot;
        if (soa) {
            const auto top = analysis::top_redirected_videos(
                run.tables[adsl], run.dc_columns[adsl], run.preferred[adsl], 1);
            if (top.empty()) return std::string{};
            hot = analysis::hot_server_sessions(run.tables[adsl], run.sessions[adsl],
                                                run.dc_columns[adsl],
                                                run.preferred[adsl], top.front());
        } else {
            const auto top = analysis::top_redirected_videos(
                run.traces.datasets[adsl], run.maps[adsl], run.preferred[adsl], 1);
            if (top.empty()) return std::string{};
            const auto sessions =
                analysis::build_sessions(run.traces.datasets[adsl], 1.0);
            hot = analysis::hot_server_sessions(run.traces.datasets[adsl], sessions,
                                                run.maps[adsl], run.preferred[adsl],
                                                top.front());
        }
        return render_series({std::move(hot.all_preferred),
                              std::move(hot.first_preferred_then_other),
                              std::move(hot.others)});
    });

    // Per-artifact fault isolation: one failing closure degrades to a
    // placeholder naming the artifact and the error, instead of taking the
    // other ~19 artifacts down with it. Strict mode (CI) keeps fail-fast by
    // letting the exception propagate out of parallel_map.
    const bool strict = run.config.effective_strict_artifacts();
    using Rendered = std::pair<std::string, bool>;  // content, degraded?
    auto contents = util::parallel_map(pool, jobs, [strict](const Job& job) {
        if (strict) return Rendered{job.second(), false};
        try {
            return Rendered{job.second(), false};
        } catch (const std::exception& e) {
            return Rendered{
                "!! artifact '" + job.first + "' failed: " + e.what() + "\n",
                true};
        }
    });

    FullReport report;
    report.artifacts.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        report.artifacts.push_back({jobs[i].first, std::move(contents[i].first)});
        if (contents[i].second) report.degraded.push_back(jobs[i].first);
    }
    return report;
}

FullReport make_full_report(const StudyRun& run, const ReportOptions& options) {
    util::ThreadPool pool(run.config.effective_threads());
    return make_full_report(run, pool, options);
}

}  // namespace ytcdn::study
