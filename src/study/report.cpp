#include "study/report.hpp"

#include "analysis/as_analysis.hpp"

namespace ytcdn::study {

namespace {

/// Paper's Table I rows for side-by-side comparison.
struct PaperRow {
    const char* flows;
    const char* volume_gb;
    const char* servers;
    const char* clients;
};
constexpr PaperRow kPaperTable1[] = {
    {"874649", "7061.27", "1985", "20443"}, {"134789", "580.25", "1102", "1113"},
    {"877443", "3709.98", "1977", "8348"},  {"91955", "463.1", "1081", "997"},
    {"513403", "2834.99", "1637", "6552"},
};

}  // namespace

analysis::AsciiTable make_table1(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Flows", "Volume[GB]", "#Servers", "#Clients",
                            "paper:Flows", "paper:GB", "paper:Srv", "paper:Cli"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        const auto s = ds.summary();
        t.add_row({ds.name, std::to_string(s.flows), analysis::fmt(s.volume_gb, 2),
                   std::to_string(s.distinct_servers), std::to_string(s.distinct_clients),
                   kPaperTable1[i].flows, kPaperTable1[i].volume_gb,
                   kPaperTable1[i].servers, kPaperTable1[i].clients});
    }
    return t;
}

analysis::AsciiTable make_table2(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Google srv%", "Google byt%", "YT-EU srv%",
                            "YT-EU byt%", "SameAS srv%", "SameAS byt%", "Other srv%",
                            "Other byt%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto row = analysis::as_breakdown(run.traces.datasets[i],
                                                run.deployment->whois(),
                                                run.deployment->local_as(i));
        t.add_row({row.dataset, analysis::fmt_pct(row.google_servers, 1),
                   analysis::fmt_pct(row.google_bytes, 1),
                   analysis::fmt_pct(row.youtube_eu_servers, 1),
                   analysis::fmt_pct(row.youtube_eu_bytes, 1),
                   analysis::fmt_pct(row.same_as_servers, 1),
                   analysis::fmt_pct(row.same_as_bytes, 1),
                   analysis::fmt_pct(row.other_servers, 1),
                   analysis::fmt_pct(row.other_bytes, 1)});
    }
    return t;
}

analysis::AsciiTable make_table3(const StudyRun& run,
                                 const std::vector<analysis::ContinentCounts>& counts) {
    analysis::AsciiTable t({"Dataset", "N. America", "Europe", "Others", "unlocated"});
    for (std::size_t i = 0; i < counts.size() && i < run.traces.datasets.size(); ++i) {
        t.add_row({run.traces.datasets[i].name, std::to_string(counts[i].north_america),
                   std::to_string(counts[i].europe), std::to_string(counts[i].others),
                   std::to_string(counts[i].unlocated)});
    }
    return t;
}

analysis::VantageFailureCounts failure_counts_of(std::string vantage,
                                                 const workload::Player::Stats& stats) {
    analysis::VantageFailureCounts c;
    c.vantage = std::move(vantage);
    c.sessions = stats.sessions;
    c.connect_timeouts = stats.connect_timeouts;
    c.connect_resets = stats.connect_resets;
    c.dns_servfails = stats.dns_servfails;
    c.stale_dns_answers = stats.stale_dns_answers;
    c.failovers = stats.failovers;
    c.failed_timeout = stats.failures.timeout;
    c.failed_reset = stats.failures.reset;
    c.failed_dns = stats.failures.dns_failure;
    c.failed_retries_exhausted = stats.failures.retries_exhausted;
    c.failed_redirect_exhausted = stats.failures.redirect_exhausted;
    c.retry_histogram = stats.retry_histogram;
    return c;
}

std::vector<analysis::VantageFailureCounts> failure_counts(const StudyRun& run) {
    std::vector<analysis::VantageFailureCounts> out;
    out.reserve(run.traces.datasets.size());
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        out.push_back(failure_counts_of(run.traces.datasets[i].name,
                                        run.traces.player_stats[i]));
    }
    return out;
}

analysis::AsciiTable make_failure_table(const StudyRun& run) {
    return analysis::failure_breakdown_table(failure_counts(run));
}

analysis::AsciiTable make_retry_table(const StudyRun& run) {
    return analysis::retry_histogram_table(failure_counts(run));
}

}  // namespace ytcdn::study
