#include "study/report.hpp"

#include "analysis/as_analysis.hpp"

namespace ytcdn::study {

namespace {

/// Paper's Table I rows for side-by-side comparison.
struct PaperRow {
    const char* flows;
    const char* volume_gb;
    const char* servers;
    const char* clients;
};
constexpr PaperRow kPaperTable1[] = {
    {"874649", "7061.27", "1985", "20443"}, {"134789", "580.25", "1102", "1113"},
    {"877443", "3709.98", "1977", "8348"},  {"91955", "463.1", "1081", "997"},
    {"513403", "2834.99", "1637", "6552"},
};

}  // namespace

analysis::AsciiTable make_table1(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Flows", "Volume[GB]", "#Servers", "#Clients",
                            "paper:Flows", "paper:GB", "paper:Srv", "paper:Cli"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto& ds = run.traces.datasets[i];
        const auto s = ds.summary();
        t.add_row({ds.name, std::to_string(s.flows), analysis::fmt(s.volume_gb, 2),
                   std::to_string(s.distinct_servers), std::to_string(s.distinct_clients),
                   kPaperTable1[i].flows, kPaperTable1[i].volume_gb,
                   kPaperTable1[i].servers, kPaperTable1[i].clients});
    }
    return t;
}

analysis::AsciiTable make_table2(const StudyRun& run) {
    analysis::AsciiTable t({"Dataset", "Google srv%", "Google byt%", "YT-EU srv%",
                            "YT-EU byt%", "SameAS srv%", "SameAS byt%", "Other srv%",
                            "Other byt%"});
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        const auto row = analysis::as_breakdown(run.traces.datasets[i],
                                                run.deployment->whois(),
                                                run.deployment->local_as(i));
        t.add_row({row.dataset, analysis::fmt_pct(row.google_servers, 1),
                   analysis::fmt_pct(row.google_bytes, 1),
                   analysis::fmt_pct(row.youtube_eu_servers, 1),
                   analysis::fmt_pct(row.youtube_eu_bytes, 1),
                   analysis::fmt_pct(row.same_as_servers, 1),
                   analysis::fmt_pct(row.same_as_bytes, 1),
                   analysis::fmt_pct(row.other_servers, 1),
                   analysis::fmt_pct(row.other_bytes, 1)});
    }
    return t;
}

analysis::AsciiTable make_table3(const StudyRun& run,
                                 const std::vector<analysis::ContinentCounts>& counts) {
    analysis::AsciiTable t({"Dataset", "N. America", "Europe", "Others", "unlocated"});
    for (std::size_t i = 0; i < counts.size() && i < run.traces.datasets.size(); ++i) {
        t.add_row({run.traces.datasets[i].name, std::to_string(counts[i].north_america),
                   std::to_string(counts[i].europe), std::to_string(counts[i].others),
                   std::to_string(counts[i].unlocated)});
    }
    return t;
}

}  // namespace ytcdn::study
