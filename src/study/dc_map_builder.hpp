#pragma once

#include <vector>

#include "analysis/dc_map.hpp"
#include "capture/dataset.hpp"
#include "geoloc/cbg.hpp"
#include "geoloc/dc_clustering.hpp"
#include "study/deployment.hpp"
#include "util/parallel.hpp"
#include "workload/vantage_point.hpp"

namespace ytcdn::study {

/// Builds the server->data-center map from the deployment's ground truth:
/// every analysis-scope data center becomes an entry whose RTT is actively
/// measured by pinging it from the vantage point's probe PC (the paper's
/// methodology for Fig. 7), and whose distance is great-circle from the PoP.
[[nodiscard]] analysis::ServerDcMap ground_truth_dc_map(
    const StudyDeployment& deployment, const workload::VantagePoint& vp);

/// The measurement-only path (what the paper actually had to do): geolocate
/// the dataset's servers with CBG, cluster them into city-level data
/// centers, and measure probe RTTs per cluster.
struct CbgMappingResult {
    std::vector<geoloc::LocatedServer> located;      // one per distinct server IP
    std::vector<geoloc::DataCenterCluster> clusters; // city-level data centers
    analysis::ServerDcMap map;
};

/// `locator` must already be calibrated. Only servers inside the analysis
/// scope (Google AS + the vantage point's own AS) are located; one CBG run
/// per /24 is shared by all its member IPs, matching the paper's clustering
/// invariant. The per-subnet CBG runs are dispatched to `pool`; output is
/// bit-identical at any thread count.
[[nodiscard]] CbgMappingResult cbg_dc_map(
    const StudyDeployment& deployment, const capture::Dataset& dataset,
    const geoloc::CbgLocator& locator, const workload::VantagePoint& vp,
    net::Asn local_as, util::ThreadPool& pool = util::shared_pool());

}  // namespace ytcdn::study
