#include "study/trace_driver.hpp"

#include <memory>
#include <stdexcept>
#include <string>

#include "capture/sniffer.hpp"
#include "sim/fault_injector.hpp"
#include "util/intern.hpp"
#include "workload/noise_source.hpp"
#include "workload/request_generator.hpp"

namespace ytcdn::study {

void bind_fault_handlers(sim::FaultInjector& injector, StudyDeployment& dep,
                         std::vector<std::unique_ptr<workload::Player>>& players) {
    using sim::FaultAction;
    const auto dc_of = [&dep](const sim::FaultEvent& e) {
        const cdn::DcId dc = dep.dc_by_city(e.target);
        if (dc == cdn::kInvalidDc) {
            throw std::invalid_argument("fault schedule: unknown data center '" +
                                        e.target + "'");
        }
        return dc;
    };
    const auto server_of = [&dep](const sim::FaultEvent& e) {
        const cdn::ServerId sid = dep.cdn().server_by_hostname(e.target);
        if (sid == cdn::kInvalidServer) {
            throw std::invalid_argument("fault schedule: unknown server '" +
                                        e.target + "'");
        }
        return sid;
    };
    const auto resolver_of = [&dep](const sim::FaultEvent& e) {
        const cdn::LdnsId id = dep.dns().resolver_by_name(e.target);
        if (id == cdn::kInvalidLdns) {
            throw std::invalid_argument("fault schedule: unknown resolver '" +
                                        e.target + "'");
        }
        return id;
    };
    const auto set_dc = [&dep, &players, dc_of](const sim::FaultEvent& e,
                                                cdn::HealthState h) {
        const cdn::DcId dc = dc_of(e);
        dep.cdn().set_dc_health(dc, h);
        if (h == cdn::HealthState::Down) {
            // Clients must not keep resolving into the outage from their
            // stub caches; the authoritative side has stopped advertising
            // the site.
            for (auto& p : players) p->invalidate_dns_cache(dc);
        }
    };
    injector.on(FaultAction::DcDown, [set_dc](const sim::FaultEvent& e) {
        set_dc(e, cdn::HealthState::Down);
    });
    injector.on(FaultAction::DcDrain, [set_dc](const sim::FaultEvent& e) {
        set_dc(e, cdn::HealthState::Draining);
    });
    injector.on(FaultAction::DcUp, [set_dc](const sim::FaultEvent& e) {
        set_dc(e, cdn::HealthState::Up);
    });
    const auto set_server = [&dep, server_of](const sim::FaultEvent& e,
                                              cdn::HealthState h) {
        dep.cdn().set_server_health(server_of(e), h);
    };
    injector.on(FaultAction::ServerDown, [set_server](const sim::FaultEvent& e) {
        set_server(e, cdn::HealthState::Down);
    });
    injector.on(FaultAction::ServerDrain, [set_server](const sim::FaultEvent& e) {
        set_server(e, cdn::HealthState::Draining);
    });
    injector.on(FaultAction::ServerUp, [set_server](const sim::FaultEvent& e) {
        set_server(e, cdn::HealthState::Up);
    });
    injector.on(FaultAction::ResolverDown, [&dep, resolver_of](const sim::FaultEvent& e) {
        dep.dns().set_resolver_up(resolver_of(e), false);
    });
    injector.on(FaultAction::ResolverUp, [&dep, resolver_of](const sim::FaultEvent& e) {
        dep.dns().set_resolver_up(resolver_of(e), true);
    });
    injector.on(FaultAction::ResolverStale, [&dep, resolver_of](const sim::FaultEvent& e) {
        dep.dns().set_resolver_stale(resolver_of(e), true);
    });
    injector.on(FaultAction::ResolverFresh, [&dep, resolver_of](const sim::FaultEvent& e) {
        dep.dns().set_resolver_stale(resolver_of(e), false);
    });
}

TraceDriver::TraceDriver(StudyDeployment& deployment,
                         const workload::Player::Config& player_config)
    : deployment_(&deployment), player_config_(player_config) {}

TraceOutputs TraceDriver::run(sim::SimTime horizon) {
    auto& dep = *deployment_;
    sim::Simulator simulator;
    sim::Rng rng = dep.root_rng().fork("trace-driver");

    const std::size_t n = dep.num_vantage_points();
    std::vector<std::unique_ptr<capture::Sniffer>> sniffers;
    std::vector<std::unique_ptr<workload::Player>> players;
    std::vector<std::unique_ptr<workload::RequestGenerator>> generators;
    std::vector<std::unique_ptr<workload::NoiseSource>> noise;
    sniffers.reserve(n);
    players.reserve(n);
    generators.reserve(n);
    noise.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        auto& vp = dep.vantage(i);
        sniffers.push_back(std::make_unique<capture::Sniffer>(vp.name));
        workload::Player::Config player_cfg = player_config_;
        // EU2's legacy configuration still streams full-quality video from
        // the YouTube-EU AS (the paper's Table II shows 10.4% of EU2 bytes
        // there, vs ~1% elsewhere).
        if (vp.name == "EU2") player_cfg.legacy_full_quality = true;
        workload::RequestGenerator::Config gen_cfg;
        gen_cfg.zipf_exponent = dep.config().zipf_exponent;
        gen_cfg.p_promoted = dep.config().p_promoted;
        // Table I's per-flow volumes differ sharply across the paper's
        // networks: ~8.1 MB/flow at US-Campus vs ~4.2-5.5 MB at the
        // European ones (2010 HD adoption lagged in Europe and the ISP
        // links were tighter). Model it as a lighter resolution mix and
        // earlier abandonment outside the US campus.
        if (vp.name != "US-Campus") {
            gen_cfg.resolution_weights = {0.25, 0.65, 0.08, 0.02, 0.0};
            player_cfg.p_abort = 0.60;
            player_cfg.max_abort_watch_frac = 0.70;
        }
        players.push_back(std::make_unique<workload::Player>(
            simulator, dep.cdn(), dep.dns(), *sniffers.back(), player_cfg,
            rng.fork("player-" + vp.name),
            sim::TraceStream(tracer_, static_cast<std::uint8_t>(i))));
        generators.push_back(std::make_unique<workload::RequestGenerator>(
            simulator, vp, *players.back(), dep.catalog(), gen_cfg,
            rng.fork("generator-" + vp.name)));
        // Background web traffic the DPI classifier must reject; it never
        // reaches the flow logs but keeps the capture path honest.
        noise.push_back(std::make_unique<workload::NoiseSource>(
            simulator, vp, *sniffers.back(), workload::NoiseSource::Config{},
            rng.fork("noise-" + vp.name)));
    }

    // The fault injector (if any faults are scheduled) shares the event
    // queue with the workload; with an empty schedule nothing is created
    // and the run is byte-identical to the pre-fault-injection baseline.
    std::unique_ptr<sim::FaultInjector> injector;
    if (!dep.config().fault_schedule.empty()) {
        injector = std::make_unique<sim::FaultInjector>(
            simulator, dep.config().fault_schedule);
        bind_fault_handlers(*injector, dep, players);
        // Faults are deployment-wide, not tied to any vantage point; they
        // stream under the reserved index 0xFF.
        injector->set_trace(sim::TraceStream(tracer_, 0xFF));
        injector->arm();
    }

    for (auto& g : generators) g->run(horizon);
    for (auto& s : noise) s->run(horizon);
    // Let in-flight sessions (redirect chains, pause resumes) drain past the
    // capture horizon, like a real capture that sees flows end after the
    // last request started.
    simulator.run_until(horizon + 2.0 * sim::kHour);

    TraceOutputs out;
    out.events_processed = simulator.events_processed();
    out.faults_injected = injector ? injector->injected() : 0;
    out.datasets.reserve(n);
    // Join point for the per-VP interner shards: fold them in VP order into
    // the canonical hostname table, so ids are first-seen-per-shard stable
    // (util::Interner merge protocol) and independent of capture details.
    util::Interner hostnames;
    for (std::size_t i = 0; i < n; ++i) {
        out.flows_observed.push_back(sniffers[i]->flows_observed());
        out.flows_ignored.push_back(sniffers[i]->flows_ignored());
        (void)hostnames.merge_map(sniffers[i]->hosts());
        capture::Dataset ds;
        ds.name = dep.vantage(i).name;
        ds.records = sniffers[i]->take_records();
        ds.sort_by_time();
        out.datasets.push_back(std::move(ds));
        out.player_stats.push_back(players[i]->stats());
        out.requests_generated.push_back(generators[i]->requests_generated());
    }
    out.unique_hosts = hostnames.size();
    return out;
}

}  // namespace ytcdn::study
