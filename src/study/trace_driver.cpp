#include "study/trace_driver.hpp"

#include <memory>

#include "capture/sniffer.hpp"
#include "workload/noise_source.hpp"
#include "workload/request_generator.hpp"

namespace ytcdn::study {

TraceDriver::TraceDriver(StudyDeployment& deployment,
                         const workload::Player::Config& player_config)
    : deployment_(&deployment), player_config_(player_config) {}

TraceOutputs TraceDriver::run(sim::SimTime horizon) {
    auto& dep = *deployment_;
    sim::Simulator simulator;
    sim::Rng rng = dep.root_rng().fork("trace-driver");

    const std::size_t n = dep.num_vantage_points();
    std::vector<std::unique_ptr<capture::Sniffer>> sniffers;
    std::vector<std::unique_ptr<workload::Player>> players;
    std::vector<std::unique_ptr<workload::RequestGenerator>> generators;
    std::vector<std::unique_ptr<workload::NoiseSource>> noise;
    sniffers.reserve(n);
    players.reserve(n);
    generators.reserve(n);
    noise.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        auto& vp = dep.vantage(i);
        sniffers.push_back(std::make_unique<capture::Sniffer>(vp.name));
        workload::Player::Config player_cfg = player_config_;
        // EU2's legacy configuration still streams full-quality video from
        // the YouTube-EU AS (the paper's Table II shows 10.4% of EU2 bytes
        // there, vs ~1% elsewhere).
        if (vp.name == "EU2") player_cfg.legacy_full_quality = true;
        workload::RequestGenerator::Config gen_cfg;
        gen_cfg.zipf_exponent = dep.config().zipf_exponent;
        gen_cfg.p_promoted = dep.config().p_promoted;
        // Table I's per-flow volumes differ sharply across the paper's
        // networks: ~8.1 MB/flow at US-Campus vs ~4.2-5.5 MB at the
        // European ones (2010 HD adoption lagged in Europe and the ISP
        // links were tighter). Model it as a lighter resolution mix and
        // earlier abandonment outside the US campus.
        if (vp.name != "US-Campus") {
            gen_cfg.resolution_weights = {0.25, 0.65, 0.08, 0.02, 0.0};
            player_cfg.p_abort = 0.60;
            player_cfg.max_abort_watch_frac = 0.70;
        }
        players.push_back(std::make_unique<workload::Player>(
            simulator, dep.cdn(), dep.dns(), *sniffers.back(), player_cfg,
            rng.fork("player-" + vp.name)));
        generators.push_back(std::make_unique<workload::RequestGenerator>(
            simulator, vp, *players.back(), dep.catalog(), gen_cfg,
            rng.fork("generator-" + vp.name)));
        // Background web traffic the DPI classifier must reject; it never
        // reaches the flow logs but keeps the capture path honest.
        noise.push_back(std::make_unique<workload::NoiseSource>(
            simulator, vp, *sniffers.back(), workload::NoiseSource::Config{},
            rng.fork("noise-" + vp.name)));
    }

    for (auto& g : generators) g->run(horizon);
    for (auto& s : noise) s->run(horizon);
    // Let in-flight sessions (redirect chains, pause resumes) drain past the
    // capture horizon, like a real capture that sees flows end after the
    // last request started.
    simulator.run_until(horizon + 2.0 * sim::kHour);

    TraceOutputs out;
    out.events_processed = simulator.events_processed();
    out.datasets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.flows_observed.push_back(sniffers[i]->flows_observed());
        out.flows_ignored.push_back(sniffers[i]->flows_ignored());
        capture::Dataset ds;
        ds.name = dep.vantage(i).name;
        ds.records = sniffers[i]->take_records();
        ds.sort_by_time();
        out.datasets.push_back(std::move(ds));
        out.player_stats.push_back(players[i]->stats());
        out.requests_generated.push_back(generators[i]->requests_generated());
    }
    return out;
}

}  // namespace ytcdn::study
