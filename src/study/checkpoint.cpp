#include "study/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/crc32.hpp"
#include "util/io.hpp"

namespace ytcdn::study {

namespace {

constexpr std::string_view kMagic = "YCK1";
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 4 + 8;  // magic..payload size
constexpr std::size_t kTrailerSize = 4;                 // crc32

constexpr std::string_view kStageNames[kNumStageIds] = {
    "simulate", "capture", "geolocate", "analyze", "render", "service",
};

template <typename T>
void put(std::string& buf, T value) {
    char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    buf.append(raw, sizeof(T));
}

void put_str32(std::string& buf, std::string_view s) {
    put(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

void put_f64(std::string& buf, double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    put(buf, bits);
}

/// Sequential reader over a payload; every take reports truncation by
/// returning false, and `error()` renders the byte offset it stopped at.
class Reader {
public:
    explicit Reader(std::string_view data) : data_(data) {}

    template <typename T>
    bool take(T* out) {
        if (data_.size() - off_ < sizeof(T)) return false;
        std::memcpy(out, data_.data() + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    bool take_f64(double* out) {
        std::uint64_t bits = 0;
        if (!take(&bits)) return false;
        std::memcpy(out, &bits, sizeof(bits));
        return true;
    }

    bool take_str32(std::string* out) {
        std::uint32_t n = 0;
        if (!take(&n)) return false;
        return take_bytes(out, n);
    }

    /// Length validated against the remaining payload BEFORE allocating, so
    /// a corrupt multi-gigabyte declared length is a clean Truncated error,
    /// not an allocation attack.
    bool take_bytes(std::string* out, std::uint64_t n) {
        if (data_.size() - off_ < n) return false;
        out->assign(data_.substr(off_, static_cast<std::size_t>(n)));
        off_ += static_cast<std::size_t>(n);
        return true;
    }

    [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

    [[nodiscard]] std::size_t remaining() const noexcept {
        return data_.size() - off_;
    }

    [[nodiscard]] Error truncated(std::string_view what) const {
        return Error(ErrorCode::Truncated, std::string(what) +
                                               " truncated at payload byte " +
                                               std::to_string(off_));
    }

private:
    std::string_view data_;
    std::size_t off_ = 0;
};

}  // namespace

std::string_view to_string(Stage stage) noexcept {
    const auto i = static_cast<std::size_t>(stage);
    return i < kNumStageIds ? kStageNames[i] : "?";
}

std::filesystem::path checkpoint_path(const std::filesystem::path& run_dir,
                                      Stage stage) {
    return run_dir / "checkpoints" /
           (std::string(to_string(stage)) + ".yck");
}

util::Result<void> write_checkpoint(const std::filesystem::path& path,
                                    std::uint64_t fingerprint, Stage stage,
                                    std::string_view payload) {
    std::string buf;
    buf.reserve(kHeaderSize + payload.size() + kTrailerSize);
    buf.append(kMagic);
    put(buf, kCheckpointVersion);
    put(buf, fingerprint);
    put(buf, static_cast<std::uint32_t>(stage));
    put(buf, static_cast<std::uint64_t>(payload.size()));
    buf.append(payload);
    put(buf, util::crc32(buf));
    return util::io::write_file_atomic(path, buf)
        .context("checkpoint " + path.string());
}

util::Result<std::string> load_checkpoint(const std::filesystem::path& path,
                                          std::uint64_t fingerprint,
                                          Stage stage) {
    auto read = util::io::read_file(path);
    if (!read) {
        return std::move(read).context("checkpoint " + path.string()).error();
    }
    const std::string data = std::move(read).value();
    const auto fail = [&](ErrorCode code, std::string_view what) {
        return Error(code, std::string(what))
            .context("checkpoint " + path.string());
    };
    if (data.size() < kHeaderSize + kTrailerSize) {
        return fail(ErrorCode::Truncated, "file shorter than YCK1 frame");
    }
    if (data.compare(0, kMagic.size(), kMagic) != 0) {
        return fail(ErrorCode::BadMagic, "bad magic (want YCK1)");
    }
    Reader r(std::string_view(data).substr(kMagic.size()));
    std::uint32_t version = 0;
    std::uint64_t fp = 0;
    std::uint32_t stage_id = 0;
    std::uint64_t payload_size = 0;
    if (!r.take(&version) || !r.take(&fp) || !r.take(&stage_id) ||
        !r.take(&payload_size)) {
        return fail(ErrorCode::Truncated, "header truncated");
    }
    if (version != kCheckpointVersion) {
        return fail(ErrorCode::UnsupportedVersion,
                    "unsupported version " + std::to_string(version));
    }
    if (fp != fingerprint) {
        return fail(ErrorCode::KeyMismatch,
                    "run fingerprint mismatch (stale or foreign checkpoint)");
    }
    if (stage_id != static_cast<std::uint32_t>(stage)) {
        return fail(ErrorCode::KeyMismatch,
                    "stage mismatch: file holds '" +
                        std::string(to_string(static_cast<Stage>(stage_id))) +
                        "', want '" + std::string(to_string(stage)) + "'");
    }
    if (data.size() != kHeaderSize + payload_size + kTrailerSize) {
        return fail(ErrorCode::Truncated,
                    "payload size disagrees with file size");
    }
    std::uint32_t crc = 0;
    std::memcpy(&crc, data.data() + data.size() - kTrailerSize, sizeof(crc));
    if (util::crc32(std::string_view(data).substr(
            0, data.size() - kTrailerSize)) != crc) {
        return fail(ErrorCode::ChecksumMismatch, "trailer CRC mismatch");
    }
    return data.substr(kHeaderSize, payload_size);
}

std::optional<std::string> load_or_quarantine_checkpoint(
    const std::filesystem::path& path, std::uint64_t fingerprint, Stage stage,
    std::string* warning) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    auto result = load_checkpoint(path, fingerprint, stage);
    if (result) return std::move(result).value();

    // Exists but invalid: move it aside (bounded retention) and recompute
    // the stage. Checkpoint damage is never fatal.
    auto quarantined = util::io::quarantine_file(path);
    if (warning) {
        *warning = "warning: checkpoint " + path.string() +
                   " failed to load (" + result.error().what() + "); ";
        *warning += !quarantined
                        ? "quarantine rename also failed; recomputing stage"
                        : "quarantined as " +
                              quarantined.value().filename().string() +
                              " and recomputing stage";
    }
    return std::nullopt;
}

std::string encode_capture(const std::vector<CaptureEntry>& entries) {
    std::string buf;
    put(buf, static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
        put_str32(buf, e.name);
        put(buf, e.size);
        put(buf, e.crc);
    }
    return buf;
}

util::Result<std::vector<CaptureEntry>> decode_capture(
    std::string_view payload) {
    Reader r(payload);
    std::uint32_t n = 0;
    if (!r.take(&n)) return r.truncated("capture entry count");
    // Each entry needs at least name length + size + crc (16 bytes).
    if (n > r.remaining() / 16) {
        return Error(ErrorCode::CountMismatch,
                     "capture entry count " + std::to_string(n) +
                         " exceeds payload size");
    }
    std::vector<CaptureEntry> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        CaptureEntry e;
        if (!r.take_str32(&e.name) || !r.take(&e.size) || !r.take(&e.crc)) {
            return r.truncated("capture entry");
        }
        out.push_back(std::move(e));
    }
    if (!r.done()) {
        return Error(ErrorCode::CountMismatch,
                     "capture payload has trailing bytes");
    }
    return out;
}

std::string encode_geolocate(const std::vector<analysis::ServerDcMap>& maps,
                             const std::vector<int>& preferred) {
    std::string buf;
    put(buf, static_cast<std::uint32_t>(maps.size()));
    for (std::size_t i = 0; i < maps.size(); ++i) {
        const auto& map = maps[i];
        put(buf, static_cast<std::uint32_t>(map.num_data_centers()));
        for (const auto& dc : map.data_centers()) {
            put_str32(buf, dc.name);
            put_f64(buf, dc.location.lat_deg);
            put_f64(buf, dc.location.lon_deg);
            put(buf, static_cast<std::uint8_t>(dc.continent));
            put_f64(buf, dc.rtt_ms);
            put_f64(buf, dc.distance_km);
        }
        // Hash-map iteration order is not deterministic; sort by /24 so the
        // payload bytes are a pure function of the map's contents.
        std::vector<std::pair<std::uint32_t, std::int32_t>> assigns;
        assigns.reserve(map.assignments().size());
        for (const auto& [ip, dc] : map.assignments()) {  // ytcdn-lint: allow(unordered-iter)
            assigns.emplace_back(ip.value(), dc);
        }
        std::sort(assigns.begin(), assigns.end());
        put(buf, static_cast<std::uint32_t>(assigns.size()));
        for (const auto& [ip, dc] : assigns) {
            put(buf, ip);
            put(buf, dc);
        }
        put(buf, static_cast<std::int32_t>(preferred[i]));
    }
    return buf;
}

util::Result<void> decode_geolocate(std::string_view payload,
                                    std::vector<analysis::ServerDcMap>* maps,
                                    std::vector<int>* preferred) {
    Reader r(payload);
    std::uint32_t n_vps = 0;
    if (!r.take(&n_vps)) return r.truncated("vantage-point count");
    // Each vantage point needs at least its three counts (12 bytes); a
    // hostile declared count must fail cleanly, not balloon the vectors.
    if (n_vps > r.remaining() / 12) {
        return Error(ErrorCode::CountMismatch,
                     "vantage-point count " + std::to_string(n_vps) +
                         " exceeds payload size");
    }
    maps->clear();
    preferred->clear();
    maps->reserve(n_vps);
    preferred->reserve(n_vps);
    for (std::uint32_t v = 0; v < n_vps; ++v) {
        analysis::ServerDcMap map;
        std::uint32_t n_dcs = 0;
        if (!r.take(&n_dcs)) return r.truncated("data-center count");
        for (std::uint32_t d = 0; d < n_dcs; ++d) {
            analysis::DataCenterInfo dc;
            std::uint8_t continent = 0;
            if (!r.take_str32(&dc.name) || !r.take_f64(&dc.location.lat_deg) ||
                !r.take_f64(&dc.location.lon_deg) || !r.take(&continent) ||
                !r.take_f64(&dc.rtt_ms) || !r.take_f64(&dc.distance_km)) {
                return r.truncated("data-center record");
            }
            if (continent > static_cast<std::uint8_t>(geo::Continent::Africa)) {
                return Error(ErrorCode::BadField,
                             "unknown continent " + std::to_string(continent));
            }
            dc.continent = static_cast<geo::Continent>(continent);
            map.add_data_center(std::move(dc));
        }
        std::uint32_t n_assign = 0;
        if (!r.take(&n_assign)) return r.truncated("assignment count");
        for (std::uint32_t a = 0; a < n_assign; ++a) {
            std::uint32_t ip = 0;
            std::int32_t dc = 0;
            if (!r.take(&ip) || !r.take(&dc)) return r.truncated("assignment");
            if (dc < 0 || static_cast<std::uint32_t>(dc) >= n_dcs) {
                return Error(ErrorCode::BadField,
                             "assignment references data center " +
                                 std::to_string(dc) + " of " +
                                 std::to_string(n_dcs));
            }
            map.assign(net::IpAddress(ip), dc);
        }
        std::int32_t pref = 0;
        if (!r.take(&pref)) return r.truncated("preferred index");
        if (pref < -1 || (pref >= 0 && static_cast<std::uint32_t>(pref) >= n_dcs)) {
            return Error(ErrorCode::BadField,
                         "preferred index out of range: " + std::to_string(pref));
        }
        maps->push_back(std::move(map));
        preferred->push_back(pref);
    }
    if (!r.done()) {
        return Error(ErrorCode::CountMismatch,
                     "geolocate payload has trailing bytes");
    }
    return {};
}

std::string encode_report(const FullReport& report) {
    std::string buf;
    put(buf, static_cast<std::uint32_t>(report.artifacts.size()));
    for (const auto& a : report.artifacts) {
        put_str32(buf, a.name);
        put(buf, static_cast<std::uint64_t>(a.content.size()));
        buf.append(a.content);
    }
    put(buf, static_cast<std::uint32_t>(report.degraded.size()));
    for (const auto& name : report.degraded) put_str32(buf, name);
    return buf;
}

util::Result<FullReport> decode_report(std::string_view payload) {
    Reader r(payload);
    FullReport report;
    std::uint32_t n = 0;
    if (!r.take(&n)) return r.truncated("artifact count");
    // Each artifact needs at least name length + content length (12 bytes).
    if (n > r.remaining() / 12) {
        return Error(ErrorCode::CountMismatch,
                     "artifact count " + std::to_string(n) +
                         " exceeds payload size");
    }
    report.artifacts.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ReportArtifact a;
        std::uint64_t content_size = 0;
        if (!r.take_str32(&a.name) || !r.take(&content_size)) {
            return r.truncated("artifact header");
        }
        if (!r.take_bytes(&a.content, content_size)) {
            return r.truncated("artifact content");
        }
        report.artifacts.push_back(std::move(a));
    }
    std::uint32_t n_degraded = 0;
    if (!r.take(&n_degraded)) return r.truncated("degraded count");
    if (n_degraded > r.remaining() / 4) {  // at least a name length each
        return Error(ErrorCode::CountMismatch,
                     "degraded count " + std::to_string(n_degraded) +
                         " exceeds payload size");
    }
    report.degraded.reserve(n_degraded);
    for (std::uint32_t i = 0; i < n_degraded; ++i) {
        std::string name;
        if (!r.take_str32(&name)) return r.truncated("degraded name");
        report.degraded.push_back(std::move(name));
    }
    if (!r.done()) {
        return Error(ErrorCode::CountMismatch,
                     "report payload has trailing bytes");
    }
    return report;
}

}  // namespace ytcdn::study
