#include "study/planetlab_experiment.hpp"

#include <stdexcept>

#include "net/pinger.hpp"
#include "util/metrics.hpp"

namespace ytcdn::study {

namespace {

/// The experiment is strictly serial (nodes × rounds loops on the calling
/// thread) and every count below is a logical work unit, so the snapshot is
/// identical at any YTCDN_THREADS — the metrics determinism contract.
struct PlanetLabMetrics {
    util::metrics::Counter experiments =
        util::metrics::counter("study.planetlab.experiments");
    util::metrics::Counter downloads =
        util::metrics::counter("study.planetlab.downloads");
    util::metrics::Counter misses =
        util::metrics::counter("study.planetlab.misses");
    util::metrics::Counter pulls =
        util::metrics::counter("study.planetlab.pulls");
    util::metrics::Counter redirects =
        util::metrics::counter("study.planetlab.redirects");
    util::metrics::Histogram hops = util::metrics::histogram(
        "study.planetlab.hops_per_download", {0.0, 1.0, 2.0, 4.0});
};

PlanetLabMetrics& planetlab_metrics() {
    static PlanetLabMetrics metrics;
    return metrics;
}

}  // namespace

PlanetLabResult run_planetlab_experiment(StudyDeployment& deployment,
                                         const std::vector<geoloc::Landmark>& landmarks,
                                         const PlanetLabConfig& config) {
    if (config.nodes <= 1 || config.rounds < 2) {
        throw std::invalid_argument("run_planetlab_experiment: need >1 node, >=2 rounds");
    }
    if (landmarks.size() < static_cast<std::size_t>(config.nodes)) {
        throw std::invalid_argument("run_planetlab_experiment: not enough landmarks");
    }

    auto& cdn = deployment.cdn();
    const cdn::Video video = deployment.catalog().upload(/*now=*/0.0,
                                                         config.video_duration_s);

    net::Pinger pinger(deployment.rtt(), deployment.config().seed ^ 0x9AB5ull);

    // Spread node selection across the landmark list (which is grouped by
    // continent) so preferred data centers are mostly distinct.
    std::vector<const geoloc::Landmark*> nodes;
    const double stride =
        static_cast<double>(landmarks.size()) / static_cast<double>(config.nodes);
    for (int i = 0; i < config.nodes; ++i) {
        nodes.push_back(&landmarks[static_cast<std::size_t>(i * stride)]);
    }

    PlanetLabResult result;
    result.nodes.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        result.nodes[i].node = nodes[i]->name;
        const auto ranked = cdn.rank_by_rtt(nodes[i]->site);
        result.nodes[i].preferred_city = cdn.dc(ranked.front()).city;
    }

    auto& counters = planetlab_metrics();
    counters.experiments.inc();

    for (int round = 0; round < config.rounds; ++round) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const auto& node = *nodes[i];
            const auto ranked = cdn.rank_by_rtt(node.site);
            cdn::ServerId server = cdn.pick_server(ranked.front(), video.id);
            counters.downloads.inc();

            // Follow redirects until a copy is found; misses trigger pulls
            // exactly like the player path does.
            std::vector<cdn::DcId> visited;
            int hops_taken = 0;
            for (int hop = 0; hop < 8; ++hop) {
                const cdn::DcId here = cdn.server(server).dc();
                if (cdn.has_content(here, video)) break;
                counters.misses.inc();
                cdn.pull_content(here, video.id);
                counters.pulls.inc();
                visited.push_back(here);
                const cdn::ServerId next =
                    cdn.redirect_target(node.site, video, visited);
                if (next == cdn::kInvalidServer) break;
                server = next;
                counters.redirects.inc();
                ++hops_taken;
            }
            counters.hops.observe(static_cast<double>(hops_taken));

            const auto& dc = cdn.dc(cdn.server(server).dc());
            result.nodes[i].rtt_ms.push_back(
                pinger.min_rtt_ms(node.site, dc.site, 5));
            result.nodes[i].served_from.push_back(dc.city);
        }
    }

    result.rtt_ratio.reserve(result.nodes.size());
    for (const auto& n : result.nodes) {
        result.rtt_ratio.push_back(n.rtt_ms[0] / n.rtt_ms[1]);
    }
    return result;
}

}  // namespace ytcdn::study
