#pragma once

#include <string>
#include <vector>

#include "analysis/failure_analysis.hpp"
#include "analysis/geo_analysis.hpp"
#include "analysis/table.hpp"
#include "study/study_run.hpp"

namespace ytcdn::study {

/// Table I: traffic summary per dataset (flows, volume, #servers, #clients),
/// with the paper's values alongside for comparison.
[[nodiscard]] analysis::AsciiTable make_table1(const StudyRun& run);

/// Table II: percentage of servers and bytes per AS group per dataset.
[[nodiscard]] analysis::AsciiTable make_table2(const StudyRun& run);

/// Table III: located Google servers per continent per dataset.
/// `counts[i]` must correspond to dataset i.
[[nodiscard]] analysis::AsciiTable make_table3(
    const StudyRun& run, const std::vector<analysis::ContinentCounts>& counts);

/// Bridges the workload layer's per-player stats into the analysis layer's
/// failure counters (the analysis library does not link workload).
[[nodiscard]] analysis::VantageFailureCounts failure_counts_of(
    std::string vantage, const workload::Player::Stats& stats);

/// All vantage points' failure counters for the run, in dataset order.
[[nodiscard]] std::vector<analysis::VantageFailureCounts> failure_counts(
    const StudyRun& run);

/// Per-vantage session-failure breakdown (rates + terminal causes); the
/// chaos-run companion to Table I.
[[nodiscard]] analysis::AsciiTable make_failure_table(const StudyRun& run);

/// Connection-retry histogram per vantage point.
[[nodiscard]] analysis::AsciiTable make_retry_table(const StudyRun& run);

}  // namespace ytcdn::study
