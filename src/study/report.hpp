#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/failure_analysis.hpp"
#include "analysis/geo_analysis.hpp"
#include "analysis/table.hpp"
#include "geoloc/cbg.hpp"
#include "study/study_run.hpp"
#include "util/parallel.hpp"

namespace ytcdn::study {

/// Table I: traffic summary per dataset (flows, volume, #servers, #clients),
/// with the paper's values alongside for comparison.
[[nodiscard]] analysis::AsciiTable make_table1(const StudyRun& run);

/// Table II: percentage of servers and bytes per AS group per dataset.
[[nodiscard]] analysis::AsciiTable make_table2(const StudyRun& run);

/// Table III: located Google servers per continent per dataset.
/// `counts[i]` must correspond to dataset i.
[[nodiscard]] analysis::AsciiTable make_table3(
    const StudyRun& run, const std::vector<analysis::ContinentCounts>& counts);

/// Bridges the workload layer's per-player stats into the analysis layer's
/// failure counters (the analysis library does not link workload).
[[nodiscard]] analysis::VantageFailureCounts failure_counts_of(
    std::string vantage, const workload::Player::Stats& stats);

/// All vantage points' failure counters for the run, in dataset order.
[[nodiscard]] std::vector<analysis::VantageFailureCounts> failure_counts(
    const StudyRun& run);

/// Per-vantage session-failure breakdown (rates + terminal causes); the
/// chaos-run companion to Table I.
[[nodiscard]] analysis::AsciiTable make_failure_table(const StudyRun& run);

/// Connection-retry histogram per vantage point.
[[nodiscard]] analysis::AsciiTable make_retry_table(const StudyRun& run);

/// One named paper artifact: "table1.txt" holds rendered ASCII, a
/// "figNN_*.dat" holds gnuplot-ready series blocks.
struct ReportArtifact {
    std::string name;
    std::string content;
};

/// Every table and figure the study derives from one StudyRun, in a fixed
/// name order that does not depend on how the report was computed.
struct FullReport {
    std::vector<ReportArtifact> artifacts;

    /// Names of artifacts that failed and were replaced with a placeholder
    /// (non-strict mode only; empty on a healthy run). The supervisor lists
    /// these in the run manifest instead of aborting the campaign.
    std::vector<std::string> degraded;

    /// The artifact's content, or nullptr if the report was built without it
    /// (e.g. table3 with ReportOptions::include_table3 = false).
    [[nodiscard]] const std::string* content(std::string_view name) const;

    /// Concatenates every artifact under a "== name ==" banner — the
    /// byte-compare target of the determinism tests.
    [[nodiscard]] std::string render() const;
};

struct ReportOptions {
    /// Table III re-runs the whole CBG geolocation pipeline (calibrate 215
    /// landmarks, locate every /24) — by far the most expensive artifact.
    bool include_table3 = true;
    /// Drive the §VI/§VII artifacts from the run's SoA flow/session tables
    /// (column scans) instead of the AoS record walks. Both paths render
    /// byte-identical artifacts — Determinism.FlowTableEquivalence compares
    /// the full report — so this exists to keep the AoS reference path
    /// testable; production leaves it on. Ignored (AoS used) when the run
    /// was hand-assembled without tables.
    bool use_flow_tables = true;
    /// Landmark set and CBG grid for Table III; tests shrink both.
    geoloc::LandmarkCounts landmarks;
    geoloc::CbgLocator::Config cbg;
};

/// Renders the full report. Each artifact is an independent pure closure
/// over the immutable `run`, dispatched to `pool`; the artifact list (order
/// and bytes) is identical at any thread count.
[[nodiscard]] FullReport make_full_report(const StudyRun& run,
                                          util::ThreadPool& pool,
                                          const ReportOptions& options = {});
/// Same, on a pool sized by run.config.effective_threads().
[[nodiscard]] FullReport make_full_report(const StudyRun& run,
                                          const ReportOptions& options = {});

}  // namespace ytcdn::study
