#pragma once

#include <vector>

#include "analysis/geo_analysis.hpp"
#include "analysis/table.hpp"
#include "study/study_run.hpp"

namespace ytcdn::study {

/// Table I: traffic summary per dataset (flows, volume, #servers, #clients),
/// with the paper's values alongside for comparison.
[[nodiscard]] analysis::AsciiTable make_table1(const StudyRun& run);

/// Table II: percentage of servers and bytes per AS group per dataset.
[[nodiscard]] analysis::AsciiTable make_table2(const StudyRun& run);

/// Table III: located Google servers per continent per dataset.
/// `counts[i]` must correspond to dataset i.
[[nodiscard]] analysis::AsciiTable make_table3(
    const StudyRun& run, const std::vector<analysis::ContinentCounts>& counts);

}  // namespace ytcdn::study
