#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dc_map.hpp"
#include "study/report.hpp"
#include "util/error.hpp"

namespace ytcdn::study {

/// Crash-safe per-stage checkpoints of a supervised study run ("YCK1").
///
/// Each completed pipeline stage (see study/supervisor.hpp) persists its
/// output under `<run-dir>/checkpoints/<stage>.yck` so a killed run can be
/// resumed without redoing finished work. The frame mirrors the repo's
/// other on-disk formats (YFL2 / YSS2 / YTR1): explicit magic + version,
/// a key that ties the file to the run that produced it, and a whole-file
/// CRC32 so any flipped bit is detected at load time:
///
///   magic "YCK1" | u32 version | u64 run fingerprint | u32 stage id |
///   u64 payload size | payload | trailer u32 crc32 of every prior byte
///
/// The run fingerprint extends config_fingerprint with the report options
/// (see Supervisor::run_fingerprint): resuming with different flags is a
/// KeyMismatch, never a silently wrong report. Checkpoints are written via
/// util::io::write_file_atomic, so a SIGKILL mid-write leaves at most a
/// stale ".tmp" — never a torn file under the final name. A checkpoint
/// that fails validation is quarantined (bounded, numbered — see
/// util::io::quarantine_file) and its stage is simply recomputed:
/// checkpoint damage is never fatal.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// The supervised pipeline's stages, in execution order. Values are the
/// on-disk stage ids of the YCK1 frame — append only, never renumber.
enum class Stage : std::uint32_t {
    Simulate = 0,  // run the discrete-event week -> TraceOutputs
    Capture,       // write per-vantage-point flow logs
    Geolocate,     // derive per-VP server->DC maps + preferred DCs
    Analyze,       // render every report artifact
    Render,        // write report.txt, artifacts/, manifest.txt
    Service,       // ytcdnd's incremental-aggregate state (not a pipeline
                   // stage: the daemon reuses the YCK1 frame + quarantine
                   // machinery for its crash-safe service checkpoint)
};
/// Pipeline stages only — Stage::Service is a frame id, not a stage the
/// supervisor iterates.
inline constexpr std::size_t kNumStages = 5;
inline constexpr std::size_t kNumStageIds = 6;

/// Stable lower-case stage name ("simulate", ... , "render").
[[nodiscard]] std::string_view to_string(Stage stage) noexcept;

/// `<run_dir>/checkpoints/<stage>.yck`.
[[nodiscard]] std::filesystem::path checkpoint_path(
    const std::filesystem::path& run_dir, Stage stage);

/// Frames `payload` and writes it atomically (typed Io errors on failure).
[[nodiscard]] util::Result<void> write_checkpoint(
    const std::filesystem::path& path, std::uint64_t fingerprint, Stage stage,
    std::string_view payload);

/// Loads and validates a frame, returning the payload bytes. Errors carry
/// the repo's corruption taxonomy: BadMagic / UnsupportedVersion /
/// KeyMismatch (fingerprint or stage) / Truncated / ChecksumMismatch.
[[nodiscard]] util::Result<std::string> load_checkpoint(
    const std::filesystem::path& path, std::uint64_t fingerprint, Stage stage);

/// nullopt when the file is missing (cold start) or invalid; an invalid
/// file is quarantined as "<path>.corrupt.<k>" and described through
/// `*warning` (one line, when non-null) so the stage recomputes.
[[nodiscard]] std::optional<std::string> load_or_quarantine_checkpoint(
    const std::filesystem::path& path, std::uint64_t fingerprint, Stage stage,
    std::string* warning);

/// --- Stage payload codecs -----------------------------------------------
///
/// All integers little-endian; doubles stored as raw IEEE-754 bits so a
/// resumed run is bit-identical to an uninterrupted one. Strings are
/// u32 length + bytes. Map assignments are sorted by /24 address before
/// encoding, making the payload independent of hash-table iteration order.

/// Capture stage: the flow-log files written, with size + CRC32 so resume
/// can verify them without trusting mtimes.
struct CaptureEntry {
    std::string name;        // dataset name, also the log's file stem
    std::uint64_t size = 0;  // bytes on disk
    std::uint32_t crc = 0;   // util::crc32 of the file contents
};

[[nodiscard]] std::string encode_capture(const std::vector<CaptureEntry>& entries);
[[nodiscard]] util::Result<std::vector<CaptureEntry>> decode_capture(
    std::string_view payload);

/// Geolocate stage: every vantage point's ServerDcMap and preferred DC.
[[nodiscard]] std::string encode_geolocate(
    const std::vector<analysis::ServerDcMap>& maps,
    const std::vector<int>& preferred);
[[nodiscard]] util::Result<void> decode_geolocate(
    std::string_view payload, std::vector<analysis::ServerDcMap>* maps,
    std::vector<int>* preferred);

/// Analyze stage: the full report's artifacts plus degraded-artifact names.
[[nodiscard]] std::string encode_report(const FullReport& report);
[[nodiscard]] util::Result<FullReport> decode_report(std::string_view payload);

}  // namespace ytcdn::study
