#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>

#include "study/config.hpp"
#include "study/trace_driver.hpp"

namespace ytcdn::study {

/// Binary snapshot of a simulated week ("YSS1").
///
/// Re-simulating the trace dominates every bench binary's start-up; the
/// snapshot lets a suite of thirty binaries pay that cost once. The format
/// wraps one capture::binary_log blob per vantage point (the same "YFL1"
/// records the converters use) in a header that keys the snapshot to the
/// run that produced it:
///
///   magic "YSS1" | u32 schema version | u64 config fingerprint |
///   u64 events_processed | u64 faults_injected | u32 vantage-point count
///   per VP: name | player stats | request/flow counters |
///           u64 blob size | binary_log blob
///
/// The fingerprint hashes every StudyConfig field that shapes the
/// simulation (seed, scale, catalog/capacity/probability knobs...). It
/// deliberately excludes `threads`: thread count never changes outputs.
/// Loading returns std::nullopt — never a wrong dataset — when the magic,
/// schema version or fingerprint disagree, or the payload is truncated.
///
/// Bump when the record layout, the fingerprint inputs, or anything else
/// about the byte format changes; stale snapshots are then re-simulated.
inline constexpr std::uint32_t kSnapshotSchemaVersion = 1;

/// Stable hash of the simulation-shaping StudyConfig fields (see above).
[[nodiscard]] std::uint64_t config_fingerprint(const StudyConfig& config);

/// Cache-file name encoding the key: "trace-<seed>-<scale>-v<schema>.yss".
[[nodiscard]] std::string snapshot_name(const StudyConfig& config);

/// Writes the snapshot. Runs with a fault schedule are refused (returns
/// false): faults are opt-in experiments, not worth cache slots, and the
/// schedule is not part of the fingerprint.
bool write_trace_snapshot(std::ostream& os, const StudyConfig& config,
                          const TraceOutputs& traces);
bool write_trace_snapshot(const std::filesystem::path& path,
                          const StudyConfig& config, const TraceOutputs& traces);

/// Loads a snapshot previously written for `config`. std::nullopt on any
/// key mismatch (seed/scale/schema/fingerprint), corruption, truncation,
/// or a missing file (path overload) — callers fall back to simulating.
[[nodiscard]] std::optional<TraceOutputs> load_trace_snapshot(
    std::istream& is, const StudyConfig& config);
[[nodiscard]] std::optional<TraceOutputs> load_trace_snapshot(
    const std::filesystem::path& path, const StudyConfig& config);

}  // namespace ytcdn::study
