#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <string>

#include "study/config.hpp"
#include "study/trace_driver.hpp"
#include "util/error.hpp"

namespace ytcdn::study {

/// Binary snapshot of a simulated week ("YSS2").
///
/// Re-simulating the trace dominates every bench binary's start-up; the
/// snapshot lets a suite of thirty binaries pay that cost once. The format
/// wraps one capture::binary_log blob per vantage point (the same "YFL2"
/// records the converters use) in a header that keys the snapshot to the
/// run that produced it, and closes with a whole-file CRC32 so a flipped
/// bit anywhere in the cache file is detected at load time:
///
///   magic "YSS2" | u32 schema version | u64 config fingerprint |
///   u64 events_processed | u64 faults_injected | u32 vantage-point count
///   per VP: name | player stats | request/flow counters |
///           u64 blob size | binary_log blob
///   trailer: u32 crc32 of every preceding byte
///
/// The fingerprint hashes every StudyConfig field that shapes the
/// simulation (seed, scale, catalog/capacity/probability knobs...). It
/// deliberately excludes `threads`: thread count never changes outputs.
///
/// Loading via the Result entry points reports a typed ytcdn::Error (bad
/// magic, unsupported version, CRC mismatch, fingerprint mismatch,
/// truncation — each with a byte offset); the std::optional entry points
/// map any error to std::nullopt so callers fall back to simulating.
/// load_or_quarantine_snapshot additionally renames a damaged cache file
/// to "<name>.corrupt.<k>" (bounded retention — see util::io::quarantine_file)
/// so it cannot poison the next run, and reports a one-line warning; a
/// corrupt cache is never fatal.
///
/// Bump when the record layout, the fingerprint inputs, or anything else
/// about the byte format changes; stale snapshots are then re-simulated
/// (the schema version is part of the cache-file name, so old-format files
/// are simply never opened).
inline constexpr std::uint32_t kSnapshotSchemaVersion = 3;

/// Stable hash of the simulation-shaping StudyConfig fields (see above).
[[nodiscard]] std::uint64_t config_fingerprint(const StudyConfig& config);

/// Cache-file name encoding the key: "trace-<seed>-<scale>-v<schema>.yss".
[[nodiscard]] std::string snapshot_name(const StudyConfig& config);

/// Writes the snapshot. Runs with a fault schedule are refused (returns
/// false): faults are opt-in experiments, not worth cache slots, and the
/// schedule is not part of the fingerprint. The path overload writes
/// atomically (tmp + fsync + rename), so a crashed writer never leaves a
/// torn snapshot under the final name.
bool write_trace_snapshot(std::ostream& os, const StudyConfig& config,
                          const TraceOutputs& traces);
bool write_trace_snapshot(const std::filesystem::path& path,
                          const StudyConfig& config, const TraceOutputs& traces);

/// Loads a snapshot previously written for `config`, reporting failures as
/// typed errors with byte-offset provenance.
[[nodiscard]] util::Result<TraceOutputs> load_trace_snapshot_result(
    std::istream& is, const StudyConfig& config);
[[nodiscard]] util::Result<TraceOutputs> load_trace_snapshot_result(
    const std::filesystem::path& path, const StudyConfig& config);

/// std::nullopt on any key mismatch (seed/scale/schema/fingerprint),
/// corruption, truncation, or a missing file (path overload) — callers
/// fall back to simulating.
[[nodiscard]] std::optional<TraceOutputs> load_trace_snapshot(
    std::istream& is, const StudyConfig& config);
[[nodiscard]] std::optional<TraceOutputs> load_trace_snapshot(
    const std::filesystem::path& path, const StudyConfig& config);

/// Like the path overload of load_trace_snapshot, but a file that exists
/// and fails validation (magic / version / CRC / fingerprint / truncation)
/// is quarantined as "<path>.corrupt.<k>" (keeping only the newest few —
/// util::io::quarantine_file) and reported through `*warning` (one line,
/// when non-null). Returns std::nullopt in that case — the caller
/// regenerates, exactly as for a cold cache.
[[nodiscard]] std::optional<TraceOutputs> load_or_quarantine_snapshot(
    const std::filesystem::path& path, const StudyConfig& config,
    std::string* warning);

}  // namespace ytcdn::study
