#include "study/dc_map_builder.hpp"

#include <unordered_map>
#include <unordered_set>

#include "analysis/as_analysis.hpp"
#include "net/pinger.hpp"

namespace ytcdn::study {

analysis::ServerDcMap ground_truth_dc_map(const StudyDeployment& deployment,
                                          const workload::VantagePoint& vp) {
    analysis::ServerDcMap map;
    net::Pinger pinger(deployment.rtt(),
                       deployment.config().seed ^ sim::hash_string(vp.name));

    for (const auto& dc : deployment.cdn().data_centers()) {
        if (!cdn::in_analysis_scope(dc.infra) || dc.servers.empty()) continue;
        analysis::DataCenterInfo info;
        info.name = dc.city;
        info.location = dc.location;
        info.continent = dc.continent;
        info.rtt_ms = pinger.min_rtt_ms(vp.probe_site, dc.site, 10);
        info.distance_km = geo::distance_km(vp.pop_site.location, dc.location);
        const int idx = map.add_data_center(std::move(info));
        for (const cdn::ServerId sid : dc.servers) {
            map.assign(deployment.cdn().server(sid).ip(), idx);
        }
    }
    return map;
}

CbgMappingResult cbg_dc_map(const StudyDeployment& deployment,
                            const capture::Dataset& dataset,
                            const geoloc::CbgLocator& locator,
                            const workload::VantagePoint& vp, net::Asn local_as,
                            util::ThreadPool& pool) {
    CbgMappingResult out;
    const auto scope_ips =
        analysis::analysis_scope_servers(dataset, deployment.whois(), local_as);

    // One CBG run per /24; members share the estimate. The per-subnet CBG
    // runs are independent (locate() forks its probe RNG by target id), so
    // they fan out across the pool; results are keyed back by subnet in
    // first-seen order, independent of completion order.
    std::vector<net::IpAddress> subnet_keys;
    std::vector<net::NetSite> subnet_targets;
    std::unordered_map<net::IpAddress, geoloc::CbgResult> per_subnet;
    const auto& cities = geo::CityDatabase::builtin();
    for (const net::IpAddress ip : scope_ips) {
        const net::IpAddress key = ip.slash24();
        if (per_subnet.contains(key)) continue;
        const cdn::DcId dc = deployment.cdn().dc_of_ip(ip);
        if (dc == cdn::kInvalidDc) continue;
        per_subnet.emplace(key, geoloc::CbgResult{});  // reserve the slot
        subnet_keys.push_back(key);
        subnet_targets.push_back(deployment.cdn().dc(dc).site);
    }
    const auto results = util::parallel_map(
        pool, subnet_targets,
        [&locator](const net::NetSite& target) { return locator.locate(target); });
    for (std::size_t i = 0; i < subnet_keys.size(); ++i) {
        per_subnet[subnet_keys[i]] = results[i];
    }

    out.located.reserve(scope_ips.size());
    for (const net::IpAddress ip : scope_ips) {
        const auto it = per_subnet.find(ip.slash24());
        if (it == per_subnet.end()) continue;
        geoloc::LocatedServer ls;
        ls.ip = ip;
        ls.cbg = it->second;
        ls.city = geoloc::snap_to_city(ls.cbg, cities);
        out.located.push_back(ls);
    }

    out.clusters = geoloc::cluster_servers(out.located);

    net::Pinger pinger(deployment.rtt(),
                       deployment.config().seed ^ sim::hash_string(vp.name) ^ 0xCB6ull);
    for (const auto& cluster : out.clusters) {
        analysis::DataCenterInfo info;
        info.name = cluster.city_name;
        info.location = cluster.location;
        info.continent = cluster.continent;
        info.distance_km = geo::distance_km(vp.pop_site.location, cluster.location);
        // Probe RTT: minimum over the cluster's member subnets' true sites
        // (the probe pings the addresses; the network answers from wherever
        // they really are).
        double best = 1e18;
        std::unordered_set<net::IpAddress> seen_subnets;
        for (const net::IpAddress ip : cluster.servers) {
            if (!seen_subnets.insert(ip.slash24()).second) continue;
            const cdn::DcId dc = deployment.cdn().dc_of_ip(ip);
            if (dc == cdn::kInvalidDc) continue;
            best = std::min(best,
                            pinger.min_rtt_ms(vp.probe_site,
                                              deployment.cdn().dc(dc).site, 10));
        }
        info.rtt_ms = best;
        const int idx = out.map.add_data_center(std::move(info));
        for (const net::IpAddress ip : cluster.servers) out.map.assign(ip, idx);
    }
    return out;
}

}  // namespace ytcdn::study
