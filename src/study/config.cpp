#include "study/config.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/parallel.hpp"

namespace ytcdn::study {

std::size_t StudyConfig::effective_threads() const {
    return threads > 0 ? static_cast<std::size_t>(threads)
                       : util::default_thread_count();
}

bool StudyConfig::effective_strict_artifacts() const {
    if (strict_artifacts) return true;
    const char* env = std::getenv("YTCDN_STRICT_ARTIFACTS");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

std::size_t StudyConfig::effective_catalog_size() const {
    if (catalog_size != 0) return catalog_size;
    return std::max<std::size_t>(
        20'000, static_cast<std::size_t>(std::llround(400'000.0 * scale)));
}

int StudyConfig::effective_server_capacity() const {
    if (server_capacity != 0) return server_capacity;
    return std::max(2, static_cast<int>(std::llround(8.0 * scale + 2.0)));
}

std::size_t StudyConfig::replicate_top_ranks() const {
    return static_cast<std::size_t>(
        std::llround(replicate_fraction * static_cast<double>(effective_catalog_size())));
}

double mean_sessions_per_s(const VantageTargets& t, double scale) {
    return static_cast<double>(t.flows) * scale / kFlowsPerSession / kTraceSeconds;
}

}  // namespace ytcdn::study
