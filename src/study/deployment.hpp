#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cdn/catalog.hpp"
#include "cdn/cdn.hpp"
#include "cdn/dns.hpp"
#include "geo/city.hpp"
#include "net/as_registry.hpp"
#include "net/rtt_model.hpp"
#include "sim/random.hpp"
#include "study/config.hpp"
#include "workload/vantage_point.hpp"

namespace ytcdn::study {

/// The fully wired world of the reproduction: the simulated Internet's RTT
/// model, the YouTube CDN (33 data centers + legacy pools), the DNS system
/// with per-resolver policies, the video catalog with its promotion
/// schedule, the whois registry, and the five instrumented vantage points.
///
/// Construction is deterministic in config.seed; every paper experiment
/// starts from one of these.
class StudyDeployment {
public:
    explicit StudyDeployment(const StudyConfig& config);

    StudyDeployment(const StudyDeployment&) = delete;
    StudyDeployment& operator=(const StudyDeployment&) = delete;

    [[nodiscard]] const StudyConfig& config() const noexcept { return config_; }
    [[nodiscard]] const net::RttModel& rtt() const noexcept { return *rtt_; }
    [[nodiscard]] cdn::Cdn& cdn() noexcept { return *cdn_; }
    [[nodiscard]] const cdn::Cdn& cdn() const noexcept { return *cdn_; }
    [[nodiscard]] cdn::DnsSystem& dns() noexcept { return *dns_; }
    [[nodiscard]] cdn::VideoCatalog& catalog() noexcept { return *catalog_; }
    [[nodiscard]] const cdn::VideoCatalog& catalog() const noexcept { return *catalog_; }
    [[nodiscard]] const net::AsRegistry& whois() const noexcept { return whois_; }
    [[nodiscard]] sim::Rng root_rng() const noexcept { return sim::Rng{config_.seed}; }

    [[nodiscard]] std::size_t num_vantage_points() const noexcept { return vps_.size(); }
    [[nodiscard]] workload::VantagePoint& vantage(std::size_t i);
    [[nodiscard]] const workload::VantagePoint& vantage(std::size_t i) const;
    [[nodiscard]] workload::VantagePoint& vantage(std::string_view name);

    /// The AS the vantage point's clients live in (Table II's "Same AS").
    [[nodiscard]] net::Asn local_as(std::size_t vp_index) const;

    /// Ground-truth data center id by city name; kInvalidDc if absent.
    [[nodiscard]] cdn::DcId dc_by_city(std::string_view city) const noexcept;

    /// The promoted ("video of the day") ranks, one per promoted day.
    [[nodiscard]] const std::vector<std::size_t>& promoted_ranks() const noexcept {
        return promoted_ranks_;
    }

private:
    void build_cdn(sim::Rng& rng);
    void build_catalog(sim::Rng& rng);
    void build_dns_and_vantage_points(sim::Rng& rng);

    [[nodiscard]] std::unique_ptr<cdn::SelectionPolicy> make_edge_policy(
        std::vector<cdn::DcId> ranked, double p_secondary, double p_legacy,
        double p_other);

    StudyConfig config_;
    std::unique_ptr<net::RttModel> rtt_;
    std::unique_ptr<cdn::Cdn> cdn_;
    std::unique_ptr<cdn::DnsSystem> dns_;
    std::unique_ptr<cdn::VideoCatalog> catalog_;
    net::AsRegistry whois_;
    std::vector<workload::VantagePoint> vps_;
    std::vector<net::Asn> vp_as_;
    std::vector<cdn::DcId> legacy_dcs_;
    std::vector<cdn::DcId> other_as_dcs_;
    std::vector<std::size_t> promoted_ranks_;
};

}  // namespace ytcdn::study
