#include "study/event_engine_driver.hpp"

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "capture/sniffer.hpp"
#include "sim/fault_injector.hpp"
#include "util/intern.hpp"
#include "workload/noise_source.hpp"
#include "workload/request_generator.hpp"

namespace ytcdn::study {

EventEngineDriver::EventEngineDriver(StudyDeployment& deployment,
                                     const workload::Player::Config& player_config)
    : deployment_(&deployment), player_config_(player_config) {}

TraceOutputs EventEngineDriver::run(sim::SimTime horizon) {
    auto& dep = *deployment_;
    const std::size_t n = dep.num_vantage_points();
    if (!sinks_.empty() && sinks_.size() != n) {
        throw std::invalid_argument(
            "EventEngineDriver: flow sinks must match vantage-point count");
    }
    const std::size_t shards = num_shards_ == 0 ? n : num_shards_;
    sim::EventEngine engine(shards);
    sim::Rng rng = dep.root_rng().fork("trace-driver");

    std::vector<std::unique_ptr<capture::Sniffer>> sniffers;
    std::vector<std::unique_ptr<workload::Player>> players;
    std::vector<std::unique_ptr<workload::RequestGenerator>> generators;
    std::vector<std::unique_ptr<workload::NoiseSource>> noise;
    sniffers.reserve(n);
    players.reserve(n);
    generators.reserve(n);
    noise.reserve(n);

    for (std::size_t i = 0; i < n; ++i) {
        auto& vp = dep.vantage(i);
        sim::Simulator& shard = engine.shard(i % engine.num_shards());
        sniffers.push_back(std::make_unique<capture::Sniffer>(vp.name));
        if (!sinks_.empty()) sniffers.back()->set_sink(sinks_[i]);
        workload::Player::Config player_cfg = player_config_;
        // Same per-VP configuration as TraceDriver::run — EU2 keeps the
        // legacy full-quality path, non-US networks get the lighter
        // resolution mix and earlier abandonment of Table I.
        if (vp.name == "EU2") player_cfg.legacy_full_quality = true;
        workload::RequestGenerator::Config gen_cfg;
        gen_cfg.zipf_exponent = dep.config().zipf_exponent;
        gen_cfg.p_promoted = dep.config().p_promoted;
        if (vp.name != "US-Campus") {
            gen_cfg.resolution_weights = {0.25, 0.65, 0.08, 0.02, 0.0};
            player_cfg.p_abort = 0.60;
            player_cfg.max_abort_watch_frac = 0.70;
        }
        players.push_back(std::make_unique<workload::Player>(
            shard, dep.cdn(), dep.dns(), *sniffers.back(), player_cfg,
            rng.fork("player-" + vp.name),
            sim::TraceStream(tracer_, static_cast<std::uint8_t>(i))));
        generators.push_back(std::make_unique<workload::RequestGenerator>(
            shard, vp, *players.back(), dep.catalog(), gen_cfg,
            rng.fork("generator-" + vp.name)));
        noise.push_back(std::make_unique<workload::NoiseSource>(
            shard, vp, *sniffers.back(), workload::NoiseSource::Config{},
            rng.fork("noise-" + vp.name)));
    }

    // Faults are deployment-wide; they live on shard 0 so their timestamps
    // enter the global merge exactly once, and the shard-0 tie-break keeps
    // them ordered ahead of any same-instant workload event — matching the
    // legacy driver, where the injector armed before the generators and so
    // held the earlier queue sequence number.
    std::unique_ptr<sim::FaultInjector> injector;
    if (!dep.config().fault_schedule.empty()) {
        injector = std::make_unique<sim::FaultInjector>(
            engine.shard(0), dep.config().fault_schedule);
        bind_fault_handlers(*injector, dep, players);
        injector->set_trace(sim::TraceStream(tracer_, 0xFF));
        injector->arm();
    }

    for (auto& g : generators) g->run(horizon);
    for (auto& s : noise) s->run(horizon);
    engine.run_until(horizon + 2.0 * sim::kHour);

    TraceOutputs out;
    out.events_processed = engine.events_processed();
    out.faults_injected = injector ? injector->injected() : 0;
    out.datasets.reserve(n);
    // Identical join to TraceDriver: interner shards fold in VP order so
    // merged hostname ids are capture-order independent.
    util::Interner hostnames;
    for (std::size_t i = 0; i < n; ++i) {
        out.flows_observed.push_back(sniffers[i]->flows_observed());
        out.flows_ignored.push_back(sniffers[i]->flows_ignored());
        (void)hostnames.merge_map(sniffers[i]->hosts());
        capture::Dataset ds;
        ds.name = dep.vantage(i).name;
        ds.records = sniffers[i]->take_records();
        ds.sort_by_time();
        out.datasets.push_back(std::move(ds));
        out.player_stats.push_back(players[i]->stats());
        out.requests_generated.push_back(generators[i]->requests_generated());
    }
    out.unique_hosts = hostnames.size();
    return out;
}

}  // namespace ytcdn::study
