#pragma once

#include <vector>

#include "capture/dataset.hpp"
#include "sim/simulator.hpp"
#include "sim/tracer.hpp"
#include "study/deployment.hpp"
#include "workload/player.hpp"

namespace ytcdn::study {

/// Everything a trace run produces, per vantage point.
struct TraceOutputs {
    std::vector<capture::Dataset> datasets;         // one per vantage point
    std::vector<workload::Player::Stats> player_stats;
    std::vector<std::uint64_t> requests_generated;
    /// Total flows the sniffer saw on the wire (YouTube + background noise)
    /// and how many the DPI classifier rejected, per vantage point.
    std::vector<std::uint64_t> flows_observed;
    std::vector<std::uint64_t> flows_ignored;
    std::uint64_t events_processed = 0;
    /// Fault events injected from the config's schedule (0 on baselines).
    std::uint64_t faults_injected = 0;
    /// Distinct content-server hostnames DPI saw across all vantage points
    /// (the canonical interner's size after the ordered per-VP merge). Zero
    /// on snapshot-cache loads, like the other capture-side counters.
    std::uint64_t unique_hosts = 0;
};

/// Binds a fault schedule's named targets (data-center cities, server
/// hostnames, resolver names) to the deployment's CDN/DNS health machines.
/// Shared by the legacy TraceDriver and the event-engine driver so both
/// react to the same schedule identically; unknown targets throw — a chaos
/// experiment aimed at a typo'd city must fail loudly, not run a clean
/// baseline by accident.
void bind_fault_handlers(sim::FaultInjector& injector, StudyDeployment& dep,
                         std::vector<std::unique_ptr<workload::Player>>& players);

/// Runs the paper's capture campaign: all five vantage points generate
/// traffic against the shared CDN on one discrete-event simulator (server
/// load and cache state are global, as in reality), while a Tstat-like
/// sniffer at each edge records its own dataset.
class TraceDriver {
public:
    explicit TraceDriver(StudyDeployment& deployment)
        : TraceDriver(deployment, workload::Player::Config{}) {}

    /// Overrides the Flash-player behaviour for every vantage point (DNS
    /// TTL, abort rates, ... — used by the ablation benches).
    TraceDriver(StudyDeployment& deployment, const workload::Player::Config& player_config);

    /// Routes structured sim events to `tracer` (owned by the caller; may
    /// be null to disable). Each vantage point's player streams under its
    /// index; fault injections stream under vantage point 0xFF. Tracing
    /// consumes no randomness, so traced and untraced runs produce
    /// byte-identical datasets.
    void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

    /// Simulates `horizon` seconds (default: the paper's one week) and
    /// returns the per-vantage-point datasets, sorted by time.
    [[nodiscard]] TraceOutputs run(sim::SimTime horizon = sim::kWeek);

private:
    StudyDeployment* deployment_;
    workload::Player::Config player_config_;
    sim::Tracer* tracer_ = nullptr;
};

}  // namespace ytcdn::study
