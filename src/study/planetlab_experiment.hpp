#pragma once

#include <string>
#include <vector>

#include "geoloc/landmark.hpp"
#include "study/deployment.hpp"

namespace ytcdn::study {

/// The controlled active experiment of Section VII-C (Figs 17-18): a fresh
/// test video is uploaded, then downloaded from PlanetLab nodes around the
/// world every 30 minutes for 12 hours; each download records the RTT to
/// the server that actually delivered the content.
struct PlanetLabConfig {
    int nodes = 45;
    int rounds = 25;              // every 30 min for ~12 h
    double interval_s = 1800.0;
    double video_duration_s = 180.0;
};

struct PlanetLabNodeResult {
    std::string node;
    std::string preferred_city;            // node's preferred data center
    std::vector<double> rtt_ms;            // one per round
    std::vector<std::string> served_from;  // serving data center per round
};

struct PlanetLabResult {
    std::vector<PlanetLabNodeResult> nodes;
    /// RTT(first download) / RTT(second download), one per node — Fig. 18.
    std::vector<double> rtt_ratio;
};

/// Runs the experiment against the deployment's CDN. `landmarks` supplies
/// the candidate node set; nodes are chosen spread across it so that most
/// have distinct preferred data centers, as the paper did. Mutates CDN
/// cache state (content pulls), as the real experiment does.
[[nodiscard]] PlanetLabResult run_planetlab_experiment(
    StudyDeployment& deployment, const std::vector<geoloc::Landmark>& landmarks,
    const PlanetLabConfig& config = {});

}  // namespace ytcdn::study
