#include "study/supervisor.hpp"

#include <chrono>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "capture/flow_log.hpp"
#include "study/snapshot.hpp"
#include "study/study_run.hpp"
#include "util/crc32.hpp"
#include "util/host_clock.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"

namespace ytcdn::study {

namespace {

struct SupervisorMetrics {
    util::metrics::Counter stages_run =
        util::metrics::counter("supervisor.stages_run");
    util::metrics::Counter stages_resumed =
        util::metrics::counter("supervisor.stages_resumed");
    util::metrics::Counter retries =
        util::metrics::counter("supervisor.retries");
    util::metrics::Counter stages_degraded =
        util::metrics::counter("supervisor.stages_degraded");
    util::metrics::Counter deadline_exceeded =
        util::metrics::counter("supervisor.guard_deadline_exceeded");
    util::metrics::Counter rss_exceeded =
        util::metrics::counter("supervisor.guard_rss_exceeded");
    util::metrics::Gauge peak_rss =
        util::metrics::gauge("supervisor.peak_rss_kb");
};

SupervisorMetrics& supervisor_metrics() {
    static SupervisorMetrics metrics;
    return metrics;
}

std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t bits_of(double v) {
    std::uint64_t out;
    static_assert(sizeof(out) == sizeof(v));
    __builtin_memcpy(&out, &v, sizeof(out));
    return out;
}

/// config_fingerprint + every report option that shapes report bytes, so a
/// resume under different flags is rejected as a KeyMismatch.
std::uint64_t fingerprint_of(const StudyConfig& config,
                             const ReportOptions& report) {
    std::uint64_t h = config_fingerprint(config);
    const auto fold = [&h](std::uint64_t v) { h = mix64(h ^ v); };
    fold(report.include_table3 ? 1 : 0);
    fold(static_cast<std::uint64_t>(report.landmarks.north_america));
    fold(static_cast<std::uint64_t>(report.landmarks.europe));
    fold(static_cast<std::uint64_t>(report.landmarks.asia));
    fold(static_cast<std::uint64_t>(report.landmarks.south_america));
    fold(static_cast<std::uint64_t>(report.landmarks.oceania));
    fold(static_cast<std::uint64_t>(report.landmarks.africa));
    fold(static_cast<std::uint64_t>(report.cbg.calibration_probes));
    fold(static_cast<std::uint64_t>(report.cbg.target_probes));
    fold(static_cast<std::uint64_t>(report.cbg.grid));
    fold(static_cast<std::uint64_t>(report.cbg.max_circles));
    fold(bits_of(report.cbg.relax_step));
    fold(static_cast<std::uint64_t>(report.cbg.max_relax_iters));
    return h;
}

std::string hex64(std::uint64_t v) {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
        v >>= 4;
    }
    return out;
}

const char* status_word(const StageStatus& st) {
    if (st.from_checkpoint) return "resumed";
    if (st.degraded) return "degraded";
    if (st.completed) return "ok";
    if (st.attempts == 0) return "skipped";
    return "failed";
}

/// Deterministic given the same stage outcomes: no wall times, no RSS
/// numbers (those go to util::metrics and the tracer instead), so two runs
/// that took the same path produce the same manifest bytes.
std::string render_manifest(std::uint64_t fingerprint,
                            const std::vector<StageStatus>& stages,
                            const std::vector<std::string>& degraded,
                            bool completed) {
    std::ostringstream os;
    os << "# ytcdn supervised study run\n";
    os << "manifest_version 1\n";
    os << "fingerprint " << hex64(fingerprint) << '\n';
    std::uint64_t retries = 0;
    for (const auto& st : stages) {
        os << "stage " << to_string(st.stage) << " status=" << status_word(st)
           << " attempts=" << st.attempts;
        if (st.deadline_exceeded) os << " deadline_exceeded=1";
        if (st.rss_exceeded) os << " rss_exceeded=1";
        if (!st.error.empty() && !st.completed) {
            os << " error=\"" << st.error << '"';
        }
        os << '\n';
        if (st.attempts > 1) retries += static_cast<std::uint64_t>(st.attempts - 1);
    }
    os << "retries_total " << retries << '\n';
    for (const auto& name : degraded) os << "degraded " << name << '\n';
    os << "degraded_total " << degraded.size() << '\n';
    os << "status " << (completed ? "complete" : "interrupted") << '\n';
    return os.str();
}

}  // namespace

StageOutcome run_supervised(std::string_view name, const StagePolicy& policy,
                            const std::function<void()>& body,
                            std::ostream* log) {
    auto& metrics = supervisor_metrics();
    StageOutcome out;
    out.name = name;
    const int attempts_allowed = policy.attempts < 1 ? 1 : policy.attempts;
    const double t0 = util::host_clock::monotonic_s();
    std::optional<Error> last_error;
    for (out.attempts = 1; out.attempts <= attempts_allowed; ++out.attempts) {
        if (out.attempts > 1) {
            metrics.retries.inc();
            if (log) {
                *log << "[supervised] retrying '" << out.name << "' (attempt "
                     << out.attempts
                     << "): " << (last_error ? last_error->what() : "")
                     << '\n';
            }
            const double delay = policy.backoff_s *
                                 static_cast<double>(1 << (out.attempts - 2));
            if (delay > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(delay));
            }
        }
        try {
            body();
            out.completed = true;
            break;
        } catch (const Error& e) {
            last_error = e;
            out.error = e.what();
            out.error_code = e.code();
        } catch (const std::exception& e) {
            last_error = Error(ErrorCode::Io, e.what());
            out.error = e.what();
            out.error_code = ErrorCode::Io;
        }
    }
    if (out.attempts > attempts_allowed) out.attempts = attempts_allowed;
    out.wall_s = util::host_clock::monotonic_s() - t0;
    out.peak_rss_kb = util::host_clock::peak_rss_kb();
    metrics.peak_rss.update_max(out.peak_rss_kb);
    if (policy.deadline_s > 0.0 && out.wall_s > policy.deadline_s) {
        out.deadline_exceeded = true;
        metrics.deadline_exceeded.inc();
    }
    if (policy.max_rss_mib > 0.0 &&
        static_cast<double>(out.peak_rss_kb) > policy.max_rss_mib * 1024.0) {
        out.rss_exceeded = true;
        metrics.rss_exceeded.inc();
    }
    return out;
}

Supervisor::Supervisor(StudyConfig config, SupervisorOptions options)
    : config_(std::move(config)),
      options_(std::move(options)),
      fingerprint_(fingerprint_of(config_, options_.report)) {}

util::Result<SupervisorResult> Supervisor::run() {
    namespace io = util::io;
    if (options_.run_dir.empty()) {
        return Error(ErrorCode::InvalidArgument,
                     "Supervisor: run_dir must be set");
    }
    const auto& run_dir = options_.run_dir;
    std::error_code ec;
    std::filesystem::create_directories(run_dir / "checkpoints", ec);
    std::filesystem::create_directories(run_dir / "logs", ec);
    std::filesystem::create_directories(run_dir / "artifacts", ec);

    // A scripted sim fault schedule is excluded from config_fingerprint
    // (mirroring YSS2), so checkpoints cannot be keyed to it — disable them
    // rather than risk resuming a healthy run's checkpoint into a fault run.
    const bool checkpoints =
        options_.checkpoints && config_.fault_schedule.empty();
    const bool strict = config_.effective_strict_artifacts();

    SupervisorResult result;
    result.report_path = run_dir / "report.txt";
    result.manifest_path = run_dir / "manifest.txt";

    const auto warn = [&](std::string message) {
        if (options_.log) *options_.log << "[supervisor] " << message << '\n';
        result.warnings.push_back(std::move(message));
    };
    const auto note = [&](const std::string& message) {
        if (options_.log) *options_.log << "[supervisor] " << message << '\n';
    };

    // Writes a checkpoint; failure to persist one never fails the run (the
    // resume just recomputes the stage), so it degrades to a warning.
    const auto save_checkpoint = [&](Stage stage, std::string_view payload) {
        if (!checkpoints) return;
        auto written = write_checkpoint(checkpoint_path(run_dir, stage),
                                        fingerprint_, stage, payload);
        if (!written) {
            warn("checkpoint for stage '" + std::string(to_string(stage)) +
                 "' not written: " + written.error().what());
        }
    };
    const auto try_resume = [&](Stage stage) -> std::optional<std::string> {
        if (!checkpoints || !options_.resume) return std::nullopt;
        std::string warning;
        auto payload = load_or_quarantine_checkpoint(
            checkpoint_path(run_dir, stage), fingerprint_, stage, &warning);
        if (!warning.empty()) warn(warning);
        return payload;
    };

    util::ThreadPool pool(config_.effective_threads());

    struct PipelineState {
        TraceOutputs traces;
        std::optional<StudyRun> run;
        std::optional<FullReport> report;
    } state;
    // Render-stage degradations are rebuilt on every attempt so a retried
    // stage does not duplicate entries.
    std::vector<std::string> degraded_render;

    const auto simulate_body = [&](StageStatus& st) {
        if (auto payload = try_resume(Stage::Simulate)) {
            std::istringstream is(*payload);
            auto loaded = load_trace_snapshot_result(is, config_);
            if (loaded) {
                state.traces = std::move(loaded).value();
                st.from_checkpoint = true;
                return;
            }
            warn("simulate checkpoint payload rejected (" +
                 std::string(loaded.error().what()) + "); re-simulating");
        }
        auto deployment = std::make_unique<StudyDeployment>(config_);
        TraceDriver driver(*deployment);
        state.traces = driver.run();
        if (checkpoints) {
            std::ostringstream os;
            if (write_trace_snapshot(os, config_, state.traces)) {
                save_checkpoint(Stage::Simulate, os.str());
            }
        }
    };

    const auto capture_body = [&](StageStatus& st) {
        const auto& datasets = state.traces.datasets;
        const auto log_path = [&](const std::string& name) {
            return run_dir / "logs" / (name + ".yfl");
        };
        if (auto payload = try_resume(Stage::Capture)) {
            auto entries = decode_capture(*payload);
            bool valid = entries.ok() && entries.value().size() == datasets.size();
            if (valid) {
                for (const auto& e : entries.value()) {
                    auto bytes = io::read_file(log_path(e.name));
                    if (!bytes || bytes.value().size() != e.size ||
                        util::crc32(bytes.value()) != e.crc) {
                        valid = false;
                        break;
                    }
                }
            }
            if (valid) {
                st.from_checkpoint = true;
                return;
            }
            warn("capture checkpoint did not match the on-disk logs; "
                 "rewriting them");
        }
        std::vector<CaptureEntry> entries;
        entries.reserve(datasets.size());
        for (const auto& ds : datasets) {
            std::ostringstream os;
            capture::write_flow_log(os, ds.records);
            const std::string bytes = os.str();
            io::write_file_atomic(log_path(ds.name), bytes)
                .context("capture log " + ds.name)
                .value_or_throw();
            entries.push_back({ds.name, bytes.size(), util::crc32(bytes)});
        }
        save_checkpoint(Stage::Capture, encode_capture(entries));
    };

    const auto geolocate_body = [&](StageStatus& st) {
        if (auto payload = try_resume(Stage::Geolocate)) {
            std::vector<analysis::ServerDcMap> maps;
            std::vector<int> preferred;
            auto decoded = decode_geolocate(*payload, &maps, &preferred);
            if (decoded && maps.size() == state.traces.datasets.size()) {
                StudyRun run;
                run.config = config_;
                run.deployment = std::make_unique<StudyDeployment>(config_);
                run.traces = std::move(state.traces);
                run.maps = std::move(maps);
                run.preferred = std::move(preferred);
                for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
                    run.vp_index_by_name.emplace(run.traces.datasets[i].name, i);
                }
                state.run = std::move(run);
                st.from_checkpoint = true;
                return;
            }
            warn(std::string("geolocate checkpoint payload rejected") +
                 (decoded ? "" : std::string(" (") + decoded.error().what() + ")") +
                 "; re-deriving maps");
        }
        state.run = assemble_study_run(config_, std::move(state.traces), pool);
        save_checkpoint(Stage::Geolocate,
                        encode_geolocate(state.run->maps, state.run->preferred));
    };

    const auto analyze_body = [&](StageStatus& st) {
        if (auto payload = try_resume(Stage::Analyze)) {
            auto decoded = decode_report(*payload);
            if (decoded) {
                state.report = std::move(decoded).value();
                st.from_checkpoint = true;
                return;
            }
            warn("analyze checkpoint payload rejected (" +
                 std::string(decoded.error().what()) + "); re-analyzing");
        }
        state.report = make_full_report(*state.run, pool, options_.report);
        save_checkpoint(Stage::Analyze, encode_report(*state.report));
    };

    const auto render_body = [&](StageStatus&) {
        degraded_render.clear();
        io::write_file_atomic(result.report_path, state.report->render())
            .context("report.txt")
            .value_or_throw();
        for (const auto& artifact : state.report->artifacts) {
            auto written = io::write_file_atomic(
                run_dir / "artifacts" / artifact.name, artifact.content);
            if (!written) {
                if (strict) {
                    std::move(written)
                        .context("artifact file " + artifact.name)
                        .value_or_throw();
                }
                degraded_render.push_back("artifacts/" + artifact.name);
                warn("artifact file " + artifact.name +
                     " not written: " + written.error().what());
            }
        }
    };

    constexpr Stage kOrder[kNumStages] = {Stage::Simulate, Stage::Capture,
                                          Stage::Geolocate, Stage::Analyze,
                                          Stage::Render};
    auto& metrics = supervisor_metrics();
    bool interrupted = false;

    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (options_.max_stages != 0 && i >= options_.max_stages) {
            interrupted = true;
            // Record the never-started stages so the manifest shows where
            // the run stopped.
            for (std::size_t j = i; j < kNumStages; ++j) {
                StageStatus skipped;
                skipped.stage = kOrder[j];
                result.stages.push_back(skipped);
            }
            break;
        }
        StageStatus st;
        st.stage = kOrder[i];
        const StageOutcome outcome = run_supervised(
            to_string(st.stage), options_.policy,
            [&] {
                switch (st.stage) {
                    case Stage::Simulate: simulate_body(st); break;
                    case Stage::Capture: capture_body(st); break;
                    case Stage::Geolocate: geolocate_body(st); break;
                    case Stage::Analyze: analyze_body(st); break;
                    case Stage::Render: render_body(st); break;
                    case Stage::Service: break;  // not a pipeline stage
                }
            },
            options_.log);
        st.attempts = outcome.attempts;
        st.completed = outcome.completed;
        st.error = outcome.error;
        st.wall_s = outcome.wall_s;
        st.peak_rss_kb = outcome.peak_rss_kb;
        metrics.stages_run.inc();
        if (st.from_checkpoint) metrics.stages_resumed.inc();

        // Soft resource guards: report (metrics + tracer + manifest flags),
        // never abort — the study's answer is still worth having late.
        // run_supervised already counted them; here they become warnings and
        // Guard trace events.
        if (outcome.deadline_exceeded) {
            st.deadline_exceeded = true;
            if (options_.tracer) {
                options_.tracer->emit(
                    0.0, sim::TraceEventType::Guard, 0xFE, 0, /*code=*/2,
                    static_cast<std::int64_t>(st.wall_s * 1000.0),
                    options_.tracer->intern(to_string(st.stage)),
                    options_.policy.deadline_s);
            }
            warn("stage '" + std::string(to_string(st.stage)) +
                 "' exceeded its deadline");
        }
        if (outcome.rss_exceeded) {
            st.rss_exceeded = true;
            if (options_.tracer) {
                options_.tracer->emit(
                    0.0, sim::TraceEventType::Guard, 0xFE, 0, /*code=*/1,
                    static_cast<std::int64_t>(st.peak_rss_kb),
                    options_.tracer->intern(to_string(st.stage)),
                    options_.policy.max_rss_mib * 1024.0);
            }
            warn("stage '" + std::string(to_string(st.stage)) +
                 "' exceeded the peak-RSS ceiling");
        }

        if (!st.completed) {
            // Graceful degradation: capture output is a side artifact the
            // report does not depend on, so its loss degrades the run. The
            // other stages are required — without them there is no report.
            if (st.stage == Stage::Capture && !strict) {
                st.degraded = true;
                metrics.stages_degraded.inc();
                result.degraded.push_back("capture");
                warn("stage 'capture' failed after " +
                     std::to_string(st.attempts) +
                     " attempts; continuing without flow logs: " + st.error);
                result.stages.push_back(std::move(st));
                continue;
            }
            result.stages.push_back(st);
            for (std::size_t j = i + 1; j < kNumStages; ++j) {
                StageStatus skipped;
                skipped.stage = kOrder[j];
                result.stages.push_back(skipped);
            }
            // Persist what is known before reporting failure: the manifest
            // is the post-mortem artifact.
            auto manifest = io::write_file_atomic(
                result.manifest_path,
                render_manifest(fingerprint_, result.stages, result.degraded,
                                false));
            if (!manifest) {
                warn(std::string("manifest not written: ") +
                     manifest.error().what());
            }
            return Error(outcome.error_code,
                         "stage '" + std::string(to_string(st.stage)) +
                             "' failed after " + std::to_string(st.attempts) +
                             " attempts: " + st.error);
        }
        note("stage '" + std::string(to_string(st.stage)) + "' " +
             status_word(st) + " (attempts " + std::to_string(st.attempts) +
             ")");
        result.stages.push_back(std::move(st));
    }

    if (state.report) {
        result.degraded.insert(result.degraded.end(),
                               state.report->degraded.begin(),
                               state.report->degraded.end());
    }
    result.degraded.insert(result.degraded.end(), degraded_render.begin(),
                           degraded_render.end());
    result.completed = !interrupted;

    // The manifest itself gets a small retry: it is the artifact chaos runs
    // are judged by, so a transient injected fault must not take it out.
    util::Result<void> manifest_written;
    for (int attempt = 0; attempt < 3; ++attempt) {
        manifest_written = io::write_file_atomic(
            result.manifest_path,
            render_manifest(fingerprint_, result.stages, result.degraded,
                            result.completed));
        if (manifest_written) break;
    }
    if (!manifest_written) {
        warn(std::string("manifest not written after 3 attempts: ") +
             manifest_written.error().what());
    }
    return result;
}

}  // namespace ytcdn::study
