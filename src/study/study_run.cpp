#include "study/study_run.hpp"

#include <stdexcept>

#include "analysis/preferred_dc.hpp"
#include "study/dc_map_builder.hpp"

namespace ytcdn::study {

std::size_t StudyRun::vp_index(std::string_view name) const {
    for (std::size_t i = 0; i < traces.datasets.size(); ++i) {
        if (traces.datasets[i].name == name) return i;
    }
    throw std::out_of_range("StudyRun::vp_index: unknown dataset");
}

const capture::Dataset& StudyRun::dataset(std::string_view name) const {
    return traces.datasets[vp_index(name)];
}

StudyRun run_study(const StudyConfig& config) {
    StudyRun run;
    run.config = config;
    run.deployment = std::make_unique<StudyDeployment>(config);
    TraceDriver driver(*run.deployment);
    run.traces = driver.run();

    const std::size_t n = run.deployment->num_vantage_points();
    run.maps.reserve(n);
    run.preferred.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        run.maps.push_back(ground_truth_dc_map(*run.deployment, run.deployment->vantage(i)));
        run.preferred.push_back(
            analysis::preferred_dc(run.traces.datasets[i], run.maps.back()));
    }
    return run;
}

}  // namespace ytcdn::study
