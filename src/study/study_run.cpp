#include "study/study_run.hpp"

#include <stdexcept>
#include <tuple>
#include <utility>

#include "analysis/preferred_dc.hpp"
#include "study/dc_map_builder.hpp"
#include "study/event_engine_driver.hpp"
#include "util/metrics.hpp"

namespace ytcdn::study {

namespace {

struct StudyMetrics {
    util::metrics::Counter runs = util::metrics::counter("study.runs");
    util::metrics::Counter maps_derived = util::metrics::counter("study.maps_derived");
};

StudyMetrics& study_metrics() {
    static StudyMetrics metrics;
    return metrics;
}

}  // namespace

std::size_t StudyRun::vp_index(std::string_view name) const {
    if (!vp_index_by_name.empty()) {
        const auto it = vp_index_by_name.find(std::string(name));
        if (it != vp_index_by_name.end()) return it->second;
        throw std::out_of_range("StudyRun::vp_index: unknown dataset");
    }
    // Hand-assembled runs (tests) may not have built the index.
    for (std::size_t i = 0; i < traces.datasets.size(); ++i) {
        if (traces.datasets[i].name == name) return i;
    }
    throw std::out_of_range("StudyRun::vp_index: unknown dataset");
}

const capture::Dataset& StudyRun::dataset(std::string_view name) const {
    return traces.datasets[vp_index(name)];
}

namespace {

StudyRun derive_run(const StudyConfig& config,
                    std::unique_ptr<StudyDeployment> deployment,
                    TraceOutputs traces, util::ThreadPool& pool) {
    StudyRun run;
    run.config = config;
    run.deployment = std::move(deployment);
    run.traces = std::move(traces);

    // Each vantage point's map derivation pings with its own Pinger seeded
    // from (config seed, vp name) — independent tasks, input-order results.
    // The closure captures only `run`, read-only; ytcdn-parallel-shared-mutation
    // verifies nothing shared is written from the tasks.
    const std::size_t n = run.deployment->num_vantage_points();
    auto derived = util::parallel_map_indexed(pool, n, [&run](std::size_t i) {
        auto map = ground_truth_dc_map(*run.deployment, run.deployment->vantage(i));
        const int preferred = analysis::preferred_dc(run.traces.datasets[i], map);
        return std::pair<analysis::ServerDcMap, int>(std::move(map), preferred);
    });
    run.maps.reserve(n);
    run.preferred.reserve(n);
    for (auto& [map, preferred] : derived) {
        run.maps.push_back(std::move(map));
        run.preferred.push_back(preferred);
    }
    for (std::size_t i = 0; i < run.traces.datasets.size(); ++i) {
        run.vp_index_by_name.emplace(run.traces.datasets[i].name, i);
    }
    // SoA mirrors + per-flow dc columns + CSR session tables, one bundle
    // per vantage point. Independent per-VP tasks; results in input order.
    auto bundles = util::parallel_map_indexed(pool, n, [&run](std::size_t i) {
        auto table = capture::FlowTable::from_dataset(run.traces.datasets[i]);
        auto dc = analysis::dc_column(table, run.maps[i]);
        auto sessions = analysis::SessionTable::build(table, 1.0);
        return std::tuple(std::move(table), std::move(dc), std::move(sessions));
    });
    run.tables.reserve(n);
    run.dc_columns.reserve(n);
    run.sessions.reserve(n);
    for (auto& [table, dc, sessions] : bundles) {
        run.tables.push_back(std::move(table));
        run.dc_columns.push_back(std::move(dc));
        run.sessions.push_back(std::move(sessions));
    }
    study_metrics().maps_derived.inc(n);
    return run;
}

}  // namespace

StudyRun assemble_study_run(const StudyConfig& config, TraceOutputs traces,
                            util::ThreadPool& pool) {
    return derive_run(config, std::make_unique<StudyDeployment>(config),
                      std::move(traces), pool);
}

StudyRun run_study(const StudyConfig& config, util::ThreadPool& pool,
                   sim::Tracer* tracer) {
    study_metrics().runs.inc();
    auto deployment = std::make_unique<StudyDeployment>(config);
    TraceOutputs traces;
    if (config.use_event_engine) {
        EventEngineDriver driver(*deployment);
        driver.set_num_shards(config.engine_shards);
        driver.set_tracer(tracer);
        traces = driver.run();
    } else {
        TraceDriver driver(*deployment);
        driver.set_tracer(tracer);
        traces = driver.run();
    }
    return derive_run(config, std::move(deployment), std::move(traces), pool);
}

StudyRun run_study(const StudyConfig& config, sim::Tracer* tracer) {
    util::ThreadPool pool(config.effective_threads());
    return run_study(config, pool, tracer);
}

}  // namespace ytcdn::study
