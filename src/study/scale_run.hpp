#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/preferred_dc.hpp"
#include "study/study_run.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace ytcdn::study {

/// Out-of-core study runner (DESIGN.md §16): the event engine streams each
/// vantage point's capture through a FlowSink that spills YFL2 blocks to
/// disk and feeds the order-independent DC-traffic tally; a second pass
/// streams the spilled logs back through the incremental §VII modules.
/// Nothing ever materializes a week of records in memory, so peak RSS is
/// O(catalog + CDN + per-hour tallies) — independent of session count.
/// That is what bench_scale_10m measures at 10M sessions.
struct ScaleRunConfig {
    StudyConfig study;
    /// Where the per-VP YFL2 spill files land ("<vp>.yfl").
    std::filesystem::path spill_dir;
    /// Read granularity of the second pass.
    std::size_t reader_chunk_bytes = 1 << 20;
    /// Keep the spill files after the run (default: removed).
    bool keep_spill = false;
};

/// Per-vantage-point results of the streamed §VII analysis.
struct VantageScaleSummary {
    std::string name;
    std::uint64_t flows = 0;  // records spilled and re-read
    int preferred = -1;
    analysis::NonPreferredShare share;
    /// §VII-A discriminator: corr(flows/hour, non-preferred fraction/hour).
    double load_correlation = 0.0;
    /// Videos with at least one non-preferred download (Fig. 13 support).
    std::uint64_t redirected_videos = 0;
};

struct ScaleRunSummary {
    std::uint64_t sessions = 0;  // requests generated across all VPs
    std::uint64_t flows = 0;
    std::uint64_t events = 0;
    std::vector<VantageScaleSummary> vantage;
};

/// Runs the two-pass out-of-core study. Pass 1 simulates on the event
/// engine with spilling sinks (sequential, like every trace run); pass 2
/// fans the per-VP streamed analyses out on `pool`. Deterministic: same
/// config, same summary, any thread count.
[[nodiscard]] util::Result<ScaleRunSummary> run_scale_study(
    const ScaleRunConfig& config, util::ThreadPool& pool);

}  // namespace ytcdn::study
