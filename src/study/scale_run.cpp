#include "study/scale_run.hpp"

#include <memory>
#include <optional>
#include <system_error>
#include <utility>

#include "analysis/streaming.hpp"
#include "capture/binary_log.hpp"
#include "capture/flow_sink.hpp"
#include "study/dc_map_builder.hpp"
#include "study/deployment.hpp"
#include "study/event_engine_driver.hpp"
#include "util/metrics.hpp"

namespace ytcdn::study {

namespace {

struct ScaleMetrics {
    util::metrics::Counter runs = util::metrics::counter("scale.runs");
    util::metrics::Counter spilled = util::metrics::counter("scale.records_spilled");
};

ScaleMetrics& scale_metrics() {
    static ScaleMetrics metrics;
    return metrics;
}

/// Pass-1 sink: spills each record to the vantage point's YFL2 log and
/// feeds the order-independent DC-traffic tally, so pass 2 starts with the
/// preferred data center already decidable. First write error latches; the
/// run surfaces it after the (infallible) simulation finishes.
class SpillSink final : public capture::FlowSink {
public:
    SpillSink(capture::FlowLogWriter writer, const analysis::ServerDcMap& map)
        : writer_(std::move(writer)), map_(&map) {}

    void on_flow(const capture::FlowRecord& record) override {
        tally_.add(record, map_->dc_of(record.server_ip));
        if (error_) return;
        if (auto r = writer_.add(record); !r.ok()) error_ = r.error();
    }

    [[nodiscard]] util::Result<std::uint64_t> finish() {
        if (error_) {
            writer_.discard();
            return *error_;
        }
        if (auto r = writer_.finish(); !r.ok()) return r.error();
        return writer_.records_written();
    }

    [[nodiscard]] const analysis::IncrementalDcTraffic& tally() const noexcept {
        return tally_;
    }

private:
    capture::FlowLogWriter writer_;
    const analysis::ServerDcMap* map_;
    analysis::IncrementalDcTraffic tally_;
    std::optional<Error> error_;
};

/// Pass 2 for one vantage point: stream the spilled log back through the
/// incremental §VII modules. Holds O(block + tallies) memory.
util::Result<VantageScaleSummary> analyze_spill(
    const std::filesystem::path& path, const std::string& name,
    const analysis::ServerDcMap& map, const analysis::IncrementalDcTraffic& tally,
    std::size_t chunk_bytes) {
    VantageScaleSummary out;
    out.name = name;
    out.preferred = tally.preferred(map);
    out.share = tally.share(out.preferred);

    analysis::IncrementalHourlyLoad hourly(out.preferred, name);
    analysis::IncrementalVideoRedirects redirects(out.preferred);

    auto reader = capture::FlowLogReader::open(path, chunk_bytes);
    if (!reader.ok()) return reader.error();
    std::vector<capture::FlowRecord> block;
    for (;;) {
        auto n = reader.value().next(block);
        if (!n.ok()) {
            return std::move(n).context("streaming " + path.string()).error();
        }
        if (n.value() == 0) break;
        for (const auto& record : block) {
            const int dc = map.dc_of(record.server_ip);
            hourly.add(record, dc);
            redirects.add(record, dc);
        }
    }
    out.flows = reader.value().records_read();
    out.load_correlation = hourly.correlation();
    out.redirected_videos = redirects.num_videos();
    return out;
}

}  // namespace

util::Result<ScaleRunSummary> run_scale_study(const ScaleRunConfig& config,
                                              util::ThreadPool& pool) {
    scale_metrics().runs.inc();
    StudyDeployment deployment(config.study);
    const std::size_t n = deployment.num_vantage_points();

    // The ground-truth maps are trace-independent (deployment + pings), so
    // pass 1 can resolve server->dc as records stream by.
    auto maps = util::parallel_map_indexed(pool, n, [&deployment](std::size_t i) {
        return ground_truth_dc_map(deployment, deployment.vantage(i));
    });

    std::error_code ec;
    std::filesystem::create_directories(config.spill_dir, ec);
    if (ec) {
        return Error(ErrorCode::Io, "create_directories failed for " +
                                        config.spill_dir.string() + ": " +
                                        ec.message());
    }

    std::vector<std::filesystem::path> spill_paths;
    std::vector<std::unique_ptr<SpillSink>> sinks;
    std::vector<capture::FlowSink*> sink_ptrs;
    spill_paths.reserve(n);
    sinks.reserve(n);
    sink_ptrs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        spill_paths.push_back(config.spill_dir /
                              (deployment.vantage(i).name + ".yfl"));
        auto writer = capture::FlowLogWriter::create(spill_paths.back());
        if (!writer.ok()) {
            return std::move(writer).context("creating spill log").error();
        }
        sinks.push_back(std::make_unique<SpillSink>(std::move(writer).value(),
                                                    maps[i]));
        sink_ptrs.push_back(sinks.back().get());
    }

    EventEngineDriver driver(deployment);
    driver.set_num_shards(config.study.engine_shards);
    driver.set_flow_sinks(std::move(sink_ptrs));
    TraceOutputs traces = driver.run();

    ScaleRunSummary summary;
    summary.events = traces.events_processed;
    for (const auto r : traces.requests_generated) summary.sessions += r;
    for (std::size_t i = 0; i < n; ++i) {
        auto spilled = sinks[i]->finish();
        if (!spilled.ok()) {
            return std::move(spilled)
                .context("spilling " + spill_paths[i].string())
                .error();
        }
        summary.flows += spilled.value();
    }
    scale_metrics().spilled.inc(summary.flows);

    // Pass 2: stream every spill through the incremental modules, one
    // independent task per vantage point, results in VP order.
    auto analyzed = util::parallel_map_indexed(
        pool, n, [&](std::size_t i) -> util::Result<VantageScaleSummary> {
            return analyze_spill(spill_paths[i], deployment.vantage(i).name,
                                 maps[i], sinks[i]->tally(),
                                 config.reader_chunk_bytes);
        });
    summary.vantage.reserve(n);
    for (auto& result : analyzed) {
        if (!result.ok()) return result.error();
        summary.vantage.push_back(std::move(result).value());
    }

    if (!config.keep_spill) {
        for (const auto& path : spill_paths) {
            std::error_code ignore;
            std::filesystem::remove(path, ignore);
        }
    }
    return summary;
}

}  // namespace ytcdn::study
