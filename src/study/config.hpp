#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/fault_injector.hpp"

namespace ytcdn::study {

/// Global knobs of the reproduction study. Everything scales off `scale`,
/// the trace-volume factor relative to the paper's Table I (scale = 1.0
/// regenerates the paper's magnitudes; tests run much smaller).
struct StudyConfig {
    std::uint64_t seed = 0xCDA1'2011ull;

    /// Trace volume factor vs the paper's datasets.
    double scale = 0.10;

    /// Worker threads for the parallel stages around the (single-threaded)
    /// event simulation: per-VP map building, CBG geolocation, report
    /// rendering. 0 = YTCDN_THREADS env / hardware_concurrency; 1 = exact
    /// serial execution. Output is bit-identical at any value.
    int threads = 0;

    /// Videos in the catalog. 0 = derive from scale (≈400k at scale 1,
    /// floor 20k), approximating the paper's 2.4M distinct videos across
    /// the five datasets.
    std::size_t catalog_size = 0;

    /// Zipf popularity exponent.
    double zipf_exponent = 0.8;

    /// Fraction of the catalog (by rank) replicated at every data center;
    /// the rest is "sparse" content living only at its origin copies.
    double replicate_fraction = 0.85;
    int origin_replicas = 2;
    /// Bound on miss-pulled videos per data center (0 = unbounded; the
    /// one-week horizon never needs eviction, but churn what-ifs do).
    std::size_t max_pulled_per_dc = 0;

    /// Per-server concurrent-flow capacity. 0 = derive from scale.
    int server_capacity = 0;

    /// Share of DNS resolutions answered with a second/third-ranked data
    /// center (ambient DNS-level balancing noise).
    double p_dns_secondary_eu1 = 0.045;
    double p_dns_secondary_us = 0.020;

    /// Residual resolutions toward legacy infrastructure (Table II). EU2's
    /// larger share plus full-quality legacy streams reproduce the paper's
    /// EU2 oddity of 10.4% of bytes still arriving from the YouTube-EU AS.
    double p_legacy_youtube = 0.020;
    double p_legacy_youtube_eu2 = 0.095;
    double p_other_as = 0.004;

    /// Share of requests drawn to the promoted "video of the day".
    double p_promoted = 0.08;

    /// EU2 in-ISP data center: sustainable resolution rate as a multiple of
    /// EU2's mean session rate (sets where the Fig. 11 day/night split
    /// lands: ~0.65 puts the busy-hour local share near 30%).
    double eu2_local_rate_factor = 0.62;

    /// What-if from Section VI-B: "in a more recent dataset collected in
    /// February 2011, we found that the majority of US-Campus video
    /// requests are directed to a data center with an RTT of more than
    /// 100 ms and not to the closest data center, which is around 30 ms
    /// away". When set, the authoritative DNS maps US-Campus to Mountain
    /// View (>100 ms on an inflated path) even though much closer data
    /// centers exist — RTT is a factor, not the rule.
    bool feb2011_us_shift = false;

    /// Scripted component failures injected during the trace (empty = the
    /// healthy baseline; every fault is strictly opt-in). Targets are data
    /// center cities, server hostnames and resolver names. See
    /// sim::FaultSchedule::parse for the text format the CLI accepts.
    sim::FaultSchedule fault_schedule;

    /// Run the trace campaign on the sharded event engine instead of the
    /// legacy single-queue TraceDriver. Both produce byte-identical
    /// reports (pinned by tests/test_event_engine.cpp); the engine adds
    /// the per-shard queues and streaming capture hooks the out-of-core
    /// scale runs build on (DESIGN.md §16).
    bool use_event_engine = false;
    /// Engine shard count. 0 = one shard per vantage point. Output is
    /// byte-identical at any value (Determinism.EventEngineShardInvariance).
    std::size_t engine_shards = 0;

    /// Report-artifact fault isolation. By default a single failing
    /// artifact is replaced with a placeholder naming the failure and the
    /// other artifacts still render; with strict artifacts the first
    /// failure propagates (fail-fast — what CI wants so a regression is a
    /// red build, not a quietly degraded report).
    bool strict_artifacts = false;

    /// Derived values.
    [[nodiscard]] std::size_t effective_threads() const;
    /// strict_artifacts, or the YTCDN_STRICT_ARTIFACTS=1 environment
    /// override (set in CI).
    [[nodiscard]] bool effective_strict_artifacts() const;
    [[nodiscard]] std::size_t effective_catalog_size() const;
    [[nodiscard]] int effective_server_capacity() const;
    [[nodiscard]] std::size_t replicate_top_ranks() const;
};

/// Per-vantage-point targets taken from the paper's Table I.
struct VantageTargets {
    const char* name;
    std::uint64_t flows;     // Table I "YouTube flows"
    std::uint64_t clients;   // Table I "#Clients"
};

/// The five datasets, in the paper's order.
inline constexpr VantageTargets kPaperTargets[] = {
    {"US-Campus", 874'649, 20'443},
    {"EU1-Campus", 134'789, 1'113},
    {"EU1-ADSL", 877'443, 8'348},
    {"EU1-FTTH", 91'955, 997},
    {"EU2", 513'403, 6'552},
};
inline constexpr std::size_t kNumVantagePoints = 5;

/// Average flows per session used to convert Table I flow counts into
/// session arrival rates (sessions spawn 1.2-1.35 flows on average).
inline constexpr double kFlowsPerSession = 1.28;

/// Seconds in the paper's one-week capture.
inline constexpr double kTraceSeconds = 604'800.0;

[[nodiscard]] double mean_sessions_per_s(const VantageTargets& t, double scale);

}  // namespace ytcdn::study
