#pragma once

#include <cstddef>
#include <vector>

#include "capture/flow_sink.hpp"
#include "sim/event_engine.hpp"
#include "sim/tracer.hpp"
#include "study/deployment.hpp"
#include "study/trace_driver.hpp"
#include "workload/player.hpp"

namespace ytcdn::study {

/// The trace campaign on the sharded event engine (DESIGN.md §16).
///
/// Each vantage point's components (player, request generator, noise
/// source, sniffer) live on shard `vp % num_shards`; the engine pops
/// events across shards in global (time, shard) order, so the interleaved
/// execution — and therefore every dataset byte — is identical to the
/// legacy single-simulator TraceDriver. That equivalence is not an
/// accident of the workload: with one shard the merge loop degenerates to
/// the exact pop sequence of Simulator::run_until, and with k shards the
/// cross-shard merge reproduces the single-queue order because per-shard
/// queues are themselves time-ordered and cross-shard timestamp ties do
/// not occur in this workload (event times are sums of continuous RNG
/// draws; fault times are schedule constants on shard 0 only).
/// tests/test_event_engine.cpp and Determinism.EventEngineShardInvariance
/// pin this byte-for-byte.
///
/// RNG forks use the same names as TraceDriver ("trace-driver",
/// "player-<vp>", ...): forks are name-keyed and order-independent, so
/// both drivers draw identical streams.
class EventEngineDriver {
public:
    explicit EventEngineDriver(StudyDeployment& deployment)
        : EventEngineDriver(deployment, workload::Player::Config{}) {}

    EventEngineDriver(StudyDeployment& deployment,
                      const workload::Player::Config& player_config);

    /// Number of engine shards; 0 means one shard per vantage point.
    void set_num_shards(std::size_t shards) noexcept { num_shards_ = shards; }

    /// Same tracer contract as TraceDriver (per-VP streams, faults on
    /// 0xFF). Shard-count invariant because the merge order is.
    void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

    /// Streaming capture: one sink per vantage point (parallel to the
    /// deployment's VP order). With sinks installed, sniffers forward
    /// records instead of accumulating them, so the returned datasets are
    /// empty and memory stays bounded at any run length; counters, player
    /// stats and host interning are unchanged. Pass an empty vector (the
    /// default) for legacy materializing behaviour.
    void set_flow_sinks(std::vector<capture::FlowSink*> sinks) {
        sinks_ = std::move(sinks);
    }

    /// Simulates `horizon` seconds and joins the shards in fixed VP order.
    [[nodiscard]] TraceOutputs run(sim::SimTime horizon = sim::kWeek);

private:
    StudyDeployment* deployment_;
    workload::Player::Config player_config_;
    sim::Tracer* tracer_ = nullptr;
    std::vector<capture::FlowSink*> sinks_;
    std::size_t num_shards_ = 0;
};

}  // namespace ytcdn::study
