#include "net/rtt_model.hpp"

#include <stdexcept>
#include <utility>

namespace ytcdn::net {

namespace {

/// SplitMix64 finalizer: a strong 64-bit mix with good avalanche behaviour.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

}  // namespace

RttModel::RttModel(const Config& config) : config_(config) {
    if (config_.ms_per_km <= 0.0) throw std::invalid_argument("ms_per_km must be > 0");
    if (config_.min_inflation < 1.0 || config_.max_inflation < config_.min_inflation) {
        throw std::invalid_argument("inflation range must satisfy 1 <= min <= max");
    }
    if (config_.jitter_mean_ms < 0.0) {
        throw std::invalid_argument("jitter_mean_ms must be >= 0");
    }
}

std::uint64_t RttModel::pair_key(std::uint64_t a, std::uint64_t b) noexcept {
    if (a > b) std::swap(a, b);
    return mix64(mix64(a) ^ (b + 0x9E3779B97F4A7C15ull));
}

void RttModel::set_inflation(std::uint64_t a, std::uint64_t b, double factor) {
    if (factor < 1.0) throw std::invalid_argument("inflation factor must be >= 1");
    inflation_overrides_[pair_key(a, b)] = factor;
}

double RttModel::inflation(std::uint64_t a, std::uint64_t b) const noexcept {
    const std::uint64_t key = pair_key(a, b);
    if (const auto it = inflation_overrides_.find(key); it != inflation_overrides_.end()) {
        return it->second;
    }
    // Uniform in [min_inflation, max_inflation], derived from the pair hash.
    const double u =
        static_cast<double>(mix64(key) >> 11) / static_cast<double>(1ull << 53);
    return config_.min_inflation + u * (config_.max_inflation - config_.min_inflation);
}

double RttModel::base_rtt_ms(const NetSite& a, const NetSite& b) const noexcept {
    if (a.id == b.id) return a.access_rtt_ms;  // loopback within a site
    const double distance = geo::distance_km(a.location, b.location);
    // Overridden paths are fully specified by their inflation factor; all
    // other paths carry a deterministic additive peering-noise term.
    const std::uint64_t key = pair_key(a.id, b.id);
    double noise = 0.0;
    if (!inflation_overrides_.contains(key)) {
        const double u = static_cast<double>(mix64(key ^ 0x5157ull) >> 11) /
                         static_cast<double>(1ull << 53);
        // Right-skewed (u^2): most paths are clean, a minority carries
        // noticeable peering detours — matching the long tail of CBG
        // confidence radii in the paper's Fig. 3.
        noise = u * u * 2.0 * config_.max_path_noise_ms;
    }
    return distance * config_.ms_per_km * inflation(a.id, b.id) + noise +
           a.access_rtt_ms + b.access_rtt_ms + config_.base_overhead_ms;
}

double RttModel::sample_rtt_ms(const NetSite& a, const NetSite& b,
                               std::mt19937_64& rng) const {
    std::exponential_distribution<double> jitter(
        config_.jitter_mean_ms > 0.0 ? 1.0 / config_.jitter_mean_ms : 1e9);
    const double j = config_.jitter_mean_ms > 0.0 ? jitter(rng) : 0.0;
    return base_rtt_ms(a, b) + j;
}

}  // namespace ytcdn::net
