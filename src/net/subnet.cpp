#include "net/subnet.hpp"

#include <charconv>
#include <ostream>

namespace ytcdn::net {

std::optional<Subnet> Subnet::parse(std::string_view text) noexcept {
    const auto slash = text.find('/');
    if (slash == std::string_view::npos) return std::nullopt;
    const auto ip = IpAddress::parse(text.substr(0, slash));
    if (!ip) return std::nullopt;
    const std::string_view len_text = text.substr(slash + 1);
    int len = -1;
    const auto [next, ec] =
        std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
    if (ec != std::errc{} || next != len_text.data() + len_text.size() || len < 0 ||
        len > 32) {
        return std::nullopt;
    }
    return Subnet{*ip, len};
}

std::string Subnet::to_string() const {
    return network().to_string() + "/" + std::to_string(prefix_len_);
}

std::ostream& operator<<(std::ostream& os, const Subnet& s) { return os << s.to_string(); }

}  // namespace ytcdn::net
