#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_address.hpp"

namespace ytcdn::net {

/// An IPv4 CIDR prefix, e.g. 208.65.152.0/22.
class Subnet {
public:
    constexpr Subnet() noexcept = default;

    /// The host bits of `base` are masked off, so Subnet({1.2.3.4}, 24)
    /// represents 1.2.3.0/24.
    constexpr Subnet(IpAddress base, int prefix_len) noexcept
        : prefix_len_(prefix_len < 0 ? 0 : (prefix_len > 32 ? 32 : prefix_len)),
          base_(base.value() & mask()) {}

    /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
    [[nodiscard]] static std::optional<Subnet> parse(std::string_view text) noexcept;

    [[nodiscard]] constexpr IpAddress network() const noexcept { return IpAddress{base_}; }
    [[nodiscard]] constexpr int prefix_len() const noexcept { return prefix_len_; }

    [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
        return prefix_len_ == 0 ? 0u : (~std::uint32_t{0} << (32 - prefix_len_));
    }

    [[nodiscard]] constexpr bool contains(IpAddress ip) const noexcept {
        return (ip.value() & mask()) == base_;
    }

    [[nodiscard]] constexpr bool contains(const Subnet& other) const noexcept {
        return other.prefix_len_ >= prefix_len_ && contains(other.network());
    }

    /// Number of addresses covered (2^(32-len)), as a 64-bit value so /0 works.
    [[nodiscard]] constexpr std::uint64_t size() const noexcept {
        return std::uint64_t{1} << (32 - prefix_len_);
    }

    /// The i-th address inside the prefix; `i` must be < size().
    [[nodiscard]] constexpr IpAddress address_at(std::uint64_t i) const noexcept {
        return IpAddress{base_ + static_cast<std::uint32_t>(i)};
    }

    [[nodiscard]] std::string to_string() const;

    friend constexpr bool operator==(const Subnet&, const Subnet&) noexcept = default;

private:
    int prefix_len_ = 0;
    std::uint32_t base_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Subnet& s);

}  // namespace ytcdn::net
