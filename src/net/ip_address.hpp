#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace ytcdn::net {

/// An IPv4 address as a strongly typed value (host byte order internally).
///
/// The reproduction only needs IPv4: the 2010 traces and YouTube CDN of the
/// paper are IPv4-only.
class IpAddress {
public:
    constexpr IpAddress() noexcept = default;
    constexpr explicit IpAddress(std::uint32_t value) noexcept : value_(value) {}

    /// Builds from dotted-quad octets, a.b.c.d.
    [[nodiscard]] static constexpr IpAddress from_octets(std::uint8_t a, std::uint8_t b,
                                                         std::uint8_t c,
                                                         std::uint8_t d) noexcept {
        return IpAddress{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                         (std::uint32_t{c} << 8) | std::uint32_t{d}};
    }

    /// Parses "a.b.c.d"; returns nullopt on any malformed input.
    [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text) noexcept;

    [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
    [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
        return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
    }

    /// The enclosing /24 network address (the granularity at which the paper
    /// observes servers of one data center sharing subnets).
    [[nodiscard]] constexpr IpAddress slash24() const noexcept {
        return IpAddress{value_ & 0xFFFFFF00u};
    }

    [[nodiscard]] std::string to_string() const;

    friend constexpr bool operator==(IpAddress, IpAddress) noexcept = default;
    friend constexpr auto operator<=>(IpAddress, IpAddress) noexcept = default;

private:
    std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, IpAddress ip);

}  // namespace ytcdn::net

template <>
struct std::hash<ytcdn::net::IpAddress> {
    std::size_t operator()(ytcdn::net::IpAddress ip) const noexcept {
        return std::hash<std::uint32_t>{}(ip.value());
    }
};
