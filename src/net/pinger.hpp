#pragma once

#include <cstdint>
#include <random>

#include "net/rtt_model.hpp"

namespace ytcdn::net {

/// Summary statistics of a ping run, as `ping` would report them.
struct PingStats {
    int probes = 0;
    double min_ms = 0.0;
    double avg_ms = 0.0;
    double max_ms = 0.0;
    double stddev_ms = 0.0;
};

/// Active RTT measurement against the simulated network.
///
/// The paper pings every content server from the vantage-point probe PC and
/// keeps the *minimum* RTT (Section V, Fig. 2); CBG landmarks do the same.
class Pinger {
public:
    explicit Pinger(const RttModel& model, std::uint64_t seed = 0x9027D5C5AD4B05E1ull)
        : model_(&model), rng_(seed) {}

    /// Sends `probes` probes from `src` to `dst` and summarizes the samples.
    [[nodiscard]] PingStats ping(const NetSite& src, const NetSite& dst, int probes = 10);

    /// Shorthand for ping(...).min_ms — the quantity the paper actually uses.
    [[nodiscard]] double min_rtt_ms(const NetSite& src, const NetSite& dst,
                                    int probes = 10);

private:
    const RttModel* model_;
    // Always seeded via the constructor (fixed default), never entropy-seeded.
    std::mt19937_64 rng_;  // ytcdn-lint: allow(rng-source)
};

}  // namespace ytcdn::net
