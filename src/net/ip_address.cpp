#include "net/ip_address.hpp"

#include <charconv>
#include <ostream>

namespace ytcdn::net {

std::optional<IpAddress> IpAddress::parse(std::string_view text) noexcept {
    std::uint32_t value = 0;
    const char* p = text.data();
    const char* const end = text.data() + text.size();
    for (int i = 0; i < 4; ++i) {
        unsigned octet = 0;
        const auto [next, ec] = std::from_chars(p, end, octet);
        if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
        value = (value << 8) | octet;
        p = next;
        if (i < 3) {
            if (p == end || *p != '.') return std::nullopt;
            ++p;
        }
    }
    if (p != end) return std::nullopt;
    return IpAddress{value};
}

std::string IpAddress::to_string() const {
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
        if (i > 0) out.push_back('.');
        out += std::to_string(static_cast<unsigned>(octet(i)));
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, IpAddress ip) { return os << ip.to_string(); }

}  // namespace ytcdn::net
