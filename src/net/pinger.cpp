#include "net/pinger.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ytcdn::net {

PingStats Pinger::ping(const NetSite& src, const NetSite& dst, int probes) {
    if (probes <= 0) throw std::invalid_argument("probes must be > 0");

    PingStats stats;
    stats.probes = probes;
    double sum = 0.0;
    double sum_sq = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = 0.0;
    for (int i = 0; i < probes; ++i) {
        const double rtt = model_->sample_rtt_ms(src, dst, rng_);
        sum += rtt;
        sum_sq += rtt * rtt;
        min = std::min(min, rtt);
        max = std::max(max, rtt);
    }
    stats.min_ms = min;
    stats.max_ms = max;
    stats.avg_ms = sum / probes;
    const double variance = std::max(0.0, sum_sq / probes - stats.avg_ms * stats.avg_ms);
    stats.stddev_ms = std::sqrt(variance);
    return stats;
}

double Pinger::min_rtt_ms(const NetSite& src, const NetSite& dst, int probes) {
    return ping(src, dst, probes).min_ms;
}

}  // namespace ytcdn::net
