#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ip_address.hpp"
#include "net/subnet.hpp"

namespace ytcdn::net {

/// An autonomous-system number, strongly typed.
struct Asn {
    std::uint32_t value = 0;

    friend constexpr bool operator==(Asn, Asn) noexcept = default;
    friend constexpr auto operator<=>(Asn, Asn) noexcept = default;
};

std::ostream& operator<<(std::ostream& os, Asn asn);

/// Well-known AS numbers from the paper (Section IV).
namespace well_known_as {
inline constexpr Asn kGoogle{15169};     // "Google Inc." — hosts most servers post-migration.
inline constexpr Asn kYouTubeEu{43515};  // "YouTube-EU" — legacy infrastructure.
inline constexpr Asn kYouTubeOld{36561}; // Pre-acquisition YouTube AS, unused by 2010.
inline constexpr Asn kCableWireless{1273};  // CW, one of the "Others".
inline constexpr Asn kGblx{3549};           // Global Crossing, one of the "Others".
}  // namespace well_known_as

/// One whois record: a prefix announced by an AS.
struct AsRecord {
    Subnet prefix;
    Asn asn;
    std::string as_name;
};

/// A whois-style registry mapping IP addresses to autonomous systems by
/// longest-prefix match. This substitutes for the `whois` lookups of
/// Section IV; the study deployment populates it alongside the CDN.
class AsRegistry {
public:
    AsRegistry() = default;

    /// Registers a prefix. Overlapping prefixes are fine; lookup picks the
    /// longest (most specific) match, like real routing/whois data.
    void add(Subnet prefix, Asn asn, std::string as_name);

    [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

    /// Longest-prefix match; nullptr when no prefix covers `ip`.
    [[nodiscard]] const AsRecord* lookup(IpAddress ip) const noexcept;

    /// Convenience: the ASN for `ip`, or nullopt.
    [[nodiscard]] std::optional<Asn> asn_of(IpAddress ip) const noexcept;

    /// Convenience: the AS name for `ip`, or "unknown".
    [[nodiscard]] std::string_view name_of(IpAddress ip) const noexcept;

private:
    std::vector<AsRecord> records_;
};

}  // namespace ytcdn::net

template <>
struct std::hash<ytcdn::net::Asn> {
    std::size_t operator()(ytcdn::net::Asn asn) const noexcept {
        return std::hash<std::uint32_t>{}(asn.value);
    }
};
