#include "net/as_registry.hpp"

#include <ostream>
#include <utility>

namespace ytcdn::net {

std::ostream& operator<<(std::ostream& os, Asn asn) { return os << "AS" << asn.value; }

void AsRegistry::add(Subnet prefix, Asn asn, std::string as_name) {
    records_.push_back(AsRecord{prefix, asn, std::move(as_name)});
}

const AsRecord* AsRegistry::lookup(IpAddress ip) const noexcept {
    const AsRecord* best = nullptr;
    for (const auto& r : records_) {
        if (r.prefix.contains(ip) &&
            (best == nullptr || r.prefix.prefix_len() > best->prefix.prefix_len())) {
            best = &r;
        }
    }
    return best;
}

std::optional<Asn> AsRegistry::asn_of(IpAddress ip) const noexcept {
    const AsRecord* r = lookup(ip);
    if (r == nullptr) return std::nullopt;
    return r->asn;
}

std::string_view AsRegistry::name_of(IpAddress ip) const noexcept {
    const AsRecord* r = lookup(ip);
    return r == nullptr ? std::string_view{"unknown"} : std::string_view{r->as_name};
}

}  // namespace ytcdn::net
