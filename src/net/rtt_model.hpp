#pragma once

#include <cstdint>
#include <random>
#include <unordered_map>

#include "geo/geo_point.hpp"

namespace ytcdn::net {

/// A site attached to the network: anything with a position and a last-mile.
///
/// `id` must be stable and unique per site; it seeds the deterministic
/// per-path routing inflation (so the same pair of sites always sees the
/// same path "shape", as real routes do over a week).
struct NetSite {
    std::uint64_t id = 0;
    geo::GeoPoint location;
    /// Round-trip contribution of the access link (e.g. ~15 ms for ADSL,
    /// ~2 ms for FTTH, ~1 ms for campus/data-center LANs).
    double access_rtt_ms = 1.0;
};

/// A latency model for the simulated Internet.
///
/// The minimum RTT between two sites is
///   prop(distance) * inflation(path) + access(a) + access(b) + overhead,
/// where `inflation` is a deterministic per-path factor in
/// [min_inflation, max_inflation] modelling routing stretch (paths do not
/// follow great circles). Individual measurements add positive jitter.
///
/// The inflation term is what lets the reproduction decouple RTT from
/// geographic distance — the paper's Fig. 7 vs Fig. 8 contrast (for
/// US-Campus the five geographically closest data centers carry <2% of the
/// bytes because their routes are inflated).
class RttModel {
public:
    struct Config {
        /// RTT per km of great-circle distance at light speed in fiber
        /// (~2/3 c one way, doubled for the round trip): 0.01 ms/km.
        double ms_per_km = 0.01;
        /// Fixed per-path processing/serialization overhead (round trip).
        double base_overhead_ms = 0.5;
        /// Range of the deterministic routing-inflation factor.
        double min_inflation = 1.10;
        double max_inflation = 1.90;
        /// Maximum of the deterministic additive per-path noise (peering /
        /// last-hop variance, in ms). This is what keeps delay-based
        /// geolocation from being unrealistically sharp: it inflates CBG
        /// confidence regions into the paper's tens-to-hundreds-of-km range.
        /// Paths with an explicit inflation override carry no noise.
        double max_path_noise_ms = 1.5;
        /// Mean of the exponential per-measurement jitter.
        double jitter_mean_ms = 1.0;
    };

    RttModel() : RttModel(Config{}) {}
    explicit RttModel(const Config& config);

    [[nodiscard]] const Config& config() const noexcept { return config_; }

    /// Forces the inflation factor for the (unordered) pair of site ids.
    /// The study deployment uses this to pin down the paper's anecdotes
    /// (e.g. the preferred data center having the lowest RTT despite not
    /// being the closest).
    void set_inflation(std::uint64_t a, std::uint64_t b, double factor);

    /// The routing-inflation factor for the pair: the override if set,
    /// otherwise a deterministic hash-derived value in the configured range.
    [[nodiscard]] double inflation(std::uint64_t a, std::uint64_t b) const noexcept;

    /// The minimum achievable RTT between two sites, in ms. Deterministic.
    [[nodiscard]] double base_rtt_ms(const NetSite& a, const NetSite& b) const noexcept;

    /// One RTT measurement: base_rtt_ms plus positive exponential jitter.
    [[nodiscard]] double sample_rtt_ms(const NetSite& a, const NetSite& b,
                                       std::mt19937_64& rng) const;

private:
    [[nodiscard]] static std::uint64_t pair_key(std::uint64_t a, std::uint64_t b) noexcept;

    Config config_;
    std::unordered_map<std::uint64_t, double> inflation_overrides_;
};

}  // namespace ytcdn::net
