#include "geo/geo_point.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace ytcdn::geo {

bool GeoPoint::is_valid() const noexcept {
    return std::isfinite(lat_deg) && std::isfinite(lon_deg) && lat_deg >= -90.0 &&
           lat_deg <= 90.0 && lon_deg >= -180.0 && lon_deg <= 180.0;
}

double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
    const double lat1 = deg_to_rad(a.lat_deg);
    const double lat2 = deg_to_rad(b.lat_deg);
    const double dlat = deg_to_rad(b.lat_deg - a.lat_deg);
    const double dlon = deg_to_rad(b.lon_deg - a.lon_deg);

    const double sin_dlat = std::sin(dlat / 2.0);
    const double sin_dlon = std::sin(dlon / 2.0);
    const double h =
        sin_dlat * sin_dlat + std::cos(lat1) * std::cos(lat2) * sin_dlon * sin_dlon;
    // Clamp guards against rounding pushing h slightly above 1 for antipodes.
    const double c = 2.0 * std::asin(std::sqrt(std::clamp(h, 0.0, 1.0)));
    return kEarthRadiusKm * c;
}

double initial_bearing_deg(const GeoPoint& from, const GeoPoint& to) noexcept {
    const double lat1 = deg_to_rad(from.lat_deg);
    const double lat2 = deg_to_rad(to.lat_deg);
    const double dlon = deg_to_rad(to.lon_deg - from.lon_deg);

    const double y = std::sin(dlon) * std::cos(lat2);
    const double x =
        std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
    const double bearing = rad_to_deg(std::atan2(y, x));
    return std::fmod(bearing + 360.0, 360.0);
}

GeoPoint destination_point(const GeoPoint& origin, double bearing_deg,
                           double distance_km_arg) noexcept {
    const double delta = distance_km_arg / kEarthRadiusKm;
    const double theta = deg_to_rad(bearing_deg);
    const double lat1 = deg_to_rad(origin.lat_deg);
    const double lon1 = deg_to_rad(origin.lon_deg);

    const double lat2 = std::asin(std::sin(lat1) * std::cos(delta) +
                                  std::cos(lat1) * std::sin(delta) * std::cos(theta));
    const double lon2 =
        lon1 + std::atan2(std::sin(theta) * std::sin(delta) * std::cos(lat1),
                          std::cos(delta) - std::sin(lat1) * std::sin(lat2));

    GeoPoint out{rad_to_deg(lat2), rad_to_deg(lon2)};
    // Normalize longitude to [-180, 180].
    out.lon_deg = std::fmod(out.lon_deg + 540.0, 360.0) - 180.0;
    return out;
}

GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept {
    const double d = distance_km(a, b);
    if (d == 0.0) return a;
    return destination_point(a, initial_bearing_deg(a, b), d / 2.0);
}

std::string to_string(const GeoPoint& p) {
    std::ostringstream os;
    os << p;
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const GeoPoint& p) {
    const auto old_precision = os.precision(4);
    const auto old_flags = os.flags();
    os.setf(std::ios::fixed);
    os << '(' << p.lat_deg << ", " << p.lon_deg << ')';
    os.flags(old_flags);
    os.precision(old_precision);
    return os;
}

}  // namespace ytcdn::geo
