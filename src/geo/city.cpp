#include "geo/city.hpp"

#include <limits>
#include <utility>

namespace ytcdn::geo {

namespace {

std::vector<City> builtin_cities() {
    using enum Continent;
    // name, country, continent, lat, lon
    return {
        // --- North America ---------------------------------------------------
        {"Mountain View", "US", NorthAmerica, {37.3861, -122.0839}},
        {"Los Angeles", "US", NorthAmerica, {34.0522, -118.2437}},
        {"Seattle", "US", NorthAmerica, {47.6062, -122.3321}},
        {"The Dalles", "US", NorthAmerica, {45.5946, -121.1787}},
        {"Denver", "US", NorthAmerica, {39.7392, -104.9903}},
        {"Dallas", "US", NorthAmerica, {32.7767, -96.7970}},
        {"Houston", "US", NorthAmerica, {29.7604, -95.3698}},
        {"Chicago", "US", NorthAmerica, {41.8781, -87.6298}},
        {"Council Bluffs", "US", NorthAmerica, {41.2619, -95.8608}},
        {"Atlanta", "US", NorthAmerica, {33.7490, -84.3880}},
        {"Miami", "US", NorthAmerica, {25.7617, -80.1918}},
        {"Washington", "US", NorthAmerica, {38.9072, -77.0369}},
        {"New York", "US", NorthAmerica, {40.7128, -74.0060}},
        {"Boston", "US", NorthAmerica, {42.3601, -71.0589}},
        {"Philadelphia", "US", NorthAmerica, {39.9526, -75.1652}},
        {"Pittsburgh", "US", NorthAmerica, {40.4406, -79.9959}},
        {"Saint Louis", "US", NorthAmerica, {38.6270, -90.1994}},
        {"Minneapolis", "US", NorthAmerica, {44.9778, -93.2650}},
        {"Salt Lake City", "US", NorthAmerica, {40.7608, -111.8910}},
        {"Phoenix", "US", NorthAmerica, {33.4484, -112.0740}},
        {"San Diego", "US", NorthAmerica, {32.7157, -117.1611}},
        {"Berkeley", "US", NorthAmerica, {37.8715, -122.2730}},
        {"Princeton", "US", NorthAmerica, {40.3573, -74.6672}},
        {"Ann Arbor", "US", NorthAmerica, {42.2808, -83.7430}},
        {"West Lafayette", "US", NorthAmerica, {40.4259, -86.9081}},
        {"Austin", "US", NorthAmerica, {30.2672, -97.7431}},
        {"Raleigh", "US", NorthAmerica, {35.7796, -78.6382}},
        {"Toronto", "CA", NorthAmerica, {43.6532, -79.3832}},
        {"Montreal", "CA", NorthAmerica, {45.5017, -73.5673}},
        {"Vancouver", "CA", NorthAmerica, {49.2827, -123.1207}},
        {"Mexico City", "MX", NorthAmerica, {19.4326, -99.1332}},
        // --- Europe ----------------------------------------------------------
        {"London", "GB", Europe, {51.5074, -0.1278}},
        {"Dublin", "IE", Europe, {53.3498, -6.2603}},
        {"Paris", "FR", Europe, {48.8566, 2.3522}},
        {"Marseille", "FR", Europe, {43.2965, 5.3698}},
        {"Brussels", "BE", Europe, {50.8503, 4.3517}},
        {"Amsterdam", "NL", Europe, {52.3676, 4.9041}},
        {"Groningen", "NL", Europe, {53.2194, 6.5665}},
        {"Frankfurt", "DE", Europe, {50.1109, 8.6821}},
        {"Hamburg", "DE", Europe, {53.5511, 9.9937}},
        {"Berlin", "DE", Europe, {52.5200, 13.4050}},
        {"Munich", "DE", Europe, {48.1351, 11.5820}},
        {"Zurich", "CH", Europe, {47.3769, 8.5417}},
        {"Geneva", "CH", Europe, {46.2044, 6.1432}},
        {"Vienna", "AT", Europe, {48.2082, 16.3738}},
        {"Prague", "CZ", Europe, {50.0755, 14.4378}},
        {"Warsaw", "PL", Europe, {52.2297, 21.0122}},
        {"Budapest", "HU", Europe, {47.4979, 19.0402}},
        {"Bucharest", "RO", Europe, {44.4268, 26.1025}},
        {"Athens", "GR", Europe, {37.9838, 23.7275}},
        {"Rome", "IT", Europe, {41.9028, 12.4964}},
        {"Milan", "IT", Europe, {45.4642, 9.1900}},
        {"Turin", "IT", Europe, {45.0703, 7.6869}},
        {"Bologna", "IT", Europe, {44.4949, 11.3426}},
        {"Madrid", "ES", Europe, {40.4168, -3.7038}},
        {"Barcelona", "ES", Europe, {41.3851, 2.1734}},
        {"Lisbon", "PT", Europe, {38.7223, -9.1393}},
        {"Stockholm", "SE", Europe, {59.3293, 18.0686}},
        {"Oslo", "NO", Europe, {59.9139, 10.7522}},
        {"Copenhagen", "DK", Europe, {55.6761, 12.5683}},
        {"Helsinki", "FI", Europe, {60.1699, 24.9384}},
        {"Moscow", "RU", Europe, {55.7558, 37.6173}},
        {"Saint Petersburg", "RU", Europe, {59.9311, 30.3609}},
        {"Lancaster", "GB", Europe, {54.0466, -2.8007}},
        {"Cambridge", "GB", Europe, {52.2053, 0.1218}},
        // --- Asia ------------------------------------------------------------
        {"Tokyo", "JP", Asia, {35.6762, 139.6503}},
        {"Osaka", "JP", Asia, {34.6937, 135.5023}},
        {"Seoul", "KR", Asia, {37.5665, 126.9780}},
        {"Beijing", "CN", Asia, {39.9042, 116.4074}},
        {"Shanghai", "CN", Asia, {31.2304, 121.4737}},
        {"Hong Kong", "HK", Asia, {22.3193, 114.1694}},
        {"Taipei", "TW", Asia, {25.0330, 121.5654}},
        {"Singapore", "SG", Asia, {1.3521, 103.8198}},
        {"Bangkok", "TH", Asia, {13.7563, 100.5018}},
        {"Mumbai", "IN", Asia, {19.0760, 72.8777}},
        {"Bangalore", "IN", Asia, {12.9716, 77.5946}},
        {"Tel Aviv", "IL", Asia, {32.0853, 34.7818}},
        // --- South America ---------------------------------------------------
        {"Sao Paulo", "BR", SouthAmerica, {-23.5505, -46.6333}},
        {"Rio de Janeiro", "BR", SouthAmerica, {-22.9068, -43.1729}},
        {"Buenos Aires", "AR", SouthAmerica, {-34.6037, -58.3816}},
        {"Santiago", "CL", SouthAmerica, {-33.4489, -70.6693}},
        {"Bogota", "CO", SouthAmerica, {4.7110, -74.0721}},
        // --- Oceania ---------------------------------------------------------
        {"Sydney", "AU", Oceania, {-33.8688, 151.2093}},
        {"Melbourne", "AU", Oceania, {-37.8136, 144.9631}},
        {"Auckland", "NZ", Oceania, {-36.8485, 174.7633}},
        // --- Africa ----------------------------------------------------------
        {"Cape Town", "ZA", Africa, {-33.9249, 18.4241}},
        {"Cairo", "EG", Africa, {30.0444, 31.2357}},
        {"Nairobi", "KE", Africa, {-1.2921, 36.8219}},
    };
}

}  // namespace

CityDatabase::CityDatabase(std::vector<City> cities) : cities_(std::move(cities)) {}

const CityDatabase& CityDatabase::builtin() {
    static const CityDatabase db{builtin_cities()};
    return db;
}

void CityDatabase::add(City city) { cities_.push_back(std::move(city)); }

const City* CityDatabase::find(std::string_view name) const noexcept {
    for (const auto& c : cities_) {
        if (c.name == name) return &c;
    }
    return nullptr;
}

const City* CityDatabase::nearest(const GeoPoint& p) const noexcept {
    return nearest_within(p, std::numeric_limits<double>::infinity());
}

const City* CityDatabase::nearest_within(const GeoPoint& p,
                                         double max_distance_km) const noexcept {
    const City* best = nullptr;
    double best_d = max_distance_km;
    for (const auto& c : cities_) {
        const double d = distance_km(p, c.location);
        if (d <= best_d) {
            best_d = d;
            best = &c;
        }
    }
    return best;
}

std::vector<const City*> CityDatabase::on_continent(Continent cont) const {
    std::vector<const City*> out;
    for (const auto& c : cities_) {
        if (c.continent == cont) out.push_back(&c);
    }
    return out;
}

}  // namespace ytcdn::geo
