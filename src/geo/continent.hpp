#pragma once

#include <iosfwd>
#include <optional>
#include <string_view>

namespace ytcdn::geo {

/// Continents as the paper buckets them (Table III groups everything outside
/// North America and Europe into "Others").
enum class Continent {
    NorthAmerica,
    Europe,
    Asia,
    SouthAmerica,
    Oceania,
    Africa,
};

/// Short, stable name, e.g. "N. America", "Europe".
[[nodiscard]] std::string_view to_string(Continent c) noexcept;

/// Parses the names produced by to_string(); returns nullopt otherwise.
[[nodiscard]] std::optional<Continent> continent_from_string(std::string_view s) noexcept;

/// The paper's Table III aggregation: North America, Europe, or "Others".
enum class ContinentBucket { NorthAmerica, Europe, Others };

[[nodiscard]] ContinentBucket bucket_of(Continent c) noexcept;
[[nodiscard]] std::string_view to_string(ContinentBucket b) noexcept;

std::ostream& operator<<(std::ostream& os, Continent c);
std::ostream& operator<<(std::ostream& os, ContinentBucket b);

}  // namespace ytcdn::geo
