#include "geo/continent.hpp"

#include <ostream>

namespace ytcdn::geo {

std::string_view to_string(Continent c) noexcept {
    switch (c) {
        case Continent::NorthAmerica: return "N. America";
        case Continent::Europe: return "Europe";
        case Continent::Asia: return "Asia";
        case Continent::SouthAmerica: return "S. America";
        case Continent::Oceania: return "Oceania";
        case Continent::Africa: return "Africa";
    }
    return "unknown";
}

std::optional<Continent> continent_from_string(std::string_view s) noexcept {
    if (s == "N. America") return Continent::NorthAmerica;
    if (s == "Europe") return Continent::Europe;
    if (s == "Asia") return Continent::Asia;
    if (s == "S. America") return Continent::SouthAmerica;
    if (s == "Oceania") return Continent::Oceania;
    if (s == "Africa") return Continent::Africa;
    return std::nullopt;
}

ContinentBucket bucket_of(Continent c) noexcept {
    switch (c) {
        case Continent::NorthAmerica: return ContinentBucket::NorthAmerica;
        case Continent::Europe: return ContinentBucket::Europe;
        default: return ContinentBucket::Others;
    }
}

std::string_view to_string(ContinentBucket b) noexcept {
    switch (b) {
        case ContinentBucket::NorthAmerica: return "N. America";
        case ContinentBucket::Europe: return "Europe";
        case ContinentBucket::Others: return "Others";
    }
    return "unknown";
}

std::ostream& operator<<(std::ostream& os, Continent c) { return os << to_string(c); }
std::ostream& operator<<(std::ostream& os, ContinentBucket b) { return os << to_string(b); }

}  // namespace ytcdn::geo
