#pragma once

#include <cmath>
#include <iosfwd>
#include <string>

namespace ytcdn::geo {

/// Mean Earth radius in kilometers (IUGG value), used for all great-circle math.
inline constexpr double kEarthRadiusKm = 6371.0;

/// A point on the Earth's surface, in decimal degrees.
///
/// Latitude is in [-90, 90], longitude in [-180, 180]. The type is a plain
/// value type; `is_valid()` reports whether the coordinates are in range.
struct GeoPoint {
    double lat_deg = 0.0;
    double lon_deg = 0.0;

    [[nodiscard]] bool is_valid() const noexcept;

    friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// Great-circle distance between two points, in kilometers (haversine formula).
[[nodiscard]] double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing from `from` toward `to`, in degrees clockwise from north,
/// normalized to [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& from, const GeoPoint& to) noexcept;

/// The point reached by travelling `distance` km from `origin` along the
/// great circle with the given initial bearing.
[[nodiscard]] GeoPoint destination_point(const GeoPoint& origin, double bearing_deg,
                                         double distance_km) noexcept;

/// Geographic midpoint of two points along the great circle joining them.
[[nodiscard]] GeoPoint midpoint(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Formats as "(lat, lon)" with 4 decimal places, e.g. "(45.0703, 7.6869)".
[[nodiscard]] std::string to_string(const GeoPoint& p);

std::ostream& operator<<(std::ostream& os, const GeoPoint& p);

/// Degrees <-> radians helpers.
[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept { return deg * M_PI / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / M_PI; }

}  // namespace ytcdn::geo
