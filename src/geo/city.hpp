#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/continent.hpp"
#include "geo/geo_point.hpp"

namespace ytcdn::geo {

/// A named city with coordinates, the granularity at which the paper
/// aggregates servers into data centers ("servers are grouped into the same
/// data center if they are located in the same city according to CBG").
struct City {
    std::string name;
    std::string country_code;  // ISO 3166-1 alpha-2, e.g. "US", "IT".
    Continent continent = Continent::Europe;
    GeoPoint location;
};

/// An in-memory gazetteer with nearest-city lookup.
///
/// The built-in database (see `CityDatabase::builtin()`) covers the cities the
/// reproduction needs: candidate data-center locations, vantage points and
/// PlanetLab landmark sites across all six continents.
class CityDatabase {
public:
    CityDatabase() = default;
    explicit CityDatabase(std::vector<City> cities);

    /// The world gazetteer used by the study deployment. Deterministic.
    [[nodiscard]] static const CityDatabase& builtin();

    void add(City city);

    [[nodiscard]] std::size_t size() const noexcept { return cities_.size(); }
    [[nodiscard]] bool empty() const noexcept { return cities_.empty(); }
    [[nodiscard]] std::span<const City> cities() const noexcept { return cities_; }

    /// Case-sensitive exact-name lookup; nullptr if absent.
    [[nodiscard]] const City* find(std::string_view name) const noexcept;

    /// The city whose location is closest to `p`; nullptr when empty.
    [[nodiscard]] const City* nearest(const GeoPoint& p) const noexcept;

    /// Like nearest(), but returns nullptr when the closest city is farther
    /// than `max_distance_km`. Used to reject geolocation estimates that fall
    /// in the middle of an ocean.
    [[nodiscard]] const City* nearest_within(const GeoPoint& p,
                                             double max_distance_km) const noexcept;

    /// All cities on the given continent, in database order.
    [[nodiscard]] std::vector<const City*> on_continent(Continent c) const;

private:
    std::vector<City> cities_;
};

}  // namespace ytcdn::geo
