#include "util/intern.hpp"

namespace ytcdn::util {

Interner::Id Interner::intern(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const char* copy = arena_.copy(s.data(), s.size());
    const std::string_view stable{copy, s.size()};
    const Id id = static_cast<Id>(by_id_.size());
    by_id_.push_back(stable);
    index_.emplace(stable, id);
    return id;
}

Interner::Id Interner::find(std::string_view s) const noexcept {
    const auto it = index_.find(s);
    return it == index_.end() ? kInvalidId : it->second;
}

std::vector<Interner::Id> Interner::merge_map(const Interner& shard) {
    std::vector<Id> remap;
    remap.reserve(shard.size());
    // Shard ids are first-seen order by construction; walking them 0..n-1
    // (a vector scan, not an unordered-container iteration) keeps the fold
    // deterministic for a fixed shard sequence.
    for (std::size_t i = 0; i < shard.by_id_.size(); ++i) {
        remap.push_back(intern(shard.by_id_[i]));
    }
    return remap;
}

}  // namespace ytcdn::util
