#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ytcdn::util {

/// Threads to use when nothing is configured: the YTCDN_THREADS environment
/// variable if set (clamped to [1, 512]), else hardware_concurrency, floor 1.
/// Re-read on every call so tests can vary the environment.
[[nodiscard]] std::size_t default_thread_count();

/// A fixed-size worker pool for deterministic fan-out.
///
/// The only entry point is run_indexed(n, task), which runs task(0..n-1)
/// across the workers *and* the calling thread, blocking until every index
/// has finished. Guarantees, regardless of pool size or scheduling:
///
///  * results keyed by index (see parallel_map) come back in input order;
///  * a pool of size 1 runs every index on the calling thread, in order —
///    an exact serial fallback with zero worker involvement;
///  * run_indexed called from inside one of this pool's own tasks degrades
///    to the same serial loop (no deadlock, same output);
///  * if tasks throw, every index still runs, and the exception from the
///    *lowest* throwing index is rethrown — deterministic across schedules.
///
/// Tasks must not share mutable state; determinism of the overall program
/// additionally requires each task to derive any randomness from a key that
/// identifies the task (sim::Rng::fork by stable id), never from a stream
/// shared across tasks.
class ThreadPool {
public:
    /// threads = 0 picks default_thread_count(). A pool of size n uses
    /// n - 1 workers: the caller of run_indexed is the n-th lane.
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Runs task(i) for every i in [0, n), blocking until all complete.
    void run_indexed(std::size_t n, const std::function<void(std::size_t)>& task);

private:
    struct Batch;

    void worker_main();
    void work_on(Batch& batch);
    [[nodiscard]] bool serial_here() const noexcept;

    std::size_t size_;
    std::vector<std::thread> workers_;  // ytcdn-lint: allow(raw-thread)
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Batch>> batches_;
    bool stop_ = false;
};

/// The process-wide pool, sized by default_thread_count() at first use.
/// Everything that is not handed an explicit pool shares this one.
[[nodiscard]] ThreadPool& shared_pool();

/// Applies f to every element of items on the pool and returns the results
/// **in input order** — bit-identical output across any thread count.
template <typename T, typename F>
[[nodiscard]] auto parallel_map(ThreadPool& pool, const std::vector<T>& items, F&& f)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
    using R = std::decay_t<std::invoke_result_t<F&, const T&>>;
    std::vector<std::optional<R>> slots(items.size());
    pool.run_indexed(items.size(),
                     [&](std::size_t i) { slots[i].emplace(f(items[i])); });
    std::vector<R> out;
    out.reserve(items.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
}

/// Index-keyed variant for producers that need the position, not a value.
template <typename F>
[[nodiscard]] auto parallel_map_indexed(ThreadPool& pool, std::size_t n, F&& f)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
    std::vector<std::optional<R>> slots(n);
    pool.run_indexed(n, [&](std::size_t i) { slots[i].emplace(f(i)); });
    std::vector<R> out;
    out.reserve(n);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
}

/// Side-effect-only fan-out; each task may touch only its own element.
template <typename T, typename F>
void parallel_for_each(ThreadPool& pool, std::vector<T>& items, F&& f) {
    pool.run_indexed(items.size(), [&](std::size_t i) { f(items[i]); });
}

}  // namespace ytcdn::util
