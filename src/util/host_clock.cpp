#include "util/host_clock.hpp"

#include <chrono>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define YTCDN_HAVE_RUSAGE 1
#endif

namespace ytcdn::util::host_clock {

double monotonic_s() {
    // The blessed real-clock read for resource guards (see header).
    const auto now = std::chrono::steady_clock::now();  // ytcdn-lint: allow(wall-clock)
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}

std::uint64_t peak_rss_kb() {
#ifdef YTCDN_HAVE_RUSAGE
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
    return 0;
#endif
}

}  // namespace ytcdn::util::host_clock
