#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

#include "util/metrics.hpp"

namespace ytcdn::util {

namespace {

/// Pool metrics count logical work units (batches submitted, tasks in them)
/// so the numbers are identical at every YTCDN_THREADS value; anything that
/// observes actual scheduling (queue occupancy, per-worker task counts)
/// would break the byte-determinism contract.
struct PoolMetrics {
    metrics::Counter batches = metrics::counter("util.pool.batches");
    metrics::Counter tasks = metrics::counter("util.pool.tasks");
    metrics::Gauge max_batch_tasks = metrics::gauge("util.pool.max_batch_tasks");
};

PoolMetrics& pool_metrics() {
    static PoolMetrics metrics;
    return metrics;
}

/// Set while a thread is executing batch work for a pool, so nested
/// run_indexed calls from inside a task fall back to the serial loop
/// instead of deadlocking on their own pool.
thread_local const ThreadPool* t_current_pool = nullptr;

struct PoolScope {
    explicit PoolScope(const ThreadPool* pool) : previous(t_current_pool) {
        t_current_pool = pool;
    }
    ~PoolScope() { t_current_pool = previous; }
    PoolScope(const PoolScope&) = delete;
    PoolScope& operator=(const PoolScope&) = delete;
    const ThreadPool* previous;
};

}  // namespace

std::size_t default_thread_count() {
    if (const char* env = std::getenv("YTCDN_THREADS")) {
        const long v = std::atol(env);
        if (v >= 1) return static_cast<std::size_t>(std::min(v, 512L));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& shared_pool() {
    static ThreadPool pool(default_thread_count());
    return pool;
}

/// One run_indexed call in flight: workers and the caller race to claim the
/// next unclaimed index; `done` counts finished indices (throwing or not).
struct ThreadPool::Batch {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* task = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable finished;
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
};

ThreadPool::ThreadPool(std::size_t threads)
    : size_(threads == 0 ? default_thread_count() : threads) {
    workers_.reserve(size_ - 1);
    for (std::size_t i = 0; i + 1 < size_; ++i) {
        workers_.emplace_back([this] { worker_main(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_) worker.join();
}

bool ThreadPool::serial_here() const noexcept {
    return size_ <= 1 || t_current_pool == this;
}

void ThreadPool::run_indexed(std::size_t n,
                             const std::function<void(std::size_t)>& task) {
    if (n == 0) return;
    pool_metrics().batches.inc();
    pool_metrics().tasks.inc(n);
    pool_metrics().max_batch_tasks.update_max(n);
    if (serial_here() || n == 1) {
        // Exact serial fallback: calling thread, input order, natural
        // exception propagation (which is also lowest-index-first).
        for (std::size_t i = 0; i < n; ++i) task(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->task = &task;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        batches_.push_back(batch);
    }
    cv_.notify_all();

    work_on(*batch);  // the caller is a full participant

    {
        std::unique_lock<std::mutex> lock(batch->mutex);
        batch->finished.wait(lock, [&] { return batch->done.load() >= batch->n; });
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::erase(batches_, batch);
    }
    if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_main() {
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] {
                if (stop_) return true;
                for (const auto& b : batches_) {
                    if (b->next.load() < b->n) return true;
                }
                return false;
            });
            if (stop_) return;
            for (const auto& b : batches_) {
                if (b->next.load() < b->n) {
                    batch = b;
                    break;
                }
            }
        }
        if (batch) work_on(*batch);
    }
}

void ThreadPool::work_on(Batch& batch) {
    const PoolScope scope(this);
    for (;;) {
        const std::size_t i = batch.next.fetch_add(1);
        if (i >= batch.n) return;
        try {
            (*batch.task)(i);
        } catch (...) {  // ytcdn-lint: allow(catch-all) — trampoline, rethrown on the caller
            const std::lock_guard<std::mutex> lock(batch.mutex);
            // Keep the exception from the lowest input index so propagation
            // does not depend on which worker lost the race.
            if (!batch.error || i < batch.error_index) {
                batch.error = std::current_exception();
                batch.error_index = i;
            }
        }
        if (batch.done.fetch_add(1) + 1 == batch.n) {
            const std::lock_guard<std::mutex> lock(batch.mutex);
            batch.finished.notify_all();
        }
    }
}

}  // namespace ytcdn::util
