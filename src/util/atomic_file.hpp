#pragma once

#include <filesystem>
#include <functional>
#include <iosfwd>
#include <string_view>

#include "util/error.hpp"

namespace ytcdn::util {

/// Atomic whole-file writes: serialize into "<path>.tmp", flush + fsync,
/// then rename over the final name. A crashed or concurrent writer never
/// leaves a torn file under `path` — readers see the old bytes or the new
/// bytes, nothing in between. Parent directories are created as needed.
///
/// The callback form streams into the temp file; returning false aborts
/// the write (the temp file is removed) with an Io error.
[[nodiscard]] Result<void> atomic_write_file(
    const std::filesystem::path& path,
    const std::function<bool(std::ostream&)>& writer);

/// Convenience for already-serialized payloads.
[[nodiscard]] Result<void> atomic_write_file(const std::filesystem::path& path,
                                             std::string_view bytes);

}  // namespace ytcdn::util
