#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ytcdn {

/// What went wrong at an I/O or parse boundary. Codes are grouped into
/// categories (see error_category) that CLI front ends map to distinct
/// process exit codes, so "the input file is corrupt" is distinguishable
/// from "I could not open it" without grepping stderr.
enum class ErrorCode : std::uint8_t {
    Io,                  // open/read/write/rename failure
    BadMagic,            // file does not start with the expected magic
    UnsupportedVersion,  // recognized format, unknown version
    Truncated,           // stream ended before the declared payload
    ChecksumMismatch,    // CRC framing failed — bytes were altered
    CountMismatch,       // declared vs actual element counts disagree
    BadField,            // well-framed record holds an invalid value
    KeyMismatch,         // artifact was written for a different config
    Parse,               // text input (schedule DSL, TSV) is malformed
    InvalidArgument,     // caller misuse (CLI flags, bad parameters)
};

[[nodiscard]] std::string_view to_string(ErrorCode code) noexcept;

/// Coarse grouping used for exit codes and retry policy.
enum class ErrorCategory : std::uint8_t {
    Internal,  // exit 1
    Usage,     // exit 2
    Io,        // exit 3
    Corrupt,   // exit 4
    Parse,     // exit 5
};

[[nodiscard]] ErrorCategory error_category(ErrorCode code) noexcept;

/// The process exit code a CLI should return for an error of this code.
[[nodiscard]] int exit_code_for(ErrorCode code) noexcept;

/// A structured I/O-boundary error: code + human message + provenance
/// (byte offset / record index / line number, whichever the format has).
///
/// Derives std::runtime_error so the pre-existing throwing entry points
/// (`read_binary_log`, `FaultSchedule::parse`, ...) stay drop-in
/// compatible: callers that caught std::runtime_error still do, while new
/// callers catch `const ytcdn::Error&` and branch on code().
///
/// what() is fully rendered at construction:
///   "<context>: <context>: <message> [record 5 @ byte 229]"
class Error : public std::runtime_error {
public:
    struct Provenance {
        std::optional<std::uint64_t> byte_offset;
        std::optional<std::uint64_t> record_index;
        std::optional<std::uint64_t> line_number;
    };

    Error(ErrorCode code, std::string_view message, Provenance where = {});

    [[nodiscard]] ErrorCode code() const noexcept { return code_; }
    [[nodiscard]] ErrorCategory category() const noexcept {
        return error_category(code_);
    }
    [[nodiscard]] const Provenance& where() const noexcept { return where_; }

    /// A copy with "<what>: " prefixed — build the context chain outermost
    /// last, e.g. err.context("loading snapshot " + path).
    [[nodiscard]] Error context(std::string_view what) const;

private:
    Error(ErrorCode code, const std::string& rendered, const Provenance& where,
          bool already_rendered);

    ErrorCode code_;
    Provenance where_;
};

/// Shorthand constructors keep provenance call sites readable.
[[nodiscard]] Error error_at_byte(ErrorCode code, std::string_view message,
                                  std::uint64_t byte_offset);
[[nodiscard]] Error error_at_record(ErrorCode code, std::string_view message,
                                    std::uint64_t record_index,
                                    std::uint64_t byte_offset);
[[nodiscard]] Error error_at_line(ErrorCode code, std::string_view message,
                                  std::uint64_t line_number);

namespace util {

/// Value-or-Error sum type for fallible I/O paths. Unlike exceptions it
/// makes the failure part of the signature, which is what lets the report
/// generator isolate per-artifact faults and the fuzz harness assert
/// "typed error or success, never crash".
template <typename T>
class [[nodiscard]] Result {
public:
    Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
    Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}

    [[nodiscard]] bool ok() const noexcept { return state_.index() == 0; }
    explicit operator bool() const noexcept { return ok(); }

    /// Precondition: ok().
    [[nodiscard]] T& value() & { return std::get<0>(state_); }
    [[nodiscard]] const T& value() const& { return std::get<0>(state_); }
    [[nodiscard]] T&& value() && { return std::get<0>(std::move(state_)); }

    /// Precondition: !ok().
    [[nodiscard]] const Error& error() const& { return std::get<1>(state_); }

    /// Unwraps, throwing the Error for legacy throwing entry points.
    T value_or_throw() && {
        if (!ok()) throw std::get<1>(std::move(state_));
        return std::get<0>(std::move(state_));
    }

    /// Wraps a held error with context; no-op on success.
    [[nodiscard]] Result context(std::string_view what) && {
        if (ok()) return std::move(*this);
        return Result(std::get<1>(state_).context(what));
    }

private:
    std::variant<T, Error> state_;
};

/// Result<void>: success carries nothing, failure carries the Error.
template <>
class [[nodiscard]] Result<void> {
public:
    Result() = default;
    Result(Error error) : error_(std::move(error)) {}

    [[nodiscard]] bool ok() const noexcept { return !error_.has_value(); }
    explicit operator bool() const noexcept { return ok(); }

    /// Precondition: !ok().
    [[nodiscard]] const Error& error() const& { return *error_; }

    void value_or_throw() && {
        if (error_) throw *std::move(error_);
    }

    [[nodiscard]] Result context(std::string_view what) && {
        if (ok()) return std::move(*this);
        return Result(error_->context(what));
    }

private:
    std::optional<Error> error_;
};

}  // namespace util
}  // namespace ytcdn
