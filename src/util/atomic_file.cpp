#include "util/atomic_file.hpp"

#include <fstream>
#include <ostream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define YTCDN_HAVE_FSYNC 1
#endif

namespace ytcdn::util {

namespace {

/// Pushes the freshly-written bytes to stable storage before the rename
/// publishes them; without this an OS crash can publish a zero-length file.
/// Opening read-only is enough for fsync to flush the file's data pages.
bool sync_file(const std::filesystem::path& path) {
#ifdef YTCDN_HAVE_FSYNC
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    (void)path;
    return true;
#endif
}

Error io_error(std::string_view stage, const std::filesystem::path& path) {
    return Error(ErrorCode::Io,
                 std::string(stage) + " failed for " + path.string());
}

}  // namespace

Result<void> atomic_write_file(const std::filesystem::path& path,
                               const std::function<bool(std::ostream&)>& writer) {
    std::error_code ec;
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec) return io_error("create_directories", path.parent_path());
    }
    const std::filesystem::path tmp = path.string() + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) return io_error("open", tmp);
        const bool written = writer(os);
        os.flush();
        if (!written || !os) {
            os.close();
            std::filesystem::remove(tmp, ec);
            return io_error("write", tmp);
        }
    }
    if (!sync_file(tmp)) {
        std::filesystem::remove(tmp, ec);
        return io_error("fsync", tmp);
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return io_error("rename", path);
    }
    return {};
}

Result<void> atomic_write_file(const std::filesystem::path& path,
                               std::string_view bytes) {
    return atomic_write_file(path, [bytes](std::ostream& os) {
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        return static_cast<bool>(os);
    });
}

}  // namespace ytcdn::util
