#include "util/atomic_file.hpp"

#include "util/io.hpp"

namespace ytcdn::util {

// Both overloads now delegate to the injectable I/O facade (util/io.hpp),
// which adds what the original fstream implementation lacked: EINTR retry
// on every syscall, an fsync of the parent directory after the rename (a
// "committed" snapshot otherwise evaporates if power fails before the
// directory entry reaches stable storage), and the chaos-test fault hooks.

Result<void> atomic_write_file(const std::filesystem::path& path,
                               const std::function<bool(std::ostream&)>& writer) {
    return io::write_file_atomic(path, writer);
}

Result<void> atomic_write_file(const std::filesystem::path& path,
                               std::string_view bytes) {
    return io::write_file_atomic(path, bytes);
}

}  // namespace ytcdn::util
