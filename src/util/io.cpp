#include "util/io.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/metrics.hpp"

#include "util/host_clock.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define YTCDN_IO_POSIX 1
#endif

namespace ytcdn::util::io {

namespace {

struct IoMetrics {
    metrics::Counter operations = metrics::counter("util.io.operations");
    metrics::Counter faults = metrics::counter("util.io.faults_injected");
};

IoMetrics& io_metrics() {
    static IoMetrics m;
    return m;
}

/// splitmix64 — local so the base library stays independent of sim/.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9E37'79B9'7F4A'7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBull;
    return x ^ (x >> 31);
}

double unit_interval(std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Minimal glob: '*' matches any run (including '/'), '?' one character.
bool glob_match(std::string_view pattern, std::string_view text) {
    if (pattern.empty() || pattern == "*") return true;
    std::size_t p = 0;
    std::size_t t = 0;
    std::size_t star_p = std::string_view::npos;
    std::size_t star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star_p = p++;
            star_t = t;
        } else if (star_p != std::string_view::npos) {
            p = star_p + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

Error injected_error(FaultKind kind, Op op, const std::filesystem::path& path) {
    return Error(ErrorCode::Io, "injected " + std::string(to_string(kind)) +
                                    " during " + std::string(to_string(op)) +
                                    " of " + path.string());
}

void stall(double ms) {
    if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<long>(ms * 1000.0)));
    }
}

}  // namespace

std::string_view to_string(Op op) noexcept {
    switch (op) {
        case Op::Open: return "open";
        case Op::Read: return "read";
        case Op::Write: return "write";
        case Op::Fsync: return "fsync";
        case Op::Rename: return "rename";
        case Op::Accept: return "accept";
        case Op::Poll: return "poll";
    }
    return "?";
}

std::string_view to_string(FaultKind kind) noexcept {
    switch (kind) {
        case FaultKind::None: return "none";
        case FaultKind::Eio: return "EIO";
        case FaultKind::Enospc: return "ENOSPC";
        case FaultKind::ShortWrite: return "short-write";
        case FaultKind::SlowWrite: return "slow-write";
    }
    return "?";
}

// --- FaultPlan ---------------------------------------------------------------

struct FaultPlan::State {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> draws;     // per rule
    std::vector<std::int64_t> injected;   // per rule
    FaultCounts totals;
};

std::shared_ptr<FaultPlan::State> FaultPlan::make_state() {
    return std::make_shared<State>();
}

void FaultPlan::add(FaultRule rule) {
    rules_.push_back(std::move(rule));
    const std::lock_guard<std::mutex> lock(state_->mutex);
    state_->draws.push_back(0);
    state_->injected.push_back(0);
}

FaultKind FaultPlan::draw(Op op, const std::filesystem::path& path,
                          double* slow_ms) {
    const std::string text = path.string();
    const std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->totals.checked;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        const FaultRule& rule = rules_[i];
        if ((rule.ops & op_bit(op)) == 0) continue;
        if (!glob_match(rule.glob, text)) continue;
        const std::uint64_t seq = state_->draws[i]++;
        if (rule.max_faults >= 0 && state_->injected[i] >= rule.max_faults) {
            continue;
        }
        const std::uint64_t h =
            mix(seed_ ^ mix(static_cast<std::uint64_t>(i) + 1) ^ mix(seq));
        if (unit_interval(h) < rule.probability) {
            ++state_->injected[i];
            ++state_->totals.injected;
            io_metrics().faults.inc();
            if (slow_ms != nullptr) *slow_ms = rule.slow_ms;
            return rule.kind;
        }
    }
    return FaultKind::None;
}

FaultCounts FaultPlan::counts() const {
    const std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->totals;
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
    FaultPlan plan;
    std::istringstream lines{std::string(text)};
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        std::istringstream tokens(line);
        std::string head;
        if (!(tokens >> head) || head.front() == '#') continue;
        if (head == "seed") {
            unsigned long long seed = 0;
            if (!(tokens >> seed)) {
                return error_at_line(ErrorCode::Parse,
                                     "fault plan: seed needs an integer",
                                     line_no);
            }
            plan.seed_ = seed;
            continue;
        }
        FaultRule rule;
        if (head == "eio") {
            rule.kind = FaultKind::Eio;
        } else if (head == "enospc") {
            rule.kind = FaultKind::Enospc;
        } else if (head == "short-write") {
            rule.kind = FaultKind::ShortWrite;
        } else if (head == "slow-write") {
            rule.kind = FaultKind::SlowWrite;
        } else {
            return error_at_line(ErrorCode::Parse,
                                 "fault plan: unknown kind '" + head + "'",
                                 line_no);
        }
        bool have_p = false;
        std::string kv;
        while (tokens >> kv) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos) {
                return error_at_line(ErrorCode::Parse,
                                     "fault plan: expected key=value, got '" +
                                         kv + "'",
                                     line_no);
            }
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "p") {
                char* end = nullptr;
                rule.probability = std::strtod(value.c_str(), &end);
                if (end == value.c_str() || rule.probability < 0.0 ||
                    rule.probability > 1.0) {
                    return error_at_line(
                        ErrorCode::Parse,
                        "fault plan: p must be a probability, got '" + value +
                            "'",
                        line_no);
                }
                have_p = true;
            } else if (key == "ops") {
                rule.ops = 0;
                std::istringstream ops(value);
                std::string op;
                while (std::getline(ops, op, ',')) {
                    if (op == "open") {
                        rule.ops |= op_bit(Op::Open);
                    } else if (op == "read") {
                        rule.ops |= op_bit(Op::Read);
                    } else if (op == "write") {
                        rule.ops |= op_bit(Op::Write);
                    } else if (op == "fsync") {
                        rule.ops |= op_bit(Op::Fsync);
                    } else if (op == "rename") {
                        rule.ops |= op_bit(Op::Rename);
                    } else if (op == "accept") {
                        rule.ops |= op_bit(Op::Accept);
                    } else if (op == "poll") {
                        rule.ops |= op_bit(Op::Poll);
                    } else {
                        return error_at_line(
                            ErrorCode::Parse,
                            "fault plan: unknown op '" + op + "'", line_no);
                    }
                }
                if (rule.ops == 0) {
                    return error_at_line(ErrorCode::Parse,
                                         "fault plan: empty ops list", line_no);
                }
            } else if (key == "glob") {
                rule.glob = value;
            } else if (key == "max") {
                rule.max_faults = std::strtoll(value.c_str(), nullptr, 10);
            } else if (key == "slow-ms") {
                rule.slow_ms = std::strtod(value.c_str(), nullptr);
            } else {
                return error_at_line(ErrorCode::Parse,
                                     "fault plan: unknown key '" + key + "'",
                                     line_no);
            }
        }
        if (!have_p) {
            return error_at_line(ErrorCode::Parse,
                                 "fault plan: rule is missing p=<probability>",
                                 line_no);
        }
        plan.add(std::move(rule));
    }
    return plan;
}

// --- global installation -----------------------------------------------------

namespace {

std::mutex& plan_mutex() {
    static std::mutex m;
    return m;
}

std::shared_ptr<FaultPlan>& plan_slot() {
    static std::shared_ptr<FaultPlan> plan;
    return plan;
}

/// The fault this operation draws under the installed plan (None when no
/// plan is installed). SlowWrite is resolved here: the stall happens, and
/// None is returned so callers only branch on hard faults.
FaultKind check_fault(Op op, const std::filesystem::path& path) {
    io_metrics().operations.inc();
    std::shared_ptr<FaultPlan> plan;
    {
        const std::lock_guard<std::mutex> lock(plan_mutex());
        plan = plan_slot();
    }
    if (!plan) return FaultKind::None;
    double slow_ms = 2.0;
    const FaultKind kind = plan->draw(op, path, &slow_ms);
    if (kind == FaultKind::SlowWrite) {
        stall(slow_ms);
        return FaultKind::None;
    }
    return kind;
}

}  // namespace

void set_fault_plan(std::shared_ptr<FaultPlan> plan) {
    const std::lock_guard<std::mutex> lock(plan_mutex());
    plan_slot() = std::move(plan);
}

std::shared_ptr<FaultPlan> fault_plan() {
    const std::lock_guard<std::mutex> lock(plan_mutex());
    return plan_slot();
}

Result<void> install_fault_plan_from_env() {
    const char* spec = std::getenv("YTCDN_IO_FAULTS");
    if (spec == nullptr || *spec == '\0') return {};
    std::string text;
    if (spec[0] == '@') {
        auto file = read_file(spec + 1);
        if (!file) {
            return std::move(file).context("YTCDN_IO_FAULTS").error();
        }
        text = std::move(file).value();
    } else {
        text = spec;
        std::replace(text.begin(), text.end(), ';', '\n');
    }
    auto plan = FaultPlan::parse(text);
    if (!plan) return std::move(plan).context("YTCDN_IO_FAULTS").error();
    set_fault_plan(std::make_shared<FaultPlan>(std::move(plan).value()));
    return {};
}

// --- facade operations -------------------------------------------------------

#ifdef YTCDN_IO_POSIX

namespace {

int open_retry(const char* path, int flags, mode_t mode = 0) {
    int fd = -1;
    do {
        fd = ::open(path, flags, mode);
    } while (fd < 0 && errno == EINTR);
    return fd;
}

/// Writes the whole buffer, retrying EINTR and continuing partial writes.
bool write_all(int fd, const char* data, std::size_t size) {
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool fsync_retry(int fd) {
    int rc = -1;
    do {
        rc = ::fsync(fd);
    } while (rc < 0 && errno == EINTR);
    return rc == 0;
}

Error errno_error(std::string_view what, const std::filesystem::path& path) {
    return Error(ErrorCode::Io, std::string(what) + " failed for " +
                                    path.string() + ": " +
                                    std::strerror(errno));
}

/// Durability for the rename itself: the new directory entry must reach
/// stable storage. Directories that refuse to open (some filesystems) are
/// tolerated; an fsync error on an opened directory is not.
Result<void> sync_parent_dir(const std::filesystem::path& path) {
    const std::filesystem::path dir =
        path.has_parent_path() ? path.parent_path() : ".";
    const int fd = open_retry(dir.c_str(), O_RDONLY);
    if (fd < 0) return {};
    const bool ok = fsync_retry(fd);
    ::close(fd);
    if (!ok) return errno_error("fsync of parent directory", dir);
    return {};
}

}  // namespace

Result<std::string> read_file(const std::filesystem::path& path) {
    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    const int fd = open_retry(path.c_str(), O_RDONLY);
    if (fd < 0) return errno_error("open", path);

    std::string out;
    char buf[1 << 16];
    bool injected_read_fault = false;
    FaultKind read_fault = FaultKind::None;
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR) continue;
            ::close(fd);
            return errno_error("read", path);
        }
        if (n == 0) break;
        if (const FaultKind f = check_fault(Op::Read, path);
            f != FaultKind::None) {
            // A short read delivers this chunk truncated before failing, so
            // the caller sees the torn prefix a real EIO would leave.
            out.append(buf, static_cast<std::size_t>(
                                f == FaultKind::ShortWrite ? n / 2 : 0));
            injected_read_fault = true;
            read_fault = f;
            break;
        }
        out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (injected_read_fault) {
        return injected_error(read_fault, Op::Read, path);
    }
    return out;
}

Result<void> write_file_atomic(const std::filesystem::path& path,
                               std::string_view bytes) {
    std::error_code ec;
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec) {
            return Error(ErrorCode::Io, "create_directories failed for " +
                                            path.parent_path().string());
        }
    }
    const std::filesystem::path tmp = path.string() + ".tmp";
    const auto fail = [&](Error error) {
        std::error_code ignore;
        std::filesystem::remove(tmp, ignore);
        return error;
    };

    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    const int fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return errno_error("open", tmp);

    if (const FaultKind f = check_fault(Op::Write, path);
        f != FaultKind::None) {
        if (f == FaultKind::ShortWrite) {
            // Leave a torn temp file exactly as a real short write would,
            // then fail — the cleanup below must still remove it.
            (void)write_all(fd, bytes.data(), bytes.size() / 2);
        }
        ::close(fd);
        return fail(injected_error(f, Op::Write, path));
    }
    if (!write_all(fd, bytes.data(), bytes.size())) {
        ::close(fd);
        return fail(errno_error("write", tmp));
    }

    if (const FaultKind f = check_fault(Op::Fsync, path);
        f != FaultKind::None) {
        ::close(fd);
        return fail(injected_error(f, Op::Fsync, path));
    }
    if (!fsync_retry(fd)) {
        ::close(fd);
        return fail(errno_error("fsync", tmp));
    }
    ::close(fd);

    if (const FaultKind f = check_fault(Op::Rename, path);
        f != FaultKind::None) {
        return fail(injected_error(f, Op::Rename, path));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        return fail(errno_error("rename", path));
    }
    return sync_parent_dir(path);
}

Result<void> rename_file(const std::filesystem::path& from,
                         const std::filesystem::path& to) {
    if (const FaultKind f = check_fault(Op::Rename, from);
        f != FaultKind::None) {
        return injected_error(f, Op::Rename, from);
    }
    if (::rename(from.c_str(), to.c_str()) != 0) {
        return errno_error("rename", from);
    }
    return {};
}

#else  // !YTCDN_IO_POSIX — portable fallback without fd-level durability.

Result<std::string> read_file(const std::filesystem::path& path) {
    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    std::ifstream is(path, std::ios::binary);
    if (!is) return Error(ErrorCode::Io, "cannot open " + path.string());
    if (const FaultKind f = check_fault(Op::Read, path); f != FaultKind::None) {
        return injected_error(f, Op::Read, path);
    }
    std::string out{std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>()};
    if (is.bad()) return Error(ErrorCode::Io, "read failed for " + path.string());
    return out;
}

Result<void> write_file_atomic(const std::filesystem::path& path,
                               std::string_view bytes) {
    std::error_code ec;
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec) {
            return Error(ErrorCode::Io, "create_directories failed for " +
                                            path.parent_path().string());
        }
    }
    const std::filesystem::path tmp = path.string() + ".tmp";
    const auto fail = [&](Error error) {
        std::error_code ignore;
        std::filesystem::remove(tmp, ignore);
        return error;
    };
    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) return Error(ErrorCode::Io, "cannot open " + tmp.string());
        if (const FaultKind f = check_fault(Op::Write, path);
            f != FaultKind::None) {
            return fail(injected_error(f, Op::Write, path));
        }
        os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        os.flush();
        if (!os) return fail(Error(ErrorCode::Io, "write failed for " + tmp.string()));
    }
    if (const FaultKind f = check_fault(Op::Rename, path);
        f != FaultKind::None) {
        return fail(injected_error(f, Op::Rename, path));
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) return fail(Error(ErrorCode::Io, "rename failed for " + path.string()));
    return {};
}

Result<void> rename_file(const std::filesystem::path& from,
                         const std::filesystem::path& to) {
    if (const FaultKind f = check_fault(Op::Rename, from);
        f != FaultKind::None) {
        return injected_error(f, Op::Rename, from);
    }
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) return Error(ErrorCode::Io, "rename failed for " + from.string());
    return {};
}

#endif  // YTCDN_IO_POSIX

Result<void> write_file_atomic(const std::filesystem::path& path,
                               const std::function<bool(std::ostream&)>& writer) {
    std::ostringstream buffer;
    if (!writer(buffer) || !buffer) {
        return Error(ErrorCode::Io, "serialize failed for " + path.string());
    }
    return write_file_atomic(path, buffer.str());
}

// --- streaming files ---------------------------------------------------------

namespace {

/// fsync of a just-written file by path; a no-op on hosts without
/// fd-level durability (mirroring the write_file_atomic fallback).
Result<void> sync_file_durable(const std::filesystem::path& path) {
#ifdef YTCDN_IO_POSIX
    const int fd = open_retry(path.c_str(), O_RDONLY);
    if (fd < 0) return errno_error("open", path);
    const bool ok = fsync_retry(fd);
    ::close(fd);
    if (!ok) return errno_error("fsync", path);
#else
    (void)path;
#endif
    return {};
}

Result<void> sync_parent_durable(const std::filesystem::path& path) {
#ifdef YTCDN_IO_POSIX
    return sync_parent_dir(path);
#else
    (void)path;
    return {};
#endif
}

}  // namespace

struct FileReader::Impl {
    std::ifstream is;
    std::filesystem::path path;
    std::uint64_t offset = 0;
};

FileReader::FileReader() = default;
FileReader::FileReader(FileReader&&) noexcept = default;
FileReader& FileReader::operator=(FileReader&&) noexcept = default;
FileReader::~FileReader() = default;

Result<FileReader> FileReader::open(const std::filesystem::path& path) {
    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    auto impl = std::make_unique<Impl>();
    impl->is.open(path, std::ios::binary);
    if (!impl->is) {
        return Error(ErrorCode::Io, "cannot open " + path.string());
    }
    impl->path = path;
    FileReader reader;
    reader.impl_ = std::move(impl);
    return reader;
}

Result<std::size_t> FileReader::read(char* buf, std::size_t max) {
    if (!impl_) return Error(ErrorCode::Io, "FileReader: not open");
    if (max == 0) return std::size_t{0};
    impl_->is.read(buf, static_cast<std::streamsize>(max));
    const auto n = static_cast<std::size_t>(impl_->is.gcount());
    if (impl_->is.bad()) {
        return Error(ErrorCode::Io, "read failed for " + impl_->path.string());
    }
    if (n > 0) {
        if (const FaultKind f = check_fault(Op::Read, impl_->path);
            f != FaultKind::None) {
            // A short read delivers a torn chunk before failing, like a
            // real EIO mid-file would.
            impl_->offset += (f == FaultKind::ShortWrite ? n / 2 : 0);
            return injected_error(f, Op::Read, impl_->path);
        }
    }
    impl_->offset += n;
    return n;
}

Result<std::size_t> FileReader::read_chunk(std::string& out, std::size_t max) {
    const std::size_t base = out.size();
    out.resize(base + max);
    auto n = read(out.data() + base, max);
    out.resize(base + (n.ok() ? n.value() : 0));
    if (!n) return n.error();
    return n.value();
}

std::uint64_t FileReader::offset() const noexcept {
    return impl_ ? impl_->offset : 0;
}

const std::filesystem::path& FileReader::path() const noexcept {
    static const std::filesystem::path empty;
    return impl_ ? impl_->path : empty;
}

void FileReader::close() { impl_.reset(); }

struct FileWriter::Impl {
    std::ofstream os;
    std::filesystem::path final_path;
    std::filesystem::path tmp_path;
    std::uint64_t logical_end = 0;
};

FileWriter::FileWriter() = default;
FileWriter::FileWriter(FileWriter&&) noexcept = default;
FileWriter& FileWriter::operator=(FileWriter&&) noexcept = default;
FileWriter::~FileWriter() { discard(); }

Result<FileWriter> FileWriter::create(const std::filesystem::path& path) {
    std::error_code ec;
    if (path.has_parent_path()) {
        std::filesystem::create_directories(path.parent_path(), ec);
        if (ec) {
            return Error(ErrorCode::Io, "create_directories failed for " +
                                            path.parent_path().string());
        }
    }
    if (const FaultKind f = check_fault(Op::Open, path); f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    auto impl = std::make_unique<Impl>();
    impl->final_path = path;
    impl->tmp_path = path.string() + ".tmp";
    impl->os.open(impl->tmp_path, std::ios::binary | std::ios::trunc);
    if (!impl->os) {
        return Error(ErrorCode::Io, "cannot open " + impl->tmp_path.string());
    }
    FileWriter writer;
    writer.impl_ = std::move(impl);
    return writer;
}

Result<void> FileWriter::append(std::string_view bytes) {
    if (!impl_) return Error(ErrorCode::Io, "FileWriter: not open");
    if (const FaultKind f = check_fault(Op::Write, impl_->final_path);
        f != FaultKind::None) {
        if (f == FaultKind::ShortWrite) {
            // Tear the temp file exactly as a real short write would; the
            // caller's discard (or our destructor) removes the evidence and
            // the final name never existed.
            impl_->os.write(bytes.data(),
                            static_cast<std::streamsize>(bytes.size() / 2));
        }
        return injected_error(f, Op::Write, impl_->final_path);
    }
    impl_->os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!impl_->os) {
        return Error(ErrorCode::Io, "write failed for " + impl_->tmp_path.string());
    }
    impl_->logical_end += bytes.size();
    return {};
}

Result<void> FileWriter::write_at(std::uint64_t offset, std::string_view bytes) {
    if (!impl_) return Error(ErrorCode::Io, "FileWriter: not open");
    if (offset + bytes.size() > impl_->logical_end) {
        return Error(ErrorCode::InvalidArgument,
                     "FileWriter::write_at: patch beyond written bytes in " +
                         impl_->tmp_path.string());
    }
    if (const FaultKind f = check_fault(Op::Write, impl_->final_path);
        f != FaultKind::None) {
        return injected_error(f, Op::Write, impl_->final_path);
    }
    impl_->os.seekp(static_cast<std::streamoff>(offset));
    impl_->os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    impl_->os.seekp(static_cast<std::streamoff>(impl_->logical_end));
    if (!impl_->os) {
        return Error(ErrorCode::Io,
                     "write_at failed for " + impl_->tmp_path.string());
    }
    return {};
}

std::uint64_t FileWriter::bytes_written() const noexcept {
    return impl_ ? impl_->logical_end : 0;
}

const std::filesystem::path& FileWriter::path() const noexcept {
    static const std::filesystem::path empty;
    return impl_ ? impl_->final_path : empty;
}

Result<void> FileWriter::publish() {
    if (!impl_) return Error(ErrorCode::Io, "FileWriter: not open");
    const auto fail = [this](Error error) {
        discard();
        return error;
    };
    impl_->os.flush();
    if (!impl_->os) {
        return fail(Error(ErrorCode::Io,
                          "flush failed for " + impl_->tmp_path.string()));
    }
    impl_->os.close();
    if (const FaultKind f = check_fault(Op::Fsync, impl_->final_path);
        f != FaultKind::None) {
        return fail(injected_error(f, Op::Fsync, impl_->final_path));
    }
    if (auto r = sync_file_durable(impl_->tmp_path); !r) {
        return fail(std::move(r).error());
    }
    // rename_file carries the Rename fault point.
    if (auto r = rename_file(impl_->tmp_path, impl_->final_path); !r) {
        return fail(std::move(r).error());
    }
    const std::filesystem::path published = impl_->final_path;
    impl_.reset();
    return sync_parent_durable(published);
}

void FileWriter::discard() {
    if (!impl_) return;
    impl_->os.close();
    std::error_code ignore;
    std::filesystem::remove(impl_->tmp_path, ignore);
    impl_.reset();
}

Result<std::filesystem::path> quarantine_file(const std::filesystem::path& path,
                                              std::size_t keep) {
    if (keep == 0) keep = kDefaultQuarantineKeep;
    if (const char* env = std::getenv("YTCDN_QUARANTINE_KEEP")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) keep = static_cast<std::size_t>(v);
    }

    // Existing quarantined siblings: "<name>.corrupt.<k>".
    const std::filesystem::path dir =
        path.has_parent_path() ? path.parent_path() : ".";
    const std::string prefix = path.filename().string() + ".corrupt.";
    std::vector<std::pair<std::uint64_t, std::filesystem::path>> existing;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
            continue;
        }
        const std::string suffix = name.substr(prefix.size());
        if (suffix.empty() ||
            suffix.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        existing.emplace_back(std::strtoull(suffix.c_str(), nullptr, 10),
                              entry.path());
    }
    std::sort(existing.begin(), existing.end());

    const std::uint64_t next = existing.empty() ? 1 : existing.back().first + 1;
    const std::filesystem::path target =
        dir / (prefix + std::to_string(next));
    if (auto r = rename_file(path, target); !r) {
        return std::move(r).context("quarantine").error();
    }

    // Keep the newest `keep` quarantined copies including the one just
    // created; delete the oldest beyond that so repeated corruption in a
    // long run cannot fill the disk.
    const std::size_t total = existing.size() + 1;
    if (total > keep) {
        const std::size_t drop = total - keep;
        for (std::size_t i = 0; i < drop && i < existing.size(); ++i) {
            std::filesystem::remove(existing[i].second, ec);
        }
    }
    return target;
}

// --- local sockets (the ytcdnd control endpoint) -----------------------------

namespace {

const std::filesystem::path& fd_label(const std::filesystem::path& what) {
    static const std::filesystem::path anonymous("<fd>");
    return what.empty() ? anonymous : what;
}

}  // namespace

#ifdef YTCDN_IO_POSIX

void close_fd(int fd) {
    if (fd < 0) return;
    int rc = -1;
    do {
        rc = ::close(fd);
    } while (rc < 0 && errno == EINTR);
}

Result<bool> poll_readable(int fd, int timeout_ms,
                           const std::filesystem::path& what) {
    const std::filesystem::path& label = fd_label(what);
    if (const FaultKind f = check_fault(Op::Poll, label);
        f != FaultKind::None) {
        return injected_error(f, Op::Poll, label);
    }
    if (fd < 0) {
        // Pure bounded wait: the service loop's pacing tick when no control
        // socket is listening.
        stall(static_cast<double>(timeout_ms));
        return false;
    }
    const double start_s = host_clock::monotonic_s();
    int remaining_ms = timeout_ms < 0 ? 0 : timeout_ms;
    for (;;) {
        struct pollfd p{};
        p.fd = fd;
        p.events = POLLIN;
        const int rc = ::poll(&p, 1, remaining_ms);
        if (rc > 0) return true;
        if (rc == 0) return false;
        if (errno != EINTR) return errno_error("poll", label);
        // EINTR: keep the original deadline instead of restarting the wait.
        const double elapsed_ms =
            (host_clock::monotonic_s() - start_s) * 1000.0;
        remaining_ms = timeout_ms - static_cast<int>(elapsed_ms);
        if (remaining_ms <= 0) return false;
    }
}

Result<std::string> read_line_fd(int fd, int timeout_ms, std::size_t max_len) {
    const std::filesystem::path& label = fd_label({});
    std::string out;
    while (out.size() < max_len) {
        auto ready = poll_readable(fd, timeout_ms, label);
        if (!ready) return std::move(ready).context("read_line").error();
        if (!ready.value()) {
            return Error(ErrorCode::Io,
                         "timed out waiting for a line on fd " +
                             std::to_string(fd));
        }
        if (const FaultKind f = check_fault(Op::Read, label);
            f != FaultKind::None) {
            return injected_error(f, Op::Read, label);
        }
        char c = 0;
        const ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR) continue;
            return errno_error("read", label);
        }
        if (n == 0) break;  // EOF before newline: yield the partial line.
        if (c == '\n') break;
        out.push_back(c);
    }
    return out;
}

Result<std::string> read_all_fd(int fd, int timeout_ms, std::size_t max_len) {
    const std::filesystem::path& label = fd_label({});
    std::string out;
    char buf[1 << 14];
    while (out.size() < max_len) {
        auto ready = poll_readable(fd, timeout_ms, label);
        if (!ready) return std::move(ready).context("read_all").error();
        if (!ready.value()) break;  // quiet line: treat as end of response
        if (const FaultKind f = check_fault(Op::Read, label);
            f != FaultKind::None) {
            return injected_error(f, Op::Read, label);
        }
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR) continue;
            return errno_error("read", label);
        }
        if (n == 0) break;  // EOF: the server closed the connection
        const std::size_t take =
            std::min(static_cast<std::size_t>(n), max_len - out.size());
        out.append(buf, take);
    }
    return out;
}

Result<void> write_fd_all(int fd, std::string_view bytes) {
    const std::filesystem::path& label = fd_label({});
    if (const FaultKind f = check_fault(Op::Write, label);
        f != FaultKind::None) {
        return injected_error(f, Op::Write, label);
    }
    if (!write_all(fd, bytes.data(), bytes.size())) {
        return errno_error("write", label);
    }
    return {};
}

namespace {

/// Fills sockaddr_un, rejecting paths too long for sun_path.
Result<sockaddr_un> unix_addr(const std::filesystem::path& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string text = path.string();
    if (text.size() >= sizeof(addr.sun_path)) {
        return Error(ErrorCode::InvalidArgument, "socket path too long (" +
                                           std::to_string(text.size()) +
                                           " bytes): " + text);
    }
    std::memcpy(addr.sun_path, text.c_str(), text.size() + 1);
    return addr;
}

}  // namespace

Result<UnixServerSocket> UnixServerSocket::listen(
    const std::filesystem::path& path) {
    if (const FaultKind f = check_fault(Op::Open, path);
        f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    auto addr = unix_addr(path);
    if (!addr) return std::move(addr).context("listen").error();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return errno_error("socket", path);
    // A daemon killed with SIGKILL leaves its socket file behind; the
    // replacement instance owns the path and may reclaim it.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
               sizeof(sockaddr_un)) != 0) {
        const Error e = errno_error("bind", path);
        close_fd(fd);
        return e;
    }
    if (::listen(fd, 16) != 0) {
        const Error e = errno_error("listen", path);
        close_fd(fd);
        ::unlink(path.c_str());
        return e;
    }
    // Non-blocking so a connection that vanishes between poll and accept
    // surfaces as EAGAIN (treated as a timeout) instead of wedging the loop.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    UnixServerSocket sock;
    sock.fd_ = fd;
    sock.path_ = path;
    return sock;
}

Result<int> UnixServerSocket::accept_ready(int timeout_ms) {
    if (fd_ < 0) {
        return Error(ErrorCode::InvalidArgument,
                     "accept on a closed server socket");
    }
    auto ready = poll_readable(fd_, timeout_ms, path_);
    if (!ready) return std::move(ready).context("accept").error();
    if (!ready.value()) return -1;
    if (const FaultKind f = check_fault(Op::Accept, path_);
        f != FaultKind::None) {
        return injected_error(f, Op::Accept, path_);
    }
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) return client;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
            return -1;  // the peer vanished between poll and accept
        }
        return errno_error("accept", path_);
    }
}

Result<int> connect_unix(const std::filesystem::path& path) {
    if (const FaultKind f = check_fault(Op::Open, path);
        f != FaultKind::None) {
        return injected_error(f, Op::Open, path);
    }
    auto addr = unix_addr(path);
    if (!addr) return std::move(addr).context("connect").error();
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return errno_error("socket", path);
    int rc = -1;
    do {
        rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                       sizeof(sockaddr_un));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        const Error e = errno_error("connect", path);
        close_fd(fd);
        return e;
    }
    return fd;
}

#else  // !YTCDN_IO_POSIX — the daemon runs with its control endpoint disabled.

namespace {

Error no_sockets(const std::filesystem::path& what) {
    return Error(ErrorCode::Io,
                 "unix sockets are unavailable on this host (" + what.string() +
                     ")");
}

}  // namespace

void close_fd(int) {}

Result<bool> poll_readable(int fd, int timeout_ms,
                           const std::filesystem::path& what) {
    const std::filesystem::path& label = fd_label(what);
    if (const FaultKind f = check_fault(Op::Poll, label);
        f != FaultKind::None) {
        return injected_error(f, Op::Poll, label);
    }
    if (fd < 0) {
        stall(static_cast<double>(timeout_ms));
        return false;
    }
    return no_sockets(label);
}

Result<std::string> read_line_fd(int, int, std::size_t) {
    return no_sockets(fd_label({}));
}

Result<std::string> read_all_fd(int, int, std::size_t) {
    return no_sockets(fd_label({}));
}

Result<void> write_fd_all(int, std::string_view) {
    return no_sockets(fd_label({}));
}

Result<UnixServerSocket> UnixServerSocket::listen(
    const std::filesystem::path& path) {
    return no_sockets(path);
}

Result<int> UnixServerSocket::accept_ready(int) {
    return no_sockets(path_);
}

Result<int> connect_unix(const std::filesystem::path& path) {
    return no_sockets(path);
}

#endif  // YTCDN_IO_POSIX

UnixServerSocket::UnixServerSocket(UnixServerSocket&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
    other.fd_ = -1;
    other.path_.clear();
}

UnixServerSocket& UnixServerSocket::operator=(
    UnixServerSocket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        other.fd_ = -1;
        other.path_.clear();
    }
    return *this;
}

UnixServerSocket::~UnixServerSocket() { close(); }

void UnixServerSocket::close() {
    if (fd_ >= 0) {
        close_fd(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        std::error_code ignore;
        std::filesystem::remove(path_, ignore);
        path_.clear();
    }
}

}  // namespace ytcdn::util::io
