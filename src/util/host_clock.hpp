#pragma once

#include <cstdint>

namespace ytcdn::util::host_clock {

/// The one blessed boundary to the host's real clock and memory accounting.
///
/// Simulated results must never depend on wall time — that is what the
/// wall-clock lint rule enforces across src/. The supervisor's resource
/// guards (per-stage wall budgets, peak-RSS ceilings) are the exception:
/// they *observe* the host without feeding anything back into simulated
/// outputs. Keeping every real-time read behind this header makes the
/// exception auditable: any other clock read in src/ is still a lint error.

/// Monotonic seconds since an arbitrary epoch (never wall-calendar time).
[[nodiscard]] double monotonic_s();

/// The process's peak resident set size in KiB, or 0 where unavailable.
[[nodiscard]] std::uint64_t peak_rss_kb();

}  // namespace ytcdn::util::host_clock
