#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/arena.hpp"

namespace ytcdn::util {

/// A thread-confined string interner with deterministic merge-at-join.
///
/// Each shard (one sniffer, one worker) interns locally: the first time a
/// string is seen it is copied into the shard's arena and assigned the next
/// dense id, so ids are exactly first-seen order. Shards never synchronise
/// on the hot path. At the join point the owner folds shards into a canonical
/// interner with `merge_map()`, walking each shard *in its own id order* and
/// shards in a fixed order (VP index, worker index) — the same
/// permutation-invariant fold idiom as `util::metrics`: the canonical id of a
/// string depends only on the ordered shard sequence, never on thread timing.
///
/// Lookups take `std::string_view` and never allocate; `find()` on a missing
/// string is also allocation-free, which is what makes the interner usable
/// inside per-event loops (`Cdn::server_by_hostname`, DPI host parsing).
class Interner {
public:
    using Id = std::uint32_t;
    static constexpr Id kInvalidId = 0xFFFFFFFFu;

    Interner() = default;
    Interner(const Interner&) = delete;
    Interner& operator=(const Interner&) = delete;
    Interner(Interner&&) noexcept = default;
    Interner& operator=(Interner&&) noexcept = default;

    /// Returns the id of `s`, interning a stable copy on first sight.
    Id intern(std::string_view s);

    /// Id of `s` if already interned, `kInvalidId` otherwise. Never allocates.
    [[nodiscard]] Id find(std::string_view s) const noexcept;

    /// The interned string for a valid id; views stay stable for the
    /// interner's lifetime (arena-backed, never rehashed away).
    [[nodiscard]] std::string_view view(Id id) const noexcept { return by_id_[id]; }

    [[nodiscard]] std::size_t size() const noexcept { return by_id_.size(); }
    [[nodiscard]] bool empty() const noexcept { return by_id_.empty(); }

    /// Folds `shard` into this interner: walks shard ids 0..size-1 in order,
    /// interning each string here. Returns the remap table, where
    /// `remap[shard_id]` is the canonical id. Calling merge_map over shards
    /// in a fixed order yields ids independent of how work was sharded.
    std::vector<Id> merge_map(const Interner& shard);

private:
    Arena arena_{4 * 1024};
    std::vector<std::string_view> by_id_;
    std::unordered_map<std::string_view, Id> index_;
};

}  // namespace ytcdn::util
