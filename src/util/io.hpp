#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace ytcdn::util::io {

/// The injectable host-I/O boundary. Every file the pipeline touches goes
/// through these entry points, which consult the process-wide FaultPlan
/// before performing the real operation. With no plan installed (the
/// default) the facade is a thin wrapper over POSIX I/O with EINTR retries
/// and full durability (fsync the file *and* its parent directory before a
/// rename publishes it); with a plan installed, a deterministic, seeded
/// schedule of EIO / ENOSPC / short-write / slow-write faults fires at the
/// selected operations — which is how ctest chaos-tests the real pipeline
/// instead of a mock.

/// The primitive operations a FaultRule can select. Accept and Poll cover
/// the daemon's control-socket path (ytcdnd), so a chaos plan reaches the
/// long-running service exactly like the batch pipeline.
enum class Op : std::uint8_t { Open, Read, Write, Fsync, Rename, Accept, Poll };
inline constexpr std::size_t kNumOps = 7;

[[nodiscard]] std::string_view to_string(Op op) noexcept;
[[nodiscard]] constexpr std::uint8_t op_bit(Op op) noexcept {
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(op));
}
inline constexpr std::uint8_t kAllOps = 0x7F;

/// What an injected fault pretends happened.
enum class FaultKind : std::uint8_t {
    None,
    Eio,         // the device reported an I/O error
    Enospc,      // the disk filled up
    ShortWrite,  // only part of the buffer reached the file, then EIO
    SlowWrite,   // the operation stalls (bounded sleep), then succeeds
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One line of a fault schedule: with probability `probability`, operations
/// matching `ops` on paths matching `glob` suffer a `kind` fault, at most
/// `max_faults` times (-1 = unbounded).
struct FaultRule {
    FaultKind kind = FaultKind::Eio;
    double probability = 0.0;
    std::uint8_t ops = kAllOps;
    std::string glob;             // empty or "*" matches every path
    std::int64_t max_faults = -1;
    double slow_ms = 2.0;         // stall length for SlowWrite
};

/// Counts of what a plan actually did, for the run manifest.
struct FaultCounts {
    std::uint64_t checked = 0;   // operations that consulted the plan
    std::uint64_t injected = 0;  // operations that drew a fault
};

/// A deterministic schedule of host faults. Decisions are a pure function
/// of (seed, rule index, per-rule draw counter): two runs executing the
/// same I/O sequence inject exactly the same faults. Thread-safe.
class FaultPlan {
public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    void add(FaultRule rule);
    [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

    /// Parses the fault-plan text format, one rule per line:
    ///
    ///   # chaos at one percent
    ///   seed 42
    ///   eio p=0.01 ops=open,write glob=*.yfl max=3
    ///   enospc p=0.002 ops=write,fsync,rename
    ///   short-write p=0.01 ops=write
    ///   slow-write p=0.05 slow-ms=5
    ///
    /// Kinds: eio | enospc | short-write | slow-write. `p=` is required;
    /// ops/glob/max/slow-ms are optional (default: all ops, every path,
    /// unbounded, 2 ms).
    [[nodiscard]] static Result<FaultPlan> parse(std::string_view text);

    /// The fault (or None) this operation draws. Advances the schedule.
    /// For SlowWrite faults, `*slow_ms` (when non-null) receives the
    /// matching rule's stall length.
    [[nodiscard]] FaultKind draw(Op op, const std::filesystem::path& path,
                                 double* slow_ms = nullptr);

    [[nodiscard]] FaultCounts counts() const;

private:
    std::uint64_t seed_ = 0;
    std::vector<FaultRule> rules_;
    struct State;
    std::shared_ptr<State> state_ = make_state();
    [[nodiscard]] static std::shared_ptr<State> make_state();
};

/// Installs `plan` as the process-wide fault schedule consulted by every
/// facade operation (null = no faults, the zero-overhead default).
void set_fault_plan(std::shared_ptr<FaultPlan> plan);
[[nodiscard]] std::shared_ptr<FaultPlan> fault_plan();

/// RAII installation for tests: restores the previous plan on destruction.
class ScopedFaultPlan {
public:
    explicit ScopedFaultPlan(std::shared_ptr<FaultPlan> plan)
        : previous_(fault_plan()) {
        set_fault_plan(std::move(plan));
    }
    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
    ~ScopedFaultPlan() { set_fault_plan(std::move(previous_)); }

private:
    std::shared_ptr<FaultPlan> previous_;
};

/// Installs the plan named by the YTCDN_IO_FAULTS environment variable:
/// either an inline spec ("eio p=0.01 ops=write") with ';' for newlines, or
/// "@<path>" to read a plan file. No-op (success) when the variable is
/// unset or empty. CLI front ends call this before dispatching so chaos
/// reaches every command without new flags.
[[nodiscard]] Result<void> install_fault_plan_from_env();

/// Reads the whole file. EINTR-retried; fault points: Open, Read.
[[nodiscard]] Result<std::string> read_file(const std::filesystem::path& path);

/// Writes atomically and durably: serialize to "<path>.tmp", fsync the
/// file, rename over the final name, then fsync the parent directory (a
/// rename is only crash-durable once the directory entry itself is on
/// stable storage). Parent directories are created as needed; on any
/// failure the temp file is removed, so no torn or un-framed output is
/// ever left under the final name. Fault points: Open, Write, Fsync,
/// Rename. EINTR is retried at every syscall.
[[nodiscard]] Result<void> write_file_atomic(const std::filesystem::path& path,
                                             std::string_view bytes);

/// Callback form: the writer serializes into a memory buffer first
/// (returning false aborts with an Io error), then the byte form above
/// performs the durable write.
[[nodiscard]] Result<void> write_file_atomic(
    const std::filesystem::path& path,
    const std::function<bool(std::ostream&)>& writer);

/// Renames with EINTR retry. Fault point: Rename.
[[nodiscard]] Result<void> rename_file(const std::filesystem::path& from,
                                       const std::filesystem::path& to);

/// Incremental file reader: bounded chunk reads through the fault-plan
/// boundary, for consumers that must not materialize the whole file (the
/// out-of-core YFL2/YTR1 streaming paths — DESIGN.md §16). Move-only.
/// Fault points: Open at open(), Read at every chunk (a ShortWrite fault
/// delivers a torn chunk first, like read_file).
class FileReader {
public:
    FileReader();
    FileReader(FileReader&&) noexcept;
    FileReader& operator=(FileReader&&) noexcept;
    FileReader(const FileReader&) = delete;
    FileReader& operator=(const FileReader&) = delete;
    ~FileReader();

    [[nodiscard]] static Result<FileReader> open(const std::filesystem::path& path);

    /// Reads up to `max` bytes into `buf`; returns the count, 0 at EOF.
    [[nodiscard]] Result<std::size_t> read(char* buf, std::size_t max);
    /// Appends up to `max` bytes to `out` (resizing it); returns the count.
    [[nodiscard]] Result<std::size_t> read_chunk(std::string& out, std::size_t max);

    /// Bytes delivered so far — the provenance offset for error reports.
    [[nodiscard]] std::uint64_t offset() const noexcept;
    [[nodiscard]] const std::filesystem::path& path() const noexcept;
    [[nodiscard]] bool is_open() const noexcept { return impl_ != nullptr; }
    void close();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Incremental atomic file writer: appends stream to "<path>.tmp"; only
/// publish() — fsync, rename over the final name, fsync the parent
/// directory — makes the file visible, so a crashed or discarded writer
/// never leaves a torn log under the final name. write_at() patches bytes
/// already appended (how the streaming YFL2 writer back-fills the header's
/// record count on close without buffering the log). Move-only; an
/// unpublished writer discards its temp file on destruction. Fault
/// points: Open at create(), Write at append()/write_at(), Fsync and
/// Rename at publish().
class FileWriter {
public:
    FileWriter();
    FileWriter(FileWriter&&) noexcept;
    FileWriter& operator=(FileWriter&&) noexcept;
    FileWriter(const FileWriter&) = delete;
    FileWriter& operator=(const FileWriter&) = delete;
    ~FileWriter();

    /// Creates parent directories and opens "<path>.tmp" for writing.
    [[nodiscard]] static Result<FileWriter> create(const std::filesystem::path& path);

    [[nodiscard]] Result<void> append(std::string_view bytes);
    /// Overwrites bytes at `offset` within what was already appended; the
    /// write position returns to the end afterwards.
    [[nodiscard]] Result<void> write_at(std::uint64_t offset, std::string_view bytes);

    /// Logical size so far (appends only; write_at never extends).
    [[nodiscard]] std::uint64_t bytes_written() const noexcept;
    /// The final (post-publish) path.
    [[nodiscard]] const std::filesystem::path& path() const noexcept;
    [[nodiscard]] bool is_open() const noexcept { return impl_ != nullptr; }

    /// Durably publishes under the final name and closes the writer. On
    /// failure the temp file is removed and the final name is untouched.
    [[nodiscard]] Result<void> publish();
    /// Closes and removes the temp file without publishing.
    void discard();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Moves a damaged file aside as "<path>.corrupt.<k>" (k increments past
/// any existing quarantined sibling) and prunes older quarantined copies
/// so at most `keep` remain — repeated corruption in a long run must not
/// fill the disk. Returns the quarantine path. `keep` == 0 keeps the
/// default of kDefaultQuarantineKeep; the YTCDN_QUARANTINE_KEEP
/// environment variable overrides either.
inline constexpr std::size_t kDefaultQuarantineKeep = 3;
[[nodiscard]] Result<std::filesystem::path> quarantine_file(
    const std::filesystem::path& path, std::size_t keep = 0);

/// --- local sockets (the ytcdnd control endpoint) -------------------------
///
/// The same injectable-boundary rules apply: every socket operation
/// consults the fault plan (ops accept / poll / read / write), every wait
/// carries an explicit deadline (the service-loop lint rule forbids raw
/// blocking calls in src/service/), and EINTR is retried everywhere. On
/// non-POSIX hosts the socket entry points return a typed Io error and the
/// daemon runs with its control endpoint disabled.

/// Closes a descriptor, retrying EINTR; negative fds are ignored.
void close_fd(int fd);

/// Waits up to `timeout_ms` for `fd` to become readable. `fd` < 0 performs
/// a pure bounded wait (the service loop's pacing tick when no control
/// socket is listening). Returns true when readable, false on timeout.
/// Fault point: Poll.
[[nodiscard]] Result<bool> poll_readable(int fd, int timeout_ms,
                                         const std::filesystem::path& what = {});

/// Reads one '\n'-terminated line (newline stripped, bounded by `max_len`)
/// waiting at most `timeout_ms` for bytes. EOF before a newline yields the
/// partial line. Fault points: Poll, Read.
[[nodiscard]] Result<std::string> read_line_fd(int fd, int timeout_ms,
                                               std::size_t max_len = 1 << 16);

/// Reads everything until EOF (bounded by `max_len`), waiting at most
/// `timeout_ms` between chunks — the ctl client's "response ends when the
/// server closes the connection" read. Fault points: Poll, Read.
[[nodiscard]] Result<std::string> read_all_fd(int fd, int timeout_ms,
                                              std::size_t max_len = 1 << 20);

/// Writes the whole buffer (EINTR retried, partial writes continued).
/// Fault point: Write.
[[nodiscard]] Result<void> write_fd_all(int fd, std::string_view bytes);

/// A listening Unix-domain stream socket. Owns the descriptor and unlinks
/// the socket path on close/destruction. Move-only.
class UnixServerSocket {
public:
    UnixServerSocket() = default;
    UnixServerSocket(UnixServerSocket&& other) noexcept;
    UnixServerSocket& operator=(UnixServerSocket&& other) noexcept;
    UnixServerSocket(const UnixServerSocket&) = delete;
    UnixServerSocket& operator=(const UnixServerSocket&) = delete;
    ~UnixServerSocket();

    /// Binds and listens on `path`, replacing any stale socket file left by
    /// a killed daemon. Fault point: Open.
    [[nodiscard]] static Result<UnixServerSocket> listen(
        const std::filesystem::path& path);

    /// Waits up to `timeout_ms` for a pending connection and accepts it.
    /// Returns the connected fd, or -1 when the wait timed out (the
    /// service loop's idle tick). Fault points: Poll, Accept.
    [[nodiscard]] Result<int> accept_ready(int timeout_ms);

    [[nodiscard]] bool listening() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] const std::filesystem::path& path() const noexcept {
        return path_;
    }

    /// Closes the descriptor and unlinks the socket file.
    void close();

private:
    int fd_ = -1;
    std::filesystem::path path_;
};

/// Connects to a Unix-domain stream socket (the `ytcdn ctl` client side).
/// Fault point: Open.
[[nodiscard]] Result<int> connect_unix(const std::filesystem::path& path);

}  // namespace ytcdn::util::io
