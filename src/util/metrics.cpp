#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ytcdn::util::metrics {

namespace {

/// Fixed shard capacity: one slot per counter/gauge, bounds+2 per
/// histogram. 4096 slots (32 KiB per thread) is two orders of magnitude
/// above current usage; exceeding it throws at registration, never at
/// write time.
constexpr std::uint32_t kShardSlots = 4096;

std::uint64_t next_registry_id() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread cache of (registry id -> this thread's shard slots). Keyed
/// by id, not pointer, so an entry for a destroyed test registry can
/// never be revived by an address reuse; stale entries are simply never
/// matched again. Linear scan: a thread touches one or two registries.
struct TlsEntry {
    std::uint64_t registry_id;
    std::atomic<std::uint64_t>* slots;
};
thread_local std::vector<TlsEntry> t_shards;

/// Shortest round-trippable formatting for histogram bounds ("5", "0.5",
/// "1e+06") — locale-free and deterministic for any fixed bound list.
std::string fmt_bound(double b) {
    std::ostringstream os;
    os << b;
    return os.str();
}

}  // namespace

struct Registry::Shard {
    Shard() : slots(kShardSlots) {}  // value-initialized: all zero
    std::vector<std::atomic<std::uint64_t>> slots;
};

struct Histogram::Meta {
    Registry* registry = nullptr;
    std::uint32_t first_slot = 0;
    std::vector<double> bounds;
};

struct Registry::Metric {
    std::string name;
    SnapshotEntry::Kind kind = SnapshotEntry::Kind::Counter;
    std::uint32_t first_slot = 0;
    std::uint32_t num_slots = 1;
    Histogram::Meta hist;  // populated for histograms only
};

Registry::Registry() : id_(next_registry_id()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
    // Leaked on purpose: instrumentation in static destructors must not
    // touch a dead registry.
    static Registry* const registry = new Registry();  // ytcdn-lint: allow(raw-new-delete)
    return *registry;
}

std::atomic<std::uint64_t>* Registry::local_slots() noexcept {
    for (const TlsEntry& e : t_shards) {
        if (e.registry_id == id_) return e.slots;
    }
    auto shard = std::make_unique<Shard>();
    std::atomic<std::uint64_t>* slots = shard->slots.data();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    t_shards.push_back(TlsEntry{id_, slots});
    return slots;
}

void Registry::add(std::uint32_t slot, std::uint64_t n) noexcept {
    local_slots()[slot].fetch_add(n, std::memory_order_relaxed);
}

void Registry::max_up(std::uint32_t slot, std::uint64_t v) noexcept {
    std::atomic<std::uint64_t>& cell = local_slots()[slot];
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    // The shard is this thread's own; the loop only guards against the
    // theoretical torn view a concurrent snapshot cannot cause.
    while (cur < v &&
           !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

Registry::Metric* Registry::find_or_register(std::string_view name,
                                             SnapshotEntry::Kind kind,
                                             std::vector<double> bounds,
                                             std::uint32_t slots_needed) {
    if (name.empty()) {
        throw std::invalid_argument("metrics: empty metric name");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_name_.find(std::string(name));
    if (it != by_name_.end()) {
        Metric* m = it->second;
        if (m->kind != kind || m->hist.bounds != bounds) {
            throw std::logic_error("metrics: '" + std::string(name) +
                                   "' re-registered with a different kind "
                                   "or bucket bounds");
        }
        return m;
    }
    if (next_slot_ + slots_needed > kShardSlots) {
        throw std::length_error("metrics: shard capacity exhausted");
    }
    metrics_.push_back(Metric{std::string(name), kind, next_slot_, slots_needed,
                              Histogram::Meta{this, next_slot_, std::move(bounds)}});
    Metric* m = &metrics_.back();
    next_slot_ += slots_needed;
    by_name_.emplace(m->name, m);
    return m;
}

Counter Registry::counter(std::string_view name) {
    Metric* m = find_or_register(name, SnapshotEntry::Kind::Counter, {}, 1);
    return Counter(this, m->first_slot);
}

Gauge Registry::gauge(std::string_view name) {
    Metric* m = find_or_register(name, SnapshotEntry::Kind::Gauge, {}, 1);
    return Gauge(this, m->first_slot);
}

Histogram Registry::histogram(std::string_view name, std::vector<double> bounds) {
    if (bounds.empty()) {
        throw std::invalid_argument("metrics: histogram '" + std::string(name) +
                                    "' needs at least one bucket bound");
    }
    if (!std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
        throw std::invalid_argument("metrics: histogram '" + std::string(name) +
                                    "' bounds must be strictly increasing");
    }
    // bounds.size() finite buckets + the +inf bucket + the count slot.
    const auto slots = static_cast<std::uint32_t>(bounds.size() + 2);
    Metric* m = find_or_register(name, SnapshotEntry::Kind::Histogram,
                                 std::move(bounds), slots);
    return Histogram(&m->hist);
}

void Counter::inc(std::uint64_t n) const noexcept {
    if (registry_ != nullptr) registry_->add(slot_, n);
}

void Gauge::update_max(std::uint64_t v) const noexcept {
    if (registry_ != nullptr) registry_->max_up(slot_, v);
}

void Histogram::observe(double v) const noexcept {
    if (meta_ == nullptr) return;
    const std::vector<double>& bounds = meta_->bounds;
    std::size_t bucket = bounds.size();  // +inf (also catches NaN)
    if (!std::isnan(v)) {
        bucket = static_cast<std::size_t>(
            std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
    }
    meta_->registry->add(meta_->first_slot + static_cast<std::uint32_t>(bucket), 1);
    meta_->registry->add(
        meta_->first_slot + static_cast<std::uint32_t>(bounds.size() + 1), 1);
}

Snapshot Registry::snapshot() const {
    Snapshot snap;
    const std::lock_guard<std::mutex> lock(mutex_);
    snap.entries.reserve(metrics_.size());
    const auto merged = [this](std::uint32_t slot, bool take_max) {
        std::uint64_t out = 0;
        for (const auto& shard : shards_) {
            const std::uint64_t v =
                shard->slots[slot].load(std::memory_order_relaxed);
            out = take_max ? std::max(out, v) : out + v;
        }
        return out;
    };
    for (const Metric& m : metrics_) {
        SnapshotEntry e;
        e.name = m.name;
        e.kind = m.kind;
        if (m.kind == SnapshotEntry::Kind::Histogram) {
            e.bounds = m.hist.bounds;
            e.buckets.reserve(e.bounds.size() + 1);
            for (std::size_t i = 0; i <= e.bounds.size(); ++i) {
                e.buckets.push_back(
                    merged(m.first_slot + static_cast<std::uint32_t>(i), false));
            }
            e.count = merged(
                m.first_slot + static_cast<std::uint32_t>(e.bounds.size() + 1),
                false);
        } else {
            e.value = merged(m.first_slot, m.kind == SnapshotEntry::Kind::Gauge);
        }
        snap.entries.push_back(std::move(e));
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const SnapshotEntry& a, const SnapshotEntry& b) {
                  return a.name < b.name;
              });
    return snap;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
        for (auto& slot : shard->slots) slot.store(0, std::memory_order_relaxed);
    }
}

std::size_t Registry::num_metrics() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return metrics_.size();
}

std::size_t Registry::num_shards() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return shards_.size();
}

std::string Snapshot::render() const {
    std::ostringstream os;
    os << "# ytcdn metrics v1\n";
    for (const SnapshotEntry& e : entries) {
        switch (e.kind) {
            case SnapshotEntry::Kind::Counter:
                os << "counter " << e.name << ' ' << e.value << '\n';
                break;
            case SnapshotEntry::Kind::Gauge:
                os << "gauge " << e.name << ' ' << e.value << '\n';
                break;
            case SnapshotEntry::Kind::Histogram:
                os << "histogram " << e.name << " count=" << e.count;
                for (std::size_t i = 0; i < e.buckets.size(); ++i) {
                    if (i < e.bounds.size()) {
                        os << " le_" << fmt_bound(e.bounds[i]) << '=' << e.buckets[i];
                    } else {
                        os << " inf=" << e.buckets[i];
                    }
                }
                os << '\n';
                break;
        }
    }
    return os.str();
}

std::string Snapshot::to_json() const {
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const SnapshotEntry& e : entries) {
        if (!first) os << ",";
        first = false;
        os << "\n  \"" << e.name << "\": ";
        switch (e.kind) {
            case SnapshotEntry::Kind::Counter:
            case SnapshotEntry::Kind::Gauge:
                os << e.value;
                break;
            case SnapshotEntry::Kind::Histogram: {
                os << "{\"count\": " << e.count << ", \"buckets\": [";
                for (std::size_t i = 0; i < e.buckets.size(); ++i) {
                    os << (i != 0 ? ", " : "") << e.buckets[i];
                }
                os << "], \"bounds\": [";
                for (std::size_t i = 0; i < e.bounds.size(); ++i) {
                    os << (i != 0 ? ", " : "") << fmt_bound(e.bounds[i]);
                }
                os << "]}";
                break;
            }
        }
    }
    os << (entries.empty() ? "}" : "\n}");
    return os.str();
}

Counter counter(std::string_view name) { return Registry::global().counter(name); }

Gauge gauge(std::string_view name) { return Registry::global().gauge(name); }

Histogram histogram(std::string_view name, std::vector<double> bounds) {
    return Registry::global().histogram(name, std::move(bounds));
}

}  // namespace ytcdn::util::metrics
