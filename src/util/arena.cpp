#include "util/arena.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace ytcdn::util {

namespace {

[[nodiscard]] constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
    return (n + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes)
    : next_chunk_bytes_(std::max<std::size_t>(chunk_bytes, 64)) {}

void Arena::add_chunk(std::size_t min_capacity) {
    std::size_t capacity = std::max(next_chunk_bytes_, min_capacity);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(capacity);
    chunk.capacity = capacity;
    reserved_ += capacity;
    chunks_.push_back(std::move(chunk));
    cursor_ = 0;
    next_chunk_bytes_ = std::min(next_chunk_bytes_ * 2, kMaxChunkBytes);
}

void* Arena::allocate(std::size_t size, std::size_t align) {
    if (size == 0) size = 1;
    if (chunks_.empty()) add_chunk(size + align);
    // Align the address, not the offset: chunk bases only guarantee
    // max_align_t, so larger alignments must account for the base.
    Chunk* chunk = &chunks_.back();
    auto base = reinterpret_cast<std::uintptr_t>(chunk->data.get());
    std::size_t offset = static_cast<std::size_t>(align_up(base + cursor_, align) - base);
    if (offset + size > chunk->capacity) {
        add_chunk(size + align);
        chunk = &chunks_.back();
        base = reinterpret_cast<std::uintptr_t>(chunk->data.get());
        offset = static_cast<std::size_t>(align_up(base + cursor_, align) - base);
    }
    cursor_ = offset + size;
    in_use_ += size;
    return chunk->data.get() + offset;
}

const char* Arena::copy(const char* data, std::size_t size) {
    char* dst = static_cast<char*>(allocate(size == 0 ? 1 : size, 1));
    if (size != 0) std::memcpy(dst, data, size);
    return dst;
}

void Arena::reset() {
    if (chunks_.size() > 1) {
        Chunk first = std::move(chunks_.front());
        reserved_ = first.capacity;
        chunks_.clear();
        chunks_.push_back(std::move(first));
    }
    cursor_ = 0;
    in_use_ = 0;
}

SlabPool::SlabPool(std::size_t block_size, std::size_t chunk_bytes)
    : arena_(chunk_bytes),
      block_size_(std::max(align_up(block_size, alignof(std::max_align_t)),
                           sizeof(FreeNode))) {}

void* SlabPool::allocate() {
    ++live_;
    peak_ = std::max(peak_, live_);
    if (free_head_ != nullptr) {
        FreeNode* node = free_head_;
        free_head_ = node->next;
        return node;
    }
    return arena_.allocate(block_size_, alignof(std::max_align_t));
}

void SlabPool::deallocate(void* block) noexcept {
    if (block == nullptr) return;
    --live_;
    auto* node = ::new (block) FreeNode{free_head_};
    free_head_ = node;
}

void SlabPool::reset() {
    arena_.reset();
    free_head_ = nullptr;
    live_ = 0;
}

}  // namespace ytcdn::util
