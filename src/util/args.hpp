#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ytcdn::util {

/// A minimal command-line parser for the ytcdn tool: positional arguments
/// plus `--key value` options and `--flag` booleans. No dependencies, fail
/// fast on malformed input.
class ArgParser {
public:
    /// Parses argv[1..). `boolean_flags` names options that take no value.
    /// Throws std::invalid_argument on an option missing its value.
    ArgParser(int argc, const char* const* argv,
              std::vector<std::string> boolean_flags = {});

    [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
        return positionals_;
    }

    [[nodiscard]] bool has_flag(std::string_view name) const noexcept;

    /// The value of `--name`, or nullopt.
    [[nodiscard]] std::optional<std::string> get(std::string_view name) const;

    [[nodiscard]] std::string get_or(std::string_view name,
                                     std::string_view fallback) const;
    [[nodiscard]] double get_double_or(std::string_view name, double fallback) const;
    [[nodiscard]] long get_long_or(std::string_view name, long fallback) const;

    /// Options that were provided but never queried — typo detection.
    [[nodiscard]] std::vector<std::string> unknown_options(
        const std::vector<std::string>& known) const;

private:
    std::vector<std::string> positionals_;
    std::unordered_map<std::string, std::string> options_;
    std::vector<std::string> flags_;
};

}  // namespace ytcdn::util
