#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ytcdn::util::metrics {

/// Process-wide registry of named counters, gauges and fixed-bucket
/// histograms — the "what happened inside" companion to the paper
/// artifacts. Writes go to lock-free per-thread shards (relaxed atomic
/// adds, no contention on the hot path); snapshot() merges the shards
/// under the registry mutex and renders in sorted-name order.
///
/// Determinism contract (see DESIGN.md §11): every merge is a
/// permutation-invariant fold — counters sum, gauges take the maximum,
/// histograms sum per bucket — and every recorded value is an integer
/// count, so a snapshot taken after a ThreadPool join is byte-identical
/// at any YTCDN_THREADS. Instrumentation must therefore count logical
/// work units (sessions, queries, tasks), never scheduling accidents
/// (which worker ran, queue wait times).
///
/// Metric names are dotted lowercase paths ("cdn.dns.queries"); the
/// `metrics-name-literal` lint rule keeps them string literals so the
/// registry stays statically enumerable.
class Registry;

/// Monotonic event count. inc() is a relaxed fetch_add on this thread's
/// shard; handles are cheap to copy and are usually captured once in a
/// function-local static.
class Counter {
public:
    Counter() = default;
    void inc(std::uint64_t n = 1) const noexcept;

private:
    friend class Registry;
    Counter(Registry* registry, std::uint32_t slot)
        : registry_(registry), slot_(slot) {}
    Registry* registry_ = nullptr;
    std::uint32_t slot_ = 0;
};

/// High-water mark. update_max(v) keeps the largest value seen on this
/// thread's shard; the snapshot merge takes the maximum across shards,
/// which is permutation- and thread-count-invariant (unlike last-writer
/// semantics, which would not be).
class Gauge {
public:
    Gauge() = default;
    void update_max(std::uint64_t v) const noexcept;

private:
    friend class Registry;
    Gauge(Registry* registry, std::uint32_t slot)
        : registry_(registry), slot_(slot) {}
    Registry* registry_ = nullptr;
    std::uint32_t slot_ = 0;
};

/// Fixed-bucket histogram: bucket i counts observations v <= bounds[i]
/// (a final implicit +inf bucket catches the rest). Bounds are fixed at
/// registration so per-thread shards hold nothing but bucket counts and
/// merge by per-bucket sum.
class Histogram {
public:
    Histogram() = default;
    void observe(double v) const noexcept;

private:
    friend class Registry;
    struct Meta;
    explicit Histogram(const Meta* meta) : meta_(meta) {}
    const Meta* meta_ = nullptr;
};

/// One merged metric in a snapshot.
struct SnapshotEntry {
    enum class Kind { Counter, Gauge, Histogram };
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t value = 0;             // counter total or gauge max
    std::vector<double> bounds;          // histogram upper bounds
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (last = +inf)
    std::uint64_t count = 0;             // histogram observation total

    friend bool operator==(const SnapshotEntry&, const SnapshotEntry&) = default;
};

/// A merged, name-sorted view of the registry at one instant.
struct Snapshot {
    std::vector<SnapshotEntry> entries;

    /// Line-oriented text document. The header line alone is the stable
    /// empty-registry rendering; every other line is one metric in name
    /// order, integers only, so equal registries render byte-identically.
    [[nodiscard]] std::string render() const;
    /// The same content as one flat JSON object keyed by metric name.
    [[nodiscard]] std::string to_json() const;
};

class Registry {
public:
    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// The process-wide registry all `metrics::counter(...)` free helpers
    /// use. Never destroyed before exit.
    static Registry& global();

    /// Create-or-get by name. Re-registering an existing name with a
    /// different kind (or different histogram bounds) throws
    /// std::logic_error: one name, one meaning, process-wide.
    [[nodiscard]] Counter counter(std::string_view name);
    [[nodiscard]] Gauge gauge(std::string_view name);
    [[nodiscard]] Histogram histogram(std::string_view name,
                                      std::vector<double> bounds);

    /// Merges every per-thread shard into a name-sorted snapshot. Safe to
    /// call concurrently with writers; for a deterministic result call it
    /// after the writing stage has joined (ThreadPool::run_indexed joins).
    [[nodiscard]] Snapshot snapshot() const;

    /// Zeroes every shard slot (registrations survive). Tests call this to
    /// measure one stage in isolation.
    void reset();

    [[nodiscard]] std::size_t num_metrics() const;
    [[nodiscard]] std::size_t num_shards() const;

private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    struct Shard;
    struct Metric;

    void add(std::uint32_t slot, std::uint64_t n) noexcept;
    void max_up(std::uint32_t slot, std::uint64_t v) noexcept;
    [[nodiscard]] std::atomic<std::uint64_t>* local_slots() noexcept;
    [[nodiscard]] Metric* find_or_register(std::string_view name,
                                           SnapshotEntry::Kind kind,
                                           std::vector<double> bounds,
                                           std::uint32_t slots_needed);

    const std::uint64_t id_;  // never recycled; keys the thread-local cache
    mutable std::mutex mutex_;
    std::deque<Metric> metrics_;  // deque: handles keep stable pointers
    std::unordered_map<std::string, Metric*> by_name_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint32_t next_slot_ = 0;
};

/// Shorthands on Registry::global().
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram histogram(std::string_view name,
                                  std::vector<double> bounds);

}  // namespace ytcdn::util::metrics
