#pragma once

#include <cstdint>
#include <string_view>

namespace ytcdn::util {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over a byte range.
///
/// Used to frame the on-disk formats (binary_log v2 record blocks, the YSS2
/// snapshot trailer) so that a flipped bit is detected at load time instead
/// of silently corrupting a week-long study. Chain calls by passing the
/// previous return value as `seed` to checksum discontiguous ranges.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes,
                                  std::uint32_t seed = 0) noexcept;

[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace ytcdn::util
