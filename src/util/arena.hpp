#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ytcdn::util {

/// A chunked bump allocator for short-lived, same-lifetime records.
///
/// Allocations are O(1) pointer bumps into geometrically growing chunks;
/// nothing is freed individually. `reset()` rewinds the arena to empty while
/// keeping the first chunk, so steady-state phases (one sim round, one
/// capture window) reuse the same memory without touching the system
/// allocator. The beng-proxy SlicePool/dpool design is the precedent: hot
/// loops must not pay a malloc per record, and teardown must be determinate.
///
/// The arena never runs destructors — only trivially destructible payloads,
/// or payloads whose destructor the caller runs explicitly, belong here.
class Arena {
public:
    /// `chunk_bytes` is the capacity of the first chunk; later chunks double
    /// until `kMaxChunkBytes`. Oversized requests get a dedicated chunk.
    explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    Arena(Arena&&) noexcept = default;
    Arena& operator=(Arena&&) noexcept = default;

    /// Returns `size` bytes aligned to `align` (a power of two). Never
    /// returns nullptr; growth is by appending chunks.
    void* allocate(std::size_t size, std::size_t align);

    /// Copies `data[0..size)` into the arena and returns the stable copy.
    const char* copy(const char* data, std::size_t size);

    /// Rewinds to empty. The first chunk is kept for reuse; later chunks are
    /// released. Pointers previously returned become invalid.
    void reset();

    [[nodiscard]] std::size_t bytes_in_use() const noexcept { return in_use_; }
    [[nodiscard]] std::size_t bytes_reserved() const noexcept { return reserved_; }
    [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }

    static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
    static constexpr std::size_t kMaxChunkBytes = 1024 * 1024;

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        std::size_t capacity = 0;
    };

    void add_chunk(std::size_t min_capacity);

    std::vector<Chunk> chunks_;
    std::size_t cursor_ = 0;     ///< offset into the last chunk
    std::size_t in_use_ = 0;     ///< total bytes handed out since reset
    std::size_t reserved_ = 0;   ///< total chunk capacity
    std::size_t next_chunk_bytes_;
};

/// A fixed-block-size pool over an Arena with an intrusive free list.
///
/// `allocate()` pops a recycled block or bumps a fresh one; `deallocate()`
/// pushes the block back for reuse. Steady-state churn (event tasks, flow
/// scratch) therefore cycles through a small resident set of blocks with no
/// system-allocator traffic. `reset()` drops every block (live and free) and
/// rewinds the arena — the deterministic bulk teardown.
class SlabPool {
public:
    explicit SlabPool(std::size_t block_size,
                      std::size_t chunk_bytes = Arena::kDefaultChunkBytes);

    SlabPool(const SlabPool&) = delete;
    SlabPool& operator=(const SlabPool&) = delete;

    void* allocate();
    void deallocate(void* block) noexcept;
    void reset();

    [[nodiscard]] std::size_t block_size() const noexcept { return block_size_; }
    /// Blocks currently handed out (allocated minus freed).
    [[nodiscard]] std::size_t blocks_live() const noexcept { return live_; }
    /// High-water mark of simultaneously live blocks since construction.
    [[nodiscard]] std::size_t blocks_peak() const noexcept { return peak_; }

private:
    struct FreeNode {
        FreeNode* next;
    };

    Arena arena_;
    FreeNode* free_head_ = nullptr;
    std::size_t block_size_;
    std::size_t live_ = 0;
    std::size_t peak_ = 0;
};

}  // namespace ytcdn::util
