#include "util/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace ytcdn::util {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::vector<std::string> boolean_flags) {
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (!arg.starts_with("--")) {
            positionals_.emplace_back(arg);
            continue;
        }
        const std::string name(arg.substr(2));
        if (name.empty()) throw std::invalid_argument("empty option name '--'");
        if (std::find(boolean_flags.begin(), boolean_flags.end(), name) !=
            boolean_flags.end()) {
            flags_.push_back(name);
            continue;
        }
        // '--key=value' or '--key value'.
        if (const auto eq = name.find('='); eq != std::string::npos) {
            options_[name.substr(0, eq)] = name.substr(eq + 1);
            continue;
        }
        if (i + 1 >= argc) {
            throw std::invalid_argument("option --" + name + " needs a value");
        }
        options_[name] = argv[++i];
    }
}

bool ArgParser::has_flag(std::string_view name) const noexcept {
    return std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

std::optional<std::string> ArgParser::get(std::string_view name) const {
    const auto it = options_.find(std::string(name));
    if (it == options_.end()) return std::nullopt;
    return it->second;
}

std::string ArgParser::get_or(std::string_view name, std::string_view fallback) const {
    const auto v = get(name);
    return v ? *v : std::string(fallback);
}

double ArgParser::get_double_or(std::string_view name, double fallback) const {
    const auto v = get(name);
    if (!v) return fallback;
    try {
        return std::stod(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("option --" + std::string(name) +
                                    " expects a number, got '" + *v + "'");
    }
}

long ArgParser::get_long_or(std::string_view name, long fallback) const {
    const auto v = get(name);
    if (!v) return fallback;
    try {
        return std::stol(*v);
    } catch (const std::exception&) {
        throw std::invalid_argument("option --" + std::string(name) +
                                    " expects an integer, got '" + *v + "'");
    }
}

std::vector<std::string> ArgParser::unknown_options(
    const std::vector<std::string>& known) const {
    std::vector<std::string> out;
    for (const auto& [name, value] : options_) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            out.push_back(name);
        }
    }
    for (const auto& name : flags_) {
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            out.push_back(name);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace ytcdn::util
