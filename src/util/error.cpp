#include "util/error.hpp"

namespace ytcdn {

std::string_view to_string(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::Io: return "io";
        case ErrorCode::BadMagic: return "bad-magic";
        case ErrorCode::UnsupportedVersion: return "unsupported-version";
        case ErrorCode::Truncated: return "truncated";
        case ErrorCode::ChecksumMismatch: return "checksum-mismatch";
        case ErrorCode::CountMismatch: return "count-mismatch";
        case ErrorCode::BadField: return "bad-field";
        case ErrorCode::KeyMismatch: return "key-mismatch";
        case ErrorCode::Parse: return "parse";
        case ErrorCode::InvalidArgument: return "invalid-argument";
    }
    return "?";
}

ErrorCategory error_category(ErrorCode code) noexcept {
    switch (code) {
        case ErrorCode::Io:
            return ErrorCategory::Io;
        case ErrorCode::BadMagic:
        case ErrorCode::UnsupportedVersion:
        case ErrorCode::Truncated:
        case ErrorCode::ChecksumMismatch:
        case ErrorCode::CountMismatch:
        case ErrorCode::BadField:
        case ErrorCode::KeyMismatch:
            return ErrorCategory::Corrupt;
        case ErrorCode::Parse:
            return ErrorCategory::Parse;
        case ErrorCode::InvalidArgument:
            return ErrorCategory::Usage;
    }
    return ErrorCategory::Internal;
}

int exit_code_for(ErrorCode code) noexcept {
    switch (error_category(code)) {
        case ErrorCategory::Internal: return 1;
        case ErrorCategory::Usage: return 2;
        case ErrorCategory::Io: return 3;
        case ErrorCategory::Corrupt: return 4;
        case ErrorCategory::Parse: return 5;
    }
    return 1;
}

namespace {

std::string render(std::string_view message, const Error::Provenance& where) {
    std::string out(message);
    // Provenance renders in one fixed bracket so messages are stable enough
    // to assert exactly in tests: " [record 5 @ byte 229]", " [line 3]".
    std::string loc;
    if (where.record_index) {
        loc += "record " + std::to_string(*where.record_index);
        if (where.byte_offset) loc += " @ byte " + std::to_string(*where.byte_offset);
    } else if (where.byte_offset) {
        loc += "byte " + std::to_string(*where.byte_offset);
    }
    if (where.line_number) {
        if (!loc.empty()) loc += ", ";
        loc += "line " + std::to_string(*where.line_number);
    }
    if (!loc.empty()) out += " [" + loc + "]";
    return out;
}

}  // namespace

Error::Error(ErrorCode code, std::string_view message, Provenance where)
    : std::runtime_error(render(message, where)), code_(code), where_(where) {}

Error::Error(ErrorCode code, const std::string& rendered, const Provenance& where,
             bool /*already_rendered*/)
    : std::runtime_error(rendered), code_(code), where_(where) {}

Error Error::context(std::string_view what) const {
    return Error(code_, std::string(what) + ": " + this->what(), where_, true);
}

Error error_at_byte(ErrorCode code, std::string_view message,
                    std::uint64_t byte_offset) {
    Error::Provenance where;
    where.byte_offset = byte_offset;
    return Error(code, message, where);
}

Error error_at_record(ErrorCode code, std::string_view message,
                      std::uint64_t record_index, std::uint64_t byte_offset) {
    Error::Provenance where;
    where.byte_offset = byte_offset;
    where.record_index = record_index;
    return Error(code, message, where);
}

Error error_at_line(ErrorCode code, std::string_view message,
                    std::uint64_t line_number) {
    Error::Provenance where;
    where.line_number = line_number;
    return Error(code, message, where);
}

}  // namespace ytcdn
