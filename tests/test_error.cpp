// The typed-error layer under all I/O boundaries: ytcdn::Error carries a
// code, a rendered message with provenance, and maps onto a stable process
// exit-code taxonomy; util::Result threads it through fallible call chains;
// util::crc32 is the framing checksum; util::atomic_write_file is the
// shared torn-write guard.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace util = ytcdn::util;
using ytcdn::Error;
using ytcdn::ErrorCategory;
using ytcdn::ErrorCode;

namespace {

// --- crc32 ---------------------------------------------------------------

TEST(Crc32, MatchesKnownVectors) {
    // The IEEE 802.3 check value for "123456789".
    EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(util::crc32(""), 0x00000000u);
    EXPECT_EQ(util::crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32, SeedChainsIncrementally) {
    const std::string all = "the quick brown fox";
    const auto whole = util::crc32(all);
    const auto chained = util::crc32(all.substr(9), util::crc32(all.substr(0, 9)));
    EXPECT_EQ(whole, chained);
}

TEST(Crc32, DetectsSingleBitFlips) {
    std::string data(256, '\0');
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<char>(i);
    const auto baseline = util::crc32(data);
    for (const std::size_t at : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
        std::string flipped = data;
        flipped[at] = static_cast<char>(flipped[at] ^ 0x01);
        EXPECT_NE(util::crc32(flipped), baseline) << "flip at " << at;
    }
}

// --- Error ---------------------------------------------------------------

TEST(Error, RendersProvenanceInStableBrackets) {
    EXPECT_STREQ(Error(ErrorCode::Parse, "bad token").what(), "bad token");
    EXPECT_STREQ(ytcdn::error_at_byte(ErrorCode::Truncated, "short read", 229).what(),
                 "short read [byte 229]");
    EXPECT_STREQ(
        ytcdn::error_at_record(ErrorCode::ChecksumMismatch, "CRC mismatch", 5, 229)
            .what(),
        "CRC mismatch [record 5 @ byte 229]");
    EXPECT_STREQ(ytcdn::error_at_line(ErrorCode::Parse, "bad action", 3).what(),
                 "bad action [line 3]");
}

TEST(Error, ContextPrefixesAndPreservesCodeAndProvenance) {
    const auto inner = ytcdn::error_at_record(ErrorCode::BadField, "bad itag 250", 7, 315);
    const auto outer = inner.context("read_binary_log trace.yfl");
    EXPECT_STREQ(outer.what(),
                 "read_binary_log trace.yfl: bad itag 250 [record 7 @ byte 315]");
    EXPECT_EQ(outer.code(), ErrorCode::BadField);
    ASSERT_TRUE(outer.where().record_index.has_value());
    EXPECT_EQ(*outer.where().record_index, 7u);
}

TEST(Error, IsCatchableAsRuntimeError) {
    // Drop-in compatibility: pre-existing catch sites keep working.
    try {
        throw Error(ErrorCode::Io, "disk unplugged");
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "disk unplugged");
    }
}

TEST(Error, CategoriesAndExitCodesAreStable) {
    EXPECT_EQ(ytcdn::error_category(ErrorCode::Io), ErrorCategory::Io);
    EXPECT_EQ(ytcdn::error_category(ErrorCode::ChecksumMismatch),
              ErrorCategory::Corrupt);
    EXPECT_EQ(ytcdn::error_category(ErrorCode::Parse), ErrorCategory::Parse);
    EXPECT_EQ(ytcdn::error_category(ErrorCode::InvalidArgument),
              ErrorCategory::Usage);

    // The exit-code taxonomy is part of the CLI contract (tested end to end
    // by cli_exit_codes): 2 usage, 3 io, 4 corrupt, 5 parse.
    EXPECT_EQ(ytcdn::exit_code_for(ErrorCode::InvalidArgument), 2);
    EXPECT_EQ(ytcdn::exit_code_for(ErrorCode::Io), 3);
    for (const auto corrupt :
         {ErrorCode::BadMagic, ErrorCode::UnsupportedVersion, ErrorCode::Truncated,
          ErrorCode::ChecksumMismatch, ErrorCode::CountMismatch, ErrorCode::BadField,
          ErrorCode::KeyMismatch}) {
        EXPECT_EQ(ytcdn::exit_code_for(corrupt), 4) << ytcdn::to_string(corrupt);
    }
    EXPECT_EQ(ytcdn::exit_code_for(ErrorCode::Parse), 5);
}

// --- Result --------------------------------------------------------------

util::Result<int> parse_positive(int x) {
    if (x <= 0) return Error(ErrorCode::InvalidArgument, "not positive");
    return x;
}

TEST(Result, HoldsValueOrError) {
    auto ok = parse_positive(3);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 3);

    auto bad = parse_positive(-1);
    EXPECT_FALSE(bad.ok());
    EXPECT_FALSE(static_cast<bool>(bad));
    EXPECT_EQ(bad.error().code(), ErrorCode::InvalidArgument);
}

TEST(Result, ValueOrThrowThrowsTheTypedError) {
    EXPECT_EQ(parse_positive(5).value_or_throw(), 5);
    try {
        (void)parse_positive(0).value_or_throw();
        FAIL() << "expected ytcdn::Error";
    } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::InvalidArgument);
    }
}

TEST(Result, ContextChainsOutermostLast) {
    auto wrapped = parse_positive(0).context("loading config");
    ASSERT_FALSE(wrapped.ok());
    EXPECT_STREQ(wrapped.error().what(), "loading config: not positive");
    // No-op on success.
    EXPECT_EQ(parse_positive(2).context("loading config").value_or_throw(), 2);
}

util::Result<void> check_even(int x) {
    if (x % 2 != 0) return Error(ErrorCode::BadField, "odd");
    return {};
}

TEST(Result, VoidSpecializationWorks) {
    EXPECT_TRUE(check_even(4).ok());
    auto odd = check_even(3);
    ASSERT_FALSE(odd.ok());
    EXPECT_EQ(odd.error().code(), ErrorCode::BadField);
    EXPECT_THROW(check_even(3).value_or_throw(), Error);
}

// --- atomic_write_file ---------------------------------------------------

class AtomicFileTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() / "ytcdn_atomic_file_test";
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    static std::string slurp(const std::filesystem::path& p) {
        std::ifstream is(p, std::ios::binary);
        std::ostringstream os;
        os << is.rdbuf();
        return os.str();
    }

    std::filesystem::path dir_;
};

TEST_F(AtomicFileTest, WritesBytesAndCreatesParents) {
    const auto path = dir_ / "nested" / "out.bin";
    ASSERT_TRUE(util::atomic_write_file(path, std::string_view("payload")).ok());
    EXPECT_EQ(slurp(path), "payload");
    // No temp file left behind.
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST_F(AtomicFileTest, ReplacesExistingFileAtomically) {
    const auto path = dir_ / "out.bin";
    ASSERT_TRUE(util::atomic_write_file(path, std::string_view("old")).ok());
    ASSERT_TRUE(util::atomic_write_file(path, std::string_view("new")).ok());
    EXPECT_EQ(slurp(path), "new");
}

TEST_F(AtomicFileTest, FailedWriterLeavesOldContentIntact) {
    const auto path = dir_ / "out.bin";
    ASSERT_TRUE(util::atomic_write_file(path, std::string_view("keep me")).ok());
    const auto result = util::atomic_write_file(path, [](std::ostream& os) {
        os << "half-written";
        return false;  // writer reports failure
    });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::Io);
    EXPECT_EQ(slurp(path), "keep me");
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

}  // namespace
