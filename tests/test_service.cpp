// ytcdnd service mode: incremental aggregates vs the batch closures,
// deterministic load-shedding, control-protocol parsing, the service
// checkpoint codec, and byte-identical resume at any parse-pool size.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dc_map.hpp"
#include "analysis/incremental.hpp"
#include "analysis/session.hpp"
#include "capture/dataset.hpp"
#include "capture/log_io.hpp"
#include "service/aggregates.hpp"
#include "service/control.hpp"
#include "service/ingest_queue.hpp"
#include "service/service.hpp"
#include "service/spool.hpp"
#include "util/io.hpp"

namespace analysis = ytcdn::analysis;
namespace capture = ytcdn::capture;
namespace cdn = ytcdn::cdn;
namespace fs = std::filesystem;
namespace io = ytcdn::util::io;
namespace net = ytcdn::net;
namespace service = ytcdn::service;

namespace {

fs::path temp_dir(const std::string& tag) {
    const auto dir = fs::temp_directory_path() / ("ytcdn_svc_" + tag);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

capture::FlowRecord flow(std::uint32_t client, std::uint32_t server,
                         double start, double end, std::uint64_t bytes,
                         std::uint64_t video) {
    capture::FlowRecord r;
    r.client_ip = net::IpAddress(client);
    r.server_ip = net::IpAddress(server);
    r.start = start;
    r.end = end;
    r.bytes = bytes;
    r.video = cdn::VideoId(video);
    return r;
}

/// A deterministic little workload: several clients re-fetching videos with
/// sub- and super-gap pauses, control flows mixed in, two /24s of servers.
std::vector<capture::FlowRecord> sample_records() {
    std::vector<capture::FlowRecord> records;
    for (std::uint32_t i = 0; i < 40; ++i) {
        const std::uint32_t client = 0x0A000000u + i % 7;
        const std::uint32_t server = 0xC0A80100u + (i % 2) * 256 + i % 5;
        const double start = 1.5 * i;
        // i % 3 == 0 starts a same-key flow within the gap (multi-flow
        // session); control flows (< 1000 B) every 8th record.
        const double end = start + (i % 3 == 0 ? 0.4 : 1.0);
        const std::uint64_t bytes = i % 8 == 0 ? 512 : 40'000 + 1000 * i;
        records.push_back(flow(client, server, start, end, bytes, i % 4));
    }
    return records;
}

analysis::ServerDcMap two_dc_map() {
    analysis::ServerDcMap map;
    analysis::DataCenterInfo near;
    near.name = "near";
    near.rtt_ms = 10.0;
    analysis::DataCenterInfo far;
    far.name = "far";
    far.rtt_ms = 30.0;
    const int near_idx = map.add_data_center(near);
    const int far_idx = map.add_data_center(far);
    map.assign(net::IpAddress(0xC0A80100u), near_idx);
    map.assign(net::IpAddress(0xC0A80200u), far_idx);
    return map;
}

}  // namespace

TEST(IncrementalSummary, MatchesBatchClosure) {
    capture::Dataset ds;
    ds.records = sample_records();
    const auto batch = ds.summary();

    analysis::IncrementalSummary inc;
    for (const auto& r : ds.records) inc.add(r);

    EXPECT_EQ(inc.flows, batch.flows);
    EXPECT_EQ(inc.servers.size(), batch.distinct_servers);
    EXPECT_EQ(inc.clients.size(), batch.distinct_clients);
    EXPECT_DOUBLE_EQ(inc.volume_gb(), batch.volume_gb);
}

TEST(IncrementalSessions, MatchesBatchClosureOnSortedInput) {
    capture::Dataset ds;
    ds.records = sample_records();
    ds.sort_by_time();
    const auto batch = analysis::build_sessions(ds, 1.0);

    analysis::IncrementalSessions inc(1.0);
    for (const auto& r : ds.records) inc.add(r);
    inc.close_all();

    EXPECT_EQ(inc.sessions_closed(), batch.size());
    std::uint64_t batch_multi = 0;
    for (const auto& s : batch) batch_multi += s.num_flows() > 1 ? 1 : 0;
    EXPECT_EQ(inc.multi_flow_sessions(), batch_multi);
}

TEST(IncrementalSessions, BoundedOpenSetStillCountsCorrectly) {
    // Thousands of distinct keys but a tiny open-set bound: the watermark
    // sweep must close stale sessions without changing the totals.
    analysis::IncrementalSessions inc(1.0, /*max_open=*/16);
    for (std::uint32_t i = 0; i < 4096; ++i) {
        inc.add(flow(i, 0xC0A80101u, 10.0 * i, 10.0 * i + 1.0, 5000, i));
    }
    inc.close_all();
    EXPECT_EQ(inc.sessions_closed(), 4096u);
    EXPECT_EQ(inc.multi_flow_sessions(), 0u);
    EXPECT_EQ(inc.open_count(), 0u);
}

TEST(IncrementalPreference, DrainAndScaleMutations) {
    analysis::IncrementalPreference pref;
    pref.set_map(two_dc_map());
    ASSERT_EQ(pref.preferred_dc(), 0);  // rtt policy: "near" at 10 ms

    // Draining the preferred DC moves preference to the survivor; flows to
    // "near" now count as non-preferred.
    ASSERT_TRUE(pref.set_drained("near", true));
    EXPECT_EQ(pref.preferred_dc(), 1);
    pref.add(flow(1, 0xC0A80101u, 0.0, 1.0, 10'000, 1));
    EXPECT_EQ(pref.non_preferred_flows, 1u);

    ASSERT_TRUE(pref.set_drained("near", false));
    ASSERT_TRUE(pref.set_policy("load"));
    // Under the load policy "near" has 10 kB accumulated, "far" zero, so
    // "far" is preferred until the balance flips.
    EXPECT_EQ(pref.preferred_dc(), 1);
    pref.add(flow(2, 0xC0A80201u, 2.0, 3.0, 50'000, 2));  // 50 kB to "far"
    EXPECT_EQ(pref.preferred_dc(), 0);  // near: 10 kB < far: 50 kB
    ASSERT_TRUE(pref.set_scale("far", 10.0));
    EXPECT_EQ(pref.preferred_dc(), 1);  // 50 kB / 10 beats 10 kB / 1

    EXPECT_FALSE(pref.set_drained("atlantis", true));
    EXPECT_FALSE(pref.set_scale("near", 0.0));
    EXPECT_FALSE(pref.set_policy("coin-flip"));
}

TEST(IngestQueue, ShedsDeterministicallyAtCapacity) {
    service::IngestQueue queue(2);
    for (std::uint32_t i = 0; i < 5; ++i) {
        service::IngestBatch batch;
        batch.file = "eu1-0001.yfl";
        batch.index = i;
        batch.records.resize(10 + i);
        queue.push(std::move(batch));
    }
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.peak_size(), 2u);
    ASSERT_EQ(queue.shed().size(), 3u);
    // Tail-drop in arrival order: batches 2, 3, 4 with their record counts.
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(queue.shed()[i].batch, i + 2);
        EXPECT_EQ(queue.shed()[i].records, 12 + i);
    }
    EXPECT_EQ(queue.shed_records_total(), 12u + 13u + 14u);
    EXPECT_EQ(queue.pop().index, 0u);  // admitted batches keep FIFO order
    EXPECT_EQ(queue.pop().index, 1u);
}

TEST(ControlProtocol, ParsesEveryVerb) {
    using service::ControlVerb;
    EXPECT_EQ(service::parse_control_line("ping").verb, ControlVerb::Ping);
    EXPECT_EQ(service::parse_control_line("stats").verb, ControlVerb::Stats);
    EXPECT_EQ(service::parse_control_line("render").verb, ControlVerb::Render);
    EXPECT_EQ(service::parse_control_line("snapshot").verb,
              ControlVerb::Snapshot);
    EXPECT_EQ(service::parse_control_line("shutdown").verb,
              ControlVerb::Shutdown);
    EXPECT_EQ(service::parse_control_line("faults clear").verb,
              ControlVerb::FaultsClear);
    EXPECT_EQ(service::parse_control_line("dns-policy load").verb,
              ControlVerb::DnsPolicy);
    EXPECT_EQ(service::parse_control_line("drain near").verb,
              ControlVerb::Drain);
    EXPECT_EQ(service::parse_control_line("undrain near").verb,
              ControlVerb::Undrain);
    EXPECT_EQ(service::parse_control_line("scale near 2.5").verb,
              ControlVerb::Scale);

    // The fault spec is passed through verbatim, spaces and all.
    const auto faults =
        service::parse_control_line("faults read * eio p=0.5 seed=7");
    ASSERT_EQ(faults.verb, ControlVerb::Faults);
    ASSERT_EQ(faults.args.size(), 1u);
    EXPECT_EQ(faults.args[0], "read * eio p=0.5 seed=7");
}

TEST(ControlProtocol, MalformedInputYieldsUnknownWithUsage) {
    using service::ControlVerb;
    EXPECT_EQ(service::parse_control_line("").verb, ControlVerb::Unknown);
    EXPECT_EQ(service::parse_control_line("levitate").verb,
              ControlVerb::Unknown);
    EXPECT_EQ(service::parse_control_line("scale near").verb,
              ControlVerb::Unknown);
    EXPECT_EQ(service::parse_control_line("drain").verb, ControlVerb::Unknown);
    EXPECT_EQ(service::parse_control_line("dns-policy").verb,
              ControlVerb::Unknown);
    EXPECT_FALSE(service::parse_control_line("levitate").error.empty());
}

TEST(ServiceAggregates, EncodeDecodeRoundtripIsByteStable) {
    service::ServiceAggregates agg(1.0);
    agg.preference().set_map(two_dc_map());
    ASSERT_TRUE(agg.preference().set_policy("load"));
    ASSERT_TRUE(agg.preference().set_drained("far", true));
    for (const auto& r : sample_records()) agg.add("eu1", r);
    for (const auto& r : sample_records()) agg.add("us1", r);

    const std::string encoded = agg.encode();
    auto decoded = service::ServiceAggregates::decode(encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.error().what();
    EXPECT_EQ(decoded.value().encode(), encoded);
    EXPECT_EQ(decoded.value().render(), agg.render());
    EXPECT_EQ(decoded.value().total_flows(), agg.total_flows());
    EXPECT_EQ(decoded.value().preference().policy(), "load");
}

TEST(ServiceAggregates, DecodeRejectsDamage) {
    service::ServiceAggregates agg(1.0);
    for (const auto& r : sample_records()) agg.add("eu1", r);
    const std::string encoded = agg.encode();

    EXPECT_FALSE(service::ServiceAggregates::decode(
                     std::string_view(encoded).substr(0, encoded.size() / 2))
                     .ok());
    EXPECT_FALSE(service::ServiceAggregates::decode(encoded + "x").ok());
}

TEST(Spool, ScanOrdersByNameAndSkipsTempFiles) {
    const auto dir = temp_dir("spool_scan");
    ASSERT_TRUE(io::write_file_atomic(dir / "us1-0002.yfl", "x").ok());
    ASSERT_TRUE(io::write_file_atomic(dir / "eu1-0001.tsv", "x").ok());
    ASSERT_TRUE(io::write_file_atomic(dir / "eu1-0001.tsv.corrupt.1", "x").ok());
    ASSERT_TRUE(io::write_file_atomic(dir / "partial.yfl.tmp", "x").ok());
    ASSERT_TRUE(io::write_file_atomic(dir / "notes.txt", "x").ok());

    const auto files = service::scan_spool(dir);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0].name, "eu1-0001.tsv");
    EXPECT_EQ(files[1].name, "us1-0002.yfl");
    EXPECT_EQ(service::stream_of("eu1-0001.tsv"), "eu1");
    EXPECT_EQ(service::stream_of("us1.yfl"), "us1");
}

namespace {

/// Spool with three per-stream flow logs and the two-DC map.
void make_spool(const fs::path& spool,
                const std::vector<capture::FlowRecord>& records) {
    fs::create_directories(spool);
    std::vector<capture::FlowRecord> first(records.begin(),
                                           records.begin() + 15);
    std::vector<capture::FlowRecord> second(records.begin() + 15,
                                            records.end());
    capture::write_any_log(spool / "eu1-0001.yfl", first);
    capture::write_any_log(spool / "eu1-0002.yfl", second);
    capture::write_any_log(spool / "us1-0001.tsv", records);
    ASSERT_TRUE(io::write_file_atomic(spool / "vantage.dcmap",
                                      [&](std::ostream& os) {
                                          analysis::write_dc_map(os,
                                                                 two_dc_map());
                                          return static_cast<bool>(os);
                                      })
                    .ok());
}

service::ServiceOptions once_options(const fs::path& spool,
                                     const fs::path& run_dir,
                                     std::size_t threads) {
    service::ServiceOptions opt;
    opt.spool_dir = spool;
    opt.run_dir = run_dir;
    opt.once = true;
    opt.threads = threads;
    opt.tick_ms = 1;
    opt.policy.attempts = 2;
    opt.policy.backoff_s = 0.0;
    return opt;
}

std::string file_bytes(const fs::path& path) {
    auto data = io::read_file(path);
    EXPECT_TRUE(data.ok()) << path;
    return data.ok() ? std::move(data).value() : std::string();
}

}  // namespace

TEST(Determinism, ServiceResume) {
    // The acceptance bar: aggregates after (ingest some, stop, resume the
    // rest) are byte-identical to one uninterrupted pass — at parse-pool
    // sizes 1 and 8.
    const auto records = sample_records();
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const std::string tag = std::to_string(threads);
        const auto base = temp_dir("resume_" + tag);

        // Uninterrupted pass over the full spool.
        make_spool(base / "spool_full", records);
        service::Service full(
            once_options(base / "spool_full", base / "run_full", threads));
        auto full_report = full.run();
        ASSERT_TRUE(full_report.ok()) << full_report.error().what();
        ASSERT_TRUE(full_report.value().clean_shutdown);
        ASSERT_EQ(full_report.value().files_ingested, 3u);
        const std::string uninterrupted =
            file_bytes(full_report.value().aggregates_path);
        ASSERT_FALSE(uninterrupted.empty());

        // Interrupted pass: first only eu1-0001 is spooled, the daemon runs
        // to quiesce (checkpointing), then the rest arrives and a *resumed*
        // daemon ingests it.
        const auto spool = base / "spool_inc";
        fs::create_directories(spool);
        std::vector<capture::FlowRecord> first(records.begin(),
                                               records.begin() + 15);
        capture::write_any_log(spool / "eu1-0001.yfl", first);
        // The dc map must be present from the start: both passes must
        // classify file 1's flows under the same preference state.
        ASSERT_TRUE(io::write_file_atomic(spool / "vantage.dcmap",
                                          [&](std::ostream& os) {
                                              analysis::write_dc_map(
                                                  os, two_dc_map());
                                              return static_cast<bool>(os);
                                          })
                        .ok());
        service::Service partial(
            once_options(spool, base / "run_inc", threads));
        auto partial_report = partial.run();
        ASSERT_TRUE(partial_report.ok()) << partial_report.error().what();
        ASSERT_EQ(partial_report.value().files_ingested, 1u);

        make_spool(spool, records);  // the remaining files (+ dcmap) land
        auto resume_options = once_options(spool, base / "run_inc", threads);
        resume_options.resume = true;
        service::Service resumed(resume_options);
        auto resumed_report = resumed.run();
        ASSERT_TRUE(resumed_report.ok()) << resumed_report.error().what();
        ASSERT_EQ(resumed_report.value().files_ingested, 3u)
            << "resume must not re-ingest the checkpointed file";

        const std::string after_resume =
            file_bytes(resumed_report.value().aggregates_path);
        EXPECT_EQ(after_resume, uninterrupted)
            << "resumed aggregates diverged at threads=" << threads;

        if (reference.empty()) {
            reference = uninterrupted;
        } else {
            EXPECT_EQ(uninterrupted, reference)
                << "aggregates depend on the parse-pool size";
        }
        fs::remove_all(base);
    }
}

TEST(Service, RefusesResumeUnderDifferentKnobs) {
    const auto base = temp_dir("knobs");
    make_spool(base / "spool", sample_records());
    service::Service first(once_options(base / "spool", base / "run", 1));
    ASSERT_TRUE(first.run().ok());

    auto changed = once_options(base / "spool", base / "run", 1);
    changed.resume = true;
    changed.gap_T_s = 2.0;  // different session rule => different fingerprint
    service::Service second(changed);
    auto report = second.run();
    // The stale checkpoint is quarantined (KeyMismatch), the daemon starts
    // cold and re-ingests everything rather than mixing gap rules.
    ASSERT_TRUE(report.ok()) << report.error().what();
    EXPECT_FALSE(report.value().warnings.empty());
    EXPECT_EQ(report.value().files_ingested, 3u);
    fs::remove_all(base);
}

TEST(Service, OverloadShedsDeterministicallyIntoManifest) {
    const auto base = temp_dir("shed");
    make_spool(base / "spool", sample_records());
    auto opt = once_options(base / "spool", base / "run", 1);
    opt.batch_records = 4;  // 40-record us1 log => 10 batches
    opt.queue_capacity = 2;
    service::Service daemon(opt);
    auto report = daemon.run();
    ASSERT_TRUE(report.ok()) << report.error().what();
    ASSERT_GT(report.value().batches_shed, 0u);

    // Every shed batch is in the manifest — never silent — and a second
    // identical run sheds identically.
    const std::string manifest = file_bytes(report.value().manifest_path);
    std::size_t shed_lines = 0;
    std::istringstream is(manifest);
    for (std::string line; std::getline(is, line);) {
        shed_lines += line.rfind("shed file=", 0) == 0 ? 1 : 0;
    }
    EXPECT_EQ(shed_lines, report.value().batches_shed);

    const auto base2 = temp_dir("shed2");
    make_spool(base2 / "spool", sample_records());
    auto opt2 = once_options(base2 / "spool", base2 / "run", 1);
    opt2.batch_records = 4;
    opt2.queue_capacity = 2;
    service::Service again(opt2);
    auto report2 = again.run();
    ASSERT_TRUE(report2.ok());
    EXPECT_EQ(file_bytes(report2.value().manifest_path), manifest);
    fs::remove_all(base);
    fs::remove_all(base2);
}

TEST(Service, QuarantinesUnparseableSpoolFilesAndContinues) {
    const auto base = temp_dir("quarantine");
    const auto spool = base / "spool";
    make_spool(spool, sample_records());
    ASSERT_TRUE(
        io::write_file_atomic(spool / "aa-garbage.yfl", "not a flow log").ok());

    service::Service daemon(once_options(spool, base / "run", 1));
    auto report = daemon.run();
    ASSERT_TRUE(report.ok()) << report.error().what();
    EXPECT_EQ(report.value().files_ingested, 4u);  // 3 good + 1 quarantined
    EXPECT_FALSE(report.value().warnings.empty());
    EXPECT_FALSE(fs::exists(spool / "aa-garbage.yfl"));
    EXPECT_TRUE(fs::exists(spool / "aa-garbage.yfl.corrupt.1"));

    const std::string manifest = file_bytes(report.value().manifest_path);
    EXPECT_NE(manifest.find("status=quarantined"), std::string::npos);
    fs::remove_all(base);
}
