#include <gtest/gtest.h>

#include <sstream>

#include "capture/classifier.hpp"
#include "capture/dataset.hpp"
#include "capture/flow_log.hpp"
#include "capture/sniffer.hpp"
#include "cdn/http.hpp"

namespace capture = ytcdn::capture;
namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;

namespace {

capture::ObservedFlow video_flow(std::uint64_t bytes = 5'000'000) {
    capture::ObservedFlow f;
    f.client_ip = net::IpAddress::from_octets(128, 210, 1, 2);
    f.server_ip = net::IpAddress::from_octets(173, 194, 0, 7);
    f.start = 100.0;
    f.end = 180.0;
    f.bytes_down = bytes;
    // ObservedFlow borrows the payload; keep the bytes alive for the test.
    static const std::string payload = cdn::format_request(
        {"v7.lscache3.c.youtube.com", cdn::VideoId{0xCAFEull}, 34});
    f.first_payload = payload;
    return f;
}

TEST(Classifier, AcceptsVideoRequests) {
    const auto record = capture::classify_flow(video_flow());
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->video, cdn::VideoId{0xCAFEull});
    EXPECT_EQ(record->resolution, cdn::Resolution::R360);
    EXPECT_EQ(record->bytes, 5'000'000u);
}

TEST(Classifier, RejectsOtherTraffic) {
    auto f = video_flow();
    f.first_payload = "GET /index.html HTTP/1.1\r\nHost: news.example.com\r\n\r\n";
    EXPECT_FALSE(capture::classify_flow(f).has_value());
    f.first_payload = "\x16\x03\x01 TLS handshake bytes";
    EXPECT_FALSE(capture::classify_flow(f).has_value());
}

TEST(Classifier, ErrorTaxonomy) {
    EXPECT_EQ(capture::classify_error("\x16\x03\x01"),
              capture::ClassifyError::NotHttp);
    EXPECT_EQ(capture::classify_error(
                  "GET / HTTP/1.1\r\nHost: www.youtube.com\r\n\r\n"),
              capture::ClassifyError::NotVideoRequest);
    EXPECT_EQ(capture::classify_error(video_flow().first_payload), std::nullopt);
}

TEST(Sniffer, CountsAndClassifies) {
    capture::Sniffer sniffer("TEST");
    sniffer.observe(video_flow());
    auto other = video_flow();
    other.first_payload = "GET / HTTP/1.1\r\nHost: example.com\r\n\r\n";
    sniffer.observe(other);
    EXPECT_EQ(sniffer.flows_observed(), 2u);
    EXPECT_EQ(sniffer.flows_classified(), 1u);
    EXPECT_EQ(sniffer.flows_ignored(), 1u);
    EXPECT_EQ(sniffer.dataset_name(), "TEST");

    const auto records = sniffer.take_records();
    EXPECT_EQ(records.size(), 1u);
    EXPECT_TRUE(sniffer.records().empty());
    // DPI interned the video host (and only the video host) in seen order.
    EXPECT_EQ(sniffer.hosts().size(), 1u);
    EXPECT_EQ(sniffer.hosts().find("v7.lscache3.c.youtube.com"), 0u);
}

TEST(FlowLog, StreamRoundTrip) {
    capture::Sniffer sniffer("T");
    for (int i = 0; i < 5; ++i) {
        auto f = video_flow(1000u + static_cast<std::uint64_t>(i));
        f.start += i;
        sniffer.observe(f);
    }
    const auto records = sniffer.records();

    std::stringstream ss;
    capture::write_flow_log(ss, records);
    const auto back = capture::read_flow_log(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].bytes, records[i].bytes);
        EXPECT_EQ(back[i].video, records[i].video);
    }
}

TEST(FlowLog, FileRoundTripAndErrors) {
    const auto path = std::filesystem::temp_directory_path() / "ytcdn_flowlog_test.tsv";
    capture::Sniffer sniffer("T");
    sniffer.observe(video_flow());
    capture::write_flow_log(path, sniffer.records());
    const auto back = capture::read_flow_log(path);
    EXPECT_EQ(back.size(), 1u);
    std::filesystem::remove(path);
    EXPECT_THROW((void)capture::read_flow_log(path), std::runtime_error);
}

TEST(FlowLog, MalformedLineThrowsWithLineNumber) {
    std::stringstream ss("# header\nnot a record\n");
    try {
        (void)capture::read_flow_log(ss);
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(Dataset, SummaryAggregates) {
    capture::Dataset ds;
    ds.name = "X";
    capture::Sniffer sniffer("X");
    for (int i = 0; i < 3; ++i) {
        auto f = video_flow(1'000'000);
        f.client_ip = net::IpAddress::from_octets(128, 210, 1,
                                                  static_cast<std::uint8_t>(i % 2));
        f.server_ip = net::IpAddress::from_octets(173, 194, 0,
                                                  static_cast<std::uint8_t>(i));
        sniffer.observe(f);
    }
    ds.records = sniffer.take_records();
    const auto s = ds.summary();
    EXPECT_EQ(s.flows, 3u);
    EXPECT_EQ(s.distinct_clients, 2u);
    EXPECT_EQ(s.distinct_servers, 3u);
    EXPECT_NEAR(s.volume_gb, 3e-3, 1e-9);
}

TEST(Dataset, SortByTimeOrders) {
    capture::Dataset ds;
    capture::FlowRecord a, b;
    a.start = 10.0;
    b.start = 5.0;
    ds.records = {a, b};
    ds.sort_by_time();
    EXPECT_DOUBLE_EQ(ds.records.front().start, 5.0);
}

}  // namespace
