#include "cdn/cdn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "cdn/cache.hpp"

namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;
namespace geo = ytcdn::geo;

namespace {

net::Subnet subnet(std::uint8_t a, std::uint8_t b, std::uint8_t c) {
    return net::Subnet{net::IpAddress::from_octets(a, b, c, 0), 24};
}

/// A small three-DC fixture: Milan (near), Frankfurt (mid), Dallas (far),
/// from the perspective of a Turin client.
class CdnFixture : public ::testing::Test {
protected:
    CdnFixture() : cdn_(model_, {.replicate_top_ranks = 10, .origin_replicas = 1}) {
        milan_ = cdn_.add_data_center("Milan", geo::Continent::Europe, {45.46, 9.19},
                                      net::well_known_as::kGoogle,
                                      cdn::InfraClass::GoogleCdn);
        cdn_.add_prefix(milan_, subnet(173, 194, 0));
        cdn_.add_servers(milan_, 10, 2);

        frankfurt_ = cdn_.add_data_center("Frankfurt", geo::Continent::Europe,
                                          {50.11, 8.68}, net::well_known_as::kGoogle,
                                          cdn::InfraClass::GoogleCdn);
        cdn_.add_prefix(frankfurt_, subnet(173, 194, 1));
        cdn_.add_servers(frankfurt_, 10, 2);

        dallas_ = cdn_.add_data_center("Dallas", geo::Continent::NorthAmerica,
                                       {32.78, -96.80}, net::well_known_as::kGoogle,
                                       cdn::InfraClass::GoogleCdn);
        cdn_.add_prefix(dallas_, subnet(173, 194, 2));
        cdn_.add_servers(dallas_, 10, 2);

        legacy_ = cdn_.add_data_center("Amsterdam", geo::Continent::Europe,
                                       {52.37, 4.90}, net::well_known_as::kYouTubeEu,
                                       cdn::InfraClass::LegacyYouTube);
        cdn_.add_prefix(legacy_, subnet(212, 187, 0));
        cdn_.add_servers(legacy_, 5, 1000);

        client_ = net::NetSite{1, {45.07, 7.69}, 1.0};  // Turin
    }

    cdn::Video video_with_rank(std::size_t rank) {
        cdn::Video v;
        v.id = cdn::VideoId{0xABC0ull + rank};
        v.rank = rank;
        v.duration_s = 100.0;
        return v;
    }

    net::RttModel model_;
    cdn::Cdn cdn_;
    cdn::DcId milan_{}, frankfurt_{}, dallas_{}, legacy_{};
    net::NetSite client_{};
};

TEST_F(CdnFixture, TopologyAccessors) {
    EXPECT_EQ(cdn_.num_data_centers(), 4u);
    EXPECT_EQ(cdn_.num_servers(), 35u);
    EXPECT_EQ(cdn_.dc(milan_).city, "Milan");
    EXPECT_EQ(cdn_.dc(legacy_).infra, cdn::InfraClass::LegacyYouTube);
    EXPECT_THROW((void)cdn_.dc(99), std::out_of_range);
    EXPECT_THROW((void)cdn_.server(999), std::out_of_range);
}

TEST_F(CdnFixture, ServersGetDistinctIpsInsidePrefixes) {
    std::set<net::IpAddress> ips;
    for (const auto sid : cdn_.dc(milan_).servers) {
        const auto& s = cdn_.server(sid);
        EXPECT_TRUE(cdn_.dc(milan_).prefixes[0].contains(s.ip()));
        EXPECT_TRUE(ips.insert(s.ip()).second);
        EXPECT_EQ(s.dc(), milan_);
    }
    EXPECT_EQ(ips.size(), 10u);
}

TEST_F(CdnFixture, DcOfIpResolvesAndRejects) {
    const auto& s = cdn_.server(cdn_.dc(dallas_).servers[3]);
    EXPECT_EQ(cdn_.dc_of_ip(s.ip()), dallas_);
    EXPECT_EQ(cdn_.dc_of_ip(net::IpAddress::from_octets(9, 9, 9, 9)), cdn::kInvalidDc);
}

TEST_F(CdnFixture, RankByRttPutsMilanFirstForTurinAndSkipsLegacy) {
    const auto ranked = cdn_.rank_by_rtt(client_);
    ASSERT_EQ(ranked.size(), 3u);  // legacy excluded from analysis scope
    EXPECT_EQ(ranked.front(), milan_);
    EXPECT_EQ(ranked.back(), dallas_);
}

TEST_F(CdnFixture, PopularContentIsEverywhere) {
    const auto v = video_with_rank(0);
    EXPECT_TRUE(cdn_.has_content(milan_, v));
    EXPECT_TRUE(cdn_.has_content(frankfurt_, v));
    EXPECT_TRUE(cdn_.has_content(dallas_, v));
}

TEST_F(CdnFixture, UnpopularContentHasExactlyOriginReplicas) {
    const auto v = video_with_rank(500);
    int origins = 0;
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        if (cdn_.is_origin(dc, v.id)) ++origins;
    }
    EXPECT_EQ(origins, 1);  // origin_replicas = 1 in this fixture
    EXPECT_FALSE(cdn_.is_origin(legacy_, v.id));
}

TEST_F(CdnFixture, PullMakesContentAvailable) {
    // Find a DC that is not origin for this unpopular video.
    const auto v = video_with_rank(777);
    cdn::DcId non_origin = cdn::kInvalidDc;
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        if (!cdn_.is_origin(dc, v.id)) {
            non_origin = dc;
            break;
        }
    }
    ASSERT_NE(non_origin, cdn::kInvalidDc);
    EXPECT_FALSE(cdn_.has_content(non_origin, v));
    cdn_.pull_content(non_origin, v.id);
    EXPECT_TRUE(cdn_.has_content(non_origin, v));
}

TEST_F(CdnFixture, LegacyInfraAlwaysHasContent) {
    EXPECT_TRUE(cdn_.has_content(legacy_, video_with_rank(999)));
}

TEST_F(CdnFixture, PickServerIsStablePerVideoAndSpreadsAcrossVideos) {
    const auto v = video_with_rank(3);
    EXPECT_EQ(cdn_.pick_server(milan_, v.id), cdn_.pick_server(milan_, v.id));
    std::set<cdn::ServerId> picked;
    for (std::size_t i = 0; i < 100; ++i) {
        picked.insert(cdn_.pick_server(milan_, cdn::VideoId{0x1000 + i}));
    }
    EXPECT_GT(picked.size(), 5u);  // hashing spreads over the 10 servers
}

TEST_F(CdnFixture, ClassifyServesReplicatedContent) {
    const auto v = video_with_rank(1);
    const auto server = cdn_.pick_server(milan_, v.id);
    EXPECT_EQ(cdn_.classify_request(server, v), cdn::ServeOutcome::Served);
}

TEST_F(CdnFixture, ClassifyRedirectsOnMiss) {
    const auto v = video_with_rank(600);
    cdn::DcId non_origin = cdn::kInvalidDc;
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        if (!cdn_.is_origin(dc, v.id)) non_origin = dc;
    }
    ASSERT_NE(non_origin, cdn::kInvalidDc);
    EXPECT_EQ(cdn_.classify_request(cdn_.pick_server(non_origin, v.id), v),
              cdn::ServeOutcome::RedirectMiss);
}

TEST_F(CdnFixture, ClassifyRedirectsOnOverload) {
    const auto v = video_with_rank(2);
    const auto server = cdn_.pick_server(milan_, v.id);
    cdn_.begin_flow(server);
    cdn_.begin_flow(server);  // capacity is 2
    EXPECT_EQ(cdn_.classify_request(server, v), cdn::ServeOutcome::RedirectOverload);
    cdn_.end_flow(server);
    EXPECT_EQ(cdn_.classify_request(server, v), cdn::ServeOutcome::Served);
    cdn_.end_flow(server);
}

TEST_F(CdnFixture, RedirectTargetPrefersClosestWithContent) {
    const auto v = video_with_rank(0);  // replicated everywhere
    const std::vector<cdn::DcId> exclude{milan_};
    const auto target = cdn_.redirect_target(client_, v, exclude);
    ASSERT_NE(target, cdn::kInvalidServer);
    EXPECT_EQ(cdn_.server(target).dc(), frankfurt_);  // next closest
}

TEST_F(CdnFixture, RedirectTargetFindsOriginForSparseContent) {
    const auto v = video_with_rank(888);
    cdn::DcId origin = cdn::kInvalidDc;
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        if (cdn_.is_origin(dc, v.id)) origin = dc;
    }
    ASSERT_NE(origin, cdn::kInvalidDc);
    std::vector<cdn::DcId> exclude;
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        if (dc != origin) exclude.push_back(dc);
    }
    const auto target = cdn_.redirect_target(client_, v, exclude);
    ASSERT_NE(target, cdn::kInvalidServer);
    EXPECT_EQ(cdn_.server(target).dc(), origin);
}

TEST_F(CdnFixture, RedirectTargetIgnoresExclusionAsLastResort) {
    const auto v = video_with_rank(901);
    // Exclude every data center: the video's origin is the only holder, and
    // even it is on the exclusion list — the CDN must still serve.
    const std::vector<cdn::DcId> all{milan_, frankfurt_, dallas_};
    const auto target = cdn_.redirect_target(client_, v, all);
    ASSERT_NE(target, cdn::kInvalidServer);
    EXPECT_TRUE(cdn_.is_origin(cdn_.server(target).dc(), v.id));
}

TEST_F(CdnFixture, OriginPlacementIsExactAndRoughlyUniform) {
    // Property of the consistent hashing: every video has exactly
    // origin_replicas origins, spread across the analysis-scope DCs.
    std::array<int, 3> per_dc{0, 0, 0};
    const int kVideos = 3000;
    for (int i = 0; i < kVideos; ++i) {
        const cdn::VideoId id{0x31000ull + static_cast<std::uint64_t>(i)};
        int origins = 0;
        int idx = 0;
        for (const auto dc : {milan_, frankfurt_, dallas_}) {
            if (cdn_.is_origin(dc, id)) {
                ++origins;
                ++per_dc[static_cast<std::size_t>(idx)];
            }
            ++idx;
        }
        EXPECT_EQ(origins, 1) << i;  // fixture uses origin_replicas = 1
    }
    for (const int n : per_dc) {
        EXPECT_GT(n, kVideos / 3 - kVideos / 10);
        EXPECT_LT(n, kVideos / 3 + kVideos / 10);
    }
}

TEST_F(CdnFixture, RedirectTargetFallsBackToOverloadedServer) {
    const auto v = video_with_rank(4);
    // Saturate every affinity server.
    for (const auto dc : {milan_, frankfurt_, dallas_}) {
        const auto sid = cdn_.pick_server(dc, v.id);
        cdn_.begin_flow(sid);
        cdn_.begin_flow(sid);
    }
    const auto target = cdn_.redirect_target(client_, v, {});
    EXPECT_NE(target, cdn::kInvalidServer);  // still serves somewhere
}

TEST_F(CdnFixture, RegisterPrefixesPopulatesWhois) {
    net::AsRegistry whois;
    cdn_.register_prefixes(whois);
    const auto& milan_server = cdn_.server(cdn_.dc(milan_).servers[0]);
    EXPECT_EQ(whois.asn_of(milan_server.ip()), net::well_known_as::kGoogle);
    EXPECT_EQ(whois.name_of(milan_server.ip()), "Google Inc.");
    const auto& legacy_server = cdn_.server(cdn_.dc(legacy_).servers[0]);
    EXPECT_EQ(whois.asn_of(legacy_server.ip()), net::well_known_as::kYouTubeEu);
}

TEST_F(CdnFixture, ServerByHostnameResolves) {
    const auto& server = cdn_.server(cdn_.dc(frankfurt_).servers[2]);
    EXPECT_EQ(cdn_.server_by_hostname(server.hostname()), server.id());
    EXPECT_EQ(cdn_.server_by_hostname("v99.lscache99.c.youtube.com"),
              cdn::kInvalidServer);
    EXPECT_EQ(cdn_.server_by_hostname(""), cdn::kInvalidServer);
}

TEST_F(CdnFixture, FlowAccountingUnderflowThrows) {
    const auto sid = cdn_.dc(milan_).servers[0];
    EXPECT_THROW(cdn_.end_flow(sid), std::logic_error);
}

TEST(ContentCache, BoundedPullEvictsOldestFirst) {
    cdn::ContentCache cache(0, /*max_pulled=*/3);
    for (std::uint64_t i = 1; i <= 3; ++i) cache.pull(cdn::VideoId{i});
    EXPECT_EQ(cache.pulled_count(), 3u);
    EXPECT_EQ(cache.evictions(), 0u);
    cache.pull(cdn::VideoId{4});
    EXPECT_EQ(cache.pulled_count(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.was_pulled(cdn::VideoId{1}));  // oldest evicted
    EXPECT_TRUE(cache.was_pulled(cdn::VideoId{2}));
    EXPECT_TRUE(cache.was_pulled(cdn::VideoId{4}));
    // Re-pulling an existing id is a no-op (no duplicate order entries).
    cache.pull(cdn::VideoId{2});
    EXPECT_EQ(cache.pulled_count(), 3u);
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ContentCache, UnboundedNeverEvicts) {
    cdn::ContentCache cache(0);
    for (std::uint64_t i = 0; i < 1000; ++i) cache.pull(cdn::VideoId{i});
    EXPECT_EQ(cache.pulled_count(), 1000u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST_F(CdnFixture, CacheAccessor) {
    EXPECT_EQ(cdn_.cache(milan_).replicate_top_ranks(), 10u);
    cdn_.pull_content(milan_, cdn::VideoId{0x123});
    EXPECT_TRUE(cdn_.cache(milan_).was_pulled(cdn::VideoId{0x123}));
    EXPECT_THROW((void)cdn_.cache(99), std::out_of_range);
}

TEST(ContentCache, PopularityAndPullSemantics) {
    cdn::ContentCache cache(5);
    cdn::Video hot;
    hot.rank = 4;
    hot.id = cdn::VideoId{1};
    cdn::Video cold;
    cold.rank = 5;
    cold.id = cdn::VideoId{2};
    EXPECT_TRUE(cache.contains(hot));
    EXPECT_FALSE(cache.contains(cold));
    cache.pull(cold.id);
    EXPECT_TRUE(cache.contains(cold));
    EXPECT_TRUE(cache.was_pulled(cold.id));
    EXPECT_EQ(cache.pulled_count(), 1u);
    cache.pull(cold.id);  // idempotent
    EXPECT_EQ(cache.pulled_count(), 1u);
}

TEST(Cdn, AddServersWithoutPrefixThrows) {
    net::RttModel model;
    cdn::Cdn c(model);
    const auto dc = c.add_data_center("X", geo::Continent::Europe, {0, 0},
                                      net::well_known_as::kGoogle,
                                      cdn::InfraClass::GoogleCdn);
    EXPECT_THROW(c.add_servers(dc, 1, 1), std::logic_error);
}

}  // namespace
