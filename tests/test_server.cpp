#include "cdn/server.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cdn/data_center.hpp"

namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;

namespace {

cdn::ContentServer make_server(int capacity = 3) {
    return cdn::ContentServer(7, 2, net::IpAddress::from_octets(173, 194, 0, 9),
                              "v9.lscache2.c.youtube.com", capacity);
}

TEST(ContentServer, AccessorsAndInvariants) {
    const auto s = make_server();
    EXPECT_EQ(s.id(), 7);
    EXPECT_EQ(s.dc(), 2);
    EXPECT_EQ(s.ip().to_string(), "173.194.0.9");
    EXPECT_EQ(s.hostname(), "v9.lscache2.c.youtube.com");
    EXPECT_EQ(s.capacity(), 3);
    EXPECT_EQ(s.active_flows(), 0);
    EXPECT_FALSE(s.overloaded());
}

TEST(ContentServer, FlowLifecycleAndCounters) {
    auto s = make_server(2);
    s.begin_flow();
    EXPECT_EQ(s.active_flows(), 1);
    EXPECT_FALSE(s.overloaded());
    s.begin_flow();
    EXPECT_TRUE(s.overloaded());
    EXPECT_EQ(s.flows_served(), 2u);
    s.end_flow();
    s.end_flow();
    EXPECT_EQ(s.active_flows(), 0);
    EXPECT_EQ(s.flows_served(), 2u);  // served counter is cumulative
    EXPECT_THROW(s.end_flow(), std::logic_error);
}

TEST(ContentServer, RedirectCounter) {
    auto s = make_server();
    s.note_redirect();
    s.note_redirect();
    EXPECT_EQ(s.redirects_issued(), 2u);
    EXPECT_EQ(s.flows_served(), 0u);
}

TEST(ContentServer, NonPositiveCapacityThrows) {
    EXPECT_THROW(cdn::ContentServer(0, 0, net::IpAddress{1}, "h", 0),
                 std::invalid_argument);
    EXPECT_THROW(cdn::ContentServer(0, 0, net::IpAddress{1}, "h", -1),
                 std::invalid_argument);
}

TEST(InfraClass, NamesAndScope) {
    EXPECT_EQ(cdn::to_string(cdn::InfraClass::GoogleCdn), "Google");
    EXPECT_EQ(cdn::to_string(cdn::InfraClass::IspInternal), "ISP-internal");
    EXPECT_EQ(cdn::to_string(cdn::InfraClass::LegacyYouTube), "YouTube-EU");
    EXPECT_EQ(cdn::to_string(cdn::InfraClass::OtherAs), "Other-AS");
    std::ostringstream os;
    os << cdn::InfraClass::GoogleCdn;
    EXPECT_EQ(os.str(), "Google");

    // The Section IV analysis filter.
    EXPECT_TRUE(cdn::in_analysis_scope(cdn::InfraClass::GoogleCdn));
    EXPECT_TRUE(cdn::in_analysis_scope(cdn::InfraClass::IspInternal));
    EXPECT_FALSE(cdn::in_analysis_scope(cdn::InfraClass::LegacyYouTube));
    EXPECT_FALSE(cdn::in_analysis_scope(cdn::InfraClass::OtherAs));
}

}  // namespace
