#include "capture/binary_log.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>

#include "capture/flow_log.hpp"
#include "sim/random.hpp"

namespace capture = ytcdn::capture;
namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;
namespace sim = ytcdn::sim;

namespace {

std::vector<capture::FlowRecord> random_records(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<capture::FlowRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        capture::FlowRecord r;
        r.client_ip = net::IpAddress{static_cast<std::uint32_t>(rng.engine()())};
        r.server_ip = net::IpAddress{static_cast<std::uint32_t>(rng.engine()())};
        r.start = rng.uniform(0.0, 604800.0);
        r.end = r.start + rng.uniform(0.0, 500.0);
        r.bytes = rng.engine()() % (1ull << 34);
        r.video = cdn::VideoId{rng.engine()()};
        r.resolution = cdn::kAllResolutions[rng.uniform_index(5)];
        out.push_back(r);
    }
    return out;
}

TEST(BinaryLog, RoundTripsExactly) {
    const auto records = random_records(500, 1);
    std::stringstream ss;
    capture::write_binary_log(ss, records);
    const auto back = capture::read_binary_log(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].client_ip, records[i].client_ip);
        EXPECT_EQ(back[i].server_ip, records[i].server_ip);
        EXPECT_DOUBLE_EQ(back[i].start, records[i].start);  // bit-exact
        EXPECT_DOUBLE_EQ(back[i].end, records[i].end);
        EXPECT_EQ(back[i].bytes, records[i].bytes);
        EXPECT_EQ(back[i].video, records[i].video);
        EXPECT_EQ(back[i].resolution, records[i].resolution);
    }
}

TEST(BinaryLog, EmptyLogRoundTrips) {
    std::stringstream ss;
    capture::write_binary_log(ss, {});
    EXPECT_TRUE(capture::read_binary_log(ss).empty());
}

TEST(BinaryLog, SizeIsPredictedAndSmallerThanTsv) {
    const auto records = random_records(1000, 2);
    std::stringstream binary, tsv;
    capture::write_binary_log(binary, records);
    capture::write_flow_log(tsv, records);
    EXPECT_EQ(binary.str().size(), capture::binary_log_size(records.size()));
    EXPECT_LT(binary.str().size(), tsv.str().size() / 2);
}

/// The typed error produced by parsing `bytes` as a binary log.
ytcdn::Error parse_error(const std::string& bytes) {
    std::istringstream in(bytes);
    auto result = capture::read_binary_log_result(in);
    EXPECT_FALSE(result.ok());
    return result.error();
}

// v2 layout constants the corruption tests poke at: 20-byte header
// (magic|version|count|crc), 8-byte block header, 41-byte records.
constexpr std::size_t kV2Header = 20;
constexpr std::size_t kV2FirstRecord = kV2Header + 8;

TEST(BinaryLog, RejectsCorruptionWithTypedErrors) {
    const auto records = random_records(10, 3);
    std::stringstream ss;
    capture::write_binary_log(ss, records);
    const std::string good = ss.str();

    {  // bad magic
        std::string bad = good;
        bad[0] = 'X';
        EXPECT_EQ(parse_error(bad).code(), ytcdn::ErrorCode::BadMagic);
    }
    {  // unknown version is named as such, not reported as CRC damage
        std::string bad = good;
        bad[4] = 9;
        EXPECT_EQ(parse_error(bad).code(), ytcdn::ErrorCode::UnsupportedVersion);
    }
    {  // tampered record count: also caught by the header CRC at byte 16
        std::string bad = good;
        bad[8] = static_cast<char>(0xFF);
        const auto e = parse_error(bad);
        EXPECT_EQ(e.code(), ytcdn::ErrorCode::ChecksumMismatch);
        ASSERT_TRUE(e.where().byte_offset.has_value());
        EXPECT_EQ(*e.where().byte_offset, 16u);
    }
    {  // truncated body
        EXPECT_EQ(parse_error(good.substr(0, good.size() - 7)).code(),
                  ytcdn::ErrorCode::CountMismatch);
    }
    {  // trailing garbage
        EXPECT_EQ(parse_error(good + "junk").code(),
                  ytcdn::ErrorCode::CountMismatch);
    }
    {  // truncated header
        EXPECT_EQ(parse_error(good.substr(0, 6)).code(),
                  ytcdn::ErrorCode::Truncated);
    }
    {  // flipped bit inside record 5: the block CRC rejects it, naming the
       // block, its record range and the payload's byte offset
        std::string bad = good;
        bad[kV2FirstRecord + 5 * 41 + 3] ^= 0x10;
        const auto e = parse_error(bad);
        EXPECT_EQ(e.code(), ytcdn::ErrorCode::ChecksumMismatch);
        EXPECT_NE(std::string(e.what()).find("block 0 (records 0..9) CRC mismatch"),
                  std::string::npos)
            << e.what();
        ASSERT_TRUE(e.where().record_index.has_value());
        EXPECT_EQ(*e.where().record_index, 0u);
        ASSERT_TRUE(e.where().byte_offset.has_value());
        EXPECT_EQ(*e.where().byte_offset, kV2FirstRecord);
    }
    {  // flipped byte in the trailer
        std::string bad = good;
        bad[bad.size() - 6] ^= 0x01;  // inside the trailer's count field
        EXPECT_EQ(parse_error(bad).code(), ytcdn::ErrorCode::ChecksumMismatch);
    }
    {  // zero-length input
        EXPECT_EQ(parse_error("").code(), ytcdn::ErrorCode::Truncated);
    }
    {  // garbage header of plausible size
        EXPECT_EQ(parse_error(std::string(64, 'z')).code(),
                  ytcdn::ErrorCode::BadMagic);
    }
    // The legacy throwing reader surfaces the same typed Error.
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW((void)capture::read_binary_log(in), ytcdn::Error);
}

TEST(BinaryLog, ReadersStillAcceptV1) {
    const auto records = random_records(100, 7);
    std::stringstream ss;
    capture::write_binary_log_v1(ss, records);
    EXPECT_EQ(ss.str().size(), capture::binary_log_size_v1(records.size()));
    const auto back = capture::read_binary_log(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].bytes, records[i].bytes);
        EXPECT_EQ(back[i].video, records[i].video);
    }
}

TEST(BinaryLog, V1FieldValidationNamesTheRecord) {
    const auto records = random_records(10, 3);
    std::stringstream ss;
    capture::write_binary_log_v1(ss, records);
    const std::string good = ss.str();

    {  // v1 has no CRC, so a bad itag reaches field validation directly
       // (last byte of record 4)
        std::string bad = good;
        bad[16 + 5 * 41 - 1] = static_cast<char>(250);
        const auto e = parse_error(bad);
        EXPECT_EQ(e.code(), ytcdn::ErrorCode::BadField);
        ASSERT_TRUE(e.where().record_index.has_value());
        EXPECT_EQ(*e.where().record_index, 4u);
        ASSERT_TRUE(e.where().byte_offset.has_value());
        EXPECT_EQ(*e.where().byte_offset, 16u + 4u * 41u);
    }
    {  // NaN timestamp smuggled into the first record's start field
        std::string bad = good;
        const double nan_value = std::numeric_limits<double>::quiet_NaN();
        std::memcpy(bad.data() + 16 + 8, &nan_value, sizeof(nan_value));
        const auto e = parse_error(bad);
        EXPECT_EQ(e.code(), ytcdn::ErrorCode::BadField);
        EXPECT_NE(std::string(e.what()).find("non-finite timestamp"),
                  std::string::npos);
    }
    {  // v1 count/size mismatch
        EXPECT_EQ(parse_error(good.substr(0, good.size() - 1)).code(),
                  ytcdn::ErrorCode::CountMismatch);
    }
}

TEST(BinaryLog, BlockFramingCoversMultipleBlocks) {
    // 4100 records span two blocks (4096 + 4); both round-trip and a flip
    // in the second block names it.
    const auto records = random_records(4100, 11);
    std::stringstream ss;
    capture::write_binary_log(ss, records);
    const std::string good = ss.str();
    EXPECT_EQ(good.size(), capture::binary_log_size(records.size()));
    {
        std::istringstream in(good);
        const auto back = capture::read_binary_log(in);
        EXPECT_EQ(back.size(), records.size());
    }
    std::string bad = good;
    const std::size_t second_block_payload =
        kV2FirstRecord + 4096 * 41 + 8;  // after block 0 payload + block 1 header
    bad[second_block_payload + 17] ^= 0x40;
    const auto e = parse_error(bad);
    EXPECT_EQ(e.code(), ytcdn::ErrorCode::ChecksumMismatch);
    EXPECT_NE(std::string(e.what()).find("block 1 (records 4096..4099)"),
              std::string::npos)
        << e.what();
    ASSERT_TRUE(e.where().record_index.has_value());
    EXPECT_EQ(*e.where().record_index, 4096u);
}

TEST(BinaryLog, FileRoundTrip) {
    const auto path =
        std::filesystem::temp_directory_path() / "ytcdn_binary_log_test.yfl";
    const auto records = random_records(50, 4);
    capture::write_binary_log(path, records);
    const auto back = capture::read_binary_log(path);
    EXPECT_EQ(back.size(), records.size());
    std::filesystem::remove(path);
    // Missing file: an Io-category error naming the path, not corruption.
    auto missing = capture::read_binary_log_result(path);
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code(), ytcdn::ErrorCode::Io);
    EXPECT_NE(std::string(missing.error().what()).find(path.string()),
              std::string::npos);
    EXPECT_THROW((void)capture::read_binary_log(path), std::runtime_error);
}

}  // namespace
