#include "capture/binary_log.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>

#include "capture/flow_log.hpp"
#include "sim/random.hpp"

namespace capture = ytcdn::capture;
namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;
namespace sim = ytcdn::sim;

namespace {

std::vector<capture::FlowRecord> random_records(std::size_t n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<capture::FlowRecord> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        capture::FlowRecord r;
        r.client_ip = net::IpAddress{static_cast<std::uint32_t>(rng.engine()())};
        r.server_ip = net::IpAddress{static_cast<std::uint32_t>(rng.engine()())};
        r.start = rng.uniform(0.0, 604800.0);
        r.end = r.start + rng.uniform(0.0, 500.0);
        r.bytes = rng.engine()() % (1ull << 34);
        r.video = cdn::VideoId{rng.engine()()};
        r.resolution = cdn::kAllResolutions[rng.uniform_index(5)];
        out.push_back(r);
    }
    return out;
}

TEST(BinaryLog, RoundTripsExactly) {
    const auto records = random_records(500, 1);
    std::stringstream ss;
    capture::write_binary_log(ss, records);
    const auto back = capture::read_binary_log(ss);
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].client_ip, records[i].client_ip);
        EXPECT_EQ(back[i].server_ip, records[i].server_ip);
        EXPECT_DOUBLE_EQ(back[i].start, records[i].start);  // bit-exact
        EXPECT_DOUBLE_EQ(back[i].end, records[i].end);
        EXPECT_EQ(back[i].bytes, records[i].bytes);
        EXPECT_EQ(back[i].video, records[i].video);
        EXPECT_EQ(back[i].resolution, records[i].resolution);
    }
}

TEST(BinaryLog, EmptyLogRoundTrips) {
    std::stringstream ss;
    capture::write_binary_log(ss, {});
    EXPECT_TRUE(capture::read_binary_log(ss).empty());
}

TEST(BinaryLog, SizeIsPredictedAndSmallerThanTsv) {
    const auto records = random_records(1000, 2);
    std::stringstream binary, tsv;
    capture::write_binary_log(binary, records);
    capture::write_flow_log(tsv, records);
    EXPECT_EQ(binary.str().size(), capture::binary_log_size(records.size()));
    EXPECT_LT(binary.str().size(), tsv.str().size() / 2);
}

TEST(BinaryLog, RejectsCorruption) {
    const auto records = random_records(10, 3);
    std::stringstream ss;
    capture::write_binary_log(ss, records);
    const std::string good = ss.str();

    {  // bad magic
        std::string bad = good;
        bad[0] = 'X';
        std::stringstream in(bad);
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // bad version
        std::string bad = good;
        bad[4] = 9;
        std::stringstream in(bad);
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // truncated body
        std::stringstream in(good.substr(0, good.size() - 7));
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // trailing garbage
        std::stringstream in(good + "junk");
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // bad itag in a record (last byte of the first record)
        std::string bad = good;
        bad[16 + 41 - 1] = static_cast<char>(250);
        std::stringstream in(bad);
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // truncated header
        std::stringstream in(good.substr(0, 6));
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
    {  // NaN timestamp smuggled into the first record's start field
        std::string bad = good;
        const double nan_value = std::numeric_limits<double>::quiet_NaN();
        std::memcpy(bad.data() + 16 + 8, &nan_value, sizeof(nan_value));
        std::stringstream in(bad);
        EXPECT_THROW((void)capture::read_binary_log(in), std::runtime_error);
    }
}

TEST(BinaryLog, FileRoundTrip) {
    const auto path =
        std::filesystem::temp_directory_path() / "ytcdn_binary_log_test.yfl";
    const auto records = random_records(50, 4);
    capture::write_binary_log(path, records);
    const auto back = capture::read_binary_log(path);
    EXPECT_EQ(back.size(), records.size());
    std::filesystem::remove(path);
    EXPECT_THROW((void)capture::read_binary_log(path), std::runtime_error);
}

}  // namespace
