#include "net/as_registry.hpp"

#include <gtest/gtest.h>

namespace net = ytcdn::net;

namespace {

net::IpAddress ip(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    return net::IpAddress::from_octets(a, b, c, d);
}

TEST(AsRegistry, EmptyLookupIsNull) {
    const net::AsRegistry reg;
    EXPECT_EQ(reg.lookup(ip(1, 2, 3, 4)), nullptr);
    EXPECT_FALSE(reg.asn_of(ip(1, 2, 3, 4)).has_value());
    EXPECT_EQ(reg.name_of(ip(1, 2, 3, 4)), "unknown");
}

TEST(AsRegistry, BasicLookup) {
    net::AsRegistry reg;
    reg.add(net::Subnet{ip(173, 194, 0, 0), 16}, net::well_known_as::kGoogle,
            "Google Inc.");
    const auto* r = reg.lookup(ip(173, 194, 55, 99));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->asn, net::well_known_as::kGoogle);
    EXPECT_EQ(reg.name_of(ip(173, 194, 55, 99)), "Google Inc.");
    EXPECT_EQ(reg.lookup(ip(173, 195, 0, 1)), nullptr);
}

TEST(AsRegistry, LongestPrefixWins) {
    net::AsRegistry reg;
    reg.add(net::Subnet{ip(84, 0, 0, 0), 8}, net::Asn{100}, "Coarse");
    reg.add(net::Subnet{ip(84, 116, 0, 0), 16}, net::Asn{200}, "Mid");
    reg.add(net::Subnet{ip(84, 116, 1, 0), 24}, net::Asn{300}, "Fine");

    EXPECT_EQ(reg.asn_of(ip(84, 1, 1, 1))->value, 100u);
    EXPECT_EQ(reg.asn_of(ip(84, 116, 7, 7))->value, 200u);
    EXPECT_EQ(reg.asn_of(ip(84, 116, 1, 200))->value, 300u);
}

TEST(AsRegistry, InsertionOrderIrrelevantForSpecificity) {
    net::AsRegistry a;
    a.add(net::Subnet{ip(10, 0, 0, 0), 8}, net::Asn{1}, "wide");
    a.add(net::Subnet{ip(10, 1, 0, 0), 16}, net::Asn{2}, "narrow");

    net::AsRegistry b;
    b.add(net::Subnet{ip(10, 1, 0, 0), 16}, net::Asn{2}, "narrow");
    b.add(net::Subnet{ip(10, 0, 0, 0), 8}, net::Asn{1}, "wide");

    EXPECT_EQ(a.asn_of(ip(10, 1, 2, 3)), b.asn_of(ip(10, 1, 2, 3)));
    EXPECT_EQ(a.asn_of(ip(10, 1, 2, 3))->value, 2u);
}

TEST(AsRegistry, WellKnownAsNumbersMatchPaper) {
    EXPECT_EQ(net::well_known_as::kGoogle.value, 15169u);
    EXPECT_EQ(net::well_known_as::kYouTubeEu.value, 43515u);
    EXPECT_EQ(net::well_known_as::kYouTubeOld.value, 36561u);
    EXPECT_EQ(net::well_known_as::kCableWireless.value, 1273u);
    EXPECT_EQ(net::well_known_as::kGblx.value, 3549u);
}

}  // namespace
