#!/usr/bin/env python3
"""End-to-end tests for ytcdnd, the crash-safe service mode (ctest: cli_serve).

The robustness contract pinned here, against the real binary:

  * SIGTERM mid-ingest quiesces: the daemon drains, flushes the service
    checkpoint + manifest ("status shutdown") and exits 0,
  * kill -9 mid-ingest loses nothing durable: `ytcdn serve --resume --once`
    replays the spool and converges to aggregates byte-identical to an
    uninterrupted one-shot run,
  * the control socket answers ping / render / drain / shutdown, and every
    accepted mutation is recorded as a `control` line in the manifest.

Usage: cli_serve.py <path-to-ytcdn-binary>
"""

from __future__ import annotations

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

failures: list[str] = []


def check(cond: bool, what: str, detail: str = "") -> None:
    if cond:
        print(f"  ok: {what}")
    else:
        failures.append(what)
        print(f"  FAIL: {what}" + (f"\n        {detail}" if detail else ""))


def read(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as f:
            return f.read()
    except OSError:
        return ""


def wait_for(predicate, timeout_s: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


SERVE = ["serve", "--tick-ms", "10", "--backoff", "0", "--checkpoint-every", "1"]


def start_daemon(binary: str, spool: str, out: str,
                 extra: list[str] | None = None) -> subprocess.Popen:
    return subprocess.Popen(
        [binary, *SERVE, "--spool", spool, "--out", out, *(extra or [])],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        errors="replace")


def make_spool(binary: str, tmp: str, name: str) -> str:
    """Simulates a tiny study and lays its flow logs out as a spool."""
    gen = os.path.join(tmp, "gen")
    if not os.path.isdir(gen):
        subprocess.run(
            [binary, "run", "--scale", "0.005", "--seed", "7", "--out", gen,
             "--binary"],
            capture_output=True, text=True, errors="replace", check=True,
            timeout=300)
    spool = os.path.join(tmp, name)
    os.makedirs(spool)
    logs = sorted(f for f in os.listdir(gen) if f.endswith(".yfl"))
    maps = sorted(f for f in os.listdir(gen) if f.endswith(".dcmap"))
    assert logs and maps, f"ytcdn run produced no spoolable logs in {gen}"
    for i, log in enumerate(logs):
        stem = os.path.splitext(log)[0]
        shutil.copy(os.path.join(gen, log),
                    os.path.join(spool, f"{stem}-{i + 1:04d}.yfl"))
    shutil.copy(os.path.join(gen, maps[0]), os.path.join(spool, "vantage.dcmap"))
    return spool


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: cli_serve.py <ytcdn-binary>")
        return 2
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="ytcdn_serve_") as tmp:
        # Reference: one uninterrupted --once pass over the full spool.
        print("reference one-shot ingest")
        spool_ref = make_spool(binary, tmp, "spool_ref")
        out_ref = os.path.join(tmp, "run_ref")
        proc = subprocess.run(
            [binary, *SERVE, "--spool", spool_ref, "--out", out_ref, "--once"],
            capture_output=True, text=True, errors="replace", check=False,
            timeout=300)
        check(proc.returncode == 0, "one-shot serve exits 0",
              proc.stderr.strip()[:300])
        reference = read(os.path.join(out_ref, "aggregates.txt"))
        check(bool(reference), "one-shot serve renders aggregates.txt")
        manifest = read(os.path.join(out_ref, "service_manifest.txt"))
        check("status shutdown" in manifest,
              "one-shot manifest records a clean shutdown")

        # SIGTERM mid-ingest: graceful quiesce, checkpoint flushed, exit 0.
        print("SIGTERM quiesce")
        spool_term = make_spool(binary, tmp, "spool_term")
        out_term = os.path.join(tmp, "run_term")
        daemon = start_daemon(binary, spool_term, out_term)
        manifest_path = os.path.join(out_term, "service_manifest.txt")
        check(wait_for(lambda: "file " in read(manifest_path)),
              "daemon starts ingesting")
        daemon.send_signal(signal.SIGTERM)
        try:
            stdout, stderr = daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            stdout, stderr = daemon.communicate()
        check(daemon.returncode == 0, "SIGTERM exits 0",
              (stderr or "").strip()[:300])
        check("status shutdown" in read(manifest_path),
              "post-SIGTERM manifest says status shutdown")
        check(os.path.exists(
            os.path.join(out_term, "checkpoints", "service.yck")),
            "post-SIGTERM service checkpoint exists")

        # kill -9 mid-ingest, then --resume --once: byte-identical aggregates.
        print("kill -9 + resume")
        spool_kill = make_spool(binary, tmp, "spool_kill")
        out_kill = os.path.join(tmp, "run_kill")
        daemon = start_daemon(binary, spool_kill, out_kill)
        kill_manifest = os.path.join(out_kill, "service_manifest.txt")
        wait_for(lambda: "file " in read(kill_manifest), timeout_s=15.0)
        daemon.kill()  # SIGKILL: no handler runs, no flush
        daemon.communicate()
        proc = subprocess.run(
            [binary, *SERVE, "--spool", spool_kill, "--out", out_kill,
             "--resume", "--once"],
            capture_output=True, text=True, errors="replace", check=False,
            timeout=300)
        check(proc.returncode == 0, "resume after kill -9 exits 0",
              proc.stderr.strip()[:300])
        resumed = read(os.path.join(out_kill, "aggregates.txt"))
        check(resumed == reference and bool(reference),
              "resumed aggregates byte-identical to the uninterrupted run")

        # Control socket: ping / render / drain / shutdown; mutations land in
        # the manifest.
        print("control socket")
        spool_ctl = make_spool(binary, tmp, "spool_ctl")
        out_ctl = os.path.join(tmp, "run_ctl")
        sock = os.path.join(tmp, "ctl.sock")
        daemon = start_daemon(binary, spool_ctl, out_ctl, ["--socket", sock])
        check(wait_for(lambda: os.path.exists(sock)),
              "daemon binds the control socket")

        def ctl(*words: str) -> subprocess.CompletedProcess:
            return subprocess.run(
                [binary, "ctl", sock, *words], capture_output=True, text=True,
                errors="replace", check=False, timeout=60)

        pong = ctl("ping")
        check(pong.returncode == 0 and pong.stdout.startswith("ok pong"),
              "ctl ping answers ok pong", pong.stdout[:100])
        render = ctl("render")
        check(render.returncode == 0 and "Table I (incremental)" in render.stdout,
              "ctl render returns the incremental tables")
        stats = ctl("stats")
        check(stats.returncode == 0 and
              "service.files_ingested" in stats.stdout,
              "ctl stats exposes the service metrics")
        # Find a DC name from the render output's Section VII table (rows
        # are space-padded columns; the name may itself contain spaces).
        dc_name = None
        lines = render.stdout.splitlines()
        for i, line in enumerate(lines):
            if "preferred data center" in line:
                for row in lines[i + 1:]:
                    if row.startswith(("data center", "---")) or not row.strip():
                        continue
                    if row.startswith(("preferred", "mapped", "non-preferred")):
                        break
                    dc_name = re.split(r"\s{2,}", row.strip())[0]
                    break
                break
        if dc_name:
            drained = ctl("drain", *dc_name.split())
            check(drained.returncode == 0 and drained.stdout.startswith("ok"),
                  f"ctl drain {dc_name} accepted", drained.stdout[:100])
        else:
            check(False, "render output names a data center to drain")
        bogus = ctl("levitate")
        check(bogus.returncode == 1 and bogus.stdout.startswith("err"),
              "ctl rejects an unknown command with err")
        down = ctl("shutdown")
        check(down.returncode == 0, "ctl shutdown accepted")
        try:
            _, stderr = daemon.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()
            _, stderr = daemon.communicate()
        check(daemon.returncode == 0, "daemon exits 0 after ctl shutdown",
              (stderr or "").strip()[:300])
        ctl_manifest = read(os.path.join(out_ctl, "service_manifest.txt"))
        if dc_name:
            check(f"control drain {dc_name}" in ctl_manifest,
                  "manifest records the drain mutation")
        check(not os.path.exists(sock), "socket unlinked on shutdown")

    if failures:
        print(f"\n{len(failures)} case(s) failed")
        return 1
    print("\nall service cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
