#include "cdn/dns.hpp"

#include <gtest/gtest.h>

namespace cdn = ytcdn::cdn;
namespace sim = ytcdn::sim;

namespace {

TEST(DnsSystem, ResolverRegistrationAndNaming) {
    cdn::DnsSystem dns;
    const auto id = dns.add_resolver(
        "campus-main", std::make_unique<cdn::StaticPreferencePolicy>(
                           std::vector<cdn::DcId>{5}));
    EXPECT_EQ(dns.num_resolvers(), 1u);
    EXPECT_EQ(dns.resolver_name(id), "campus-main");
    EXPECT_THROW((void)dns.resolver_name(99), std::out_of_range);
    EXPECT_THROW(dns.add_resolver("null", nullptr), std::invalid_argument);
}

TEST(DnsSystem, ResolveDelegatesToPolicyAndCounts) {
    cdn::DnsSystem dns;
    const auto id = dns.add_resolver(
        "r", std::make_unique<cdn::StaticPreferencePolicy>(std::vector<cdn::DcId>{3}));
    sim::Rng rng(1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(dns.resolve(id, i * 1.0, rng), 3);
    }
    EXPECT_EQ(dns.resolution_count(id, 3), 10u);
    EXPECT_EQ(dns.resolution_count(id, 4), 0u);
    EXPECT_EQ(dns.total_resolutions(), 10u);
}

TEST(DnsSystem, DifferentResolversDifferentPolicies) {
    // The Section VII-B mechanism: two resolvers in the same network mapped
    // to different preferred data centers.
    cdn::DnsSystem dns;
    const auto main_r = dns.add_resolver(
        "main", std::make_unique<cdn::StaticPreferencePolicy>(std::vector<cdn::DcId>{1}));
    const auto net3 = dns.add_resolver(
        "net3", std::make_unique<cdn::StaticPreferencePolicy>(std::vector<cdn::DcId>{2}));
    sim::Rng rng(2);
    EXPECT_EQ(dns.resolve(main_r, 0.0, rng), 1);
    EXPECT_EQ(dns.resolve(net3, 0.0, rng), 2);
}

TEST(DnsSystem, UnknownResolverThrows) {
    cdn::DnsSystem dns;
    sim::Rng rng(3);
    EXPECT_THROW((void)dns.resolve(0, 0.0, rng), std::out_of_range);
}

}  // namespace
