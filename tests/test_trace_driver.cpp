#include "study/trace_driver.hpp"

#include <gtest/gtest.h>

#include "analysis/session.hpp"
#include "net/as_registry.hpp"

namespace study = ytcdn::study;
namespace workload = ytcdn::workload;
namespace analysis = ytcdn::analysis;
namespace net = ytcdn::net;
namespace cdn = ytcdn::cdn;

namespace {

study::StudyConfig tiny_config() {
    study::StudyConfig cfg;
    cfg.scale = 0.005;
    return cfg;
}

TEST(TraceDriver, PlayerConfigOverridePropagates) {
    study::StudyDeployment deployment(tiny_config());
    workload::Player::Config cfg;
    cfg.dns_ttl_s = 3600.0;
    study::TraceDriver driver(deployment, cfg);
    const auto traces = driver.run(ytcdn::sim::kDay);
    std::uint64_t hits = 0;
    for (const auto& stats : traces.player_stats) hits += stats.dns_cache_hits;
    EXPECT_GT(hits, 0u);
}

TEST(TraceDriver, DefaultConfigHasNoDnsCaching) {
    study::StudyDeployment deployment(tiny_config());
    study::TraceDriver driver(deployment);
    const auto traces = driver.run(ytcdn::sim::kDay);
    for (const auto& stats : traces.player_stats) {
        EXPECT_EQ(stats.dns_cache_hits, 0u);
    }
}

TEST(TraceDriver, Eu2LegacyFlowsAreFullQuality) {
    study::StudyDeployment deployment(tiny_config());
    study::TraceDriver driver(deployment);
    const auto traces = driver.run(2 * ytcdn::sim::kDay);

    // Average legacy (YouTube-EU AS) video-flow size: EU2's legacy streams
    // are full encodes; other networks get degraded 240p partials.
    const auto legacy_mean = [&](const ytcdn::capture::Dataset& ds) {
        double sum = 0.0;
        std::uint64_t n = 0;
        for (const auto& r : ds.records) {
            if (deployment.whois().asn_of(r.server_ip) !=
                net::well_known_as::kYouTubeEu) {
                continue;
            }
            if (analysis::classify_flow_size(r.bytes) != analysis::FlowKind::Video) {
                continue;
            }
            sum += static_cast<double>(r.bytes);
            ++n;
        }
        return n == 0 ? 0.0 : sum / static_cast<double>(n);
    };
    double eu2 = 0.0, others = 0.0;
    int other_count = 0;
    for (const auto& ds : traces.datasets) {
        const double mean = legacy_mean(ds);
        if (ds.name == "EU2") {
            eu2 = mean;
        } else if (mean > 0.0) {
            others += mean;
            ++other_count;
        }
    }
    ASSERT_GT(eu2, 0.0);
    ASSERT_GT(other_count, 0);
    EXPECT_GT(eu2, 2.0 * (others / other_count));
}

TEST(TraceDriver, HorizonIsRespectedWithDrainWindow) {
    study::StudyDeployment deployment(tiny_config());
    study::TraceDriver driver(deployment);
    const double horizon = ytcdn::sim::kDay;
    const auto traces = driver.run(horizon);
    for (const auto& ds : traces.datasets) {
        for (const auto& r : ds.records) {
            // No flow *starts* after the capture horizon plus the redirect
            // drain window (pause resumes can trail the last arrival).
            EXPECT_LE(r.start, horizon + 2.0 * ytcdn::sim::kHour) << ds.name;
        }
    }
}

TEST(TraceDriver, SharedCdnStateAcrossVantagePoints) {
    // A video pulled by one network's miss is warm for another: run the
    // driver and check pulled caches are globally visible.
    study::StudyDeployment deployment(tiny_config());
    study::TraceDriver driver(deployment);
    (void)driver.run(ytcdn::sim::kDay);
    std::size_t pulled_total = 0;
    for (const auto& dc : deployment.cdn().data_centers()) {
        if (!cdn::in_analysis_scope(dc.infra)) continue;
        pulled_total += deployment.cdn().cache(dc.id).pulled_count();
    }
    EXPECT_GT(pulled_total, 0u);
}

}  // namespace
