// End-to-end offline-toolchain integrity: persist a dataset (both log
// formats) and its server->DC map, reload everything from disk, and verify
// that every analysis reaches byte-identical conclusions to the in-memory
// pipeline. This is the guarantee behind the `ytcdn analyze` command: the
// simulator is not needed once the logs and map exist.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "analysis/loadbalance_analysis.hpp"
#include "analysis/preferred_dc.hpp"
#include "analysis/session.hpp"
#include "analysis/session_analysis.hpp"
#include "capture/log_io.hpp"
#include "study/study_run.hpp"

namespace study = ytcdn::study;
namespace analysis = ytcdn::analysis;
namespace capture = ytcdn::capture;

namespace {

class OfflineToolchainFixture : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        study::StudyConfig cfg;
        cfg.scale = 0.004;
        run_ = std::make_unique<study::StudyRun>(study::run_study(cfg));
    }
    static void TearDownTestSuite() { run_.reset(); }
    static std::unique_ptr<study::StudyRun> run_;
};

std::unique_ptr<study::StudyRun> OfflineToolchainFixture::run_;

TEST_F(OfflineToolchainFixture, DiskRoundTripPreservesEveryConclusion) {
    const auto dir = std::filesystem::temp_directory_path() / "ytcdn_offline_test";
    std::filesystem::create_directories(dir);

    for (const char* ext : {".tsv", ".yfl"}) {
        const std::size_t idx = run_->vp_index("EU1-ADSL");
        const auto& live = run_->traces.datasets[idx];
        const auto& live_map = run_->maps[idx];

        // Persist.
        const auto log_path = dir / (std::string("EU1-ADSL") + ext);
        capture::write_any_log(log_path, live.records);
        const auto map_path = dir / "EU1-ADSL.dcmap";
        {
            std::ofstream os(map_path);
            analysis::write_dc_map(os, live_map);
        }

        // Reload.
        capture::Dataset disk;
        disk.name = live.name;
        disk.records = capture::read_any_log(log_path);
        disk.sort_by_time();
        std::ifstream is(map_path);
        const auto disk_map = analysis::read_dc_map(is);

        ASSERT_EQ(disk.records.size(), live.records.size()) << ext;

        // Same preferred data center.
        const int live_pref = run_->preferred[idx];
        const int disk_pref = analysis::preferred_dc(disk, disk_map);
        EXPECT_EQ(disk_map.info(disk_pref).name, live_map.info(live_pref).name) << ext;

        // Same shares (byte-identical through TSV's %.6f timestamps is not
        // guaranteed for session grouping at pathological gaps, so compare
        // with a tight tolerance; the binary path must match exactly).
        const auto live_share = analysis::non_preferred_share(live, live_map, live_pref);
        const auto disk_share = analysis::non_preferred_share(disk, disk_map, disk_pref);
        EXPECT_NEAR(disk_share.byte_fraction, live_share.byte_fraction, 1e-12) << ext;
        EXPECT_NEAR(disk_share.flow_fraction, live_share.flow_fraction, 1e-12) << ext;

        const auto live_patterns = analysis::session_patterns(
            analysis::build_sessions(live, 1.0), live_map, live_pref);
        const auto disk_patterns = analysis::session_patterns(
            analysis::build_sessions(disk, 1.0), disk_map, disk_pref);
        EXPECT_EQ(disk_patterns.total_sessions, live_patterns.total_sessions) << ext;
        EXPECT_NEAR(disk_patterns.single_flow, live_patterns.single_flow, 1e-9) << ext;
        EXPECT_NEAR(disk_patterns.two_pref_nonpref, live_patterns.two_pref_nonpref,
                    1e-9)
            << ext;

        const double live_corr =
            analysis::load_vs_nonpreferred_correlation(live, live_map, live_pref);
        const double disk_corr =
            analysis::load_vs_nonpreferred_correlation(disk, disk_map, disk_pref);
        EXPECT_NEAR(disk_corr, live_corr, 1e-9) << ext;
    }
    std::filesystem::remove_all(dir);
}

TEST_F(OfflineToolchainFixture, MapIsDeterministicOnDisk) {
    std::stringstream a, b;
    analysis::write_dc_map(a, run_->maps[0]);
    analysis::write_dc_map(b, run_->maps[0]);
    EXPECT_EQ(a.str(), b.str());  // assignments are sorted before writing
}

}  // namespace
