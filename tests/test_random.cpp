#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sim = ytcdn::sim;

namespace {

TEST(Rng, DeterministicForSameSeed) {
    sim::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform01() == b.uniform01()) ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, ForkByTagIsStableAndIndependent) {
    const sim::Rng root(999);
    sim::Rng a1 = root.fork("alpha");
    sim::Rng a2 = root.fork("alpha");
    sim::Rng b = root.fork("beta");
    EXPECT_DOUBLE_EQ(a1.uniform01(), a2.uniform01());
    sim::Rng a3 = root.fork("alpha");
    EXPECT_NE(a3.uniform01(), b.uniform01());
}

TEST(Rng, ForkByIndexIsStable) {
    const sim::Rng root(5);
    EXPECT_DOUBLE_EQ(root.fork(std::uint64_t{7}).uniform01(),
                     root.fork(std::uint64_t{7}).uniform01());
    EXPECT_NE(root.fork(std::uint64_t{7}).uniform01(),
              root.fork(std::uint64_t{8}).uniform01());
}

TEST(Rng, UniformRangeRespected) {
    sim::Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.5, 7.5);
        EXPECT_GE(v, 2.5);
        EXPECT_LT(v, 7.5);
    }
}

TEST(Rng, UniformIndexCoversRange) {
    sim::Rng rng(4);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_index(10));
    EXPECT_EQ(seen.size(), 10u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, ExponentialMeanConverges) {
    sim::Rng rng(6);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, BernoulliProbability) {
    sim::Rng rng(8);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
    // Degenerate values never throw.
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, InvalidArgumentsThrow) {
    sim::Rng rng(9);
    EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_index(0), std::invalid_argument);
    EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
    EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PickFromSpan) {
    sim::Rng rng(10);
    const std::vector<int> items{5, 6, 7};
    for (int i = 0; i < 50; ++i) {
        const int v = rng.pick(std::span<const int>{items});
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 7);
    }
    const std::vector<int> empty;
    EXPECT_THROW((void)rng.pick(std::span<const int>{empty}), std::invalid_argument);
}

TEST(Mix64, AvalanchesAndIsStable) {
    EXPECT_EQ(sim::mix64(42), sim::mix64(42));
    EXPECT_NE(sim::mix64(42), sim::mix64(43));
    // Single-bit input flips change many output bits (weak avalanche check).
    const std::uint64_t d = sim::mix64(0x1) ^ sim::mix64(0x0);
    EXPECT_GT(__builtin_popcountll(d), 16);
}

TEST(HashString, DistinctStringsDistinctHashes) {
    EXPECT_EQ(sim::hash_string("abc"), sim::hash_string("abc"));
    EXPECT_NE(sim::hash_string("abc"), sim::hash_string("abd"));
    EXPECT_NE(sim::hash_string(""), sim::hash_string("a"));
}

}  // namespace
