#include "geoloc/bestline.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace geoloc = ytcdn::geoloc;

namespace {

TEST(Bestline, DistanceBoundInvertsLine) {
    const geoloc::Bestline line{0.02, 5.0};
    EXPECT_NEAR(line.distance_bound_km(25.0), 1000.0, 1e-9);
    EXPECT_DOUBLE_EQ(line.distance_bound_km(5.0), 0.0);
    EXPECT_DOUBLE_EQ(line.distance_bound_km(1.0), 0.0);  // clamped
}

TEST(Bestline, FitsExactLine) {
    // Points exactly on rtt = 0.015 d + 2.
    std::vector<geoloc::CalibrationPoint> pts;
    for (double d : {100.0, 500.0, 1000.0, 3000.0}) {
        pts.push_back({d, 0.015 * d + 2.0});
    }
    const auto line = geoloc::fit_bestline(pts);
    EXPECT_NEAR(line.slope_ms_per_km, 0.015, 1e-9);
    EXPECT_NEAR(line.intercept_ms, 2.0, 1e-9);
}

TEST(Bestline, LiesBelowAllPoints) {
    ytcdn::sim::Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<geoloc::CalibrationPoint> pts;
        for (int i = 0; i < 60; ++i) {
            const double d = rng.uniform(10.0, 9000.0);
            const double rtt = 0.01 * d * rng.uniform(1.05, 2.0) + rng.uniform(0.5, 6.0);
            pts.push_back({d, rtt});
        }
        const auto line = geoloc::fit_bestline(pts);
        EXPECT_GT(line.slope_ms_per_km, 0.0);
        for (const auto& p : pts) {
            EXPECT_LE(line.slope_ms_per_km * p.distance_km + line.intercept_ms,
                      p.min_rtt_ms + 1e-6);
        }
    }
}

TEST(Bestline, BoundNeverUnderestimatesDistanceOnCalibrationSet) {
    // The CBG soundness property: converting a point's RTT back through the
    // bestline yields a distance >= the true distance.
    ytcdn::sim::Rng rng(4);
    std::vector<geoloc::CalibrationPoint> pts;
    for (int i = 0; i < 80; ++i) {
        const double d = rng.uniform(20.0, 8000.0);
        pts.push_back({d, 0.01 * d * rng.uniform(1.1, 1.9) + rng.uniform(0.5, 3.0)});
    }
    const auto line = geoloc::fit_bestline(pts);
    for (const auto& p : pts) {
        EXPECT_GE(line.distance_bound_km(p.min_rtt_ms), p.distance_km - 1e-6);
    }
}

TEST(Bestline, FallbackOnDegenerateInput) {
    // Too few usable points.
    const auto line = geoloc::fit_bestline({{500.0, 10.0}});
    EXPECT_DOUBLE_EQ(line.slope_ms_per_km, 0.01);
    EXPECT_LE(line.slope_ms_per_km * 500.0 + line.intercept_ms, 10.0 + 1e-9);

    // Empty set: conservative default.
    const auto empty = geoloc::fit_bestline({});
    EXPECT_DOUBLE_EQ(empty.slope_ms_per_km, 0.01);
}

TEST(Bestline, IgnoresZeroDistancePoints) {
    std::vector<geoloc::CalibrationPoint> pts{{0.5, 0.1}, {0.2, 0.05}};
    const auto line = geoloc::fit_bestline(pts);
    EXPECT_DOUBLE_EQ(line.slope_ms_per_km, 0.01);  // fallback used
}

TEST(Bestline, RejectsFlatHullEdges) {
    // Two clusters at the same RTT would give slope ~0; min_slope guards.
    std::vector<geoloc::CalibrationPoint> pts{
        {100.0, 10.0}, {5000.0, 10.1}, {200.0, 30.0}, {4000.0, 55.0}};
    const auto line = geoloc::fit_bestline(pts, /*min_slope=*/0.002);
    EXPECT_GE(line.slope_ms_per_km, 0.002);
    for (const auto& p : pts) {
        EXPECT_LE(line.slope_ms_per_km * p.distance_km + line.intercept_ms,
                  p.min_rtt_ms + 1e-6);
    }
}

}  // namespace
