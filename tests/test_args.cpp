#include "util/args.hpp"

#include <gtest/gtest.h>

namespace util = ytcdn::util;

namespace {

util::ArgParser parse(std::vector<const char*> argv,
                      std::vector<std::string> flags = {}) {
    argv.insert(argv.begin(), "prog");
    return util::ArgParser(static_cast<int>(argv.size()), argv.data(),
                           std::move(flags));
}

TEST(Args, PositionalsAndOptions) {
    const auto args = parse({"run", "--scale", "0.5", "file.tsv", "--out", "dir"});
    EXPECT_EQ(args.positionals(),
              (std::vector<std::string>{"run", "file.tsv"}));
    EXPECT_EQ(args.get("scale"), "0.5");
    EXPECT_EQ(args.get("out"), "dir");
    EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Args, EqualsSyntax) {
    const auto args = parse({"--scale=0.25", "--name=x=y"});
    EXPECT_EQ(args.get("scale"), "0.25");
    EXPECT_EQ(args.get("name"), "x=y");  // first '=' splits
}

TEST(Args, BooleanFlags) {
    const auto args = parse({"run", "--binary", "--scale", "1.0"}, {"binary"});
    EXPECT_TRUE(args.has_flag("binary"));
    EXPECT_FALSE(args.has_flag("other"));
    EXPECT_EQ(args.get_double_or("scale", 0.0), 1.0);
}

TEST(Args, TypedGettersWithFallbacks) {
    const auto args = parse({"--n", "42", "--x", "2.5"});
    EXPECT_EQ(args.get_long_or("n", 0), 42);
    EXPECT_DOUBLE_EQ(args.get_double_or("x", 0.0), 2.5);
    EXPECT_EQ(args.get_long_or("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.get_double_or("missing", 1.5), 1.5);
    EXPECT_EQ(args.get_or("missing", "dflt"), "dflt");
}

TEST(Args, MalformedInputThrows) {
    EXPECT_THROW(parse({"--scale"}), std::invalid_argument);   // missing value
    EXPECT_THROW(parse({"--"}), std::invalid_argument);        // empty name
    const auto args = parse({"--x", "abc"});
    EXPECT_THROW((void)args.get_double_or("x", 0.0), std::invalid_argument);
    EXPECT_THROW((void)args.get_long_or("x", 0), std::invalid_argument);
}

TEST(Args, UnknownOptionDetection) {
    const auto args = parse({"--good", "1", "--typo", "2", "--flagg"},
                            {"flagg", "flag"});
    const auto unknown = args.unknown_options({"good", "flag"});
    EXPECT_EQ(unknown, (std::vector<std::string>{"flagg", "typo"}));
}

TEST(Args, EmptyInput) {
    const auto args = parse({});
    EXPECT_TRUE(args.positionals().empty());
}

}  // namespace
