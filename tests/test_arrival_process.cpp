#include "sim/arrival_process.hpp"

#include <gtest/gtest.h>

#include "sim/diurnal.hpp"

namespace sim = ytcdn::sim;

namespace {

TEST(ArrivalProcess, HomogeneousRateConverges) {
    sim::ArrivalProcess proc([](sim::SimTime) { return 2.0; }, 2.0, sim::Rng(1));
    double t = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) t = proc.next_after(t);
    // 20000 arrivals at rate 2/s take ~10000 s.
    EXPECT_NEAR(t, n / 2.0, n / 2.0 * 0.05);
}

TEST(ArrivalProcess, ArrivalsStrictlyIncrease) {
    sim::ArrivalProcess proc([](sim::SimTime) { return 1.0; }, 1.0, sim::Rng(2));
    double t = 0.0;
    for (int i = 0; i < 1000; ++i) {
        const double next = proc.next_after(t);
        EXPECT_GT(next, t);
        t = next;
    }
}

TEST(ArrivalProcess, ThinningTracksTimeVaryingRate) {
    // Rate 4/s in the first half hour, 1/s in the second.
    const auto rate = [](sim::SimTime t) { return t < 1800.0 ? 4.0 : 1.0; };
    sim::ArrivalProcess proc(rate, 4.0, sim::Rng(3));
    int first = 0, second = 0;
    double t = 0.0;
    while (true) {
        t = proc.next_after(t);
        if (t >= 3600.0) break;
        (t < 1800.0 ? first : second)++;
    }
    EXPECT_NEAR(first, 7200, 500);
    EXPECT_NEAR(second, 1800, 250);
    EXPECT_NEAR(static_cast<double>(first) / second, 4.0, 0.7);
}

TEST(ArrivalProcess, DiurnalRateProducesDayNightContrast) {
    const auto profile = sim::DiurnalProfile::residential();
    const double base = 0.5;
    sim::ArrivalProcess proc(
        [&](sim::SimTime t) { return base * profile.multiplier_at(t); },
        base * profile.peak_to_mean() * 1.2, sim::Rng(4));
    std::vector<int> hourly(24, 0);
    double t = 0.0;
    while (true) {
        t = proc.next_after(t);
        if (t >= sim::kDay) break;
        ++hourly[static_cast<std::size_t>(t / sim::kHour)];
    }
    EXPECT_GT(hourly[21], 4 * std::max(1, hourly[4]));
}

TEST(ArrivalProcess, RateAboveBoundThrows) {
    sim::ArrivalProcess proc([](sim::SimTime) { return 5.0; }, 2.0, sim::Rng(5));
    EXPECT_THROW((void)proc.next_after(0.0), std::logic_error);
}

TEST(ArrivalProcess, InvalidConstructionThrows) {
    EXPECT_THROW(sim::ArrivalProcess(nullptr, 1.0, sim::Rng(6)), std::invalid_argument);
    EXPECT_THROW(sim::ArrivalProcess([](sim::SimTime) { return 1.0; }, 0.0, sim::Rng(6)),
                 std::invalid_argument);
}

}  // namespace
