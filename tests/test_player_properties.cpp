// Property sweeps over the Flash-player configuration space: whatever the
// behavioural knobs, the emulator must conserve flow accounting, never
// oversend a video, and keep every emitted flow classifiable.

#include <gtest/gtest.h>

#include <map>

#include "analysis/session.hpp"
#include "capture/dataset.hpp"
#include "workload/player.hpp"

namespace cdn = ytcdn::cdn;
namespace net = ytcdn::net;
namespace geo = ytcdn::geo;
namespace sim = ytcdn::sim;
namespace workload = ytcdn::workload;
namespace capture = ytcdn::capture;

namespace {

struct SweepPoint {
    double p_probe;
    double p_abort;
    double p_pause;
    int max_redirects;
};

class PlayerSweep : public ::testing::TestWithParam<SweepPoint> {
protected:
    PlayerSweep()
        : cdn_(model_, {.replicate_top_ranks = 20, .origin_replicas = 1}),
          sniffer_("T") {
        for (int d = 0; d < 3; ++d) {
            const geo::GeoPoint locs[] = {{45.46, 9.19}, {50.11, 8.68}, {48.86, 2.35}};
            const cdn::DcId dc = cdn_.add_data_center(
                "DC" + std::to_string(d), geo::Continent::Europe, locs[d],
                net::well_known_as::kGoogle, cdn::InfraClass::GoogleCdn);
            cdn_.add_prefix(dc, net::Subnet{net::IpAddress::from_octets(
                                                173, 194, static_cast<std::uint8_t>(d), 0),
                                            24});
            cdn_.add_servers(dc, 6, 3);
            dcs_.push_back(dc);
        }
        ldns_ = dns_.add_resolver(
            "r", std::make_unique<cdn::StaticPreferencePolicy>(dcs_));
        client_.id = 0;
        client_.ip = net::IpAddress::from_octets(10, 0, 0, 1);
        client_.ldns = ldns_;
        client_.site = net::NetSite{1, {45.07, 7.69}, 1.0};
        client_.downstream_bps = 8e6;
    }

    net::RttModel model_;
    cdn::Cdn cdn_;
    cdn::DnsSystem dns_;
    capture::Sniffer sniffer_;
    sim::Simulator simulator_;
    std::vector<cdn::DcId> dcs_;
    cdn::LdnsId ldns_{};
    workload::Client client_;
};

TEST_P(PlayerSweep, InvariantsHoldAcrossConfigSpace) {
    const SweepPoint point = GetParam();
    workload::Player::Config cfg;
    cfg.p_resolution_probe = point.p_probe;
    cfg.p_abort = point.p_abort;
    cfg.p_pause_resume = point.p_pause;
    cfg.max_redirects = point.max_redirects;
    workload::Player player(simulator_, cdn_, dns_, sniffer_, cfg, sim::Rng(1234));

    const int kSessions = 120;
    for (int i = 0; i < kSessions; ++i) {
        cdn::Video v;
        v.id = cdn::VideoId{0x9000ull + static_cast<std::uint64_t>(i % 40)};
        v.rank = static_cast<std::size_t>(i % 40);
        v.duration_s = 60.0 + (i % 5) * 30.0;
        player.start_session(client_, v, cdn::Resolution::R360);
        simulator_.run();
    }

    const auto& stats = player.stats();
    EXPECT_EQ(stats.sessions, static_cast<std::uint64_t>(kSessions));

    // 1. Flow accounting drains.
    for (std::size_t s = 0; s < cdn_.num_servers(); ++s) {
        EXPECT_EQ(cdn_.server(static_cast<cdn::ServerId>(s)).active_flows(), 0);
    }

    // 2. Emitted flows all classified; counts match player stats.
    EXPECT_EQ(sniffer_.flows_ignored(), 0u);
    EXPECT_EQ(sniffer_.flows_classified(), stats.video_flows + stats.control_flows);

    // 3. Per (video) total bytes never exceed what a full watch could
    //    produce across the sessions that requested it.
    std::map<cdn::VideoId, std::uint64_t> bytes_per_video;
    std::map<cdn::VideoId, int> sessions_per_video;
    for (const auto& r : sniffer_.records()) {
        if (ytcdn::analysis::classify_flow_size(r.bytes) ==
            ytcdn::analysis::FlowKind::Video) {
            bytes_per_video[r.video] += r.bytes;
        }
    }
    for (int i = 0; i < kSessions; ++i) {
        ++sessions_per_video[cdn::VideoId{0x9000ull + static_cast<std::uint64_t>(i % 40)}];
    }
    for (const auto& [video, bytes] : bytes_per_video) {
        cdn::Video v;
        v.duration_s = 60.0 + 4 * 30.0;  // upper bound on the sweep's durations
        const std::uint64_t cap =
            cdn::video_bytes(v, cdn::Resolution::R360) *
            static_cast<std::uint64_t>(sessions_per_video[video]);
        EXPECT_LE(bytes, cap + 1000) << video.to_string();
    }

    // 4. Every video flow's timestamps are sane.
    for (const auto& r : sniffer_.records()) {
        EXPECT_GE(r.end, r.start);
        EXPECT_LT(r.duration(), 4000.0);
    }

    // 5. Sessions never fail in a world where content always exists
    //    somewhere and redirects are allowed.
    if (point.max_redirects > 0) {
        EXPECT_EQ(stats.failures.total(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, PlayerSweep,
    ::testing::Values(SweepPoint{0.0, 0.0, 0.0, 4}, SweepPoint{1.0, 0.0, 0.0, 4},
                      SweepPoint{0.0, 1.0, 0.0, 4}, SweepPoint{0.0, 0.0, 1.0, 4},
                      SweepPoint{0.5, 0.5, 0.5, 4}, SweepPoint{0.2, 0.8, 0.3, 1},
                      SweepPoint{0.18, 0.45, 0.055, 4},  // production defaults
                      SweepPoint{1.0, 1.0, 1.0, 8}));

}  // namespace
