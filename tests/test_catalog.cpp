#include "cdn/catalog.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/time.hpp"

namespace cdn = ytcdn::cdn;
namespace sim = ytcdn::sim;

namespace {

cdn::VideoCatalog make_catalog(std::size_t n = 1000) {
    cdn::VideoCatalog::Config cfg;
    cfg.num_videos = n;
    return cdn::VideoCatalog(cfg, sim::Rng(42));
}

TEST(Catalog, SizeAndRankAccess) {
    const auto cat = make_catalog(500);
    EXPECT_EQ(cat.size(), 500u);
    EXPECT_EQ(cat.by_rank(0).rank, 0u);
    EXPECT_EQ(cat.by_rank(499).rank, 499u);
    EXPECT_THROW((void)cat.by_rank(500), std::out_of_range);
}

TEST(Catalog, IdsAreUniqueAndFindable) {
    const auto cat = make_catalog(2000);
    std::unordered_set<cdn::VideoId> ids;
    for (std::size_t r = 0; r < cat.size(); ++r) {
        const auto& v = cat.by_rank(r);
        EXPECT_TRUE(ids.insert(v.id).second) << "duplicate id at rank " << r;
        const cdn::Video* found = cat.find(v.id);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->rank, r);
    }
    EXPECT_EQ(cat.find(cdn::VideoId{0xDEADBEEFull}), nullptr);
}

TEST(Catalog, DeterministicForSeed) {
    const auto a = make_catalog(100);
    const auto b = make_catalog(100);
    for (std::size_t r = 0; r < 100; ++r) {
        EXPECT_EQ(a.by_rank(r).id, b.by_rank(r).id);
        EXPECT_DOUBLE_EQ(a.by_rank(r).duration_s, b.by_rank(r).duration_s);
    }
}

TEST(Catalog, DurationsWithinConfiguredBounds) {
    cdn::VideoCatalog::Config cfg;
    cfg.num_videos = 3000;
    cfg.min_duration_s = 20.0;
    cfg.max_duration_s = 600.0;
    const cdn::VideoCatalog cat(cfg, sim::Rng(7));
    double sum = 0.0;
    for (std::size_t r = 0; r < cat.size(); ++r) {
        const double d = cat.by_rank(r).duration_s;
        EXPECT_GE(d, 20.0);
        EXPECT_LE(d, 600.0);
        sum += d;
    }
    // Mean should land in a plausible mid-range, not at a clamp.
    const double mean = sum / static_cast<double>(cat.size());
    EXPECT_GT(mean, 100.0);
    EXPECT_LT(mean, 400.0);
}

TEST(Catalog, UploadAppendsFreshVideo) {
    auto cat = make_catalog(50);
    const auto& v = cat.upload(1234.5, 180.0);
    EXPECT_EQ(v.rank, 50u);
    EXPECT_EQ(cat.size(), 51u);
    EXPECT_DOUBLE_EQ(v.upload_time, 1234.5);
    EXPECT_NE(cat.find(v.id), nullptr);
}

TEST(Catalog, PromotionSchedule) {
    auto cat = make_catalog(100);
    EXPECT_FALSE(cat.promoted_rank(0.0).has_value());
    cat.promote(2, 42);
    EXPECT_FALSE(cat.promoted_rank(1.5 * sim::kDay).has_value());
    ASSERT_TRUE(cat.promoted_rank(2.0 * sim::kDay).has_value());
    EXPECT_EQ(*cat.promoted_rank(2.5 * sim::kDay), 42u);
    // Exactly 24 hours: gone the next day.
    EXPECT_FALSE(cat.promoted_rank(3.0 * sim::kDay).has_value());
    EXPECT_THROW(cat.promote(1, 1000), std::out_of_range);
}

TEST(Catalog, EmptyConfigThrows) {
    cdn::VideoCatalog::Config cfg;
    cfg.num_videos = 0;
    EXPECT_THROW(cdn::VideoCatalog(cfg, sim::Rng(1)), std::invalid_argument);
}

}  // namespace
