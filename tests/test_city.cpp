#include "geo/city.hpp"

#include <gtest/gtest.h>

#include "geo/continent.hpp"

namespace geo = ytcdn::geo;

namespace {

TEST(CityDatabase, BuiltinHasStudyCities) {
    const auto& db = geo::CityDatabase::builtin();
    for (const char* name : {"West Lafayette", "Turin", "Budapest", "Dallas", "Milan",
                             "Frankfurt", "Mountain View", "Amsterdam"}) {
        EXPECT_NE(db.find(name), nullptr) << name;
    }
}

TEST(CityDatabase, BuiltinCoversAllContinents) {
    const auto& db = geo::CityDatabase::builtin();
    for (const auto c :
         {geo::Continent::NorthAmerica, geo::Continent::Europe, geo::Continent::Asia,
          geo::Continent::SouthAmerica, geo::Continent::Oceania, geo::Continent::Africa}) {
        EXPECT_FALSE(db.on_continent(c).empty()) << geo::to_string(c);
    }
}

TEST(CityDatabase, FindIsExact) {
    const auto& db = geo::CityDatabase::builtin();
    EXPECT_EQ(db.find("turin"), nullptr);   // case-sensitive
    EXPECT_EQ(db.find("Nowhere"), nullptr);
}

TEST(CityDatabase, NearestToCityCoordinatesIsThatCity) {
    const auto& db = geo::CityDatabase::builtin();
    for (const auto& city : db.cities()) {
        const geo::City* nearest = db.nearest(city.location);
        ASSERT_NE(nearest, nullptr);
        EXPECT_EQ(nearest->name, city.name);
    }
}

TEST(CityDatabase, NearestOffsetPointSnapsBack) {
    const auto& db = geo::CityDatabase::builtin();
    const geo::City* turin = db.find("Turin");
    ASSERT_NE(turin, nullptr);
    // 20 km from Turin is still nearest to Turin (Milan is 125 km away).
    const geo::GeoPoint p = geo::destination_point(turin->location, 45.0, 20.0);
    EXPECT_EQ(db.nearest(p)->name, "Turin");
}

TEST(CityDatabase, NearestWithinRejectsFarPoints) {
    const auto& db = geo::CityDatabase::builtin();
    // Mid-Atlantic: no city within 400 km.
    EXPECT_EQ(db.nearest_within(geo::GeoPoint{30.0, -45.0}, 400.0), nullptr);
}

TEST(CityDatabase, EmptyDatabaseNearestIsNull) {
    geo::CityDatabase db;
    EXPECT_TRUE(db.empty());
    EXPECT_EQ(db.nearest(geo::GeoPoint{0, 0}), nullptr);
}

TEST(CityDatabase, AddThenFind) {
    geo::CityDatabase db;
    db.add(geo::City{"Testville", "XX", geo::Continent::Europe, {50.0, 10.0}});
    ASSERT_NE(db.find("Testville"), nullptr);
    EXPECT_EQ(db.size(), 1u);
}

TEST(Continent, BucketsMatchPaper) {
    using geo::bucket_of;
    using geo::Continent;
    using geo::ContinentBucket;
    EXPECT_EQ(bucket_of(Continent::NorthAmerica), ContinentBucket::NorthAmerica);
    EXPECT_EQ(bucket_of(Continent::Europe), ContinentBucket::Europe);
    EXPECT_EQ(bucket_of(Continent::Asia), ContinentBucket::Others);
    EXPECT_EQ(bucket_of(Continent::SouthAmerica), ContinentBucket::Others);
    EXPECT_EQ(bucket_of(Continent::Oceania), ContinentBucket::Others);
    EXPECT_EQ(bucket_of(Continent::Africa), ContinentBucket::Others);
}

TEST(Continent, StringRoundTrip) {
    for (const auto c :
         {geo::Continent::NorthAmerica, geo::Continent::Europe, geo::Continent::Asia,
          geo::Continent::SouthAmerica, geo::Continent::Oceania, geo::Continent::Africa}) {
        const auto parsed = geo::continent_from_string(geo::to_string(c));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, c);
    }
    EXPECT_FALSE(geo::continent_from_string("Atlantis").has_value());
}

}  // namespace
